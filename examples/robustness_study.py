"""Robustness study: detection under electrode failures.

A detector implanted for years must tolerate hardware degradation.
This study trains one patient model, then sweeps the number of *dead*
electrodes (flatlined after training) and measures whether the unseen
seizure is still detected — probing the graceful degradation of the
holographic representation: every electrode contributes one vector to a
majority bundle, so losing a few contacts perturbs, rather than breaks,
the H vectors.

Run:  python examples/robustness_study.py
"""

import numpy as np

from _smoke import pick

from repro import LaelapsConfig, LaelapsDetector
from repro.core.training import TrainingSegments
from repro.data.failures import inject_artifact_bursts, kill_electrodes
from repro.data.synthetic import (
    SeizurePlan,
    SynthesisParams,
    SyntheticIEEGGenerator,
)


def main() -> int:
    fs = 256.0
    n_electrodes = 32
    generator = SyntheticIEEGGenerator(
        n_electrodes, SynthesisParams(fs=fs), seed=19
    )
    recording = generator.generate(
        300.0, [SeizurePlan(100.0, 25.0), SeizurePlan(220.0, 25.0)]
    )
    detector = LaelapsDetector(
        n_electrodes, LaelapsConfig(dim=pick(2_000, 512), fs=fs, seed=4)
    )
    detector.fit(
        recording.data,
        TrainingSegments(ictal=((100.0, 125.0),), interictal=(40.0, 70.0)),
    )
    detector.tune_tr(recording.data[: int(135 * fs)], [(100.0, 125.0)])
    second = recording.seizures[1]

    def detected(rec) -> bool:
        result = detector.detect(rec.data)
        return bool(np.any(
            (result.alarm_times >= second.onset_s)
            & (result.alarm_times <= second.offset_s + 5.0)
        ))

    print("=== dead-electrode sweep (flatlined after training) ===")
    rng = np.random.default_rng(0)
    print(f"{'dead':>6}  {'fraction':>9}  detected")
    last_ok = 0
    for n_dead in pick([0, 2, 4, 8, 12, 16, 20, 24], [0, 8, 24]):
        dead = rng.choice(n_electrodes, size=n_dead, replace=False)
        degraded = kill_electrodes(recording, dead, from_s=150.0)
        ok = detected(degraded)
        if ok:
            last_ok = n_dead
        print(f"{n_dead:>6}  {n_dead / n_electrodes:>8.0%}  {ok}")
    print(f"-> detection survives up to ~{last_ok}/{n_electrodes} dead contacts")

    print("\n=== artefact-burst stress (broadband, 0.5-3 s) ===")
    for rate in pick([0.0, 60.0, 240.0, 960.0], [0.0, 240.0]):
        stressed = inject_artifact_bursts(
            recording, rate_per_hour=rate, amplitude=6.0, seed=2
        )
        result = detector.detect(stressed.data)
        false_alarms = [
            t for t in result.alarm_times
            if not any(
                s.onset_s - 1 <= t <= s.offset_s + 5
                for s in recording.seizures
            )
        ]
        print(f"rate {rate:6.0f}/h: detected={detected(stressed)}, "
              f"false alarms={len(false_alarms)}")
    print("\nshort bursts cannot satisfy ten consecutive ictal labels, so "
          "the t_c vote absorbs them — the mechanism behind the paper's "
          "zero-false-alarm operation")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
