"""Sharded serving: a patient fleet across worker processes.

The fleet-scale layer above ``multi_patient_sessions.py``: the same
kind of per-patient models are served through a
:class:`~repro.serve.ShardedStreamGateway`, which consistent-hashes
each ``session_id`` onto a pool of shard workers (child processes
here), classifies each tick's traffic as one grouped packed sweep per
shard, applies backpressure through bounded submit queues, and
checkpoints the whole fleet — models plus every session's mid-stream
state — into per-shard ``save_sessions`` files plus a manifest.  The
checkpoint is restored onto a *different* worker count and the streams
continue bit-exactly; see ``docs/serving.md`` for the semantics.

Run:  python examples/sharded_serving.py
"""

import tempfile

import numpy as np

from _smoke import pick
from repro import LaelapsConfig, LaelapsDetector
from repro.core.training import TrainingSegments
from repro.data.synthetic import (
    SeizurePlan,
    SynthesisParams,
    SyntheticIEEGGenerator,
)
from repro.serve import Backpressure, ShardedStreamGateway

FS = 256.0
DURATION_S = 200.0


def build_patient(index: int):
    """One synthetic patient: recording + fitted, tuned detector."""
    n_electrodes = (16, 24, 32)[index % 3]
    backend = ("packed", "unpacked")[index % 2]
    generator = SyntheticIEEGGenerator(
        n_electrodes, SynthesisParams(fs=FS), seed=80 + index
    )
    recording = generator.generate(
        DURATION_S, [SeizurePlan(60.0, 22.0), SeizurePlan(150.0, 22.0)]
    )
    detector = LaelapsDetector(
        n_electrodes,
        LaelapsConfig(
            dim=pick(2_000, 512), fs=FS, seed=31 + index, backend=backend
        ),
    )
    detector.fit(
        recording.data,
        TrainingSegments(ictal=((60.0, 82.0),), interictal=(15.0, 45.0)),
    )
    detector.tune_tr(recording.data[: int(90 * FS)], [(60.0, 82.0)])
    return detector, recording


def main() -> int:
    n_patients = pick(5, 3)
    n_workers = 2
    gateway = ShardedStreamGateway(n_workers, mode="process", max_pending=4)
    signals = {}
    for i in range(n_patients):
        detector, recording = build_patient(i)
        patient_id = f"patient-{i}"
        worker = gateway.open(patient_id, detector)
        signals[patient_id] = recording.data
        print(
            f"{patient_id}: {detector.n_electrodes} electrodes, "
            f"{detector.backend} backend -> shard {worker}"
        )

    chunk = int(FS // 2)  # one 0.5 s block per tick, as served live
    half = int(DURATION_S / 2 * FS) + 131  # cut mid-block on purpose

    print(f"\nserving {n_patients} streams on {n_workers} worker "
          "processes (first half) ...")
    events = gateway.run(
        {pid: sig[:half] for pid, sig in signals.items()}, chunk
    )

    # Backpressure: a producer outrunning drain() is refused loudly
    # instead of buffering without bound.
    overloaded = signals["patient-0"]
    try:
        for k in range(8):
            gateway.submit(
                "patient-0", overloaded[half + k * 16 : half + (k + 1) * 16]
            )
    except Backpressure as exc:
        print(f"backpressure engaged: {exc}")
    for pid, drained in gateway.drain().items():
        events[pid].extend(drained)
    consumed = {pid: half for pid in signals}
    consumed["patient-0"] += 4 * 16  # the four chunks accepted above

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        manifest = gateway.checkpoint(checkpoint_dir)
        print(f"fleet checkpoint written to {manifest.parent} "
              f"({len(gateway.worker_ids)} shards)")
        gateway.shutdown()
        restored = ShardedStreamGateway.restore(
            checkpoint_dir, n_workers=n_workers + 1, mode="process"
        )
    print(f"restored onto {len(restored.worker_ids)} workers "
          "(streams resume bit-exactly) ...")
    with restored:
        tail_events = restored.run(
            {pid: sig[consumed[pid] :] for pid, sig in signals.items()},
            chunk,
        )
        for pid in signals:
            events[pid].extend(tail_events[pid])

    print()
    detected_all = True
    for pid in sorted(signals):
        alarms = [e.time_s for e in events[pid] if e.alarm]
        unseen = any(150.0 <= t <= 185.0 for t in alarms)
        detected_all &= unseen
        print(
            f"  {pid}: {len(events[pid])} windows, alarms at "
            f"{np.round(alarms, 1).tolist()} s, unseen seizure "
            f"{'detected' if unseen else 'MISSED'}"
        )
    return 0 if detected_all else 1


if __name__ == "__main__":
    raise SystemExit(main())
