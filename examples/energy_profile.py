"""Energy profile: Table II, Fig. 3 and the electrode-scaling sweep.

Uses the calibrated Tegra X2 cost model (``repro.hw``) to reproduce the
paper's implementation study: per-classification time and energy for
Laelaps and the three baselines at 24/64/128 electrodes, the Fig. 3
FDR-vs-energy trade-off, and the kernel-level breakdown of the Laelaps
GPU implementation (Fig. 2).

Run:  python examples/energy_profile.py
"""

from repro.evaluation.report import render_table
from repro.hw import MethodCostModel, electrode_scaling, fig3_points, table2


def main() -> int:
    model = MethodCostModel()

    print("=== Table II: cost per 0.5 s classification event ===")
    rows = table2(model)
    print(render_table(
        ["Elect", "Method", "Res", "time[ms]", "x", "energy[mJ]", "x"],
        [[r["electrodes"], r["method"], r["resource"], r["time_ms"],
          r["time_ratio"], r["energy_mj"], r["energy_ratio"]] for r in rows],
        precision=1,
    ))

    print("\n=== Fig. 3: FDR vs energy, 64 electrodes ===")
    print(render_table(
        ["Method", "Res", "energy[mJ]", "FDR[/h]"],
        [[p["method"], p["resource"], p["energy_mj"], p["fdr_per_hour"]]
         for p in fig3_points(model=model)],
    ))

    print("\n=== Sec. V-C: scaling with the electrode count ===")
    sweep = electrode_scaling(model=model)
    counts = [e.n_electrodes for e in sweep["laelaps"]]
    print(render_table(
        ["Method"] + [f"{n}e" for n in counts],
        [[m] + [e.time_ms for e in estimates]
         for m, estimates in sweep.items()],
        title="time per classification [ms]",
        precision=1,
    ))

    print("\n=== Fig. 2: Laelaps kernel breakdown (128 electrodes, d=1 kbit) ===")
    total_ms, costs = model.laelaps_kernel_breakdown(128, dim=1_000)
    print(render_table(
        ["Kernel", "time[ms]", "bound"],
        [[c.name, c.time_ms, c.bound] for c in costs],
        precision=4,
    ))
    print(f"device total {total_ms:.3f} ms — the measured 13 ms event is "
          "dominated by host-side dispatch and staging, which is why the "
          "cost is nearly independent of the electrode count")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
