"""Multi-patient stream serving with checkpoint/restore.

Where ``streaming_detection.py`` replays one patient through a single
:class:`~repro.core.streaming.StreamingLaelaps`, this example runs a
small *fleet*: several patients with individual models (different
electrode counts, thresholds and backends) are served concurrently by a
:class:`~repro.core.sessions.StreamSessionManager`, which classifies
the completed windows of all sessions per 0.5 s tick in one shared
batched XOR+popcount sweep.  Halfway through, the whole serving state —
models plus every session's mid-stream buffers and alarm machines — is
checkpointed to one ``.npz`` and resumed in a fresh manager, and the
stream continues as if nothing happened (events are bit-identical to an
uninterrupted run; the test suite asserts this property).

Run:  python examples/multi_patient_sessions.py
"""

import numpy as np

from _smoke import pick

from repro import LaelapsConfig, LaelapsDetector
from repro.core.persistence import load_sessions, save_sessions
from repro.core.sessions import StreamSessionManager
from repro.core.training import TrainingSegments
from repro.data.synthetic import (
    SeizurePlan,
    SynthesisParams,
    SyntheticIEEGGenerator,
)

FS = 256.0
DURATION_S = 200.0


def build_patient(index: int):
    """One synthetic patient: recording + fitted, tuned detector."""
    n_electrodes = (16, 24, 32)[index % 3]
    backend = ("packed", "unpacked")[index % 2]
    generator = SyntheticIEEGGenerator(
        n_electrodes, SynthesisParams(fs=FS), seed=50 + index
    )
    recording = generator.generate(
        DURATION_S, [SeizurePlan(60.0, 22.0), SeizurePlan(150.0, 22.0)]
    )
    detector = LaelapsDetector(
        n_electrodes,
        LaelapsConfig(
            dim=pick(2_000, 512), fs=FS, seed=7 + index, backend=backend
        ),
    )
    detector.fit(
        recording.data,
        TrainingSegments(ictal=((60.0, 82.0),), interictal=(15.0, 45.0)),
    )
    detector.tune_tr(recording.data[: int(90 * FS)], [(60.0, 82.0)])
    return detector, recording


def main() -> int:
    n_patients = pick(4, 2)
    manager = StreamSessionManager()
    signals = {}
    for i in range(n_patients):
        detector, recording = build_patient(i)
        patient_id = f"patient-{i}"
        manager.open(patient_id, detector)
        signals[patient_id] = recording.data
        print(
            f"{patient_id}: {detector.n_electrodes} electrodes, "
            f"{detector.backend} backend, t_r = {detector.tr:.0f}"
        )

    chunk = int(FS // 2)  # one 0.5 s block per tick, as served live
    half = int(DURATION_S / 2 * FS) + 131  # cut mid-block on purpose

    print(f"\nserving {n_patients} concurrent streams (first half) ...")
    events = manager.run(
        {pid: sig[:half] for pid, sig in signals.items()}, chunk
    )

    path = save_sessions(manager, "sessions_checkpoint.npz")
    print(f"checkpointed live state of {len(manager)} sessions to {path}")
    resumed = load_sessions(path)

    print("resuming from the checkpoint (second half) ...")
    tail_events = resumed.run(
        {pid: sig[half:] for pid, sig in signals.items()}, chunk
    )
    for pid in signals:
        events[pid].extend(tail_events[pid])

    print()
    detected_all = True
    for pid in sorted(signals):
        alarms = [e.time_s for e in events[pid] if e.alarm]
        unseen = any(150.0 <= t <= 185.0 for t in alarms)
        detected_all &= unseen
        print(
            f"  {pid}: {len(events[pid])} windows, alarms at "
            f"{np.round(alarms, 1).tolist()} s, unseen seizure "
            f"{'detected' if unseen else 'MISSED'}"
        )
    return 0 if detected_all else 1


if __name__ == "__main__":
    raise SystemExit(main())
