"""Quickstart: train Laelaps on one synthetic patient and detect a seizure.

Walks the full Fig. 1 pipeline on a small recording:

1. synthesise 5 minutes of 32-electrode iEEG with two seizures;
2. train the patient-specific model from the *first* seizure plus 30 s of
   interictal signal (one-shot learning, Sec. III-B);
3. tune the patient's confidence threshold t_r on the training tail;
4. detect the *unseen* second seizure and report delay / false alarms.

Run:  python examples/quickstart.py
"""

import numpy as np

from _smoke import pick

from repro import LaelapsConfig, LaelapsDetector
from repro.core.training import TrainingSegments
from repro.data.synthetic import (
    SeizurePlan,
    SynthesisParams,
    SyntheticIEEGGenerator,
)
from repro.evaluation.metrics import compute_metrics


def main() -> int:
    fs = 256.0
    print("=== Laelaps quickstart ===")

    # 1. Synthetic patient: 32 electrodes, 5 minutes, two seizures.
    params = SynthesisParams(fs=fs)
    generator = SyntheticIEEGGenerator(n_electrodes=32, params=params, seed=7)
    recording = generator.generate(
        300.0,
        [SeizurePlan(onset_s=100.0, duration_s=25.0),
         SeizurePlan(onset_s=220.0, duration_s=25.0)],
    )
    print(f"recording: {recording.duration_s:.0f} s, "
          f"{recording.n_electrodes} electrodes, "
          f"{len(recording.seizures)} annotated seizures")

    # 2. Train from the first seizure + one 30 s interictal segment.
    config = LaelapsConfig(dim=pick(2_000, 512), fs=fs, seed=1)
    detector = LaelapsDetector(recording.n_electrodes, config)
    segments = TrainingSegments(
        ictal=((100.0, 125.0),), interictal=(40.0, 70.0)
    )
    detector.fit(recording.data, segments)
    report = detector.fit_report
    print(f"trained: {report.n_ictal_windows} ictal + "
          f"{report.n_interictal_windows} interictal H vectors, "
          f"prototype distance {report.prototype_distance}/{config.dim} bits")

    # 3. Tune t_r on the training part (everything before 135 s).
    train_end = 135.0
    tr = detector.tune_tr(
        recording.data[: int(train_end * fs)], [(100.0, 125.0)]
    )
    print(f"tuned t_r = {tr:.0f}")

    # 4. Detect over the whole recording.
    result = detector.detect(recording.data)
    print(f"alarms at {np.round(result.alarm_times, 1)} s "
          f"(true onsets: 100 s and 220 s)")

    metrics = compute_metrics(
        result.alarm_times, recording.seizures, recording.duration_s
    )
    print(f"sensitivity {100 * metrics.sensitivity:.0f} %, "
          f"false alarms {metrics.n_false_alarms}, "
          f"mean delay {metrics.mean_delay_s:.1f} s")
    return 0 if metrics.n_detected == 2 and metrics.n_false_alarms == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
