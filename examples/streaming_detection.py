"""Streaming detection: online inference as on an implantable device.

Trains a patient model offline (as in the quickstart) and then replays
the recording through :class:`repro.core.streaming.StreamingLaelaps` in
0.25 s chunks, printing the label stream around the unseen seizure and
the alarm the moment it fires — the dataflow of the paper's embedded
implementation (Sec. V), where one classification is emitted every 0.5 s.

Run:  python examples/streaming_detection.py
"""

import numpy as np

from _smoke import pick

from repro import LaelapsConfig, LaelapsDetector
from repro.core.streaming import StreamingLaelaps
from repro.core.training import TrainingSegments
from repro.data.synthetic import (
    SeizurePlan,
    SynthesisParams,
    SyntheticIEEGGenerator,
)


def main() -> int:
    fs = 256.0
    generator = SyntheticIEEGGenerator(
        n_electrodes=24, params=SynthesisParams(fs=fs), seed=11
    )
    recording = generator.generate(
        240.0,
        [SeizurePlan(80.0, 25.0), SeizurePlan(180.0, 25.0)],
    )

    detector = LaelapsDetector(
        24, LaelapsConfig(dim=pick(2_000, 512), fs=fs, seed=2)
    )
    detector.fit(
        recording.data,
        TrainingSegments(ictal=((80.0, 105.0),), interictal=(30.0, 60.0)),
    )
    detector.tune_tr(recording.data[: int(115 * fs)], [(80.0, 105.0)])
    print(f"model trained; t_r = {detector.tr:.0f}; "
          f"model size {detector.memory_footprint_bits() / 8192:.0f} KiB")

    streamer = StreamingLaelaps(detector)
    chunk = int(0.25 * fs)  # deliver samples four times a second
    alarms = []
    print("\nstreaming 240 s of iEEG in 0.25 s chunks ...")
    for start in range(0, recording.n_samples, chunk):
        events = streamer.push(recording.data[start : start + chunk])
        for event in events:
            if 175.0 <= event.time_s <= 200.0:
                state = "ICTAL " if event.label else "inter "
                mark = "<<< ALARM" if event.alarm else ""
                print(f"  t={event.time_s:7.2f} s {state} "
                      f"delta={event.delta:6.1f} {mark}")
            if event.alarm:
                alarms.append(event.time_s)

    print(f"\nalarms at {np.round(alarms, 2)} s "
          f"(true onsets: 80 s trained, 180 s unseen)")
    print(f"windows classified: {streamer.windows_emitted} "
          f"({streamer.samples_seen} samples)")
    unseen_detected = any(180.0 <= t <= 210.0 for t in alarms)
    print("unseen seizure detected:", unseen_detected)
    return 0 if unseen_detected else 1


if __name__ == "__main__":
    raise SystemExit(main())
