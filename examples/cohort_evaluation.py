"""Cohort evaluation: a reduced Table I run with all four methods.

Synthesises a subset of the 18-patient cohort (first N patients, scaled
durations), trains Laelaps and the three baselines with the paper's
chronological protocol, and prints the per-patient delay / FDR /
sensitivity table plus the cohort means.

Run:  python examples/cohort_evaluation.py [n_patients] [scale_divisor]

The full Table I reproduction lives in ``benchmarks/bench_table1.py`` and
``repro-laelaps table1``; this example keeps the runtime to ~1 minute.
"""

import sys
import time

from _smoke import pick

from repro.data.cohort import cohort_patient_specs
from repro.evaluation.table1 import default_methods, run_table1


def main() -> int:
    n_patients = int(sys.argv[1]) if len(sys.argv) > 1 else pick(4, 2)
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else pick(2880.0, 5760.0)

    specs = cohort_patient_specs()[:n_patients]
    print(f"=== Table I (reduced): {n_patients} patients, "
          f"duration scale 1/{scale:.0f} ===")
    methods = default_methods(dim=1_000)

    start = time.perf_counter()
    result = run_table1(
        methods, specs, hours_scale=1.0 / scale, progress=print
    )
    print()
    print(result.render())
    print(f"\ncohort alpha (t_r confidence compensation): {result.alpha:.1f}")
    for method in result.methods():
        summary = result.summary(method)
        print(
            f"{method:>8}: {summary['detected']:.0f}/"
            f"{summary['test_seizures']:.0f} seizures detected, "
            f"{summary['false_alarms']:.0f} false alarms over "
            f"{summary['interictal_hours']:.2f} interictal hours"
        )
    print(f"[wall time {time.perf_counter() - start:.0f} s]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
