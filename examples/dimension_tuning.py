"""Dimension tuning: the golden-model descent of Sec. IV-B.

The paper first runs every patient at d = 10 kbit ("golden model") and
then shrinks d while sensitivity and FDR are maintained, reaching 1 kbit
for several patients (Table I's "d" column, mean 4.3 kbit).  This example
runs that procedure on one synthetic patient and reports the chosen
dimension and the memory saving.

Run:  python examples/dimension_tuning.py
"""

from _smoke import pick
from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.core.tuning import tune_dimension
from repro.data.cohort import PatientSpec, synthesize_patient
from repro.data.splits import split_patient
from repro.evaluation.runner import finalize_run, run_patient, tune_run_tr


def main() -> int:
    spec = PatientSpec(
        "DT1", n_electrodes=16, n_seizures=4,
        recording_hours=pick(0.1, 0.05),
        train_seizures=1, seed=23,
    )
    patient = synthesize_patient(spec, hours_scale=1.0, fs=256.0)
    split = split_patient(patient)
    print(f"patient: {patient.n_electrodes} electrodes, "
          f"{patient.n_test_seizures} test seizures, "
          f"{patient.recording.duration_s:.0f} s")

    def evaluate(dim: int):
        def factory(n_electrodes: int, fs: float):
            return LaelapsDetector(
                n_electrodes, LaelapsConfig(dim=dim, fs=fs, seed=4)
            )

        run = run_patient(factory, patient, split=split)
        result = finalize_run(run, tr=tune_run_tr(run))
        metrics = result.metrics
        print(f"  d={dim:>6}: sensitivity {100 * metrics.sensitivity:5.1f} %, "
              f"FDR {metrics.fdr_per_hour:.2f}/h")
        return (metrics.sensitivity, -metrics.fdr_per_hour)

    print("golden-model descent (Sec. IV-B):")
    result = tune_dimension(
        evaluate, candidates=pick(
            (10_000, 8_000, 6_000, 4_000, 2_000, 1_000), (2_000, 1_000)
        )
    )
    print(f"\nchosen d = {result.chosen_dim} "
          f"(golden {result.golden_dim}; "
          f"{result.reduction_factor:.1f}x smaller)")
    bits_golden = (64 + 16 + 2) * result.golden_dim
    bits_chosen = (64 + 16 + 2) * result.chosen_dim
    print(f"model memory: {bits_golden / 8192:.0f} KiB -> "
          f"{bits_chosen / 8192:.0f} KiB")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
