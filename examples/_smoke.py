"""Shared smoke-mode switch for the runnable examples.

The CI examples job (and ``tests/test_examples.py``) executes every
example with ``REPRO_EXAMPLE_SMOKE=1`` so API drift breaks the build
instead of rotting silently.  In smoke mode each example swaps its
full-size knobs (dimension, cohort size, sweep lengths) for tiny ones
via :func:`pick`; the walked code paths are identical, only sizes
shrink.  Run examples without the variable for the real numbers.
"""

import os


def smoke() -> bool:
    """Whether the example runs as a CI smoke check."""
    return os.environ.get("REPRO_EXAMPLE_SMOKE") == "1"


def pick(full, tiny):
    """``tiny`` under ``REPRO_EXAMPLE_SMOKE=1``, else ``full``."""
    return tiny if smoke() else full
