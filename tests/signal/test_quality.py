"""Tests for repro.signal.quality."""

import numpy as np
import pytest

from repro.data.failures import kill_electrodes, saturate_electrodes
from repro.signal.quality import assess_channels, mask_bad_channels

FS = 256.0


@pytest.fixture()
def clean(rng):
    return rng.standard_normal((int(20 * FS), 6))


class TestAssessChannels:
    def test_clean_recording_all_good(self, clean):
        report = assess_channels(clean, FS)
        assert report.n_bad == 0
        np.testing.assert_array_equal(report.good_channels(), np.arange(6))

    def test_detects_flatline(self, clean):
        clean[:, 2] = 0.0
        report = assess_channels(clean, FS)
        assert report.bad[2]
        assert report.flatline_fraction[2] == 1.0

    def test_detects_partial_flatline(self, clean):
        clean[clean.shape[0] // 2 :, 1] = 3.14
        report = assess_channels(clean, FS)
        assert report.bad[1]

    def test_detects_saturation(self, clean):
        clipped = np.clip(clean[:, 3], -0.8, 0.8)
        clean[:, 3] = clipped
        report = assess_channels(clean, FS)
        assert report.bad[3]
        assert report.saturation_fraction[3] > 0.05

    def test_detects_std_outlier(self, clean):
        clean[:, 0] *= 1000.0
        report = assess_channels(clean, FS)
        assert report.bad[0]

    def test_detects_line_noise(self, clean):
        t = np.arange(clean.shape[0]) / FS
        clean[:, 4] = 0.05 * clean[:, 4] + 5.0 * np.sin(2 * np.pi * 50.0 * t)
        report = assess_channels(clean, FS)
        assert report.bad[4]
        assert report.line_noise_ratio[4] > 0.5

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            assess_channels(np.zeros((2, 3)), FS)


class TestIntegrationWithFailures:
    def test_flags_killed_electrodes(self, mini_recording):
        degraded = kill_electrodes(mini_recording, [1, 5])
        report = assess_channels(degraded.data, mini_recording.fs)
        assert report.bad[1] and report.bad[5]

    def test_flags_hard_saturation(self, mini_recording):
        degraded = saturate_electrodes(mini_recording, [2], limit=0.3)
        report = assess_channels(degraded.data, mini_recording.fs)
        assert report.bad[2]


class TestMasking:
    def test_masked_channels_become_featureless(self, clean):
        clean[:, 2] = 0.0
        report = assess_channels(clean, FS)
        masked = mask_bad_channels(clean, report)
        # No longer flat, but much quieter than real channels.
        assert masked[:, 2].std() > 0
        assert masked[:, 2].std() < 0.5 * masked[:, 0].std()

    def test_good_channels_untouched(self, clean):
        clean[:, 2] = 0.0
        report = assess_channels(clean, FS)
        masked = mask_bad_channels(clean, report)
        np.testing.assert_array_equal(masked[:, 0], clean[:, 0])

    def test_no_bad_channels_identity(self, clean):
        report = assess_channels(clean, FS)
        masked = mask_bad_channels(clean, report)
        np.testing.assert_array_equal(masked, clean)

    def test_masking_restores_detection(self, fitted_detector, mini_recording):
        # Flatline half the montage: masking the dead channels with
        # featureless noise must keep the unseen seizure detectable.
        dead = list(range(0, 16, 2))
        degraded = kill_electrodes(mini_recording, dead, from_s=150.0)
        report = assess_channels(
            degraded.data[int(160 * 256) :], mini_recording.fs
        )
        assert report.n_bad >= len(dead)
        masked = mask_bad_channels(degraded.data, report)
        result = fitted_detector.detect(masked)
        second = mini_recording.seizures[1]
        assert np.any(
            (result.alarm_times >= second.onset_s)
            & (result.alarm_times <= second.offset_s + 5.0)
        )
