"""Tests for repro.signal.filters."""

import numpy as np
import pytest

from repro.signal.filters import (
    bandpass_filter,
    decimate,
    design_bandpass,
    design_notch,
    notch_filter,
)


def _tone(freq_hz: float, fs: float, duration_s: float = 4.0) -> np.ndarray:
    t = np.arange(int(duration_s * fs)) / fs
    return np.sin(2 * np.pi * freq_hz * t)


class TestDesignBandpass:
    def test_rejects_inverted_band(self):
        with pytest.raises(ValueError):
            design_bandpass(40.0, 10.0, 256.0)

    def test_rejects_zero_low_edge(self):
        with pytest.raises(ValueError):
            design_bandpass(0.0, 10.0, 256.0)

    def test_rejects_high_edge_at_nyquist(self):
        with pytest.raises(ValueError):
            design_bandpass(1.0, 128.0, 256.0)

    def test_description_mentions_band(self):
        spec = design_bandpass(0.5, 100.0, 256.0)
        assert "0.5" in spec.description and "100" in spec.description


class TestBandpassBehaviour:
    def test_passband_tone_preserved(self):
        fs = 256.0
        x = _tone(20.0, fs)
        y = bandpass_filter(x, 1.0, 60.0, fs)
        # Zero-phase Butterworth: passband amplitude within a few percent.
        assert np.abs(y[256:-256]).max() == pytest.approx(1.0, abs=0.05)

    def test_stopband_tone_suppressed(self):
        fs = 256.0
        x = _tone(100.0, fs)
        y = bandpass_filter(x, 1.0, 40.0, fs)
        assert np.abs(y[256:-256]).max() < 0.02

    def test_multichannel_filters_each_column(self):
        fs = 256.0
        x = np.stack([_tone(20.0, fs), _tone(100.0, fs)], axis=1)
        y = bandpass_filter(x, 1.0, 40.0, fs)
        assert np.abs(y[256:-256, 0]).max() > 0.5
        assert np.abs(y[256:-256, 1]).max() < 0.05

    def test_too_short_signal_raises(self):
        spec = design_bandpass(1.0, 40.0, 256.0)
        with pytest.raises(ValueError):
            spec.apply(np.array([1.0]))

    def test_rejects_3d_input(self):
        spec = design_bandpass(1.0, 40.0, 256.0)
        with pytest.raises(ValueError):
            spec.apply(np.zeros((10, 2, 2)))


class TestNotch:
    def test_notch_kills_line_frequency(self):
        fs = 256.0
        x = _tone(50.0, fs)
        y = notch_filter(x, 50.0, fs)
        assert np.abs(y[256:-256]).max() < 0.1

    def test_notch_preserves_neighbours(self):
        fs = 256.0
        x = _tone(20.0, fs)
        y = notch_filter(x, 50.0, fs)
        assert np.abs(y[256:-256]).max() > 0.9

    def test_invalid_frequency_raises(self):
        with pytest.raises(ValueError):
            design_notch(200.0, 256.0)


class TestDecimate:
    def test_factor_one_is_identity(self):
        x = np.random.default_rng(0).standard_normal(100)
        y, fs = decimate(x, 1, 256.0)
        np.testing.assert_array_equal(x, y)
        assert fs == 256.0

    def test_halves_length_and_rate(self):
        x = np.random.default_rng(0).standard_normal(1000)
        y, fs = decimate(x, 2, 256.0)
        assert fs == 128.0
        assert y.shape[0] == 500

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            decimate(np.zeros(10), 0, 256.0)

    def test_preserves_low_frequency_content(self):
        fs = 256.0
        x = _tone(5.0, fs, 8.0)
        y, new_fs = decimate(x, 4, fs)
        t = np.arange(len(y)) / new_fs
        expected = np.sin(2 * np.pi * 5.0 * t)
        # Compare away from the edges.
        sl = slice(64, -64)
        assert np.corrcoef(y[sl], expected[sl])[0, 1] > 0.99
