"""Tests for repro.signal.preprocess."""

import numpy as np
import pytest

from repro.signal.preprocess import PreprocessConfig, Preprocessor


def test_default_config_matches_dataset_pipeline():
    cfg = PreprocessConfig()
    assert cfg.fs_in == 512.0
    assert cfg.bandpass_low_hz == 0.5
    assert cfg.bandpass_high_hz == 150.0
    assert cfg.fs_out == 512.0


def test_fs_out_reflects_decimation():
    cfg = PreprocessConfig(fs_in=512.0, decimation=2)
    assert cfg.fs_out == 256.0


def test_preprocessor_removes_dc_offset():
    pre = Preprocessor(PreprocessConfig(fs_in=256.0, bandpass_high_hz=100.0))
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2048, 3)) + 100.0
    y = pre(x)
    assert abs(y.mean()) < 0.5


def test_preprocessor_decimates_length():
    pre = Preprocessor(
        PreprocessConfig(fs_in=512.0, bandpass_high_hz=100.0, decimation=2)
    )
    x = np.random.default_rng(0).standard_normal((1024, 2))
    y = pre(x)
    assert y.shape[0] == 512
    assert pre.fs_out == 256.0


def test_notch_option_runs():
    pre = Preprocessor(
        PreprocessConfig(fs_in=256.0, bandpass_high_hz=100.0, notch_hz=50.0)
    )
    t = np.arange(2048) / 256.0
    x = np.sin(2 * np.pi * 50.0 * t)[:, None]
    y = pre(x)
    assert np.abs(y[256:-256]).max() < 0.2


def test_high_edge_clipped_below_nyquist():
    # fs 256 -> Nyquist 128 < requested 150; must not raise.
    pre = Preprocessor(PreprocessConfig(fs_in=256.0))
    x = np.random.default_rng(0).standard_normal((512, 1))
    assert pre(x).shape == (512, 1)


def test_rejects_bad_input_shape():
    pre = Preprocessor(PreprocessConfig(fs_in=256.0, bandpass_high_hz=100.0))
    with pytest.raises(ValueError):
        pre(np.zeros((4, 2, 2)))
