"""Tests for repro.signal.windows."""

import numpy as np
import pytest

from repro.signal.windows import (
    WindowSpec,
    iter_windows,
    num_windows,
    window_start_indices,
    window_view,
)


class TestWindowSpec:
    def test_from_seconds(self):
        spec = WindowSpec.from_seconds(1.0, 0.5, 512.0)
        assert spec.window_samples == 512
        assert spec.step_samples == 256

    def test_rejects_zero_window(self):
        with pytest.raises(ValueError):
            WindowSpec(0, 1)

    def test_rejects_zero_step(self):
        with pytest.raises(ValueError):
            WindowSpec(4, 0)

    def test_rejects_gap_leaving_step(self):
        with pytest.raises(ValueError):
            WindowSpec(4, 5)

    def test_decision_times(self):
        spec = WindowSpec(4, 2)
        times = spec.decision_times(10, fs=2.0)
        np.testing.assert_allclose(times, [2.0, 3.0, 4.0, 5.0])


class TestCounting:
    @pytest.mark.parametrize(
        "n,window,step,expected",
        [
            (0, 4, 2, 0),
            (3, 4, 2, 0),
            (4, 4, 2, 1),
            (5, 4, 2, 1),
            (6, 4, 2, 2),
            (10, 4, 2, 4),
            (10, 4, 4, 2),
            (10, 10, 1, 1),
        ],
    )
    def test_num_windows(self, n, window, step, expected):
        assert num_windows(n, WindowSpec(window, step)) == expected

    def test_start_indices_spacing(self):
        starts = window_start_indices(20, WindowSpec(4, 3))
        np.testing.assert_array_equal(starts, [0, 3, 6, 9, 12, 15])


class TestViews:
    def test_iter_matches_view(self):
        data = np.arange(23)
        spec = WindowSpec(5, 3)
        from_iter = list(iter_windows(data, spec))
        from_view = window_view(data, spec)
        assert len(from_iter) == from_view.shape[0]
        for a, b in zip(from_iter, from_view):
            np.testing.assert_array_equal(a, b)

    def test_view_multichannel_shape(self):
        data = np.arange(40).reshape(20, 2)
        view = window_view(data, WindowSpec(4, 2))
        assert view.shape == (9, 4, 2)

    def test_view_contents(self):
        data = np.arange(10)
        view = window_view(data, WindowSpec(4, 2))
        np.testing.assert_array_equal(view[0], [0, 1, 2, 3])
        np.testing.assert_array_equal(view[1], [2, 3, 4, 5])
        np.testing.assert_array_equal(view[-1], [6, 7, 8, 9])

    def test_empty_input_gives_empty_view(self):
        view = window_view(np.zeros((2, 3)), WindowSpec(4, 2))
        assert view.shape == (0, 4, 3)

    def test_windows_cover_every_step_sample(self):
        data = np.arange(100)
        spec = WindowSpec(10, 5)
        view = window_view(data, spec)
        # Window i must start at i * step.
        for i in range(view.shape[0]):
            assert view[i, 0] == i * 5
