"""Tests for repro.evaluation.events."""

import numpy as np
import pytest

from repro.data.model import SeizureEvent
from repro.evaluation.events import match_alarms, merge_alarms


class TestMergeAlarms:
    def test_merges_within_refractory(self):
        merged = merge_alarms(np.array([10.0, 12.0, 15.0, 60.0]), 30.0)
        np.testing.assert_allclose(merged, [10.0, 60.0])

    def test_keeps_separated(self):
        merged = merge_alarms(np.array([10.0, 50.0, 90.0]), 30.0)
        np.testing.assert_allclose(merged, [10.0, 50.0, 90.0])

    def test_unsorted_input(self):
        merged = merge_alarms(np.array([90.0, 10.0, 11.0]), 30.0)
        np.testing.assert_allclose(merged, [10.0, 90.0])

    def test_empty(self):
        assert merge_alarms(np.zeros(0)).size == 0


class TestMatchAlarms:
    def test_detection_and_delay(self):
        seizures = [SeizureEvent(100.0, 130.0)]
        match = match_alarms(np.array([112.0]), seizures)
        assert match.n_detected == 1
        assert match.delays_s[0] == pytest.approx(12.0)
        assert match.n_false_alarms == 0

    def test_alarm_in_grace_period_counts(self):
        seizures = [SeizureEvent(100.0, 130.0)]
        match = match_alarms(np.array([133.0]), seizures, grace_s=5.0)
        assert match.n_detected == 1

    def test_alarm_after_grace_is_false(self):
        seizures = [SeizureEvent(100.0, 130.0)]
        match = match_alarms(np.array([140.0]), seizures, grace_s=5.0)
        assert match.n_detected == 0
        assert match.n_false_alarms == 1

    def test_alarm_before_onset_is_false(self):
        seizures = [SeizureEvent(100.0, 130.0)]
        match = match_alarms(np.array([60.0]), seizures)
        assert match.n_detected == 0
        assert match.n_false_alarms == 1

    def test_repeated_alarms_in_one_seizure_not_false(self):
        # Within the refractory they merge; outside it they still match
        # the (long) seizure and are consumed.
        seizures = [SeizureEvent(100.0, 200.0)]
        match = match_alarms(np.array([110.0, 150.0, 190.0]), seizures)
        assert match.n_detected == 1
        assert match.n_false_alarms == 0
        assert match.delays_s[0] == pytest.approx(10.0)

    def test_one_alarm_cannot_detect_two_seizures(self):
        seizures = [SeizureEvent(100.0, 130.0), SeizureEvent(200.0, 230.0)]
        match = match_alarms(np.array([110.0]), seizures)
        np.testing.assert_array_equal(match.detected, [True, False])

    def test_two_seizures_two_alarms(self):
        seizures = [SeizureEvent(100.0, 130.0), SeizureEvent(200.0, 230.0)]
        match = match_alarms(np.array([105.0, 210.0]), seizures)
        assert match.n_detected == 2
        np.testing.assert_allclose(match.delays_s, [5.0, 10.0])

    def test_mean_delay_nan_when_nothing_detected(self):
        match = match_alarms(np.zeros(0), [SeizureEvent(1.0, 2.0)])
        assert np.isnan(match.mean_delay_s)

    def test_no_seizures_all_false(self):
        match = match_alarms(np.array([5.0, 50.0]), [])
        assert match.n_false_alarms == 2
        assert match.detected.size == 0
