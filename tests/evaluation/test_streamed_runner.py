"""Streamed (out-of-core) evaluation: bit-exact with the in-memory path.

The contract under test: :func:`predict_windows_streamed` produces the
*same* labels, distances, deltas and decision times as the batched
``predict`` sweep for every compute engine, every chunk size (including
chunks smaller than the LBP length and chunks that straddle analysis
windows), on in-RAM arrays and on memmap views alike.  The chunk size
is a memory knob, never a semantics knob.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.core.training import TrainingSegments
from repro.data.outofcore import (
    CohortSpec,
    MemberSpec,
    default_member_plans,
    generate_cohort,
)
from repro.data.synthetic import SynthesisParams, SyntheticIEEGGenerator
from repro.evaluation.runner import (
    evaluate_detector,
    predict_windows,
    predict_windows_streamed,
    run_patient,
)
from repro.hdc.engine import build_engine

_FS = 256.0
_SEGMENTS = TrainingSegments(ictal=((60.0, 75.0),), interictal=(15.0, 45.0))


def _engine_available(backend: str) -> bool:
    try:
        cfg = LaelapsConfig(dim=512, fs=_FS, backend=backend)
        det = LaelapsDetector(2, cfg)
        return det.backend is not None
    except RuntimeError:
        return False


@pytest.fixture(scope="module")
def fitted():
    """A fitted detector per engine plus the recording it was fit on."""
    recording = SyntheticIEEGGenerator(
        8, SynthesisParams(fs=_FS), seed=21
    ).generate(120.0, None)
    # Plant the training classes directly: an ictal-looking segment is
    # not needed for the equivalence property, only two prototypes.
    detectors = {}
    for backend in ("unpacked", "packed", "packed-fused", "packed-native"):
        if not _engine_available(backend):
            continue
        det = LaelapsDetector(
            8, LaelapsConfig(dim=512, fs=_FS, backend=backend)
        )
        det.fit(recording.data, _SEGMENTS)
        detectors[backend] = det
    return recording, detectors


class TestBitExactness:
    @pytest.mark.parametrize(
        "backend", ("unpacked", "packed", "packed-fused", "packed-native")
    )
    @pytest.mark.parametrize("chunk_samples", (127, 333, 4096, 10**9))
    def test_every_engine_every_chunking(self, fitted, backend, chunk_samples):
        recording, detectors = fitted
        if backend not in detectors:
            pytest.skip(f"engine {backend} unavailable")
        detector = detectors[backend]
        signal = recording.data[: int(45.0 * _FS)]
        batch = predict_windows(detector, signal)
        streamed = predict_windows_streamed(detector, signal, chunk_samples)
        np.testing.assert_array_equal(streamed.labels, batch.labels)
        np.testing.assert_array_equal(streamed.distances, batch.distances)
        np.testing.assert_array_equal(streamed.deltas, batch.deltas)
        np.testing.assert_array_equal(streamed.times, batch.times)

    @settings(max_examples=20, deadline=None)
    @given(chunk_samples=st.integers(1, 700))
    def test_any_chunk_size(self, fitted, chunk_samples):
        """Adversarial chunkings, down to below the LBP length."""
        recording, detectors = fitted
        detector = next(iter(detectors.values()))
        signal = recording.data[:2000]
        batch = predict_windows(detector, signal)
        streamed = predict_windows_streamed(detector, signal, chunk_samples)
        np.testing.assert_array_equal(streamed.labels, batch.labels)
        np.testing.assert_array_equal(streamed.distances, batch.distances)
        np.testing.assert_array_equal(streamed.times, batch.times)

    def test_signal_shorter_than_one_window(self, fitted):
        _, detectors = fitted
        detector = next(iter(detectors.values()))
        preds = predict_windows_streamed(
            detector, np.zeros((10, 8), dtype=np.float32), 4
        )
        assert len(preds) == 0
        assert preds.times.shape == (0,)


class TestErrors:
    def test_non_streaming_detector_rejected(self):
        class Baseline:
            window_s = 1.0

        with pytest.raises(TypeError, match="streaming surface"):
            predict_windows_streamed(Baseline(), np.zeros((100, 4)))

    def test_bad_chunk_size(self, fitted):
        recording, detectors = fitted
        detector = next(iter(detectors.values()))
        with pytest.raises(ValueError, match="chunk_samples"):
            predict_windows_streamed(detector, recording.data, 0)

    def test_bad_signal_shape(self, fitted):
        _, detectors = fitted
        detector = next(iter(detectors.values()))
        with pytest.raises(ValueError, match="n_samples"):
            predict_windows_streamed(detector, np.zeros(100), 64)


class TestDriverIntegration:
    @pytest.fixture(scope="class")
    def patient(self, tmp_path_factory):
        spec = CohortSpec(
            "stream-unit",
            (MemberSpec("m0", 10, 300.0, default_member_plans(300.0, 3),
                        seed=11),),
            params=SynthesisParams(fs=_FS),
            seed=4,
        )
        root = tmp_path_factory.mktemp("cohort")
        return generate_cohort(spec, root).member("m0").patient()

    def _factory(self, n_electrodes, fs):
        return LaelapsDetector(
            n_electrodes, LaelapsConfig(dim=1_000, fs=fs, seed=2)
        )

    def test_run_patient_streamed_equals_in_memory(self, patient):
        run_mem = run_patient(self._factory, patient)
        run_str = run_patient(self._factory, patient, chunk_samples=777)
        for side in ("train_preds", "test_preds"):
            mem, str_ = getattr(run_mem, side), getattr(run_str, side)
            np.testing.assert_array_equal(str_.labels, mem.labels)
            np.testing.assert_array_equal(str_.distances, mem.distances)
            np.testing.assert_array_equal(str_.times, mem.times)
        np.testing.assert_array_equal(run_str.train_truth, run_mem.train_truth)
        assert run_str.trained_delta_mean == run_mem.trained_delta_mean

    def test_evaluate_detector_streamed_equals_in_memory(self, patient):
        recording = patient.recording
        detector = self._factory(patient.n_electrodes, recording.fs)
        first = recording.seizures[0]
        detector.fit(
            recording.data[: int(150.0 * recording.fs)],
            TrainingSegments(
                ictal=((first.onset_s, first.offset_s),),
                interictal=(10.0, 40.0),
            ),
        )
        batch = evaluate_detector(detector, recording)
        streamed = evaluate_detector(detector, recording, chunk_samples=901)
        assert streamed == batch
