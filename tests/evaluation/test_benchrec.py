"""Tests for the versioned benchmark-record schema (benchrec)."""

import json
from dataclasses import asdict, replace

import pytest

from repro.evaluation.benchrec import (
    SCHEMA_VERSION,
    BenchRecord,
    BenchRecordError,
    compare_records,
    current_git_sha,
    machine_fingerprint,
    main,
    read_record,
    render_comparison,
    validate_record,
    write_record,
)


def _record(**overrides) -> BenchRecord:
    base = dict(
        name="load_slo",
        machine=machine_fingerprint(),
        git_sha="a" * 40,
        engine="packed-fused",
        config={"n_sessions": 8, "dim": 256},
        metrics={"tick_latency_p99_ms": 4.5, "throughput_windows_per_s": 900.0},
    )
    base.update(overrides)
    return BenchRecord(**base)


class TestEnvelope:
    def test_fingerprint_names_the_comparable_dimensions(self):
        fingerprint = machine_fingerprint()
        assert {"platform", "machine", "cpu_count", "python", "numpy"} \
            <= fingerprint.keys()
        assert fingerprint["cpu_count"] >= 1

    def test_git_sha_resolves_in_this_checkout(self):
        sha = current_git_sha()
        assert len(sha) == 40
        assert set(sha) <= set("0123456789abcdef")

    def test_git_sha_unknown_outside_a_checkout(self, tmp_path):
        assert current_git_sha(tmp_path) == "unknown"

    def test_construction_validates(self):
        with pytest.raises(BenchRecordError, match="non-empty"):
            _record(name="")
        with pytest.raises(BenchRecordError, match="must be a number"):
            _record(metrics={"p99": "fast"})
        with pytest.raises(BenchRecordError, match="must be a number"):
            _record(metrics={"flag": True})


class TestRoundTrip:
    def test_write_read_round_trips(self, tmp_path):
        record = _record()
        path = write_record(record, tmp_path / "BENCH_x.json")
        assert read_record(path) == record

    def test_rejects_schema_version_mismatch(self, tmp_path):
        payload = asdict(_record())
        payload["schema_version"] = SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(BenchRecordError, match="schema version mismatch"):
            read_record(path)

    @pytest.mark.parametrize("mutilate, message", [
        (lambda p: p.pop("metrics"), "missing fields"),
        (lambda p: p.update(surprise=1), "unknown fields"),
        (lambda p: p.update(metrics=[1, 2]), "must be dict"),
        (lambda p: p.update(git_sha=123), "must be str"),
    ])
    def test_rejects_malformed_payloads(self, tmp_path, mutilate, message):
        payload = asdict(_record())
        mutilate(payload)
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(BenchRecordError, match=message):
            read_record(path)

    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(BenchRecordError, match="cannot read"):
            read_record(path)

    def test_validate_record_rejects_non_object(self):
        with pytest.raises(BenchRecordError, match="JSON object"):
            validate_record([1, 2, 3])


class TestComparison:
    def test_per_metric_deltas_and_ratios(self):
        baseline = _record()
        fresh = _record(metrics={
            "tick_latency_p99_ms": 9.0,
            "throughput_windows_per_s": 450.0,
        })
        deltas = {d.metric: d for d in compare_records(baseline, fresh)}
        assert deltas["tick_latency_p99_ms"].delta == pytest.approx(4.5)
        assert deltas["tick_latency_p99_ms"].ratio == pytest.approx(2.0)
        assert deltas["throughput_windows_per_s"].ratio == pytest.approx(0.5)
        assert not any(d.one_sided for d in deltas.values())

    def test_one_sided_metrics_are_flagged_not_dropped(self):
        baseline = _record()
        fresh = _record(metrics={"tick_latency_p99_ms": 4.5,
                                 "brand_new_metric": 1.0})
        deltas = {d.metric: d for d in compare_records(baseline, fresh)}
        assert deltas["brand_new_metric"].one_sided
        assert deltas["throughput_windows_per_s"].one_sided
        assert not deltas["tick_latency_p99_ms"].one_sided

    def test_refuses_cross_harness_comparison(self):
        with pytest.raises(BenchRecordError, match="different harnesses"):
            compare_records(_record(), _record(name="other_bench"))

    def test_render_names_hosts_and_metrics(self):
        text = render_comparison(_record(), _record())
        assert "load_slo" in text
        assert "tick_latency_p99_ms" in text
        assert "1.00x" in text


class TestModuleCli:
    def test_validate_ok(self, tmp_path, capsys):
        path = write_record(_record(), tmp_path / "r.json")
        assert main(["validate", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_validate_rejects_bad_record(self, tmp_path, capsys):
        payload = asdict(_record())
        payload["schema_version"] = 99
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        assert main(["validate", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_compare_reports_deltas_exit_zero(self, tmp_path, capsys):
        a = write_record(_record(), tmp_path / "a.json")
        b = write_record(
            replace(_record(), metrics={"tick_latency_p99_ms": 9.0}),
            tmp_path / "b.json",
        )
        assert main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "tick_latency_p99_ms" in out

    def test_compare_fails_on_schema_error(self, tmp_path, capsys):
        a = write_record(_record(), tmp_path / "a.json")
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        assert main(["compare", str(a), str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_usage_on_wrong_arguments(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "usage" in capsys.readouterr().out
