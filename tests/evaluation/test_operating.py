"""Tests for repro.evaluation.operating (t_r characteristics)."""

import numpy as np
import pytest

from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.data.cohort import PatientSpec, synthesize_patient
from repro.evaluation.operating import (
    auto_tr_grid,
    tr_operating_curve,
    zero_fdr_plateau,
)
from repro.evaluation.runner import run_patient


@pytest.fixture(scope="module")
def runs():
    patients = [
        synthesize_patient(
            PatientSpec(f"OC{k}", n_electrodes=8, n_seizures=3,
                        recording_hours=0.08, train_seizures=1, seed=80 + k),
            hours_scale=1.0, fs=256.0,
        )
        for k in range(2)
    ]

    def factory(n_electrodes, fs):
        return LaelapsDetector(
            n_electrodes, LaelapsConfig(dim=1_000, fs=fs, seed=7)
        )

    return [run_patient(factory, p) for p in patients]


class TestOperatingCurve:
    def test_curve_is_monotone_in_tr(self, runs):
        curve = tr_operating_curve(runs)
        detected = [p.n_detected for p in curve]
        alarms = [p.n_false_alarms for p in curve]
        # Raising t_r never adds detections or false alarms.
        assert detected == sorted(detected, reverse=True)
        assert alarms == sorted(alarms, reverse=True)

    def test_extremes(self, runs):
        curve = tr_operating_curve(runs)
        assert curve[0].tr == 0.0
        # At the top of the grid (max delta) nothing exceeds t_r.
        assert curve[-1].n_detected == 0

    def test_explicit_grid_respected(self, runs):
        curve = tr_operating_curve(runs, tr_values=[5.0, 1.0, 3.0])
        assert [p.tr for p in curve] == [1.0, 3.0, 5.0]

    def test_empty_runs_raise(self):
        with pytest.raises(ValueError):
            tr_operating_curve([])

    def test_auto_grid_starts_at_zero(self, runs):
        grid = auto_tr_grid(runs)
        assert grid[0] == 0.0
        assert np.all(np.diff(grid) > 0)


class TestZeroFdrPlateau:
    def test_plateau_exists_on_synthetic_cohort(self, runs):
        curve = tr_operating_curve(runs)
        low, high = zero_fdr_plateau(curve)
        assert 0.0 <= low <= high
        # The paper's tuned operating point lives on this plateau: full
        # clinical sensitivity with zero false alarms.
        best = max(
            p.sensitivity for p in curve if p.n_false_alarms == 0
        )
        assert best == pytest.approx(1.0)

    def test_no_plateau_raises(self):
        from repro.evaluation.operating import OperatingPoint

        curve = [OperatingPoint(0.0, 1.0, 2.0, 4, 7)]
        with pytest.raises(ValueError):
            zero_fdr_plateau(curve)
