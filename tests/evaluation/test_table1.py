"""Tests for repro.evaluation.table1 on a reduced cohort."""

import pytest

from repro.data.cohort import PatientSpec
from repro.evaluation.table1 import (
    Table1Result,
    default_methods,
    run_table1,
)

#: Two tiny patients: fast enough for unit testing the orchestration.
SPECS = (
    PatientSpec("PA", n_electrodes=6, n_seizures=3, recording_hours=0.08,
                train_seizures=1, seed=31),
    PatientSpec("PB", n_electrodes=4, n_seizures=3, recording_hours=0.08,
                train_seizures=2, n_subtle_test=1, seed=32),
)


@pytest.fixture(scope="module")
def result() -> Table1Result:
    methods = default_methods(dim=1_000, include=("laelaps", "svm"))
    return run_table1(methods, SPECS, hours_scale=1.0, fs=256.0)


class TestOrchestration:
    def test_all_cells_present(self, result):
        assert result.methods() == ["laelaps", "svm"]
        assert result.patient_ids() == ["PA", "PB"]
        for method in result.methods():
            assert set(result.results[method]) == {"PA", "PB"}

    def test_laelaps_detects_clinical_test_seizures(self, result):
        pa = result.results["laelaps"]["PA"].metrics
        assert pa.n_seizures == 2
        assert pa.n_detected >= 1

    def test_subtle_seizure_missed(self, result):
        # PB has one subtle test seizure; sensitivity cannot be 100 %
        # unless the detector got lucky — require at most one detection
        # of its single clinical test seizure plus nothing subtle.
        pb = result.results["laelaps"]["PB"].metrics
        assert pb.n_seizures == 1  # 3 seizures - 2 train... the subtle one
        # (with 2 training seizures PB has exactly 1 test seizure which
        # is the subtle one)
        assert pb.n_detected == 0

    def test_laelaps_tr_tuned_baselines_zero(self, result):
        assert result.results["svm"]["PA"].tr == 0.0
        # Laelaps t_r comes from the tuning rule; non-negative by
        # construction and stored per patient.
        assert result.results["laelaps"]["PA"].tr >= 0.0

    def test_summary_fields(self, result):
        summary = result.summary("laelaps")
        for key in (
            "mean_delay_s", "mean_fdr_per_hour", "mean_sensitivity",
            "detected", "test_seizures", "false_alarms", "interictal_hours",
        ):
            assert key in summary
        assert summary["test_seizures"] == 3.0

    def test_render_contains_all_patients(self, result):
        text = result.render()
        assert "PA" in text and "PB" in text and "mean" in text

    def test_runs_kept_for_ablations(self, result):
        assert "laelaps" in result.runs
        assert set(result.runs["laelaps"]) == {"PA", "PB"}


class TestMethodRegistry:
    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            default_methods(include=("laelaps", "nope"))

    def test_all_four_methods_available(self):
        methods = default_methods()
        assert [m.name for m in methods] == ["laelaps", "svm", "cnn", "lstm"]
        assert methods[0].tune_tr and not any(m.tune_tr for m in methods[1:])
