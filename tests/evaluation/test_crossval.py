"""Tests for repro.evaluation.crossval."""

import pytest

from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.data.synthetic import (
    SeizurePlan,
    SynthesisParams,
    SyntheticIEEGGenerator,
)
from repro.evaluation.crossval import (
    _interictal_segment_before,
    leave_one_seizure_out,
)


def _factory(n_electrodes: int, fs: float):
    return LaelapsDetector(
        n_electrodes, LaelapsConfig(dim=1_000, fs=fs, seed=6)
    )


@pytest.fixture(scope="module")
def three_seizure_recording():
    generator = SyntheticIEEGGenerator(
        12, SynthesisParams(fs=256.0), seed=55
    )
    return generator.generate(
        420.0,
        [SeizurePlan(100.0, 25.0), SeizurePlan(210.0, 25.0),
         SeizurePlan(330.0, 25.0)],
    )


class TestLeaveOneSeizureOut:
    @pytest.fixture(scope="class")
    def result(self, three_seizure_recording):
        return leave_one_seizure_out(_factory, three_seizure_recording)

    def test_one_fold_per_seizure(self, result):
        assert len(result.folds) == 3
        assert [f.train_seizure_index for f in result.folds] == [0, 1, 2]

    def test_each_fold_evaluates_other_seizures(self, result):
        for fold in result.folds:
            assert fold.metrics.n_seizures == 2

    def test_high_sensitivity_on_stereotyped_seizures(self, result):
        # The companion-study observation: cross-validation confirms the
        # one-shot models generalise between seizures of one patient.
        assert result.mean_sensitivity >= 0.8

    def test_zero_false_alarms_with_tuned_tr(self, result):
        assert result.mean_fdr_per_hour == pytest.approx(0.0)

    def test_total_detected_counts(self, result):
        total_possible = 3 * 2
        assert 0 <= result.total_detected <= total_possible
        assert result.total_detected >= 4

    def test_requires_two_seizures(self):
        generator = SyntheticIEEGGenerator(4, SynthesisParams(fs=256.0), seed=1)
        recording = generator.generate(120.0, [SeizurePlan(60.0, 20.0)])
        with pytest.raises(ValueError):
            leave_one_seizure_out(_factory, recording)


class TestInterictalSegmentPlacement:
    def test_avoids_other_seizures(self, three_seizure_recording):
        # Fold 1 trains on the seizure at 210 s; lead 60 s would put the
        # segment at [120, 150] — clear of seizure 0 ([100, 125])?  It
        # overlaps, so the helper must shift it earlier.
        start, end = _interictal_segment_before(
            three_seizure_recording, 1, lead_s=60.0, duration_s=30.0
        )
        for k, seizure in enumerate(three_seizure_recording.seizures):
            if k == 1:
                continue
            assert end <= seizure.onset_s or start >= seizure.offset_s

    def test_ends_before_training_onset(self, three_seizure_recording):
        start, end = _interictal_segment_before(
            three_seizure_recording, 0, lead_s=60.0, duration_s=30.0
        )
        assert end <= 100.0
        assert end - start == pytest.approx(30.0)
