"""Tests for repro.evaluation.runner and the report renderer."""

import pytest

from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.data.cohort import PatientSpec, synthesize_patient
from repro.evaluation.report import format_value, render_table
from repro.evaluation.runner import (
    evaluate_detector,
    finalize_run,
    run_patient,
    tune_run_tr,
)


@pytest.fixture(scope="module")
def small_patient():
    spec = PatientSpec(
        "PT", n_electrodes=8, n_seizures=3, recording_hours=0.1,
        train_seizures=1, seed=21,
    )
    return synthesize_patient(spec, hours_scale=1.0, fs=256.0)


def _laelaps_factory(n_electrodes: int, fs: float):
    return LaelapsDetector(n_electrodes, LaelapsConfig(dim=1_000, fs=fs, seed=5))


class TestRunPatient:
    @pytest.fixture(scope="class")
    def run(self, small_patient):
        return run_patient(
            _laelaps_factory, small_patient, method="laelaps",
            interictal_lead_s=60.0,
        )

    def test_predictions_cover_both_spans(self, run):
        assert len(run.train_preds) > 0
        assert len(run.test_preds) > 0

    def test_truth_mask_aligned(self, run):
        assert run.train_truth.shape == run.train_preds.labels.shape
        assert run.train_truth.any()  # the training seizure is in there

    def test_test_seizures_rebased(self, run):
        for seizure in run.test_seizures:
            assert 0 <= seizure.onset_s <= run.test_duration_s

    def test_finalize_produces_metrics(self, run):
        result = finalize_run(run, tr=0.0)
        assert result.metrics.n_seizures == len(run.test_seizures) == 2
        assert result.metrics.n_detected >= 1

    def test_tuned_tr_keeps_detection(self, run):
        tr = tune_run_tr(run)
        result = finalize_run(run, tr=tr)
        assert result.tr == tr
        assert result.metrics.n_detected >= 1

    def test_higher_tr_never_increases_alarms(self, run):
        low = finalize_run(run, tr=0.0)
        high = finalize_run(run, tr=1e9)
        assert len(high.alarm_times) <= len(low.alarm_times)
        assert high.metrics.n_detected == 0


class TestEvaluateDetector:
    def test_on_fitted_detector(self, fitted_detector, mini_recording):
        metrics = evaluate_detector(fitted_detector, mini_recording)
        # Both seizures (train + test) are annotated in the recording.
        assert metrics.n_seizures == 2
        assert metrics.n_detected >= 1
        assert metrics.interictal_hours > 0

    def test_explicit_tr_override(self, fitted_detector, mini_recording):
        strict = evaluate_detector(fitted_detector, mini_recording, tr=1e9)
        assert strict.n_detected == 0


class TestReport:
    def test_format_nan_as_na(self):
        assert format_value(float("nan")) == "n.a."

    def test_format_float_precision(self):
        assert format_value(3.14159, precision=1) == "3.1"

    def test_render_table_alignment(self):
        table = render_table(
            ["a", "bb"], [[1, 2.5], [10, float("nan")]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "n.a." in table
        assert len(lines) == 5

    def test_render_empty_rows(self):
        table = render_table(["x"], [])
        assert "x" in table
