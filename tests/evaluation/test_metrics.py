"""Tests for repro.evaluation.metrics."""

import numpy as np
import pytest

from repro.data.model import SeizureEvent
from repro.evaluation.metrics import (
    DetectionMetrics,
    compute_metrics,
    mean_sensitivity,
    pool_metrics,
)


class TestDetectionMetrics:
    def test_sensitivity(self):
        metrics = DetectionMetrics(4, 3, 0, 1.0)
        assert metrics.sensitivity == pytest.approx(0.75)

    def test_sensitivity_nan_without_seizures(self):
        assert np.isnan(DetectionMetrics(0, 0, 0, 1.0).sensitivity)

    def test_fdr(self):
        metrics = DetectionMetrics(1, 1, 3, 2.0)
        assert metrics.fdr_per_hour == pytest.approx(1.5)

    def test_fdr_nan_without_hours(self):
        assert np.isnan(DetectionMetrics(1, 1, 3, 0.0).fdr_per_hour)

    def test_mean_delay(self):
        metrics = DetectionMetrics(2, 2, 0, 1.0, delays_s=(10.0, 20.0))
        assert metrics.mean_delay_s == pytest.approx(15.0)

    def test_mean_delay_nan_without_detections(self):
        assert np.isnan(DetectionMetrics(2, 0, 0, 1.0).mean_delay_s)

    def test_merge(self):
        merged = DetectionMetrics(2, 1, 1, 1.0, (5.0,)).merged_with(
            DetectionMetrics(3, 3, 0, 2.0, (1.0, 2.0, 3.0))
        )
        assert merged.n_seizures == 5
        assert merged.n_detected == 4
        assert merged.n_false_alarms == 1
        assert merged.interictal_hours == pytest.approx(3.0)
        assert len(merged.delays_s) == 4


class TestComputeMetrics:
    def test_end_to_end(self):
        seizures = [SeizureEvent(100.0, 130.0), SeizureEvent(300.0, 330.0)]
        alarms = np.array([110.0, 200.0])
        metrics = compute_metrics(alarms, seizures, total_duration_s=3600.0)
        assert metrics.n_seizures == 2
        assert metrics.n_detected == 1
        assert metrics.n_false_alarms == 1
        assert metrics.interictal_hours == pytest.approx((3600 - 60) / 3600)
        assert metrics.sensitivity == pytest.approx(0.5)

    def test_no_alarms_zero_fdr(self):
        metrics = compute_metrics(np.zeros(0), [], 3600.0)
        assert metrics.fdr_per_hour == 0.0


class TestAggregation:
    def test_pool(self):
        pooled = pool_metrics(
            [DetectionMetrics(2, 2, 0, 1.0), DetectionMetrics(2, 1, 2, 1.0)]
        )
        assert pooled.n_seizures == 4
        assert pooled.n_detected == 3
        assert pooled.fdr_per_hour == pytest.approx(1.0)

    def test_pool_empty_raises(self):
        with pytest.raises(ValueError):
            pool_metrics([])

    def test_mean_sensitivity_unweighted(self):
        # The paper's "mean" row averages per-patient sensitivities, so a
        # 1-seizure patient weighs as much as a 21-seizure one.
        values = [
            DetectionMetrics(1, 1, 0, 1.0),
            DetectionMetrics(20, 10, 0, 1.0),
        ]
        assert mean_sensitivity(values) == pytest.approx(0.75)

    def test_mean_sensitivity_skips_empty_patients(self):
        values = [DetectionMetrics(0, 0, 0, 1.0), DetectionMetrics(2, 1, 0, 1.0)]
        assert mean_sensitivity(values) == pytest.approx(0.5)
