"""Property tests: the sharded gateway is bit-exact against one manager.

The serving tentpole contract: for an 8-session fleet with mixed
electrode counts and mixed packed/unpacked backends, under *any* ragged
per-session chunking, every tick's events from the sharded gateway are
identical to a single in-process
:class:`~repro.core.sessions.StreamSessionManager` fed the same ticks —
and a mid-stream fleet checkpoint restored onto a *different* worker
count continues the streams without a single diverging event.
"""

import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.sessions import StreamSessionManager
from repro.serve import ShardedStreamGateway

from tests.serve.conftest import build_fleet

N_SESSIONS = 8
DETECTORS, SIGNALS = build_fleet(n_sessions=N_SESSIONS, seconds=2.5)
SESSION_IDS = sorted(DETECTORS)


@st.composite
def ragged_ticks(draw):
    """Per-session chunk plans, re-assembled into lockstep tick dicts.

    Each session's signal is cut into its own chunk sequence (1-sample
    slivers up to multi-block chunks, idle ticks included); tick ``t``
    delivers chunk ``t`` of every session that still has one, so ticks
    mix sessions raggedly exactly as live traffic would.
    """
    plans = {}
    for session_id in SESSION_IDS:
        total = SIGNALS[session_id].shape[0]
        sizes = []
        consumed = 0
        while consumed < total:
            # Bias towards block-scale chunks so examples stay fast but
            # keep slivers and over-long tails in the mix.
            size = draw(
                st.one_of(
                    st.integers(1, 16),
                    st.integers(100, 400),
                    st.just(total - consumed),
                )
            )
            size = min(size, total - consumed)
            sizes.append(size)
            consumed += size
        plans[session_id] = sizes
    n_ticks = max(len(s) for s in plans.values())
    ticks = []
    offsets = {session_id: 0 for session_id in SESSION_IDS}
    for t in range(n_ticks):
        tick = {}
        for session_id, sizes in plans.items():
            if t < len(sizes):
                lo = offsets[session_id]
                hi = lo + sizes[t]
                tick[session_id] = SIGNALS[session_id][lo:hi]
                offsets[session_id] = hi
        ticks.append(tick)
    return ticks


def fresh_manager() -> StreamSessionManager:
    manager = StreamSessionManager()
    for session_id in SESSION_IDS:
        manager.open(session_id, DETECTORS[session_id])
    return manager


class TestShardedParity:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.large_base_example])
    @given(ragged_ticks(), st.integers(1, 5))
    def test_every_tick_bit_exact(self, ticks, n_workers):
        manager = fresh_manager()
        with ShardedStreamGateway(n_workers) as gateway:
            for session_id in SESSION_IDS:
                gateway.open(session_id, DETECTORS[session_id])
            for tick in ticks:
                assert gateway.push_many(tick) == manager.push_many(tick)

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.large_base_example])
    @given(
        ragged_ticks(),
        st.data(),
    )
    def test_checkpoint_restore_changes_worker_count(self, ticks, data):
        cut = data.draw(
            st.integers(0, len(ticks)), label="checkpoint tick"
        )
        n_before = data.draw(st.integers(1, 4), label="workers before")
        n_after = data.draw(st.integers(1, 5), label="workers after")
        manager = fresh_manager()
        gateway = ShardedStreamGateway(n_before)
        for session_id in SESSION_IDS:
            gateway.open(session_id, DETECTORS[session_id])
        for tick in ticks[:cut]:
            assert gateway.push_many(tick) == manager.push_many(tick)
        with tempfile.TemporaryDirectory() as checkpoint_dir:
            gateway.checkpoint(checkpoint_dir)
            gateway.shutdown()
            restored = ShardedStreamGateway.restore(
                checkpoint_dir, n_workers=n_after
            )
        try:
            for tick in ticks[cut:]:
                assert restored.push_many(tick) == manager.push_many(tick)
        finally:
            restored.shutdown()


class TestDrainParity:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.large_base_example])
    @given(ragged_ticks())
    def test_submit_drain_equals_lockstep_ticks(self, ticks):
        """A drained backlog replays the queued chunks in order."""
        manager = fresh_manager()
        expected = {session_id: [] for session_id in SESSION_IDS}
        for tick in ticks:
            for session_id, events in manager.push_many(tick).items():
                expected[session_id].extend(events)
        with ShardedStreamGateway(
            3, max_pending=len(ticks) + 1
        ) as gateway:
            for session_id in SESSION_IDS:
                gateway.open(session_id, DETECTORS[session_id])
            drained = {session_id: [] for session_id in SESSION_IDS}
            for tick in ticks:
                for session_id, chunk in tick.items():
                    gateway.submit(session_id, chunk)
            for session_id, events in gateway.drain().items():
                drained[session_id].extend(events)
        assert drained == expected
