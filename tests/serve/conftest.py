"""Shared fixtures for the sharded-serving tests.

Detectors are trained with ``fit_from_windows`` on random prototypes —
the serving layer only needs *fitted* models with the right shapes, and
skipping the signal-domain fit keeps the whole directory fast.
"""

import numpy as np
import pytest

from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.hdc.backend import pack_bits, random_bits

FS = 256.0
DIM = 512
N_SESSIONS = 8


def build_fleet(
    n_sessions: int = N_SESSIONS, dim: int = DIM, seconds: float = 6.0
):
    """Fitted detectors (mixed electrode counts/backends) + raw signals."""
    rng = np.random.default_rng(99)
    detectors = {}
    signals = {}
    for i in range(n_sessions):
        n_electrodes = (8, 12, 16, 10)[i % 4]
        backend = ("packed", "unpacked")[i % 2]
        config = LaelapsConfig(
            dim=dim, fs=FS, seed=11 + i, backend=backend, tc=6
        )
        detector = LaelapsDetector(n_electrodes, config)
        detector.fit_from_windows(
            pack_bits(random_bits(dim, rng)), pack_bits(random_bits(dim, rng))
        )
        detectors[f"patient-{i}"] = detector
        # Ragged lengths so sessions exhaust at different ticks.
        n_samples = int(seconds * FS) + 37 * i
        signals[f"patient-{i}"] = rng.standard_normal(
            (n_samples, n_electrodes)
        )
    return detectors, signals


@pytest.fixture(scope="package")
def fleet():
    """Eight mixed-backend patients shared by the serving tests."""
    return build_fleet()
