"""Unit tests for the serving observability surface (repro.serve.metrics)."""

import io
import json
import logging

import pytest

from repro.serve import ShardedStreamGateway
from repro.serve.metrics import (
    LATENCY_BUCKET_BOUNDS_S,
    JsonLogFormatter,
    gateway_metrics,
    latency_histogram,
    service_logger,
)
from tests.serve.conftest import build_fleet


class TestLatencyHistogram:
    def test_cumulative_le_semantics(self):
        hist = latency_histogram(
            [0.5, 1.5, 2.5, 10.0], bounds_s=(1.0, 2.0, 3.0)
        )
        assert hist["bounds_s"] == [1.0, 2.0, 3.0]
        assert hist["counts"] == [1, 2, 3]  # cumulative, 10.0 overflows
        assert hist["count"] == 4
        assert hist["sum_s"] == pytest.approx(14.5)

    def test_boundary_sample_lands_in_its_bucket(self):
        hist = latency_histogram([1.0], bounds_s=(1.0, 2.0))
        assert hist["counts"] == [1, 1]

    def test_empty_log(self):
        hist = latency_histogram([])
        assert hist["counts"] == [0] * len(LATENCY_BUCKET_BOUNDS_S)
        assert hist["count"] == 0
        assert hist["sum_s"] == 0.0

    def test_counts_are_monotonic_on_default_bounds(self):
        hist = latency_histogram([0.0003 * i for i in range(200)])
        assert hist["counts"] == sorted(hist["counts"])

    def test_rejects_unordered_bounds(self):
        with pytest.raises(ValueError, match="ascend"):
            latency_histogram([0.1], bounds_s=(2.0, 1.0))


class TestGatewayMetrics:
    def test_snapshot_mirrors_gateway_introspection(self):
        detectors, signals = build_fleet(n_sessions=3, seconds=2.0)
        with ShardedStreamGateway(2, mode="inline") as gateway:
            for session_id, detector in detectors.items():
                gateway.open(session_id, detector)
            session_id = next(iter(signals))
            gateway.push(session_id, signals[session_id][:64])
            gateway.submit(session_id, signals[session_id][64:128])

            metrics = gateway_metrics(gateway)
            assert metrics["mode"] == "inline"
            assert metrics["workers"] == 2
            assert metrics["sessions_open"] == 3
            assert metrics["shard_sessions"] == {
                worker_id: len(sessions)
                for worker_id, sessions in gateway.shard_map().items()
            }
            assert metrics["queue_depths"][session_id] == 1
            assert metrics["queued_chunks_total"] == 1
            assert metrics["ticks_total"] == 1
            assert metrics["tick_latency"]["count"] == 1

            # A scrape is read-only: a second snapshot is identical.
            assert gateway_metrics(gateway) == metrics
            assert json.dumps(metrics)  # JSON-serialisable as-is
            gateway.drain()


class TestJsonLogging:
    def _logged_line(self, **extra) -> dict:
        stream = io.StringIO()
        logger = service_logger("test.serve.jsonlog", stream=stream)
        logger.info("session opened", extra=extra)
        return json.loads(stream.getvalue())

    def test_one_json_object_per_line_with_extras(self):
        payload = self._logged_line(session_id="p-1", worker="w0")
        assert payload["event"] == "session opened"
        assert payload["level"] == "info"
        assert payload["logger"] == "test.serve.jsonlog"
        assert payload["session_id"] == "p-1"
        assert payload["worker"] == "w0"
        assert isinstance(payload["ts"], float)

    def test_non_json_extras_degrade_to_str_not_crash(self):
        payload = self._logged_line(path=object())
        assert isinstance(payload["path"], str)

    def test_exception_info_is_captured(self):
        stream = io.StringIO()
        logger = service_logger("test.serve.jsonlog.exc", stream=stream)
        try:
            raise ValueError("boom")
        except ValueError:
            logger.warning("request failed", exc_info=True)
        payload = json.loads(stream.getvalue())
        assert "ValueError: boom" in payload["exc"]

    def test_service_logger_is_idempotent(self):
        first = service_logger("test.serve.jsonlog.idem")
        second = service_logger("test.serve.jsonlog.idem")
        assert first is second
        assert len(second.handlers) == 1
        assert not second.propagate

    def test_formatter_uses_record_created_not_a_new_clock(self):
        # RPR002 territory: log timestamps must come from the record
        # the logging framework stamped, not a second wall-clock read.
        record = logging.LogRecord(
            "n", logging.INFO, "p", 1, "msg", None, None
        )
        record.created = 123.4567891
        payload = json.loads(JsonLogFormatter().format(record))
        assert payload["ts"] == round(123.4567891, 6)
