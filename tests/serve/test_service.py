"""Service-layer tests: the asyncio front end over real sockets.

Everything here runs against actual TCP connections on loopback —
:class:`~repro.serve.service.ServiceRunner` hosts the event loop on a
background thread, :class:`~repro.serve.service.ServiceClient` speaks
the length-prefixed JSON protocol, and the ops plane is probed with
plain HTTP GETs.  The governing invariant is inherited from the rest of
the serving stack: events that crossed the wire are bit-identical to a
single in-process :class:`~repro.core.sessions.StreamSessionManager`
fed the same ticks.

The SIGTERM end-to-end test (marked ``slow``) runs ``repro serve-http``
as a real subprocess, opens sessions over the wire, signals it, and
asserts the drain checkpoint restores bit-exactly.
"""

import json
import os
import selectors
import signal as signal_module
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.sessions import StreamSessionManager
from repro.core.streaming import StreamEvent
from repro.serve import ShardedStreamGateway
from repro.serve.service import (
    ServiceClient,
    ServiceError,
    ServiceRunner,
    decode_value,
    encode_value,
    events_from_wire,
    events_to_wire,
    http_get,
)
from tests.serve.conftest import build_fleet

pytestmark = pytest.mark.service

CHUNK = 128


def reference_events(detectors, signals, chunk=CHUNK):
    """Single-manager ground truth for a fleet of signals."""
    manager = StreamSessionManager()
    for session_id, detector in detectors.items():
        manager.open(session_id, detector)
    return manager.run(signals, chunk)


def lockstep_push(client, signals, start_tick=0, end_tick=None, chunk=CHUNK):
    """Drive the client the way ``StreamSessionManager.run`` ticks."""
    events = {session_id: [] for session_id in signals}
    max_ticks = max(
        -(-len(signal) // chunk) for signal in signals.values()
    )
    if end_tick is None:
        end_tick = max_ticks
    for tick in range(start_tick, min(end_tick, max_ticks)):
        chunks = {
            session_id: signal[tick * chunk:(tick + 1) * chunk]
            for session_id, signal in signals.items()
            if tick * chunk < len(signal)
        }
        for session_id, new_events in client.push_many(chunks).items():
            events[session_id].extend(new_events)
    return events


class TestWireCodec:
    def test_ndarray_roundtrip_is_bit_exact(self):
        rng = np.random.default_rng(7)
        arrays = [
            rng.standard_normal((7, 3)),
            np.arange(12, dtype=np.uint64).reshape(3, 4),
            rng.integers(0, 2, size=9, dtype=np.uint8),
            np.asfortranarray(rng.standard_normal((4, 5))),
        ]
        for original in arrays:
            over_json = json.loads(json.dumps(encode_value(original)))
            decoded = decode_value(over_json)
            assert decoded.dtype == original.dtype
            assert decoded.shape == original.shape
            assert np.ascontiguousarray(original).tobytes() \
                == decoded.tobytes()

    def test_nested_containers_roundtrip(self):
        payload = {
            "meta": {"dim": 512, "tag": "packed"},
            "protos": [np.arange(4, dtype=np.uint64), "text", 1.5],
        }
        decoded = decode_value(json.loads(json.dumps(encode_value(payload))))
        assert decoded["meta"] == payload["meta"]
        assert np.array_equal(decoded["protos"][0], payload["protos"][0])
        assert decoded["protos"][1:] == ["text", 1.5]

    def test_events_roundtrip_exactly(self):
        events = [
            StreamEvent(time_s=0.1 + 0.2, label=1, delta=-3.725, alarm=True),
            StreamEvent(time_s=7.5, label=0, delta=1 / 3, alarm=False),
        ]
        over_json = json.loads(json.dumps(events_to_wire(events)))
        assert events_from_wire(over_json) == events


class TestServiceEndToEnd:
    def test_socket_stream_bit_exact_with_live_observability(self):
        detectors, signals = build_fleet(n_sessions=4, seconds=3.0)
        reference = reference_events(detectors, signals)
        gateway = ShardedStreamGateway(2, mode="process")
        runner = ServiceRunner(gateway)
        try:
            host, port = runner.start()
            with ServiceClient(host, port) as client:
                assert client.ping() == "pong"
                for session_id, detector in detectors.items():
                    worker_id = client.open(session_id, detector)
                    assert worker_id == gateway.worker_of(session_id)
                assert sorted(client.session_ids()) == sorted(signals)

                events = lockstep_push(client, signals)
                for session_id in signals:
                    assert events[session_id] == reference[session_id], (
                        f"socket events for {session_id} diverged from "
                        "the single-manager reference"
                    )

                # /healthz: all workers answer ping.
                status, health = http_get(host, port, "/healthz")
                assert status == 200
                assert health["status"] == "ok"
                assert set(health["workers"]) == set(gateway.worker_ids)
                assert all(
                    entry["alive"] for entry in health["workers"].values()
                )

                # /metrics mirrors the gateway's own introspection.
                status, metrics = http_get(host, port, "/metrics")
                assert status == 200
                assert metrics["sessions_open"] == len(gateway)
                assert metrics["shard_sessions"] == {
                    worker_id: len(sessions)
                    for worker_id, sessions in gateway.shard_map().items()
                }
                assert metrics["ticks_total"] == gateway.tick_stats.ticks
                assert metrics["tick_latency"]["count"] == len(
                    gateway.tick_stats.latencies_s
                )
                assert client.metrics() == metrics  # both planes agree

                # Queue depths surface submitted-but-undrained chunks.
                victim = next(iter(signals))
                client.submit(victim, np.zeros((CHUNK, 8)))
                depths = client.metrics()["queue_depths"]
                assert depths[victim] == gateway.pending(victim) == 1
                drained = client.drain()
                assert set(drained) == {victim}
                assert client.metrics()["queued_chunks_total"] == 0

                # stats / stats_reset drive the load-harness hooks.
                stats = client.stats()
                assert stats["ticks"] == gateway.tick_stats.ticks
                client.stats_reset()
                assert client.stats()["ticks"] == 0

                client.close_session(victim)
                assert victim not in client.session_ids()

                status, _ = http_get(host, port, "/nope")
                assert status == 404
        finally:
            runner.stop(drain=False)

    def test_healthz_degraded_when_a_worker_dies(self):
        detectors, _ = build_fleet(n_sessions=2, seconds=2.0)
        gateway = ShardedStreamGateway(2, mode="process")
        runner = ServiceRunner(gateway)
        try:
            host, port = runner.start()
            status, health = http_get(host, port, "/healthz")
            assert status == 200 and health["status"] == "ok"

            victim_id = gateway.worker_ids[0]
            gateway._workers[victim_id]._proc.kill()
            gateway._workers[victim_id]._proc.join()

            status, health = http_get(host, port, "/healthz")
            assert status == 503
            assert health["status"] == "degraded"
            assert health["workers"][victim_id]["alive"] is False
            assert "WorkerDiedError" in health["workers"][victim_id]["error"]
            survivors = [
                worker_id for worker_id in gateway.worker_ids
                if worker_id != victim_id
            ]
            assert all(
                health["workers"][worker_id]["alive"]
                for worker_id in survivors
            )
        finally:
            runner.stop(drain=False)

    def test_errors_cross_the_wire_typed(self):
        detectors, _ = build_fleet(n_sessions=1, seconds=2.0)
        session_id = next(iter(detectors))
        gateway = ShardedStreamGateway(1, mode="inline", max_pending=2)
        runner = ServiceRunner(gateway)
        try:
            host, port = runner.start()
            with ServiceClient(host, port) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.push("ghost", np.zeros((8, 8)))
                assert excinfo.value.error_type == "KeyError"

                with pytest.raises(ServiceError) as excinfo:
                    client.call("frobnicate")
                assert excinfo.value.error_type == "UnknownOp"

                client.open(session_id, detectors[session_id])
                for _ in range(2):
                    client.submit(session_id, np.zeros((8, 8)))
                with pytest.raises(ServiceError) as excinfo:
                    client.submit(session_id, np.zeros((8, 8)))
                assert excinfo.value.error_type == "Backpressure"
                client.drain()
        finally:
            runner.stop(drain=False)


def _spawn_serve_http(checkpoint_dir: Path) -> tuple[subprocess.Popen, int]:
    """Launch ``repro serve-http`` and return (process, bound port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve-http",
            "--workers", "2", "--mode", "process",
            "--checkpoint-dir", str(checkpoint_dir),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    # The bound (ephemeral) port arrives as the 'service listening'
    # structured-log line on stderr.
    selector = selectors.DefaultSelector()
    selector.register(proc.stderr, selectors.EVENT_READ)
    deadline = time.perf_counter() + 60.0
    buffered = b""
    try:
        while time.perf_counter() < deadline:
            if not selector.select(timeout=1.0):
                if proc.poll() is not None:
                    break
                continue
            read = os.read(proc.stderr.fileno(), 65536)
            if not read:
                break
            buffered += read
            for line in buffered.split(b"\n"):
                if b"service listening" in line:
                    return proc, json.loads(line)["port"]
    finally:
        selector.close()
    proc.kill()
    raise AssertionError(
        f"serve-http never logged its address; stderr so far: {buffered!r}"
    )


@pytest.mark.slow
class TestSigtermDrain:
    def test_sigterm_drains_to_bit_exact_checkpoint(self, tmp_path):
        detectors, signals = build_fleet(n_sessions=3, seconds=4.0)
        reference = reference_events(detectors, signals)
        max_ticks = max(
            -(-len(signal) // CHUNK) for signal in signals.values()
        )
        split = max_ticks // 2

        checkpoint_dir = tmp_path / "fleet-ckpt"
        proc, port = _spawn_serve_http(checkpoint_dir)
        try:
            with ServiceClient("127.0.0.1", port) as client:
                for session_id, detector in detectors.items():
                    client.open(session_id, detector)
                first_half = lockstep_push(
                    client, signals, start_tick=0, end_tick=split
                )

            proc.send_signal(signal_module.SIGTERM)
            assert proc.wait(timeout=120) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        manifest = checkpoint_dir / "fleet.json"
        assert manifest.exists(), "SIGTERM drain wrote no fleet checkpoint"

        # Resume from the drain checkpoint on a *different* transport
        # and worker count; the combined event streams must equal the
        # single-manager reference bit for bit.
        restored = ShardedStreamGateway.restore(
            checkpoint_dir, n_workers=1, mode="inline"
        )
        try:
            remainders = {
                session_id: signal[split * CHUNK:]
                for session_id, signal in signals.items()
                if split * CHUNK < len(signal)
            }
            second_half = restored.run(remainders, CHUNK)
        finally:
            restored.shutdown()
        for session_id in signals:
            combined = list(first_half[session_id])
            combined.extend(second_half.get(session_id, []))
            assert combined == reference[session_id], (
                f"restored stream for {session_id} diverged from the "
                "single-manager reference"
            )
