"""Process-transport tests: the child-process shard behaves identically."""

import pytest

from repro.core.sessions import StreamSessionManager
from repro.serve import ProcessShardWorker, ShardedStreamGateway, WorkerError

from tests.serve.conftest import build_fleet


@pytest.fixture(scope="module")
def small_fleet():
    return build_fleet(n_sessions=4, seconds=3.0)


class TestProcessGateway:
    def test_matches_single_manager(self, small_fleet):
        detectors, signals = small_fleet
        manager = StreamSessionManager()
        for sid, detector in detectors.items():
            manager.open(sid, detector)
        expected = manager.run(signals, 128)
        with ShardedStreamGateway(2, mode="process") as gateway:
            for sid, detector in detectors.items():
                gateway.open(sid, detector)
            assert gateway.run(signals, 128) == expected

    def test_checkpoint_written_by_children(self, small_fleet, tmp_path):
        detectors, signals = small_fleet
        with ShardedStreamGateway(2, mode="process") as gateway:
            for sid, detector in detectors.items():
                gateway.open(sid, detector)
            gateway.run(signals, 256)
            manifest = gateway.checkpoint(tmp_path / "fleet")
            assert manifest.exists()
        # A process checkpoint restores onto inline workers unchanged.
        with ShardedStreamGateway.restore(
            tmp_path / "fleet", n_workers=3, mode="inline"
        ) as restored:
            assert sorted(restored.session_ids) == sorted(detectors)


class TestWorkerTransport:
    def test_remote_errors_surface_as_worker_error(self):
        worker = ProcessShardWorker("t0")
        try:
            assert worker.request("ping", {}) == "pong"
            with pytest.raises(WorkerError, match="ghost"):
                worker.request("export", {"id": "ghost"})
            # The worker survives a failed command.
            assert worker.request("session_ids", {}) == []
        finally:
            worker.stop()

    def test_unknown_command_rejected(self):
        worker = ProcessShardWorker("t1")
        try:
            with pytest.raises(WorkerError, match="unknown shard command"):
                worker.request("frobnicate", {})
        finally:
            worker.stop()

    def test_stop_is_idempotent(self):
        worker = ProcessShardWorker("t2")
        worker.stop()
        worker.stop()

    def test_dispatch_collect_must_pair(self):
        worker = ProcessShardWorker("t3")
        try:
            with pytest.raises(RuntimeError):
                worker.collect()
            worker.dispatch("ping", {})
            with pytest.raises(RuntimeError):
                worker.dispatch("ping", {})
            assert worker.collect() == "pong"
        finally:
            worker.stop()
