"""Tests for the load harness (repro.serve.loadgen)."""

import pytest

from repro.evaluation.benchrec import read_record, write_record
from repro.serve.gateway import TickStats
from repro.serve.loadgen import (
    LoadConfig,
    LoadGenerator,
    latency_summary_ms,
    min_samples_for_percentile,
    nearest_rank_percentile,
    run_load_test,
)


class TestNearestRankPercentile:
    """Exactness on known inputs — no interpolation, ever."""

    def test_hundred_samples_map_to_ranks(self):
        samples = list(range(1, 101))  # 1..100
        assert nearest_rank_percentile(samples, 50.0) == 50.0
        assert nearest_rank_percentile(samples, 99.0) == 99.0
        assert nearest_rank_percentile(samples, 99.9) == 100.0
        assert nearest_rank_percentile(samples, 100.0) == 100.0

    def test_returns_an_observed_sample_not_a_blend(self):
        # Interpolation would yield 5.5 for the median of [1, 10].
        assert nearest_rank_percentile([1.0, 10.0], 50.0) == 1.0
        assert nearest_rank_percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_p0_is_the_minimum(self):
        assert nearest_rank_percentile([7.0, 3.0, 9.0], 0.0) == 3.0

    def test_single_sample_is_every_percentile(self):
        for p in (0.0, 50.0, 99.9, 100.0):
            assert nearest_rank_percentile([4.2], p) == 4.2

    def test_input_order_is_irrelevant(self):
        assert nearest_rank_percentile([9, 1, 5, 3, 7], 50.0) == 5.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no samples"):
            nearest_rank_percentile([], 50.0)

    def test_rejects_out_of_range_percentile(self):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            nearest_rank_percentile([1.0], 101.0)

    def test_summary_reports_every_slo_metric_in_ms(self):
        summary = latency_summary_ms([0.001, 0.002, 0.003, 0.004])
        assert summary["tick_latency_p50_ms"] == pytest.approx(2.0)
        assert summary["tick_latency_p99_ms"] == pytest.approx(4.0)
        assert summary["tick_latency_p99_9_ms"] == pytest.approx(4.0)
        assert summary["tick_latency_mean_ms"] == pytest.approx(2.5)
        assert summary["tick_latency_max_ms"] == pytest.approx(4.0)


class TestLoadConfig:
    def test_chunk_samples_follows_fs_and_tick(self):
        assert LoadConfig(fs=256.0, tick_s=0.5).chunk_samples == 128
        assert LoadConfig(fs=512.0, tick_s=1.0).chunk_samples == 512

    @pytest.mark.parametrize("bad", [
        dict(n_sessions=0),
        dict(n_ticks=0),
        dict(warmup_ticks=-1),
        dict(rate=-0.5),
        dict(mode="carrier-pigeon"),
        dict(n_templates=0),
        dict(native_threads=-1),
        dict(transport="smoke-signals"),
    ])
    def test_rejects_invalid_shapes(self, bad):
        with pytest.raises(ValueError):
            LoadConfig(**bad)

    def test_native_threads_defaults_off(self):
        assert LoadConfig().native_threads == 0


class TestMinSamplesForPercentile:
    def test_known_percentiles(self):
        assert min_samples_for_percentile(50.0) == 2
        assert min_samples_for_percentile(99.0) == 100
        assert min_samples_for_percentile(99.9) == 1001

    def test_consistent_with_nearest_rank(self):
        """At exactly n samples, p maps strictly below the maximum."""
        for p in (50.0, 90.0, 99.0, 99.9):
            n = min_samples_for_percentile(p)
            assert nearest_rank_percentile(range(1, n + 1), p) < n
            assert nearest_rank_percentile(range(1, n), p) == n - 1

    def test_rejects_out_of_range(self):
        for p in (-1.0, 100.0):
            with pytest.raises(ValueError, match=r"\[0, 100\)"):
                min_samples_for_percentile(p)


class TestNativeThreadPlumbing:
    def test_run_pins_threads_before_spawning_workers(self, monkeypatch):
        """A non-zero knob reaches configure_native_threads pre-fork."""
        import repro.hdc.native as native_module

        pinned = []
        monkeypatch.setattr(
            native_module, "configure_native_threads", pinned.append
        )
        config = LoadConfig(
            n_sessions=2, n_ticks=2, warmup_ticks=1, dim=128,
            n_workers=1, native_threads=2,
        )
        LoadGenerator(config).run()
        assert pinned == [2]

    def test_warns_when_ticks_cannot_resolve_the_tail(self):
        config = LoadConfig(
            n_sessions=2, n_ticks=2, warmup_ticks=0, dim=128, n_workers=1,
        )
        with pytest.warns(RuntimeWarning, match="p99_9"):
            LoadGenerator(config).run()

    def test_run_leaves_threads_alone_by_default(self, monkeypatch):
        import repro.hdc.native as native_module

        pinned = []
        monkeypatch.setattr(
            native_module, "configure_native_threads", pinned.append
        )
        config = LoadConfig(
            n_sessions=2, n_ticks=2, warmup_ticks=1, dim=128,
            n_workers=1,
        )
        LoadGenerator(config).run()
        assert pinned == []


class TestTickStats:
    def test_counters_and_log(self):
        stats = TickStats()
        stats.record(0.002, 4, 8)
        stats.record(0.003, 4, 8)
        assert stats.ticks == 2
        assert stats.windows == 16
        assert stats.sessions_ticked == 8
        assert stats.latencies_s == [0.002, 0.003]

    def test_reset_clears_everything(self):
        stats = TickStats()
        stats.record(0.002, 1, 1)
        stats.reset()
        assert stats.ticks == 0
        assert stats.windows == 0
        assert stats.latencies_s == []

    def test_latency_log_is_bounded(self):
        stats = TickStats(maxlen=4)
        for i in range(10):
            stats.record(float(i), 1, 1)
        assert stats.ticks == 10  # counters keep the full history
        assert stats.latencies_s == [6.0, 7.0, 8.0, 9.0]


class TestSmokeRun:
    """One tiny end-to-end run against an inline gateway."""

    @pytest.fixture(scope="class")
    def report(self):
        config = LoadConfig(
            n_sessions=6, n_electrodes=6, dim=256, n_ticks=8,
            warmup_ticks=2, n_workers=2, mode="inline", seed=3,
            n_templates=2,
        )
        return run_load_test(config)

    def test_no_dropped_sessions(self, report):
        assert report.dropped_sessions == 0
        assert all(
            count > 0 for count in report.events_per_session.values()
        )
        assert len(report.events_per_session) == 6

    def test_latency_log_covers_every_measured_tick(self, report):
        assert len(report.latencies_s) == report.config.n_ticks
        assert all(latency > 0 for latency in report.latencies_s)
        assert (
            report.metrics["tick_latency_p50_ms"]
            <= report.metrics["tick_latency_p99_ms"]
            <= report.metrics["tick_latency_p99_9_ms"]
        )

    def test_throughput_counts_fleet_windows(self, report):
        assert report.metrics["throughput_windows_per_s"] > 0
        assert report.metrics["sessions"] == 6.0

    def test_backpressure_onset_is_one_past_the_queue_bound(self, report):
        assert report.metrics["backpressure_onset_chunks"] == (
            report.config.max_pending + 1
        )

    def test_worker_cycle_metrics_present_with_two_workers(self, report):
        assert report.metrics["migrated_on_remove"] >= 1
        assert report.metrics["recovery_ticks_after_remove"] >= 1
        assert report.metrics["worker_cycle_recovery_s"] > 0

    def test_engine_resolved(self, report):
        assert report.engine in ("unpacked", "packed", "packed-fused")

    def test_report_round_trips_through_benchrec(self, report, tmp_path):
        record = report.record("load_slo")
        loaded = read_record(write_record(record, tmp_path / "r.json"))
        assert loaded == record
        assert loaded.config["n_sessions"] == 6
        assert loaded.config["transport"] == "direct"
        assert loaded.metrics == report.metrics


@pytest.mark.service
class TestSocketTransportRun:
    """The same steady-state phase, driven through the network service."""

    @pytest.fixture(scope="class")
    def report(self):
        config = LoadConfig(
            n_sessions=4, n_electrodes=6, dim=256, n_ticks=6,
            warmup_ticks=1, n_workers=2, mode="inline", seed=3,
            n_templates=2, transport="socket",
        )
        return run_load_test(config)

    def test_every_session_served_over_the_wire(self, report):
        assert report.dropped_sessions == 0
        assert len(report.events_per_session) == 4

    def test_latencies_come_from_the_gateway_stats_op(self, report):
        assert len(report.latencies_s) == report.config.n_ticks
        assert all(latency > 0 for latency in report.latencies_s)
        assert report.metrics["throughput_windows_per_s"] > 0

    def test_direct_only_probes_are_skipped(self, report):
        assert "backpressure_onset_chunks" not in report.metrics
        assert "worker_cycle_recovery_s" not in report.metrics

    def test_transport_recorded_in_benchrec_config(self, report, tmp_path):
        from repro.evaluation.benchrec import read_record, write_record

        loaded = read_record(
            write_record(report.record("load_socket"), tmp_path / "s.json")
        )
        assert loaded.config["transport"] == "socket"
