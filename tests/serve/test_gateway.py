"""Unit tests for the sharded gateway (inline transport)."""

import numpy as np
import pytest

from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.core.persistence import read_fleet_manifest
from repro.core.sessions import StreamSessionManager
from repro.serve import Backpressure, ShardedStreamGateway

from tests.serve.conftest import FS


def reference_events(detectors, signals, chunk=128):
    manager = StreamSessionManager()
    for sid, detector in detectors.items():
        manager.open(sid, detector)
    return manager.run(signals, chunk)


class TestLifecycle:
    def test_open_routes_and_close_clears(self, fleet):
        detectors, _ = fleet
        with ShardedStreamGateway(3) as gateway:
            for sid, detector in detectors.items():
                worker = gateway.open(sid, detector)
                assert worker in gateway.worker_ids
                assert gateway.worker_of(sid) == worker
            assert len(gateway) == len(detectors)
            assert gateway.dim == 512
            shard_map = gateway.shard_map()
            assert sorted(sum(shard_map.values(), [])) == sorted(detectors)
            for sid in detectors:
                gateway.close(sid)
            assert len(gateway) == 0 and gateway.dim is None

    def test_duplicate_session_rejected(self, fleet):
        detectors, _ = fleet
        sid, detector = next(iter(detectors.items()))
        with ShardedStreamGateway(2) as gateway:
            gateway.open(sid, detector)
            with pytest.raises(ValueError):
                gateway.open(sid, detector)

    def test_unfitted_detector_rejected(self):
        with ShardedStreamGateway(1) as gateway:
            with pytest.raises(ValueError):
                gateway.open("s", LaelapsDetector(4, LaelapsConfig(dim=512)))

    def test_dim_mismatch_rejected(self, fleet):
        detectors, _ = fleet
        other = LaelapsDetector(4, LaelapsConfig(dim=1024, fs=FS, seed=1))
        other.fit_from_windows(
            np.ones((1, 1024), dtype=np.uint8),
            np.zeros((1, 1024), dtype=np.uint8),
        )
        with ShardedStreamGateway(2) as gateway:
            gateway.open("a", next(iter(detectors.values())))
            with pytest.raises(ValueError, match="shared dimension"):
                gateway.open("b", other)

    def test_unknown_session_rejected(self, fleet):
        _, signals = fleet
        chunk = next(iter(signals.values()))[:64]
        with ShardedStreamGateway(2) as gateway:
            with pytest.raises(KeyError):
                gateway.push("ghost", chunk)
            with pytest.raises(KeyError):
                gateway.submit("ghost", chunk)
            with pytest.raises(KeyError):
                gateway.close("ghost")

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ShardedStreamGateway(0)
        with pytest.raises(ValueError):
            ShardedStreamGateway(1, mode="threads")
        with pytest.raises(ValueError):
            ShardedStreamGateway(1, max_pending=0)


class TestPushParity:
    def test_run_matches_single_manager(self, fleet):
        detectors, signals = fleet
        expected = reference_events(detectors, signals)
        with ShardedStreamGateway(3) as gateway:
            for sid, detector in detectors.items():
                gateway.open(sid, detector)
            assert gateway.run(signals, 128) == expected

    def test_bad_chunk_fails_tick_atomically(self, fleet):
        detectors, signals = fleet
        ids = list(detectors)[:2]
        with ShardedStreamGateway(2) as gateway:
            for sid in ids:
                gateway.open(sid, detectors[sid])
            with pytest.raises(ValueError):
                gateway.push_many(
                    {
                        ids[0]: signals[ids[0]][:512],
                        ids[1]: np.zeros((512, 3)),  # wrong electrode count
                    }
                )
            # No session consumed the failed tick: replaying it cleanly
            # still matches per-stream runs from sample zero.
            good = gateway.push_many(
                {sid: signals[sid][:512] for sid in ids}
            )
            expected = reference_events(
                {sid: detectors[sid] for sid in ids},
                {sid: signals[sid][:512] for sid in ids},
                chunk=512,
            )
            assert good == expected


class TestBackpressure:
    def test_submit_bounded_and_drain_matches_push(self, fleet):
        detectors, signals = fleet
        sid = next(iter(detectors))
        with ShardedStreamGateway(2, max_pending=3) as gateway:
            gateway.open(sid, detectors[sid])
            for k in range(3):
                gateway.submit(sid, signals[sid][k * 128 : (k + 1) * 128])
            assert gateway.pending(sid) == 3
            with pytest.raises(Backpressure):
                gateway.submit(sid, signals[sid][384:512])
            events = gateway.drain()
            assert gateway.pending(sid) == 0
        expected = reference_events(
            {sid: detectors[sid]}, {sid: signals[sid][:384]}
        )
        assert events[sid] == expected[sid]

    def test_drain_preserves_chunk_order_across_sessions(self, fleet):
        detectors, signals = fleet
        ids = list(detectors)[:3]
        with ShardedStreamGateway(2, max_pending=8) as gateway:
            for sid in ids:
                gateway.open(sid, detectors[sid])
            # Ragged backlog: session k has k+1 queued chunks.
            for k, sid in enumerate(ids):
                for j in range(k + 1):
                    gateway.submit(sid, signals[sid][j * 100 : (j + 1) * 100])
            events = gateway.drain()
        for k, sid in enumerate(ids):
            expected = reference_events(
                {sid: detectors[sid]},
                {sid: signals[sid][: (k + 1) * 100]},
                chunk=100,
            )
            assert events[sid] == expected[sid]

    def test_push_refuses_to_jump_queued_chunks(self, fleet):
        # push_many past a session's submit() backlog would feed samples
        # out of order — it must refuse instead of silently reordering.
        detectors, signals = fleet
        sid = next(iter(detectors))
        with ShardedStreamGateway(1) as gateway:
            gateway.open(sid, detectors[sid])
            gateway.submit(sid, signals[sid][:128])
            with pytest.raises(RuntimeError, match="drain"):
                gateway.push(sid, signals[sid][128:256])
            events = gateway.drain()  # multi-chunk drain still legal
            events[sid].extend(gateway.push(sid, signals[sid][128:256]))
        expected = reference_events(
            {sid: detectors[sid]}, {sid: signals[sid][:256]}, chunk=128
        )
        assert events[sid] == expected[sid]

    def test_submit_copies_the_chunk(self, fleet):
        # Deferred consumption must not alias the producer's buffer: a
        # producer that reuses one array between submit() and drain()
        # would otherwise corrupt every queued chunk.
        detectors, signals = fleet
        sid = next(iter(detectors))
        with ShardedStreamGateway(1, max_pending=4) as gateway:
            gateway.open(sid, detectors[sid])
            buffer = signals[sid][:128].copy()
            gateway.submit(sid, buffer)
            buffer[:] = 1e9  # producer reuses its buffer
            events = gateway.drain()
        expected = reference_events(
            {sid: detectors[sid]}, {sid: signals[sid][:128]}
        )
        assert events[sid] == expected[sid]

    def test_worker_side_failure_does_not_wedge_the_gateway(self, fleet):
        # A worker-side error mid-tick must be raised *after* every
        # dispatched worker is collected, or the uncollected workers
        # stay in-flight forever and the whole fleet wedges.
        detectors, signals = fleet
        with ShardedStreamGateway(2) as gateway:
            for sid, detector in detectors.items():
                gateway.open(sid, detector)
            by_worker = {
                w: sids[0]
                for w, sids in gateway.shard_map().items()
                if sids
            }
            assert len(by_worker) == 2  # one victim, one survivor
            victim, survivor = by_worker.values()
            # Break the victim's shard behind the gateway's back.
            gateway._workers[gateway.worker_of(victim)].request(
                "close", {"id": victim}
            )
            with pytest.raises(Exception, match=victim):
                gateway.push_many(
                    {
                        victim: signals[victim][:256],
                        survivor: signals[survivor][:256],
                    }
                )
            # The surviving shard keeps serving: no 'dispatch already
            # pending', and further ticks classify normally.
            assert isinstance(
                gateway.push(survivor, signals[survivor][256:512]), list
            )

    def test_close_and_checkpoint_refuse_queued_chunks(self, fleet, tmp_path):
        detectors, signals = fleet
        sid = next(iter(detectors))
        with ShardedStreamGateway(1) as gateway:
            gateway.open(sid, detectors[sid])
            gateway.submit(sid, signals[sid][:128])
            with pytest.raises(RuntimeError, match="drain"):
                gateway.close(sid)
            with pytest.raises(RuntimeError, match="drain"):
                gateway.checkpoint(tmp_path / "fleet")
            gateway.drain()
            gateway.close(sid)


class TestElasticity:
    def test_add_and_remove_workers_mid_stream(self, fleet):
        detectors, signals = fleet
        expected = reference_events(detectors, signals)
        half = int(3 * FS)
        with ShardedStreamGateway(2) as gateway:
            for sid, detector in detectors.items():
                gateway.open(sid, detector)
            first = gateway.run(
                {s: sig[:half] for s, sig in signals.items()}, 128
            )
            added = gateway.add_worker()
            moved_in = set()
            for sid in detectors:
                if gateway.worker_of(sid) == added:
                    moved_in.add(sid)
            removed_moved = gateway.remove_worker("w0")
            assert all(gateway.worker_of(sid) != "w0" for sid in detectors)
            assert "w0" not in gateway.worker_ids
            rest = gateway.run(
                {s: sig[half:] for s, sig in signals.items()}, 128
            )
        for sid in detectors:
            assert first[sid] + rest[sid] == expected[sid]
        # Rebalances must actually have exercised migration somewhere.
        assert moved_in or removed_moved

    def test_cannot_remove_last_worker(self, fleet):
        detectors, _ = fleet
        sid, detector = next(iter(detectors.items()))
        with ShardedStreamGateway(1) as gateway:
            gateway.open(sid, detector)
            with pytest.raises(ValueError):
                gateway.remove_worker("w0")
            with pytest.raises(KeyError):
                gateway.remove_worker("ghost")


class TestFleetCheckpoint:
    def test_round_trip_with_different_worker_count(self, fleet, tmp_path):
        detectors, signals = fleet
        expected = reference_events(detectors, signals)
        half = int(3 * FS)
        gateway = ShardedStreamGateway(3)
        for sid, detector in detectors.items():
            gateway.open(sid, detector)
        first = gateway.run(
            {s: sig[:half] for s, sig in signals.items()}, 128
        )
        manifest_path = gateway.checkpoint(tmp_path / "fleet")
        gateway.shutdown()
        manifest = read_fleet_manifest(manifest_path)
        assert manifest["dim"] == 512
        assert set(manifest["routes"]) == set(detectors)
        for shard in manifest["shards"].values():
            assert (tmp_path / "fleet" / shard).exists()
        with ShardedStreamGateway.restore(
            tmp_path / "fleet", n_workers=5
        ) as restored:
            assert sorted(restored.session_ids) == sorted(detectors)
            assert len(restored.worker_ids) == 5
            rest = restored.run(
                {s: sig[half:] for s, sig in signals.items()}, 128
            )
        for sid in detectors:
            assert first[sid] + rest[sid] == expected[sid]

    def test_restore_accepts_manifest_path_and_defaults_workers(
        self, fleet, tmp_path
    ):
        detectors, _ = fleet
        sid, detector = next(iter(detectors.items()))
        gateway = ShardedStreamGateway(2)
        gateway.open(sid, detector)
        manifest_path = gateway.checkpoint(tmp_path / "fleet")
        gateway.shutdown()
        with ShardedStreamGateway.restore(manifest_path) as restored:
            # Defaults to one worker per checkpoint shard (here: the one
            # shard that actually held the session).
            assert restored.session_ids == [sid]
            assert len(restored.worker_ids) == 1

    def test_empty_fleet_cannot_checkpoint(self, tmp_path):
        with ShardedStreamGateway(1) as gateway:
            with pytest.raises(ValueError):
                gateway.checkpoint(tmp_path / "fleet")

    def test_manifest_version_check(self, fleet, tmp_path):
        detectors, _ = fleet
        sid, detector = next(iter(detectors.items()))
        with ShardedStreamGateway(1) as gateway:
            gateway.open(sid, detector)
            manifest_path = gateway.checkpoint(tmp_path / "fleet")
        bad = manifest_path.read_text().replace('"version": 1', '"version": 99')
        manifest_path.write_text(bad)
        with pytest.raises(ValueError, match="version"):
            ShardedStreamGateway.restore(tmp_path / "fleet")
