"""Fault injection against the process-worker transport.

The invariant under test: a gateway never wedges on a silent shard.  A
child killed mid-command surfaces as a typed
:class:`~repro.serve.worker.WorkerDiedError` within the liveness
interval, a child that hangs surfaces as
:class:`~repro.serve.worker.WorkerTimeoutError` at the poll deadline,
and in both cases the *other* shards keep serving their sessions.

Hangs are injected by monkeypatching
:class:`~repro.serve.worker.ShardCommandHandler` before the gateway
forks its workers — fork inherits the patched class, so the child's
serve loop runs the slow handler while the parent's test code never
does.
"""

import pickle
import time

import numpy as np
import pytest

from repro.serve import ShardedStreamGateway
from repro.serve.worker import (
    ShardCommandHandler,
    WorkerDiedError,
    WorkerTimeoutError,
)

from tests.serve.conftest import build_fleet


def _open_across_two_workers(gateway, detectors):
    """Open sessions until both workers hold at least one; return map."""
    for session_id, detector in detectors.items():
        gateway.open(session_id, detector)
    shard_map = {
        worker_id: sessions
        for worker_id, sessions in gateway.shard_map().items()
        if sessions
    }
    assert len(shard_map) == 2, (
        "fixture fleet no longer spreads across both workers; "
        f"got {shard_map}"
    )
    return shard_map


class TestDeadWorker:
    def test_killed_child_raises_typed_error_fast(self):
        detectors, signals = build_fleet(n_sessions=8, seconds=2.0)
        with ShardedStreamGateway(2, mode="process") as gateway:
            shard_map = _open_across_two_workers(gateway, detectors)
            victim_id, survivor_id = sorted(shard_map)
            gateway._workers[victim_id]._proc.kill()
            gateway._workers[victim_id]._proc.join()

            victim_session = shard_map[victim_id][0]
            started = time.perf_counter()
            with pytest.raises(WorkerDiedError) as excinfo:
                gateway.push(
                    victim_session, signals[victim_session][:64]
                )
            elapsed = time.perf_counter() - started
            # Liveness polling, not the 30 s reply deadline, must be
            # what surfaces the death.
            assert elapsed < 5.0
            assert excinfo.value.worker_id == victim_id
            assert "died" in str(excinfo.value)

            # The sick shard is quarantined, not the fleet: sessions on
            # the surviving worker still serve, bit-exactly routed.
            survivor_session = shard_map[survivor_id][0]
            events = gateway.push(
                survivor_session, signals[survivor_session][:64]
            )
            assert isinstance(events, list)

            report = gateway.ping_workers()
            assert report[victim_id]["alive"] is False
            assert "WorkerDiedError" in report[victim_id]["error"]
            assert report[survivor_id]["alive"] is True

    def test_dead_worker_error_is_picklable(self):
        # The error itself may travel through queues/pipes; a payload
        # that cannot unpickle would reintroduce the hang it reports.
        original = WorkerDiedError("w3", "died mid-command (exit code -9)")
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is WorkerDiedError
        assert clone.worker_id == "w3"
        assert clone.detail == original.detail
        assert str(clone) == str(original)

    def test_timeout_error_is_picklable_subclass(self):
        clone = pickle.loads(pickle.dumps(WorkerTimeoutError("w1", "hung")))
        assert type(clone) is WorkerTimeoutError
        assert isinstance(clone, WorkerDiedError)


class TestHungWorker:
    def test_hung_child_raises_timeout_within_deadline(self, monkeypatch):
        detectors, signals = build_fleet(n_sessions=4, seconds=2.0)

        def hang(self, payload):
            time.sleep(2.0)
            return {}

        # Patch before the fork: the child's serve loop inherits the
        # hanging handler, the parent never calls it.
        monkeypatch.setattr(ShardCommandHandler, "_op_push_many", hang)
        with ShardedStreamGateway(
            1, mode="process", poll_timeout_s=0.25
        ) as gateway:
            session_id = next(iter(detectors))
            gateway.open(session_id, detectors[session_id])
            started = time.perf_counter()
            with pytest.raises(WorkerTimeoutError) as excinfo:
                gateway.push(session_id, signals[session_id][:64])
            elapsed = time.perf_counter() - started
            assert 0.25 <= elapsed < 2.0
            assert excinfo.value.worker_id == "w0"
            assert "no reply within 0.25 s" in str(excinfo.value)

    def test_hung_worker_does_not_block_shutdown(self, monkeypatch):
        def hang(self, payload):
            time.sleep(2.0)
            return {}

        monkeypatch.setattr(ShardCommandHandler, "_op_push_many", hang)
        detectors, signals = build_fleet(n_sessions=1, seconds=2.0)
        gateway = ShardedStreamGateway(
            1, mode="process", poll_timeout_s=0.2
        )
        session_id = next(iter(detectors))
        gateway.open(session_id, detectors[session_id])
        with pytest.raises(WorkerTimeoutError):
            gateway.push(session_id, signals[session_id][:64])
        started = time.perf_counter()
        gateway.shutdown()  # bounded stop(): must not wait on the hang
        assert time.perf_counter() - started < 15.0


class TestPollTimeoutConfig:
    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ValueError, match="poll_timeout_s"):
            ShardedStreamGateway(1, mode="process", poll_timeout_s=0.0)

    def test_inline_accepts_timeout_for_parity(self):
        with ShardedStreamGateway(
            1, mode="inline", poll_timeout_s=1.0
        ) as gateway:
            detectors, signals = build_fleet(n_sessions=1, seconds=2.0)
            session_id = next(iter(detectors))
            gateway.open(session_id, detectors[session_id])
            events = gateway.push(
                session_id, np.asarray(signals[session_id][:64])
            )
            assert isinstance(events, list)
