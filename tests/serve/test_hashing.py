"""Tests for the consistent-hash ring (repro.serve.hashing)."""

import pytest

from repro.serve.hashing import HashRing, stable_hash

KEYS = [f"patient-{i:03d}" for i in range(240)]


class TestStableHash:
    def test_deterministic_and_64_bit(self):
        assert stable_hash("patient-7") == stable_hash("patient-7")
        assert 0 <= stable_hash("x") < 2**64

    def test_distinct_keys_differ(self):
        assert stable_hash("a") != stable_hash("b")


class TestRing:
    def test_assignment_is_deterministic(self):
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w0", "w1", "w2"])
        assert [a.assign(k) for k in KEYS] == [b.assign(k) for k in KEYS]

    def test_every_worker_gets_load(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        owners = {ring.assign(k) for k in KEYS}
        assert owners == {"w0", "w1", "w2", "w3"}

    def test_adding_a_node_only_moves_keys_to_it(self):
        ring = HashRing(["w0", "w1", "w2"])
        before = {k: ring.assign(k) for k in KEYS}
        ring.add("w3")
        after = {k: ring.assign(k) for k in KEYS}
        moved = {k for k in KEYS if before[k] != after[k]}
        assert moved  # the new node captures *some* arcs
        assert all(after[k] == "w3" for k in moved)

    def test_removing_a_node_keeps_other_assignments(self):
        ring = HashRing(["w0", "w1", "w2"])
        before = {k: ring.assign(k) for k in KEYS}
        ring.remove("w1")
        after = {k: ring.assign(k) for k in KEYS}
        for k in KEYS:
            if before[k] != "w1":
                assert after[k] == before[k]
            else:
                assert after[k] in {"w0", "w2"}

    def test_membership_and_nodes_order(self):
        ring = HashRing(["b", "a"])
        assert ring.nodes == ["b", "a"]
        assert "a" in ring and "c" not in ring
        assert len(ring) == 2

    def test_duplicate_and_unknown_nodes_rejected(self):
        ring = HashRing(["w0"])
        with pytest.raises(ValueError):
            ring.add("w0")
        with pytest.raises(KeyError):
            ring.remove("ghost")

    def test_empty_ring_cannot_assign(self):
        with pytest.raises(RuntimeError):
            HashRing().assign("k")

    def test_replicas_validated(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)
