"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.data.cohort import PatientSpec


class TestHardwareCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "laelaps" in out and "lstm" in out

    def test_fig3_default_electrodes(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "64 electrodes" in out

    def test_fig3_custom_electrodes(self, capsys):
        assert main(["fig3", "--electrodes", "32"]) == 0
        assert "32 electrodes" in capsys.readouterr().out

    def test_scaling(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "scaling" in out.lower()
        assert "128e" in out


class TestTable1Command(object):
    def test_reduced_run(self, capsys, monkeypatch):
        # Patch the cohort down to one tiny patient so the CLI path runs
        # in seconds.
        import repro.evaluation.table1 as table1_module

        tiny = (
            PatientSpec("PX", n_electrodes=4, n_seizures=2,
                        recording_hours=0.05, train_seizures=1, seed=3),
        )
        monkeypatch.setattr(
            table1_module, "cohort_patient_specs", lambda: tiny
        )
        code = main([
            "table1", "--scale", "1", "--methods", "laelaps",
            "--dim", "1000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PX" in out
        assert "laelaps" in out


class TestBackendsCommand:
    def test_lists_every_registered_engine(self, capsys):
        from repro.hdc.engine import engine_names

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in engine_names():
            assert name in out
        assert "auto" in out  # reports what the selector resolves to
        assert "bit-identical" in out

    def test_reports_word_layout_at_dim(self, capsys):
        assert main(["backends", "--dim", "130"]) == 0
        out = capsys.readouterr().out
        assert "d=130" in out
        packed_row = next(
            line for line in out.splitlines() if line.startswith("packed ")
        )
        # ceil(130 / 64) = 3 words; the unpacked row reports raw width.
        assert " 3 " in packed_row
        unpacked_row = next(
            line for line in out.splitlines()
            if line.startswith("unpacked ")
        )
        assert " 130 " in unpacked_row

    def test_unknown_backend_value_exits_2_naming_choices(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["sessions", "--backend", "gpu"])
        assert exc_info.value.code == 2
        err = capsys.readouterr().err
        for name in ("unpacked", "packed", "packed-fused", "auto"):
            assert name in err


class TestServingCommands:
    def test_sessions_demo_tiny(self, capsys):
        assert main([
            "sessions", "--patients", "2", "--seconds", "90",
            "--dim", "256",
        ]) == 0
        out = capsys.readouterr().out
        assert "patient-00" in out and "windows/s" in out

    def test_serve_demo_tiny_inline(self, capsys):
        assert main([
            "serve", "--patients", "2", "--workers", "2",
            "--mode", "inline", "--seconds", "90", "--dim", "256",
        ]) == 0
        out = capsys.readouterr().out
        assert "shard w0" in out
        assert "checkpoint" in out
        assert "windows/s" in out

    def test_loadtest_tiny_with_record_and_check(self, capsys, tmp_path):
        from repro.evaluation.benchrec import read_record

        out_path = tmp_path / "BENCH_load_slo.json"
        assert main([
            "loadtest", "--sessions", "4", "--workers", "2",
            "--mode", "inline", "--ticks", "6", "--dim", "256",
            "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "tick_latency_p99_ms" in out
        assert "backpressure_onset_chunks" in out
        record = read_record(out_path)  # schema-valid on disk
        assert record.name == "load_slo"
        # --check against the record just written: deltas all 1.00x-ish,
        # printed report-only.
        assert main([
            "loadtest", "--sessions", "4", "--workers", "2",
            "--mode", "inline", "--ticks", "6", "--dim", "256",
            "--check", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "report-only" in out
        assert "throughput_windows_per_s" in out


COMMANDS = (
    "table1", "table2", "fig3", "scaling", "backends", "sessions", "serve",
    "loadtest",
)


class TestArgumentErrors:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits_nonzero_with_choices(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["fig9"])
        assert exc_info.value.code != 0
        err = capsys.readouterr().err
        assert "fig9" in err
        # The error names every valid sub-command so the fix is obvious.
        for command in COMMANDS:
            assert command in err

    def test_help_enumerates_all_commands(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["--help"])
        assert exc_info.value.code == 0
        out = capsys.readouterr().out
        for command in COMMANDS:
            assert command in out
        # One-line descriptions ride along in the listing.
        assert "sharded multi-worker serving demo" in out
        assert "multi-patient stream-serving demo" in out
        assert "list registered compute engines" in out
