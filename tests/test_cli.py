"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, command_names, main
from repro.data.cohort import PatientSpec


class TestHardwareCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "laelaps" in out and "lstm" in out

    def test_fig3_default_electrodes(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "64 electrodes" in out

    def test_fig3_custom_electrodes(self, capsys):
        assert main(["fig3", "--electrodes", "32"]) == 0
        assert "32 electrodes" in capsys.readouterr().out

    def test_scaling(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "scaling" in out.lower()
        assert "128e" in out


class TestTable1Command(object):
    def test_reduced_run(self, capsys, monkeypatch):
        # Patch the cohort down to one tiny patient so the CLI path runs
        # in seconds.
        import repro.evaluation.table1 as table1_module

        tiny = (
            PatientSpec("PX", n_electrodes=4, n_seizures=2,
                        recording_hours=0.05, train_seizures=1, seed=3),
        )
        monkeypatch.setattr(
            table1_module, "cohort_patient_specs", lambda: tiny
        )
        code = main([
            "table1", "--scale", "1", "--methods", "laelaps",
            "--dim", "1000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PX" in out
        assert "laelaps" in out


class TestBackendsCommand:
    def test_lists_every_registered_engine(self, capsys):
        from repro.hdc.engine import engine_names

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in engine_names():
            assert name in out
        assert "auto" in out  # reports what the selector resolves to
        assert "bit-identical" in out

    def test_reports_word_layout_at_dim(self, capsys):
        assert main(["backends", "--dim", "130"]) == 0
        out = capsys.readouterr().out
        assert "d=130" in out
        packed_row = next(
            line for line in out.splitlines() if line.startswith("packed ")
        )
        # ceil(130 / 64) = 3 words; the unpacked row reports raw width.
        assert " 3 " in packed_row
        unpacked_row = next(
            line for line in out.splitlines()
            if line.startswith("unpacked ")
        )
        assert " 130 " in unpacked_row

    def test_unknown_backend_value_exits_2_naming_choices(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["sessions", "--backend", "gpu"])
        assert exc_info.value.code == 2
        err = capsys.readouterr().err
        for name in ("unpacked", "packed", "packed-fused", "auto"):
            assert name in err


class TestServingCommands:
    def test_sessions_demo_tiny(self, capsys):
        assert main([
            "sessions", "--patients", "2", "--seconds", "90",
            "--dim", "256",
        ]) == 0
        out = capsys.readouterr().out
        assert "patient-00" in out and "windows/s" in out

    def test_serve_demo_tiny_inline(self, capsys):
        assert main([
            "serve", "--patients", "2", "--workers", "2",
            "--mode", "inline", "--seconds", "90", "--dim", "256",
        ]) == 0
        out = capsys.readouterr().out
        assert "shard w0" in out
        assert "checkpoint" in out
        assert "windows/s" in out

    def test_loadtest_tiny_with_record_and_check(self, capsys, tmp_path):
        from repro.evaluation.benchrec import read_record

        out_path = tmp_path / "BENCH_load_slo.json"
        assert main([
            "loadtest", "--sessions", "4", "--workers", "2",
            "--mode", "inline", "--ticks", "6", "--dim", "256",
            "--out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "tick_latency_p99_ms" in out
        assert "backpressure_onset_chunks" in out
        record = read_record(out_path)  # schema-valid on disk
        assert record.name == "load_slo"
        # --check against the record just written: deltas all 1.00x-ish,
        # printed report-only.
        assert main([
            "loadtest", "--sessions", "4", "--workers", "2",
            "--mode", "inline", "--ticks", "6", "--dim", "256",
            "--check", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "report-only" in out
        assert "throughput_windows_per_s" in out


class TestLintCommand:
    def test_clean_tree_exits_zero(self, capsys, tmp_path, monkeypatch):
        clean = tmp_path / "src" / "repro" / "clean.py"
        clean.parent.mkdir(parents=True)
        clean.write_text("import numpy as np\n\n\ndef f(rng):\n"
                         "    return rng.integers(0, 2)\n")
        monkeypatch.chdir(tmp_path)  # no default baseline in scope
        assert main(["lint", "src"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_violation_exits_one_with_location(self, capsys, tmp_path,
                                               monkeypatch):
        bad = tmp_path / "src" / "repro" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\n\n\ndef f():\n"
                       "    return np.random.rand(3)\n")
        monkeypatch.chdir(tmp_path)  # relativize paths in the output
        assert main(["lint", "src"]) == 1
        out = capsys.readouterr().out
        assert "src/repro/bad.py:5" in out
        assert "RPR001" in out

    def test_json_format_is_round_trippable(self, capsys, tmp_path,
                                            monkeypatch):
        import json

        from repro.analysis import result_from_json

        clean = tmp_path / "ok.py"
        clean.write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)  # no default baseline in scope
        assert main(["lint", "ok.py", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        result = result_from_json(payload)
        assert result.files == 1
        assert result.exit_code == 0

    def test_missing_explicit_baseline_exits_two(self, capsys, tmp_path):
        clean = tmp_path / "ok.py"
        clean.write_text("x = 1\n")
        code = main(["lint", str(clean), "--baseline",
                     str(tmp_path / "nope.json")])
        assert code == 2
        assert "baseline file not found" in capsys.readouterr().err

    def test_repo_tree_is_clean_under_committed_baseline(self, capsys):
        # The merged tree must lint clean: the same invocation CI gates on.
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out


class TestSynthCommand:
    def test_generates_a_loadable_cohort(self, capsys, tmp_path):
        out_dir = tmp_path / "cohort"
        code = main([
            "synth", "--out", str(out_dir), "--channels", "4,8",
            "--minutes", "2", "--seizures", "1", "--fs", "128",
            "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "m0004" in out and "m0008" in out
        assert "manifest" in out

        from repro.data.outofcore import load_cohort

        cohort = load_cohort(out_dir)
        assert [m.n_electrodes for m in cohort] == [4, 8]
        assert cohort.fs == 128.0 and cohort.seed == 5
        assert all(len(m.seizures) == 1 for m in cohort)

    def test_chunk_samples_is_not_semantic(self, capsys, tmp_path):
        for chunk, sub in (("512", "a"), ("4096", "b")):
            assert main([
                "synth", "--out", str(tmp_path / sub), "--channels", "4",
                "--minutes", "2", "--seizures", "1", "--fs", "128",
                "--chunk-samples", chunk,
            ]) == 0
        capsys.readouterr()
        a = (tmp_path / "a" / "m0004.f32").read_bytes()
        b = (tmp_path / "b" / "m0004.f32").read_bytes()
        assert a == b

    def test_invalid_plan_exits_two(self, capsys, tmp_path):
        code = main([
            "synth", "--out", str(tmp_path / "c"), "--channels", "8",
            "--minutes", "1", "--seizures", "3",
        ])
        assert code == 2
        assert "too short" in capsys.readouterr().err

    def test_malformed_channels_exits_two(self, capsys, tmp_path):
        code = main([
            "synth", "--out", str(tmp_path / "c"), "--channels", "8,x",
        ])
        assert code == 2
        assert "--channels" in capsys.readouterr().err


class TestArgumentErrors:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_registry_is_the_single_source(self):
        # Names are unique, non-empty, and every entry documents itself.
        names = command_names()
        assert len(names) == len(set(names))
        assert "lint" in names
        for spec in COMMANDS:
            assert spec.help, f"{spec.name} has no help line"
            assert callable(spec.handler)

    def test_unknown_command_exits_nonzero_with_choices(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["fig9"])
        assert exc_info.value.code != 0
        err = capsys.readouterr().err
        assert "fig9" in err
        # The error names every valid sub-command so the fix is obvious.
        for command in command_names():
            assert command in err

    def test_help_enumerates_all_commands(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["--help"])
        assert exc_info.value.code == 0
        out = capsys.readouterr().out
        for command in command_names():
            assert command in out
        # One-line descriptions ride along in the listing (argparse may
        # wrap them, so compare whitespace-normalized).
        flat = " ".join(out.split())
        for spec in COMMANDS:
            assert spec.help in flat
