"""Tests for repro.core.tuning (dimension descent)."""

import pytest

from repro.core.tuning import DimensionTuningResult, tune_dimension


def _evaluator(threshold_dim: int):
    """Sensitivity 1.0 / FDR 0 above the threshold, degraded below."""

    def evaluate(dim: int):
        if dim >= threshold_dim:
            return (1.0, -0.0)
        return (0.8, -0.1)

    return evaluate


class TestTuneDimension:
    def test_stops_at_performance_cliff(self):
        result = tune_dimension(
            _evaluator(3_000), candidates=(10_000, 5_000, 3_000, 2_000, 1_000)
        )
        assert result.chosen_dim == 3_000
        assert result.golden_dim == 10_000
        # Greedy stop: 1 000 was never evaluated after 2 000 failed.
        evaluated = [dim for dim, _ in result.history]
        assert evaluated == [10_000, 5_000, 3_000, 2_000]

    def test_all_maintain_gives_minimum(self):
        result = tune_dimension(
            _evaluator(0), candidates=(10_000, 4_000, 1_000)
        )
        assert result.chosen_dim == 1_000

    def test_none_maintain_keeps_golden(self):
        result = tune_dimension(
            _evaluator(10_000), candidates=(10_000, 5_000, 1_000)
        )
        assert result.chosen_dim == 10_000

    def test_full_scan_mode(self):
        # Non-monotone: 5 000 fails but 2 000 would maintain.
        def evaluate(dim):
            return (1.0, 0.0) if dim != 5_000 else (0.5, -1.0)

        result = tune_dimension(
            evaluate,
            candidates=(10_000, 5_000, 2_000),
            stop_at_first_loss=False,
        )
        assert result.chosen_dim == 2_000
        assert len(result.history) == 3

    def test_reduction_factor(self):
        result = DimensionTuningResult(
            chosen_dim=2_000, golden_dim=10_000, golden_performance=(1.0, 0.0)
        )
        assert result.reduction_factor == pytest.approx(5.0)

    def test_rejects_empty_candidates(self):
        with pytest.raises(ValueError):
            tune_dimension(_evaluator(0), candidates=())

    def test_worse_fdr_counts_as_loss(self):
        def evaluate(dim):
            return (1.0, -0.0) if dim == 10_000 else (1.0, -0.5)

        result = tune_dimension(evaluate, candidates=(10_000, 1_000))
        assert result.chosen_dim == 10_000
