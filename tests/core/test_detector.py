"""Tests for repro.core.detector (the end-to-end Laelaps pipeline)."""

import numpy as np
import pytest

from repro.core.config import ICTAL, INTERICTAL, LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.core.training import TrainingSegments


class TestConstruction:
    def test_deterministic_item_memories(self, small_config):
        a = LaelapsDetector(8, small_config)
        b = LaelapsDetector(8, small_config)
        np.testing.assert_array_equal(
            a.code_memory.vectors, b.code_memory.vectors
        )
        np.testing.assert_array_equal(
            a.electrode_memory.vectors, b.electrode_memory.vectors
        )

    def test_rejects_zero_electrodes(self, small_config):
        with pytest.raises(ValueError):
            LaelapsDetector(0, small_config)

    def test_memory_footprint(self, small_config):
        det = LaelapsDetector(10, small_config)
        expected = (64 + 10) * 1_000 + 2 * 1_000
        assert det.memory_footprint_bits() == expected

    def test_window_s_property(self, small_config):
        assert LaelapsDetector(4, small_config).window_s == 1.0


class TestEncoding:
    def test_encode_shape(self, fitted_detector, mini_recording):
        h = fitted_detector.encode(mini_recording.data[: 256 * 10])
        assert h.shape[1] == fitted_detector.config.dim
        assert h.dtype == np.uint8

    def test_encode_rejects_wrong_channels(self, fitted_detector):
        with pytest.raises(ValueError):
            fitted_detector.encode(np.zeros((1000, 3)))

    def test_window_times_monotone(self, fitted_detector):
        times = fitted_detector.window_times(20)
        assert np.all(np.diff(times) == pytest.approx(0.5))


class TestFit:
    def test_fit_populates_memory_and_report(self, fitted_detector):
        assert fitted_detector.is_fitted
        report = fitted_detector.fit_report
        assert report is not None
        assert report.n_ictal_windows > 0
        assert report.n_interictal_windows > 0
        assert report.prototype_distance > 0

    def test_prototypes_separated_on_synthetic_data(self, fitted_detector):
        # The ictal and interictal prototypes must be far apart relative
        # to d (the learnability the paper relies on).
        assert fitted_detector.fit_report.prototype_distance > 0.1 * 1_000

    def test_fit_from_windows_single_vectors(self, small_config, rng):
        det = LaelapsDetector(4, small_config)
        ictal = rng.integers(0, 2, 1_000, dtype=np.uint8)
        inter = rng.integers(0, 2, 1_000, dtype=np.uint8)
        det.fit_from_windows(ictal, inter)
        np.testing.assert_array_equal(det.memory.prototype(ICTAL), ictal)
        np.testing.assert_array_equal(det.memory.prototype(INTERICTAL), inter)

    def test_fit_rejects_too_short_segment(self, mini_recording, small_config):
        det = LaelapsDetector(mini_recording.n_electrodes, small_config)
        segments = TrainingSegments(
            ictal=((100.0, 100.5),), interictal=(40.0, 70.0)
        )
        with pytest.raises(ValueError):
            det.fit(mini_recording.data, segments)


class TestPredictAndDetect:
    def test_predict_before_fit_raises(self, small_config):
        det = LaelapsDetector(4, small_config)
        with pytest.raises(RuntimeError):
            det.predict(np.zeros((1000, 4)))

    def test_prediction_shapes_align(self, fitted_detector, mini_recording):
        preds = fitted_detector.predict(mini_recording.data)
        n = len(preds)
        assert preds.labels.shape == (n,)
        assert preds.distances.shape == (n, 2)
        assert preds.deltas.shape == (n,)
        assert preds.times.shape == (n,)

    def test_detects_unseen_seizure(self, fitted_detector, mini_recording):
        result = fitted_detector.detect(mini_recording.data)
        second = mini_recording.seizures[1]
        hits = (result.alarm_times >= second.onset_s) & (
            result.alarm_times <= second.offset_s + 5.0
        )
        assert hits.any(), f"no alarm in {second}, alarms={result.alarm_times}"

    def test_no_alarms_in_clean_interictal(self, fitted_detector, mini_recording):
        preds = fitted_detector.predict(mini_recording.data)
        # Between the two seizures (margin for postprocessing windows).
        inter = (preds.times > 140) & (preds.times < 210)
        assert preds.labels[inter].mean() < 0.2

    def test_interictal_labels_interictal(self, fitted_detector, mini_recording):
        preds = fitted_detector.predict(mini_recording.data)
        early = preds.times < 90
        assert (preds.labels[early] == INTERICTAL).mean() > 0.9

    def test_deltas_match_distance_gap(self, fitted_detector, mini_recording):
        preds = fitted_detector.predict(mini_recording.data[: 256 * 30])
        np.testing.assert_allclose(
            preds.deltas,
            np.abs(preds.distances[:, 0] - preds.distances[:, 1]),
        )

    def test_empty_prediction(self, fitted_detector):
        preds = fitted_detector.predict_from_windows(
            np.zeros((0, fitted_detector.config.dim), dtype=np.uint8)
        )
        assert len(preds) == 0


class TestTrTuning:
    def test_tune_tr_returns_and_stores(self, fitted_detector, mini_recording):
        train = mini_recording.data[: int(135 * 256)]
        tr = fitted_detector.tune_tr(train, [(100.0, 125.0)])
        assert tr > 0
        assert fitted_detector.tr == tr

    def test_detection_survives_tuned_tr(self, mini_recording, mini_segments, small_config):
        det = LaelapsDetector(mini_recording.n_electrodes, small_config)
        det.fit(mini_recording.data, mini_segments)
        det.tune_tr(mini_recording.data[: int(135 * 256)], [(100.0, 125.0)])
        result = det.detect(mini_recording.data)
        second = mini_recording.seizures[1]
        hits = (result.alarm_times >= second.onset_s) & (
            result.alarm_times <= second.offset_s + 5.0
        )
        assert hits.any()


class TestDimensionBehaviour:
    def test_larger_dim_also_detects(self, mini_recording, mini_segments):
        config = LaelapsConfig(dim=4_000, fs=256.0, seed=7)
        det = LaelapsDetector(mini_recording.n_electrodes, config)
        det.fit(mini_recording.data, mini_segments)
        result = det.detect(mini_recording.data)
        second = mini_recording.seizures[1]
        hits = (result.alarm_times >= second.onset_s) & (
            result.alarm_times <= second.offset_s + 5.0
        )
        assert hits.any()
