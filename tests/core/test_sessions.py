"""Tests for repro.core.sessions (multi-patient stream serving)."""

import numpy as np
import pytest

from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.core.persistence import load_sessions, save_sessions
from repro.core.sessions import StreamSessionManager
from repro.core.streaming import StreamingLaelaps
from repro.core.training import TrainingSegments
from repro.data.synthetic import (
    SeizurePlan,
    SynthesisParams,
    SyntheticIEEGGenerator,
)

FS = 256.0
N_SESSIONS = 8


@pytest.fixture(scope="module")
def fleet():
    """Eight fitted packed-backend patients with individual recordings.

    Electrode counts and seeds differ per patient; t_c is below
    ``postprocess_len`` so the historic batch/stream skew would show up
    immediately if the paths diverged.
    """
    detectors = {}
    signals = {}
    for i in range(N_SESSIONS):
        n_electrodes = (8, 12, 16, 10)[i % 4]
        generator = SyntheticIEEGGenerator(
            n_electrodes, SynthesisParams(fs=FS), seed=200 + i
        )
        recording = generator.generate(90.0, [SeizurePlan(40.0, 20.0)])
        config = LaelapsConfig(
            dim=1_000, fs=FS, seed=11 + i, backend="packed", tc=6
        )
        detector = LaelapsDetector(n_electrodes, config)
        detector.fit(
            recording.data,
            TrainingSegments(ictal=((40.0, 60.0),), interictal=(5.0, 35.0)),
        )
        detectors[f"patient-{i}"] = detector
        signals[f"patient-{i}"] = recording.data
    return detectors, signals


class TestLifecycle:
    def test_open_close_contains(self, fleet):
        detectors, _ = fleet
        manager = StreamSessionManager()
        sid, detector = next(iter(detectors.items()))
        manager.open(sid, detector)
        assert sid in manager and len(manager) == 1
        assert manager.dim == detector.config.dim
        manager.close(sid)
        assert sid not in manager and len(manager) == 0
        assert manager.dim is None

    def test_duplicate_session_rejected(self, fleet):
        detectors, _ = fleet
        manager = StreamSessionManager()
        sid, detector = next(iter(detectors.items()))
        manager.open(sid, detector)
        with pytest.raises(ValueError):
            manager.open(sid, detector)

    def test_dim_mismatch_rejected(self, fleet):
        detectors, _ = fleet
        manager = StreamSessionManager()
        manager.open("a", next(iter(detectors.values())))
        other = LaelapsDetector(4, LaelapsConfig(dim=2_000, fs=FS, seed=1))
        other.fit_from_windows(
            np.ones((1, 2_000), dtype=np.uint8),
            np.zeros((1, 2_000), dtype=np.uint8),
        )
        with pytest.raises(ValueError):
            manager.open("b", other)

    def test_unknown_session_rejected(self, fleet):
        _, signals = fleet
        manager = StreamSessionManager()
        with pytest.raises(KeyError):
            manager.push("ghost", next(iter(signals.values()))[:100])

    def test_bad_chunk_leaves_all_sessions_untouched(self, fleet):
        # A malformed chunk anywhere in the batch must fail *before* any
        # session consumes its tick, or earlier sessions would lose the
        # windows completed by the partially-processed batch.
        detectors, signals = fleet
        ids = list(detectors)[:2]
        manager = StreamSessionManager()
        for sid in ids:
            manager.open(sid, detectors[sid])
        with pytest.raises(ValueError):
            manager.push_many(
                {
                    ids[0]: signals[ids[0]][:512],
                    ids[1]: np.zeros((512, 3)),  # wrong electrode count
                }
            )
        assert all(
            manager.session(sid).samples_seen == 0 for sid in ids
        )
        # The tick replays cleanly afterwards, matching per-stream runs.
        good = manager.push_many({sid: signals[sid][:512] for sid in ids})
        for sid in ids:
            expected = StreamingLaelaps(detectors[sid]).push(
                signals[sid][:512]
            )
            assert good[sid] == expected


class TestBatchedParity:
    """N concurrent sessions must match per-stream results bit-exactly."""

    def test_eight_packed_sessions_match_per_stream(self, fleet):
        detectors, signals = fleet
        reference = {
            sid: StreamingLaelaps(det).run(signals[sid], 300)
            for sid, det in detectors.items()
        }
        manager = StreamSessionManager()
        for sid, detector in detectors.items():
            manager.open(sid, detector)
        events = manager.run(signals, 300)
        for sid in detectors:
            assert events[sid] == reference[sid]
        assert sum(len(v) for v in events.values()) > 0

    def test_ragged_chunks_and_idle_sessions(self, fleet):
        detectors, signals = fleet
        ids = list(detectors)[:3]
        reference = {
            sid: StreamingLaelaps(detectors[sid]).run(signals[sid], 257)
            for sid in ids
        }
        manager = StreamSessionManager()
        for sid in ids:
            manager.open(sid, detectors[sid])
        events = {sid: [] for sid in ids}
        offsets = dict.fromkeys(ids, 0)
        rng = np.random.default_rng(0)
        # Deliver 257-sample chunks to a random subset per tick so
        # sessions progress at different rates (idle sessions included).
        while any(offsets[sid] < signals[sid].shape[0] for sid in ids):
            active = [
                sid for sid in ids
                if offsets[sid] < signals[sid].shape[0]
                and rng.random() < 0.7
            ]
            tick = {}
            for sid in active:
                start = offsets[sid]
                tick[sid] = signals[sid][start : start + 257]
                offsets[sid] = start + 257
            for sid, new in manager.push_many(tick).items():
                events[sid].extend(new)
        for sid in ids:
            assert events[sid] == reference[sid]

    def test_mixed_backends_share_the_sweep(self, fleet):
        detectors, signals = fleet
        sid_packed = "patient-0"
        generator = SyntheticIEEGGenerator(
            6, SynthesisParams(fs=FS), seed=999
        )
        recording = generator.generate(70.0, [SeizurePlan(30.0, 20.0)])
        unpacked = LaelapsDetector(
            6, LaelapsConfig(dim=1_000, fs=FS, seed=77, backend="unpacked")
        )
        unpacked.fit(
            recording.data,
            TrainingSegments(ictal=((30.0, 50.0),), interictal=(2.0, 28.0)),
        )
        reference = {
            sid_packed: StreamingLaelaps(detectors[sid_packed]).run(
                signals[sid_packed], 512
            ),
            "unpacked": StreamingLaelaps(unpacked).run(recording.data, 512),
        }
        manager = StreamSessionManager()
        manager.open(sid_packed, detectors[sid_packed])
        manager.open("unpacked", unpacked)
        events = manager.run(
            {sid_packed: signals[sid_packed], "unpacked": recording.data}, 512
        )
        for sid, expected in reference.items():
            assert events[sid] == expected


class TestCheckpointing:
    def test_mid_stream_round_trip(self, fleet, tmp_path):
        detectors, signals = fleet
        reference = {
            sid: StreamingLaelaps(det).run(signals[sid], 300)
            for sid, det in detectors.items()
        }
        manager = StreamSessionManager()
        for sid, detector in detectors.items():
            manager.open(sid, detector)
        cut = 256 * 33 + 97  # mid-block, mid-code, mid-postprocess-window
        head = manager.run(
            {sid: signals[sid][:cut] for sid in detectors}, 300
        )
        restored = load_sessions(
            save_sessions(manager, tmp_path / "sessions.npz")
        )
        assert restored.session_ids == manager.session_ids
        tail = restored.run(
            {sid: signals[sid][cut:] for sid in detectors}, 300
        )
        for sid in detectors:
            assert head[sid] + tail[sid] == reference[sid]

    def test_empty_manager_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_sessions(StreamSessionManager(), tmp_path / "empty.npz")

    def test_version_check(self, fleet, tmp_path):
        import json

        detectors, _ = fleet
        manager = StreamSessionManager()
        sid, detector = next(iter(detectors.items()))
        manager.open(sid, detector)
        path = save_sessions(manager, tmp_path / "s.npz")
        with np.load(path) as archive:
            payload = {name: archive[name] for name in archive.files}
        meta = json.loads(bytes(payload["meta"].tobytes()).decode())
        meta["version"] = 99
        payload["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez_compressed(tmp_path / "bad.npz", **payload)
        with pytest.raises(ValueError):
            load_sessions(tmp_path / "bad.npz")
