"""Backward compat: pre-engine-registry checkpoints restore bit-exactly.

The committed ``tests/fixtures/legacy_packed_*`` files were written with
the payload schema that predates :mod:`repro.hdc.engine` — no ``engine``
tag, the engine named only by the config's legacy backend field.  These
tests restore them onto the current registry and compare predictions and
stream events against the frozen expectations, so a payload-format
change can never silently strand deployed models.
"""

import importlib.util
import json
from pathlib import Path

import numpy as np

from repro.core.persistence import load_model, load_sessions, save_model
from repro.hdc.engine import PackedEngine, UnpackedEngine

FIXTURE_DIR = Path(__file__).resolve().parents[1] / "fixtures"

_spec = importlib.util.spec_from_file_location(
    "legacy_fixture_generator", FIXTURE_DIR / "generate_legacy_fixtures.py"
)
generator = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(generator)


def _meta(path: Path) -> dict:
    with np.load(path) as archive:
        return json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))


class TestFixturesAreLegacy:
    """Guard: the fixtures really exercise the no-tag compat path."""

    def test_model_fixture_has_no_engine_tag(self):
        meta = _meta(FIXTURE_DIR / "legacy_packed_model.npz")
        assert "engine" not in meta
        assert meta["config"]["backend"] == "packed"

    def test_sessions_fixture_has_no_engine_tags(self):
        meta = _meta(FIXTURE_DIR / "legacy_packed_sessions.npz")
        backends = set()
        for session in meta["sessions"]:
            assert "engine" not in session
            backends.add(session["config"]["backend"])
        assert backends == {"packed", "unpacked"}

    def test_packed_session_blocks_are_legacy_digit_planes(self):
        # The packed encoder used to checkpoint engine-specific
        # bit-sliced planes; the fixture must keep that form so the
        # planes-decoding restore path stays exercised.
        with np.load(FIXTURE_DIR / "legacy_packed_sessions.npz") as archive:
            block = archive["s0__block0"]
        assert block.ndim == 2 and block.dtype == np.uint64


class TestLegacyModelRestores:
    def test_restores_onto_the_registry_bit_exactly(self):
        detector = load_model(FIXTURE_DIR / "legacy_packed_model.npz")
        assert detector.backend == "packed"
        assert isinstance(detector.engine, PackedEngine)

        reference, signal = generator.build_legacy_model()
        preds = detector.predict(signal)
        with np.load(FIXTURE_DIR / "legacy_packed_expected.npz") as expected:
            np.testing.assert_array_equal(preds.labels, expected["labels"])
            np.testing.assert_array_equal(
                preds.distances, expected["distances"]
            )
            np.testing.assert_array_equal(preds.deltas, expected["deltas"])
            np.testing.assert_array_equal(preds.times, expected["times"])
        # And the restored model matches a freshly trained reference.
        np.testing.assert_array_equal(
            detector.memory.prototype(0), reference.memory.prototype(0)
        )
        assert detector.tr == reference.tr

    def test_pre_backend_archive_loads_as_unpacked(self):
        """Seed-era payloads lack even the config's backend key.

        The oldest schema predates the backend field itself; such a
        payload must load onto the unpacked reference engine (the only
        engine that era ran) rather than crash on the missing key.
        """
        from repro.core.persistence import (
            detector_from_payload,
            detector_payload,
        )

        reference, signal = generator.build_legacy_model()
        payload = detector_payload(reference)
        payload.pop("engine")
        payload["config"] = dict(payload["config"])
        payload["config"].pop("backend")
        rebuilt = detector_from_payload(payload)
        assert rebuilt.backend == "unpacked"
        np.testing.assert_array_equal(
            rebuilt.predict(signal).labels, reference.predict(signal).labels
        )

    def test_resave_upgrades_to_the_tagged_schema(self, tmp_path):
        detector = load_model(FIXTURE_DIR / "legacy_packed_model.npz")
        resaved = save_model(detector, tmp_path / "upgraded.npz")
        meta = _meta(resaved)
        assert meta["engine"] == "packed"
        upgraded = load_model(resaved)
        assert upgraded.backend == "packed"


class TestLegacySessionsRestore:
    def test_mixed_engine_fleet_resumes_bit_exactly(self):
        manager = load_sessions(FIXTURE_DIR / "legacy_packed_sessions.npz")
        assert manager.session_ids == ["legacy-0", "legacy-1"]
        assert isinstance(
            manager.session("legacy-0").detector.engine, PackedEngine
        )
        assert isinstance(
            manager.session("legacy-1").detector.engine, UnpackedEngine
        )
        for session_id in manager.session_ids:
            stream = manager.session(session_id)
            assert stream.samples_seen == generator.WARMUP_SAMPLES

        _, signals = generator.build_legacy_sessions()
        events = generator.resume_events(manager, signals)
        expected = json.loads(
            (
                FIXTURE_DIR / "legacy_packed_sessions_expected.json"
            ).read_text()
        )
        assert events == expected
        assert any(len(v) > 0 for v in expected.values())


class TestGeneratorIsDeterministic:
    """Regenerating the fixtures reproduces the committed bytes' content."""

    def test_model_regeneration_matches(self):
        detector, signal = generator.build_legacy_model()
        preds = detector.predict(signal)
        with np.load(FIXTURE_DIR / "legacy_packed_expected.npz") as expected:
            np.testing.assert_array_equal(preds.labels, expected["labels"])
            np.testing.assert_array_equal(
                preds.distances, expected["distances"]
            )
