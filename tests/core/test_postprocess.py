"""Tests for repro.core.postprocess (delta scores, voting, t_r tuning)."""

import numpy as np
import pytest

from repro.core.config import ICTAL, INTERICTAL
from repro.core.postprocess import (
    AlarmStateMachine,
    PostprocessConfig,
    Postprocessor,
    alarm_flags,
    alpha_from_cohort,
    delta_scores,
    flags_to_onsets,
    tune_tr,
)


class TestDeltaScores:
    def test_absolute_difference(self):
        distances = np.array([[10, 4], [3, 9]])
        np.testing.assert_allclose(delta_scores(distances), [6.0, 6.0])

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            delta_scores(np.zeros((3, 3)))


def _labels(pattern: str) -> np.ndarray:
    """'i' -> ictal, '.' -> interictal."""
    return np.array([ICTAL if c == "i" else INTERICTAL for c in pattern])


class TestAlarmFlags:
    def test_ten_consecutive_ictal_fire(self):
        labels = _labels("....." + "i" * 10 + ".....")
        deltas = np.ones_like(labels, dtype=float)
        flags = alarm_flags(labels, deltas, 10, 10, tr=0.0)
        assert flags[14]  # first window whose trailing 10 are all ictal
        assert not flags[:14].any()

    def test_nine_ictal_do_not_fire_at_tc_10(self):
        labels = _labels("....." + "i" * 9 + "......")
        deltas = np.ones_like(labels, dtype=float)
        assert not alarm_flags(labels, deltas, 10, 10, 0.0).any()

    def test_tr_suppresses_low_confidence(self):
        labels = _labels("i" * 20)
        deltas = np.full(20, 5.0)
        assert alarm_flags(labels, deltas, 10, 10, tr=4.9).any()
        assert not alarm_flags(labels, deltas, 10, 10, tr=5.0).any()

    def test_mean_delta_of_ictal_labels_only(self):
        # Interictal deltas inside the window must not affect the mean.
        labels = _labels("....." + "i" * 10)
        deltas = np.concatenate([np.full(5, 1000.0), np.full(10, 2.0)])
        assert not alarm_flags(labels, deltas, 10, 10, tr=2.0).any()
        assert alarm_flags(labels, deltas, 10, 10, tr=1.9).any()

    def test_lower_tc_with_mixed_labels(self):
        labels = _labels("iiiii.iiii" * 2)
        deltas = np.ones_like(labels, dtype=float)
        assert alarm_flags(labels, deltas, 10, 9, 0.0).any()
        assert not alarm_flags(labels, deltas, 10, 10, 0.0).any()

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            alarm_flags(np.zeros(3, dtype=int), np.zeros(4), 10, 10, 0.0)

    def test_rejects_bad_tc(self):
        with pytest.raises(ValueError):
            alarm_flags(np.zeros(3, dtype=int), np.zeros(3), 10, 11, 0.0)

    def test_empty_stream(self):
        flags = alarm_flags(np.zeros(0, dtype=int), np.zeros(0), 10, 10, 0.0)
        assert flags.shape == (0,)


class TestWarmUpContract:
    """No alarm may fire before ``postprocess_len`` labels exist."""

    def test_no_flag_before_window_full_for_small_tc(self):
        # The historic divergence: tc=5 over an all-ictal stream used to
        # flag at window 4 in the batch path (truncated window) while
        # streaming waited for a full window.  The contract is the
        # streaming behaviour: earliest flag at index postprocess_len-1.
        labels = _labels("i" * 20)
        deltas = np.ones(20)
        for tc in range(1, 11):
            flags = alarm_flags(labels, deltas, 10, tc, 0.0)
            assert not flags[:9].any(), f"tc={tc} fired during warm-up"
            assert flags[9], f"tc={tc} missed the first full window"

    def test_short_stream_never_fires(self):
        labels = _labels("i" * 9)
        flags = alarm_flags(labels, np.ones(9), 10, 1, 0.0)
        assert not flags.any()


class TestAlarmStateMachine:
    def test_chunking_invariance(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 2, 200)
        deltas = rng.uniform(0, 10, 200)
        config = PostprocessConfig(postprocess_len=10, tc=6, tr=2.0)
        batch = alarm_flags(labels, deltas, 10, 6, 2.0)
        for sizes in ([1] * 200, [7] * 29, [200], [3, 50, 147]):
            machine = AlarmStateMachine(config)
            parts = []
            offset = 0
            for size in sizes:
                flags, _ = machine.update(
                    labels[offset : offset + size],
                    deltas[offset : offset + size],
                )
                parts.append(flags)
                offset += size
            np.testing.assert_array_equal(np.concatenate(parts), batch)

    def test_rising_edges_cross_chunks(self):
        labels = _labels("i" * 30)
        deltas = np.ones(30)
        machine = AlarmStateMachine(PostprocessConfig(tc=10))
        _, r1 = machine.update(labels[:12], deltas[:12])
        _, r2 = machine.update(labels[12:], deltas[12:])
        # Exactly one onset (at index 9); the condition staying true in
        # the second chunk must not re-raise.
        assert r1.sum() == 1 and r1[9]
        assert r2.sum() == 0

    def test_state_round_trip(self):
        rng = np.random.default_rng(5)
        labels = rng.integers(0, 2, 80)
        deltas = rng.uniform(0, 5, 80)
        config = PostprocessConfig(postprocess_len=10, tc=4, tr=1.0)
        reference = AlarmStateMachine(config)
        ref_a, _ = reference.update(labels[:37], deltas[:37])
        ref_b, _ = reference.update(labels[37:], deltas[37:])
        machine = AlarmStateMachine(config)
        first, _ = machine.update(labels[:37], deltas[:37])
        resumed = AlarmStateMachine(config).restore_state(machine.state_dict())
        second, _ = resumed.update(labels[37:], deltas[37:])
        np.testing.assert_array_equal(first, ref_a)
        np.testing.assert_array_equal(second, ref_b)

    def test_counters_and_reset(self):
        machine = AlarmStateMachine()
        machine.update(np.ones(25, dtype=int), np.ones(25))
        assert machine.labels_seen == 25
        assert machine.alarm_active
        machine.reset()
        assert machine.labels_seen == 0
        assert not machine.alarm_active

    def test_rejects_oversized_state_tail(self):
        machine = AlarmStateMachine(PostprocessConfig(postprocess_len=5, tc=5))
        with pytest.raises(ValueError):
            machine.restore_state(
                {
                    "tail_labels": np.ones(5, dtype=int),
                    "tail_deltas": np.ones(5),
                    "seen": 5,
                    "active": False,
                }
            )

    def test_empty_update(self):
        machine = AlarmStateMachine()
        flags, rising = machine.update(np.zeros(0, dtype=int), np.zeros(0))
        assert flags.shape == rising.shape == (0,)
        assert machine.labels_seen == 0


class TestFlagsToOnsets:
    def test_rising_edges_only(self):
        flags = np.array([False, True, True, False, True])
        np.testing.assert_array_equal(flags_to_onsets(flags), [1, 4])

    def test_flag_at_start(self):
        np.testing.assert_array_equal(
            flags_to_onsets(np.array([True, True, False])), [0]
        )

    def test_empty(self):
        assert flags_to_onsets(np.zeros(0, dtype=bool)).size == 0


class TestPostprocessor:
    def test_onsets_end_to_end(self):
        labels = _labels("....." + "i" * 12 + "....." + "i" * 12)
        deltas = np.full(labels.shape, 3.0)
        post = Postprocessor(PostprocessConfig(tr=1.0))
        onsets = post.onsets(labels, deltas)
        assert len(onsets) == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PostprocessConfig(tc=0)
        with pytest.raises(ValueError):
            PostprocessConfig(tr=-0.5)


class TestTuneTr:
    def test_no_false_alarm_gives_min_ictal_delta(self):
        labels = _labels("....." + "i" * 10)
        truth = labels.astype(bool)
        deltas = np.concatenate([np.full(5, 1.0), np.linspace(10, 20, 10)])
        tr = tune_tr(labels, deltas, truth)
        assert tr == pytest.approx(10.0)

    def test_false_alarm_path_uses_interictal_multiple(self):
        # 12 interictal windows misclassified as ictal -> false alarm.
        labels = _labels("i" * 12 + "." * 5 + "i" * 10)
        truth = np.array([False] * 17 + [True] * 10)
        deltas = np.concatenate(
            [np.full(12, 2.0), np.full(5, 1.0), np.full(10, 11.0)]
        )
        # max interictal = 2, max ictal = 11, alpha = 0 -> highest k
        # with 2k < 11 is 5 -> tr = 10.
        tr = tune_tr(labels, deltas, truth, alpha=0.0)
        assert tr == pytest.approx(10.0)

    def test_alpha_lowers_bound(self):
        labels = _labels("i" * 12 + "." * 5 + "i" * 10)
        truth = np.array([False] * 17 + [True] * 10)
        deltas = np.concatenate(
            [np.full(12, 2.0), np.full(5, 1.0), np.full(10, 11.0)]
        )
        tr = tune_tr(labels, deltas, truth, alpha=3.0)
        # bound 8 -> highest multiple of 2 below 8 is 6.
        assert tr == pytest.approx(6.0)

    def test_no_valid_multiple_falls_back_to_max_interictal(self):
        labels = _labels("i" * 12 + "i" * 5)
        truth = np.array([False] * 12 + [True] * 5)
        deltas = np.concatenate([np.full(12, 10.0), np.full(5, 9.0)])
        tr = tune_tr(labels, deltas, truth)
        assert tr == pytest.approx(10.0)

    def test_no_ictal_windows_returns_zero(self):
        labels = _labels("..........")
        deltas = np.ones(10)
        assert tune_tr(labels, deltas, np.zeros(10, dtype=bool)) == 0.0

    def test_suppression_property(self):
        # After tuning, the training stream itself must raise no false
        # alarm (the rule's goal).
        rng = np.random.default_rng(0)
        labels = _labels("i" * 15 + "." * 30 + "i" * 12)
        truth = np.array([False] * 15 + [False] * 30 + [True] * 12)
        deltas = np.concatenate(
            [rng.uniform(1, 3, 15), rng.uniform(0, 1, 30), rng.uniform(20, 30, 12)]
        )
        tr = tune_tr(labels, deltas, truth)
        flags = alarm_flags(labels, deltas, 10, 10, tr)
        assert not (flags & ~truth).any()


class TestAlphaFromCohort:
    def test_mean_difference(self):
        assert alpha_from_cohort([(10.0, 8.0), (6.0, 5.0)]) == pytest.approx(1.5)

    def test_clipped_at_zero(self):
        assert alpha_from_cohort([(5.0, 9.0)]) == 0.0

    def test_empty_is_zero(self):
        assert alpha_from_cohort([]) == 0.0
