"""Tests for model persistence (save/load trained detectors)."""

import numpy as np
import pytest

from repro.core.detector import LaelapsDetector
from repro.core.persistence import load_model, save_model
from repro.core.symbolizers import HVGSymbolizer


class TestRoundTrip:
    def test_bit_identical_predictions(
        self, fitted_detector, mini_recording, tmp_path
    ):
        fitted_detector.tr = 42.0
        path = save_model(fitted_detector, tmp_path / "model.npz")
        loaded = load_model(path)
        segment = mini_recording.data[: 256 * 40]
        original = fitted_detector.predict(segment)
        restored = loaded.predict(segment)
        np.testing.assert_array_equal(original.labels, restored.labels)
        np.testing.assert_array_equal(original.distances, restored.distances)

    def test_tr_and_shape_preserved(self, fitted_detector, tmp_path):
        fitted_detector.tr = 17.5
        loaded = load_model(save_model(fitted_detector, tmp_path / "m.npz"))
        assert loaded.tr == 17.5
        assert loaded.n_electrodes == fitted_detector.n_electrodes
        assert loaded.config == fitted_detector.config

    def test_alarms_identical(self, fitted_detector, mini_recording, tmp_path):
        loaded = load_model(save_model(fitted_detector, tmp_path / "m.npz"))
        a = fitted_detector.detect(mini_recording.data)
        b = loaded.detect(mini_recording.data)
        np.testing.assert_allclose(a.alarm_times, b.alarm_times)

    def test_suffixless_path_returns_real_file(
        self, fitted_detector, tmp_path
    ):
        # np.savez appends .npz when missing; the returned path must
        # name the file actually written.
        path = save_model(fitted_detector, tmp_path / "checkpoint")
        assert path.suffix == ".npz" and path.exists()
        assert load_model(path).tr == fitted_detector.tr

    def test_model_file_is_small(self, fitted_detector, tmp_path):
        # Only config + two prototypes: the on-disk model for d = 1 kbit
        # must stay in the low kilobytes (embedded-deployment claim).
        path = save_model(fitted_detector, tmp_path / "m.npz")
        assert path.stat().st_size < 16 * 1024

    def test_hvg_symbolizer_round_trip(
        self, mini_recording, mini_segments, small_config, tmp_path
    ):
        det = LaelapsDetector(
            mini_recording.n_electrodes, small_config,
            symbolizer=HVGSymbolizer(degree_cap=5),
        )
        det.fit(mini_recording.data, mini_segments)
        loaded = load_model(save_model(det, tmp_path / "hvg.npz"))
        assert isinstance(loaded.symbolizer, HVGSymbolizer)
        assert loaded.symbolizer.degree_cap == 5


class TestErrors:
    def test_unfitted_detector_rejected(self, small_config, tmp_path):
        det = LaelapsDetector(4, small_config)
        with pytest.raises(ValueError):
            save_model(det, tmp_path / "m.npz")

    def test_version_check(self, fitted_detector, tmp_path):
        import json

        path = save_model(fitted_detector, tmp_path / "m.npz")
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["meta"].tobytes()).decode())
            inter, ictal = archive["interictal"], archive["ictal"]
        meta["version"] = 99
        np.savez_compressed(
            tmp_path / "bad.npz",
            interictal=inter,
            ictal=ictal,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError):
            load_model(tmp_path / "bad.npz")
