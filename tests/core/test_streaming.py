"""Tests for repro.core.streaming (online inference)."""

import numpy as np
import pytest

from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.core.streaming import StreamingLaelaps


class TestConstruction:
    def test_requires_fitted_detector(self, small_config):
        detector = LaelapsDetector(4, small_config)
        with pytest.raises(ValueError):
            StreamingLaelaps(detector)


class TestEquivalenceWithBatch:
    """Streaming must reproduce the batch pipeline exactly."""

    @pytest.fixture(scope="class", params=[64, 150, 256, 1000])
    def chunk_size(self, request):
        return request.param

    def test_labels_match_batch(
        self, fitted_detector, mini_recording, chunk_size
    ):
        batch = fitted_detector.predict(mini_recording.data)
        streamer = StreamingLaelaps(fitted_detector)
        events = streamer.run(mini_recording.data, chunk_size)
        assert len(events) == len(batch)
        np.testing.assert_array_equal(
            [e.label for e in events], batch.labels
        )
        np.testing.assert_allclose(
            [e.delta for e in events], batch.deltas
        )
        np.testing.assert_allclose(
            [e.time_s for e in events], batch.times
        )

    def test_alarm_edges_match_batch_detect(
        self, fitted_detector, mini_recording
    ):
        result = fitted_detector.detect(mini_recording.data)
        streamer = StreamingLaelaps(fitted_detector)
        events = streamer.run(mini_recording.data, 333)
        stream_alarms = [e.time_s for e in events if e.alarm]
        np.testing.assert_allclose(stream_alarms, result.alarm_times)


class TestStreamingBehaviour:
    def test_tiny_chunks_buffered(self, fitted_detector, mini_recording):
        streamer = StreamingLaelaps(fitted_detector)
        # Push three samples at a time; windows still complete.
        events = streamer.run(mini_recording.data[: 256 * 10], 3)
        assert streamer.windows_emitted == len(events) > 0

    def test_counters(self, fitted_detector, mini_recording):
        streamer = StreamingLaelaps(fitted_detector)
        streamer.push(mini_recording.data[:1000])
        assert streamer.samples_seen == 1000

    def test_wrong_channel_count_raises(self, fitted_detector):
        streamer = StreamingLaelaps(fitted_detector)
        with pytest.raises(ValueError):
            streamer.push(np.zeros((10, 2)))

    def test_no_events_before_first_window(self, fitted_detector):
        streamer = StreamingLaelaps(fitted_detector)
        spec = fitted_detector.config.window_spec
        events = streamer.push(
            np.zeros((spec.step_samples // 2, fitted_detector.n_electrodes))
        )
        assert events == []

    def test_alarm_fires_once_per_episode(
        self, mini_recording, mini_segments, small_config
    ):
        detector = LaelapsDetector(
            mini_recording.n_electrodes, small_config
        )
        detector.fit(mini_recording.data, mini_segments)
        streamer = StreamingLaelaps(detector)
        events = streamer.run(mini_recording.data, 512)
        alarms = [e for e in events if e.alarm]
        # Two seizures -> at most a few rising edges, not one per window.
        ictal_windows = sum(1 for e in events if e.label == 1)
        assert 1 <= len(alarms) <= 4
        assert ictal_windows > len(alarms)
