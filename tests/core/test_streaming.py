"""Tests for repro.core.streaming (online inference)."""

import numpy as np
import pytest

from repro.core.detector import LaelapsDetector
from repro.core.streaming import StreamingLaelaps
from repro.core.symbolizers import LBPSymbolizer


class TestConstruction:
    def test_requires_fitted_detector(self, small_config):
        detector = LaelapsDetector(4, small_config)
        with pytest.raises(ValueError):
            StreamingLaelaps(detector)


class TestEquivalenceWithBatch:
    """Streaming must reproduce the batch pipeline exactly."""

    @pytest.fixture(scope="class", params=[64, 150, 256, 1000])
    def chunk_size(self, request):
        return request.param

    def test_labels_match_batch(
        self, fitted_detector, mini_recording, chunk_size
    ):
        batch = fitted_detector.predict(mini_recording.data)
        streamer = StreamingLaelaps(fitted_detector)
        events = streamer.run(mini_recording.data, chunk_size)
        assert len(events) == len(batch)
        np.testing.assert_array_equal(
            [e.label for e in events], batch.labels
        )
        np.testing.assert_allclose(
            [e.delta for e in events], batch.deltas
        )
        np.testing.assert_allclose(
            [e.time_s for e in events], batch.times
        )

    def test_alarm_edges_match_batch_detect(
        self, fitted_detector, mini_recording
    ):
        result = fitted_detector.detect(mini_recording.data)
        streamer = StreamingLaelaps(fitted_detector)
        events = streamer.run(mini_recording.data, 333)
        stream_alarms = [e.time_s for e in events if e.alarm]
        np.testing.assert_allclose(stream_alarms, result.alarm_times)


class TestStreamingBehaviour:
    def test_tiny_chunks_buffered(self, fitted_detector, mini_recording):
        streamer = StreamingLaelaps(fitted_detector)
        # Push three samples at a time; windows still complete.
        events = streamer.run(mini_recording.data[: 256 * 10], 3)
        assert streamer.windows_emitted == len(events) > 0

    def test_counters(self, fitted_detector, mini_recording):
        streamer = StreamingLaelaps(fitted_detector)
        streamer.push(mini_recording.data[:1000])
        assert streamer.samples_seen == 1000

    def test_wrong_channel_count_raises(self, fitted_detector):
        streamer = StreamingLaelaps(fitted_detector)
        with pytest.raises(ValueError):
            streamer.push(np.zeros((10, 2)))

    def test_no_events_before_first_window(self, fitted_detector):
        streamer = StreamingLaelaps(fitted_detector)
        spec = fitted_detector.config.window_spec
        events = streamer.push(
            np.zeros((spec.step_samples // 2, fitted_detector.n_electrodes))
        )
        assert events == []

    def test_custom_symbolizer_length_matches_batch(
        self, mini_recording, mini_segments, small_config
    ):
        # Regression: streaming used cfg.lbp_length for code continuation
        # and decision times, so a custom-length LBPSymbolizer silently
        # produced wrong codes and times.  The symboliser is authoritative.
        symbolizer = LBPSymbolizer(4)
        assert symbolizer.length != small_config.lbp_length
        detector = LaelapsDetector(
            mini_recording.n_electrodes, small_config, symbolizer=symbolizer
        )
        detector.fit(mini_recording.data, mini_segments)
        segment = mini_recording.data[: 256 * 60]
        batch = detector.predict(segment)
        events = StreamingLaelaps(detector).run(segment, 777)
        assert len(events) == len(batch)
        np.testing.assert_array_equal(
            [e.label for e in events], batch.labels
        )
        np.testing.assert_allclose([e.time_s for e in events], batch.times)

    def test_mid_stream_chunk_times_continue(
        self, fitted_detector, mini_recording
    ):
        # Regression: per-chunk times restarted at window zero because
        # push() recomputed window_times from scratch for every chunk.
        streamer = StreamingLaelaps(fitted_detector)
        segment = mini_recording.data[: 256 * 30]
        times = [
            e.time_s for e in streamer.run(segment, 1000)
        ]
        expected = fitted_detector.window_times(len(times))
        np.testing.assert_allclose(times, expected)
        assert np.all(np.diff(times) > 0)

    def test_tr_retuned_after_open_is_honoured(
        self, fitted_detector, mini_recording
    ):
        # Regression: the stream froze detector.tr at construction; a
        # threshold (re)tuned afterwards must apply, matching detect().
        segment = mini_recording.data[: 256 * 60]
        streamer = StreamingLaelaps(fitted_detector)
        old_tr = fitted_detector.tr
        try:
            fitted_detector.tr = 1e9  # suppress everything
            batch = fitted_detector.detect(segment)
            events = streamer.run(segment, 512)
            assert batch.alarm_times.size == 0
            assert not any(e.alarm for e in events)
        finally:
            fitted_detector.tr = old_tr

    def test_checkpoint_resume_matches_uninterrupted(
        self, fitted_detector, mini_recording
    ):
        segment = mini_recording.data[: 256 * 40]
        reference = StreamingLaelaps(fitted_detector).run(segment, 300)
        first = StreamingLaelaps(fitted_detector)
        cut = 256 * 17 + 131  # mid-block, mid-code
        head = first.run(segment[:cut], 300)
        resumed = StreamingLaelaps(fitted_detector).restore_state(
            first.state_dict()
        )
        tail = resumed.run(segment[cut:], 300)
        assert head + tail == reference

    def test_alarm_fires_once_per_episode(
        self, mini_recording, mini_segments, small_config
    ):
        detector = LaelapsDetector(
            mini_recording.n_electrodes, small_config
        )
        detector.fit(mini_recording.data, mini_segments)
        streamer = StreamingLaelaps(detector)
        events = streamer.run(mini_recording.data, 512)
        alarms = [e for e in events if e.alarm]
        # Two seizures -> at most a few rising edges, not one per window.
        ictal_windows = sum(1 for e in events if e.label == 1)
        assert 1 <= len(alarms) <= 4
        assert ictal_windows > len(alarms)
