"""Tests for repro.core.training."""

import numpy as np
import pytest

from repro.core.training import (
    TrainingSegments,
    segment_slice,
    window_decision_times,
    windows_in_segments,
)
from repro.signal.windows import WindowSpec


class TestTrainingSegments:
    def test_valid(self):
        segments = TrainingSegments(
            ictal=((10.0, 30.0),), interictal=(100.0, 130.0)
        )
        assert len(segments.ictal) == 1

    def test_rejects_empty_ictal(self):
        with pytest.raises(ValueError):
            TrainingSegments(ictal=(), interictal=(0.0, 30.0))

    def test_rejects_reversed_segment(self):
        with pytest.raises(ValueError):
            TrainingSegments(ictal=((30.0, 10.0),), interictal=(0.0, 30.0))


class TestSegmentSlice:
    def test_basic(self):
        sl = segment_slice((1.0, 2.0), fs=100.0, n_samples=1000)
        assert sl == slice(100, 200)

    def test_margin_extends_end(self):
        sl = segment_slice((1.0, 2.0), fs=100.0, n_samples=1000, margin=6)
        assert sl == slice(100, 206)

    def test_clipped_to_recording(self):
        sl = segment_slice((8.0, 12.0), fs=100.0, n_samples=1000)
        assert sl == slice(800, 1000)

    def test_outside_recording_raises(self):
        with pytest.raises(ValueError):
            segment_slice((20.0, 30.0), fs=100.0, n_samples=1000)


class TestDecisionTimes:
    def test_formula(self):
        times = window_decision_times(3, WindowSpec(256, 128), fs=256.0, lbp_length=6)
        np.testing.assert_allclose(
            times, [(256 + 6) / 256, (128 + 256 + 6) / 256, (256 + 256 + 6) / 256]
        )

    def test_monotone_increasing(self):
        times = window_decision_times(50, WindowSpec(512, 256), 512.0, 6)
        assert np.all(np.diff(times) > 0)


class TestWindowsInSegments:
    def test_window_fully_inside(self):
        times = np.array([1.0, 2.0, 3.0, 4.0])
        mask = windows_in_segments(times, [(1.5, 3.5)], window_s=1.0)
        np.testing.assert_array_equal(mask, [False, False, True, False])

    def test_multiple_segments_union(self):
        times = np.array([1.0, 5.0, 9.0])
        mask = windows_in_segments(
            times, [(0.0, 1.5), (8.0, 10.0)], window_s=1.0
        )
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_empty_segments(self):
        mask = windows_in_segments(np.array([1.0, 2.0]), [], window_s=1.0)
        assert not mask.any()
