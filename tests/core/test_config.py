"""Tests for repro.core.config."""

import pytest

from repro.core.config import GOLDEN_DIM, ICTAL, INTERICTAL, LaelapsConfig


class TestDefaults:
    def test_paper_defaults(self):
        cfg = LaelapsConfig()
        assert cfg.dim == GOLDEN_DIM == 10_000
        assert cfg.lbp_length == 6
        assert cfg.fs == 512.0
        assert cfg.window_s == 1.0
        assert cfg.step_s == 0.5
        assert cfg.tc == 10
        assert cfg.postprocess_len == 10
        assert cfg.tr == 0.0

    def test_labels_distinct(self):
        assert INTERICTAL != ICTAL

    def test_window_spec_samples(self):
        spec = LaelapsConfig().window_spec
        assert spec.window_samples == 512
        assert spec.step_samples == 256

    def test_alphabet_size(self):
        assert LaelapsConfig().alphabet_size == 64


class TestValidation:
    def test_rejects_tiny_dim(self):
        with pytest.raises(ValueError):
            LaelapsConfig(dim=1)

    def test_rejects_bad_lbp_length(self):
        with pytest.raises(ValueError):
            LaelapsConfig(lbp_length=0)

    def test_rejects_tc_above_postprocess_len(self):
        with pytest.raises(ValueError):
            LaelapsConfig(tc=11, postprocess_len=10)

    def test_rejects_negative_tr(self):
        with pytest.raises(ValueError):
            LaelapsConfig(tr=-1.0)

    def test_rejects_window_smaller_than_alphabet(self):
        # Sec. III-A: the window must be able to contain every symbol.
        with pytest.raises(ValueError):
            LaelapsConfig(fs=32.0, window_s=1.0, lbp_length=6)

    def test_rejects_nonpositive_fs(self):
        with pytest.raises(ValueError):
            LaelapsConfig(fs=0.0)


class TestDerivedSeedsAndCopies:
    def test_memory_seeds_differ(self):
        cfg = LaelapsConfig(seed=99)
        assert cfg.code_memory_seed != cfg.electrode_memory_seed

    def test_with_dim(self):
        cfg = LaelapsConfig().with_dim(2_000)
        assert cfg.dim == 2_000
        assert cfg.lbp_length == 6

    def test_with_tr(self):
        cfg = LaelapsConfig().with_tr(55.0)
        assert cfg.tr == 55.0

    def test_with_backend(self):
        cfg = LaelapsConfig().with_backend("packed")
        assert cfg.backend == "packed"
        assert cfg.dim == LaelapsConfig().dim

    def test_default_backend_unpacked(self):
        assert LaelapsConfig().backend == "unpacked"

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            LaelapsConfig(backend="simd")

    def test_frozen(self):
        with pytest.raises(Exception):
            LaelapsConfig().dim = 5  # type: ignore[misc]
