"""Packed-vs-unpacked backend parity of the full detector pipeline.

The two backends of :class:`LaelapsDetector` must be bit-exact: same
labels, same Hamming distances, same confidence scores, same alarms —
on batch inference, streaming with arbitrary chunk sizes, and through
a persistence round-trip.
"""

import numpy as np
import pytest

from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.core.persistence import load_model, save_model
from repro.core.streaming import StreamingLaelaps
from repro.hdc.backend import pack_bits, packed_words, unpack_bits


@pytest.fixture(scope="module")
def packed_config(small_config) -> LaelapsConfig:
    return small_config.with_backend("packed")


@pytest.fixture(scope="module")
def fitted_packed_detector(
    mini_recording, mini_segments, packed_config
) -> LaelapsDetector:
    detector = LaelapsDetector(mini_recording.n_electrodes, packed_config)
    detector.fit(mini_recording.data, mini_segments)
    return detector


class TestBitExactness:
    def test_predictions_identical(
        self, fitted_detector, fitted_packed_detector, mini_recording
    ):
        unpacked = fitted_detector.predict(mini_recording.data)
        packed = fitted_packed_detector.predict(mini_recording.data)
        np.testing.assert_array_equal(unpacked.labels, packed.labels)
        np.testing.assert_array_equal(unpacked.distances, packed.distances)
        np.testing.assert_allclose(unpacked.deltas, packed.deltas)
        np.testing.assert_allclose(unpacked.times, packed.times)

    def test_detect_identical(
        self, fitted_detector, fitted_packed_detector, mini_recording
    ):
        unpacked = fitted_detector.detect(mini_recording.data)
        packed = fitted_packed_detector.detect(mini_recording.data)
        np.testing.assert_array_equal(unpacked.flags, packed.flags)
        np.testing.assert_allclose(unpacked.alarm_times, packed.alarm_times)

    def test_fit_reports_identical(
        self, fitted_detector, fitted_packed_detector
    ):
        assert fitted_detector.fit_report == fitted_packed_detector.fit_report

    def test_prototypes_identical(
        self, fitted_detector, fitted_packed_detector
    ):
        for label in (0, 1):
            np.testing.assert_array_equal(
                fitted_detector.memory.prototype(label),
                fitted_packed_detector.memory.prototype(label),
            )


class TestNativeWindowForms:
    def test_packed_encode_shape_and_dtype(
        self, fitted_packed_detector, mini_recording
    ):
        h = fitted_packed_detector.encode(mini_recording.data[: 256 * 20])
        assert h.dtype == np.uint64
        assert h.shape[1] == packed_words(fitted_packed_detector.config.dim)

    def test_predict_accepts_either_form(
        self, fitted_detector, fitted_packed_detector, mini_recording
    ):
        segment = mini_recording.data[: 256 * 20]
        h_unpacked = fitted_detector.encode(segment)
        h_packed = fitted_packed_detector.encode(segment)
        dim = fitted_detector.config.dim
        np.testing.assert_array_equal(
            unpack_bits(h_packed, dim), h_unpacked
        )
        # Cross-feeding: each detector classifies both forms identically.
        for detector in (fitted_detector, fitted_packed_detector):
            from_unpacked = detector.predict_from_windows(h_unpacked)
            from_packed = detector.predict_from_windows(h_packed)
            np.testing.assert_array_equal(
                from_unpacked.labels, from_packed.labels
            )
            np.testing.assert_array_equal(
                from_unpacked.distances, from_packed.distances
            )

    def test_single_packed_window(self, fitted_packed_detector, mini_recording):
        h = fitted_packed_detector.encode(mini_recording.data[: 256 * 20])
        preds = fitted_packed_detector.predict_from_windows(h[0])
        assert len(preds) == 1

    def test_rejects_wrong_width(self, fitted_packed_detector):
        with pytest.raises(ValueError):
            fitted_packed_detector.predict_from_windows(
                np.zeros((3, 17), dtype=np.uint64)
            )

    def test_fit_from_packed_windows(self, small_config, rng):
        config = small_config.with_backend("packed")
        detector = LaelapsDetector(4, config)
        ictal = pack_bits(rng.integers(0, 2, config.dim, dtype=np.uint8))
        inter = pack_bits(rng.integers(0, 2, config.dim, dtype=np.uint8))
        detector.fit_from_windows(ictal, inter)
        assert detector.is_fitted
        # A prototype trained from one vector equals that vector.
        np.testing.assert_array_equal(
            pack_bits(detector.memory.prototype(1)), ictal
        )


class TestStreamingChunkBoundaries:
    """Arbitrary chunk sizes must reproduce one-shot detect, per backend."""

    @pytest.fixture(
        scope="class", params=[64, 150, 256, 333, 1000, 7000]
    )
    def chunk_size(self, request):
        return request.param

    @pytest.fixture(
        scope="class", params=["unpacked", "packed"]
    )
    def backend_detector(
        self, request, fitted_detector, fitted_packed_detector
    ):
        return (
            fitted_packed_detector
            if request.param == "packed"
            else fitted_detector
        )

    def test_stream_matches_one_shot_detect(
        self, backend_detector, mini_recording, chunk_size
    ):
        result = backend_detector.detect(mini_recording.data)
        streamer = StreamingLaelaps(backend_detector)
        events = streamer.run(mini_recording.data, chunk_size)
        assert len(events) == len(result.predictions)
        np.testing.assert_array_equal(
            [e.label for e in events], result.predictions.labels
        )
        np.testing.assert_allclose(
            [e.delta for e in events], result.predictions.deltas
        )
        np.testing.assert_allclose(
            [e.time_s for e in events if e.alarm], result.alarm_times
        )


class TestPersistence:
    def test_backend_round_trips(
        self, fitted_packed_detector, mini_recording, tmp_path
    ):
        path = save_model(fitted_packed_detector, tmp_path / "packed.npz")
        loaded = load_model(path)
        assert loaded.backend == "packed"
        assert loaded.config == fitted_packed_detector.config
        segment = mini_recording.data[: 256 * 40]
        original = fitted_packed_detector.predict(segment)
        restored = loaded.predict(segment)
        np.testing.assert_array_equal(original.labels, restored.labels)
        np.testing.assert_array_equal(original.distances, restored.distances)
