"""Tests for repro.lbp.histogram."""

import numpy as np
import pytest

from repro.lbp.histogram import (
    code_histogram,
    code_histogram_multichannel,
    sliding_histograms,
)
from repro.signal.windows import WindowSpec


class TestCodeHistogram:
    def test_counts(self):
        hist = code_histogram(np.array([0, 1, 1, 3]), 4)
        np.testing.assert_array_equal(hist, [1, 2, 0, 1])

    def test_normalised_sums_to_one(self):
        hist = code_histogram(np.array([0, 1, 1, 3]), 4, normalise=True)
        assert hist.sum() == pytest.approx(1.0)

    def test_empty_stream_gives_zeros(self):
        hist = code_histogram(np.array([], dtype=int), 4, normalise=True)
        np.testing.assert_array_equal(hist, np.zeros(4))

    def test_out_of_range_code_raises(self):
        with pytest.raises(ValueError):
            code_histogram(np.array([4]), 4)


class TestMultichannel:
    def test_per_channel_counts(self):
        codes = np.array([[0, 1], [0, 1], [1, 1]])
        hists = code_histogram_multichannel(codes, 2)
        np.testing.assert_array_equal(hists[0], [2, 1])
        np.testing.assert_array_equal(hists[1], [0, 3])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            code_histogram_multichannel(np.zeros(5, dtype=int), 4)


class TestSlidingHistograms:
    def test_shape(self):
        codes = np.zeros((20, 3), dtype=int)
        out = sliding_histograms(codes, 4, WindowSpec(8, 4))
        assert out.shape == (4, 3, 4)

    def test_window_content_matches_manual(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 4, size=(30, 2))
        spec = WindowSpec(10, 5)
        out = sliding_histograms(codes, 4, spec, normalise=False)
        manual = np.array(
            [np.bincount(codes[5 : 15, 1], minlength=4)], dtype=float
        )
        np.testing.assert_array_equal(out[1, 1], manual[0])

    def test_normalisation_per_channel(self):
        rng = np.random.default_rng(1)
        codes = rng.integers(0, 8, size=(40, 2))
        out = sliding_histograms(codes, 8, WindowSpec(16, 8), normalise=True)
        np.testing.assert_allclose(out.sum(axis=2), 1.0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            sliding_histograms(np.zeros(5, dtype=int), 4, WindowSpec(2, 1))
