"""Tests for repro.lbp.codes."""

import numpy as np
import pytest

from repro.lbp.codes import (
    LBPConfig,
    lbp_codes,
    lbp_codes_multichannel,
    num_codes,
    sign_bits,
)


class TestConfig:
    def test_alphabet_size(self):
        assert LBPConfig(length=6).alphabet_size == 64

    @pytest.mark.parametrize("bad", [0, -1, 17])
    def test_rejects_bad_length(self, bad):
        with pytest.raises(ValueError):
            LBPConfig(length=bad)


class TestSignBits:
    def test_increasing_signal_gives_ones(self):
        bits = sign_bits(np.arange(5.0))
        np.testing.assert_array_equal(bits, [1, 1, 1, 1])

    def test_decreasing_signal_gives_zeros(self):
        bits = sign_bits(np.arange(5.0)[::-1])
        np.testing.assert_array_equal(bits, [0, 0, 0, 0])

    def test_tie_counts_as_zero(self):
        bits = sign_bits(np.array([1.0, 1.0, 2.0]))
        np.testing.assert_array_equal(bits, [0, 1])

    def test_short_signal_gives_empty(self):
        assert sign_bits(np.array([1.0])).shape == (0,)

    def test_multichannel_shape(self):
        bits = sign_bits(np.zeros((10, 3)))
        assert bits.shape == (9, 3)


class TestCodes:
    def test_monotone_rise_is_all_ones_code(self):
        codes = lbp_codes(np.arange(10.0), length=6)
        assert codes.shape == (4,)
        assert np.all(codes == 0b111111)

    def test_monotone_fall_is_zero_code(self):
        codes = lbp_codes(-np.arange(10.0), length=6)
        assert np.all(codes == 0)

    def test_known_pattern_msb_first(self):
        # Signal 0,1,0,1,0 -> bits 1,0,1,0; length 3 codes: 101, 010.
        signal = np.array([0.0, 1.0, 0.0, 1.0, 0.0])
        codes = lbp_codes(signal, length=3)
        np.testing.assert_array_equal(codes, [0b101, 0b010])

    def test_count_matches_num_codes(self):
        rng = np.random.default_rng(0)
        for n in [7, 20, 100]:
            signal = rng.standard_normal(n)
            assert lbp_codes(signal, 6).shape[0] == num_codes(n, 6)

    def test_codes_in_alphabet_range(self):
        rng = np.random.default_rng(1)
        codes = lbp_codes(rng.standard_normal(1000), length=5)
        assert codes.min() >= 0
        assert codes.max() < 32

    def test_rejects_multichannel_input(self):
        with pytest.raises(ValueError):
            lbp_codes(np.zeros((10, 2)))

    def test_too_short_signal_gives_empty(self):
        assert lbp_codes(np.arange(6.0), length=6).shape == (0,)


class TestMultichannel:
    def test_columns_match_per_channel_codes(self):
        rng = np.random.default_rng(2)
        signal = rng.standard_normal((50, 4))
        multi = lbp_codes_multichannel(signal, 6)
        for ch in range(4):
            np.testing.assert_array_equal(
                multi[:, ch], lbp_codes(signal[:, ch], 6)
            )

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            lbp_codes_multichannel(np.zeros(10))

    def test_dtype_is_uint16(self):
        out = lbp_codes_multichannel(np.random.default_rng(0).standard_normal((20, 2)), 8)
        assert out.dtype == np.uint16
