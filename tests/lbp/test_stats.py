"""Tests for repro.lbp.stats and the documented ictal/interictal contrast."""

import numpy as np
import pytest

from repro.data.synthetic import SeizurePlan, SynthesisParams, SyntheticIEEGGenerator
from repro.lbp.codes import lbp_codes_multichannel
from repro.lbp.histogram import code_histogram
from repro.lbp.stats import (
    code_entropy,
    dominant_code_fraction,
    histogram_flatness,
    occupied_fraction,
)


class TestEntropy:
    def test_uniform_histogram_max_entropy(self):
        assert code_entropy(np.ones(64)) == pytest.approx(6.0)

    def test_degenerate_histogram_zero_entropy(self):
        hist = np.zeros(64)
        hist[3] = 10
        assert code_entropy(hist) == pytest.approx(0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            code_entropy(np.zeros(4))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            code_entropy(np.array([1.0, -1.0]))


class TestFlatness:
    def test_uniform_is_one(self):
        assert histogram_flatness(np.ones(16)) == pytest.approx(1.0)

    def test_degenerate_is_zero(self):
        hist = np.zeros(16)
        hist[0] = 5
        assert histogram_flatness(hist) == pytest.approx(0.0)

    def test_single_bin_defined_zero(self):
        assert histogram_flatness(np.array([3.0])) == 0.0


class TestDominantAndOccupied:
    def test_dominant_fraction(self):
        assert dominant_code_fraction(np.array([1.0, 3.0])) == pytest.approx(0.75)

    def test_occupied_fraction(self):
        assert occupied_fraction(np.array([0.0, 2.0, 0.0, 1.0])) == pytest.approx(0.5)

    def test_occupied_rejects_empty_array(self):
        with pytest.raises(ValueError):
            occupied_fraction(np.array([]))


class TestSectionIIAContrast:
    """The generator must reproduce the paper's Sec. II-A observation."""

    @pytest.fixture(scope="class")
    def histograms(self):
        params = SynthesisParams(fs=256.0)
        generator = SyntheticIEEGGenerator(16, params, seed=3)
        recording = generator.generate(120.0, [SeizurePlan(60.0, 30.0)])
        codes = lbp_codes_multichannel(recording.data, 6)
        fs = int(params.fs)
        ictal = code_histogram(codes[66 * fs : 88 * fs].ravel(), 64)
        interictal = code_histogram(codes[5 * fs : 55 * fs].ravel(), 64)
        return ictal, interictal

    def test_interictal_histogram_flattened(self, histograms):
        _, interictal = histograms
        assert histogram_flatness(interictal) > 0.9

    def test_ictal_histogram_concentrated(self, histograms):
        ictal, interictal = histograms
        assert histogram_flatness(ictal) < histogram_flatness(interictal) - 0.05

    def test_ictal_has_predominant_code(self, histograms):
        ictal, interictal = histograms
        assert dominant_code_fraction(ictal) > 4 * dominant_code_fraction(interictal)
