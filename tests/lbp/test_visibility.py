"""Tests for the HVG symbolisation comparator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.symbolizers import HVGSymbolizer, LBPSymbolizer
from repro.lbp.visibility import (
    hvg_alphabet_size,
    hvg_codes,
    hvg_codes_multichannel,
    hvg_degrees,
)


def _brute_force_degrees(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """O(n^2) reference: i sees j (i<j) iff all between are < min(xi, xj)."""
    n = x.size
    in_deg = np.zeros(n, dtype=np.int64)
    out_deg = np.zeros(n, dtype=np.int64)
    for i in range(n):
        for j in range(i + 1, n):
            between = x[i + 1 : j]
            if between.size == 0 or between.max() < min(x[i], x[j]):
                out_deg[i] += 1
                in_deg[j] += 1
    return in_deg, out_deg


class TestHvgDegrees:
    def test_matches_brute_force_random(self, rng):
        for _ in range(10):
            x = rng.standard_normal(rng.integers(2, 40))
            fast = hvg_degrees(x)
            slow = _brute_force_degrees(x)
            np.testing.assert_array_equal(fast[0], slow[0])
            np.testing.assert_array_equal(fast[1], slow[1])

    def test_monotone_rise(self):
        # Strictly increasing: every point sees exactly its neighbour(s).
        in_deg, out_deg = hvg_degrees(np.arange(5.0))
        np.testing.assert_array_equal(out_deg, [1, 1, 1, 1, 0])
        np.testing.assert_array_equal(in_deg, [0, 1, 1, 1, 1])

    def test_valley_sees_across(self):
        # 2, 0, 3: the two peaks see each other over the valley.
        in_deg, out_deg = hvg_degrees(np.array([2.0, 0.0, 3.0]))
        assert out_deg[0] == 2  # sees the valley and the far peak
        assert in_deg[2] == 2

    def test_plateaus_match_brute_force(self, rng):
        for _ in range(10):
            x = rng.integers(0, 3, size=20).astype(float)  # many ties
            fast = hvg_degrees(x)
            slow = _brute_force_degrees(x)
            np.testing.assert_array_equal(fast[0], slow[0])
            np.testing.assert_array_equal(fast[1], slow[1])

    @settings(max_examples=60, deadline=None)
    @given(hnp.arrays(np.float64, st.integers(2, 30),
                      elements=st.floats(-100, 100, allow_nan=False)))
    def test_property_matches_brute_force(self, x):
        fast = hvg_degrees(x)
        slow = _brute_force_degrees(x)
        np.testing.assert_array_equal(fast[0], slow[0])
        np.testing.assert_array_equal(fast[1], slow[1])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            hvg_degrees(np.zeros((4, 2)))


class TestHvgCodes:
    def test_alphabet(self):
        assert hvg_alphabet_size(7) == 64

    def test_codes_in_range(self, rng):
        codes = hvg_codes(rng.standard_normal(500), degree_cap=7)
        assert codes.min() >= 0
        assert codes.max() < 64

    def test_cap_applied(self):
        # A huge valley gives the first point a large out degree.
        x = np.concatenate([[100.0], -np.arange(50.0), [101.0]])
        codes = hvg_codes(x, degree_cap=3)
        assert codes.max() < hvg_alphabet_size(3)

    def test_multichannel_matches_per_channel(self, rng):
        signal = rng.standard_normal((60, 3))
        multi = hvg_codes_multichannel(signal)
        for ch in range(3):
            np.testing.assert_array_equal(multi[:, ch], hvg_codes(signal[:, ch]))

    def test_rejects_bad_cap(self):
        with pytest.raises(ValueError):
            hvg_codes(np.zeros(10), degree_cap=0)


class TestSymbolizersInDetector:
    def test_hvg_detector_runs(self, mini_recording, mini_segments, small_config):
        from repro.core.detector import LaelapsDetector

        det = LaelapsDetector(
            mini_recording.n_electrodes, small_config,
            symbolizer=HVGSymbolizer(),
        )
        assert det.code_memory.n_items == 64
        det.fit(mini_recording.data, mini_segments)
        preds = det.predict(mini_recording.data[: 256 * 30])
        assert len(preds) > 0

    def test_lbp_symbolizer_is_default(self, small_config):
        from repro.core.detector import LaelapsDetector

        det = LaelapsDetector(4, small_config)
        assert isinstance(det.symbolizer, LBPSymbolizer)
        assert det.symbolizer.length == small_config.lbp_length

    def test_streaming_rejects_non_lbp(self, mini_recording, mini_segments, small_config):
        from repro.core.detector import LaelapsDetector
        from repro.core.streaming import StreamingLaelaps

        det = LaelapsDetector(
            mini_recording.n_electrodes, small_config,
            symbolizer=HVGSymbolizer(),
        )
        det.fit(mini_recording.data, mini_segments)
        with pytest.raises(ValueError):
            StreamingLaelaps(det)
