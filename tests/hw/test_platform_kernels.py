"""Tests for repro.hw.platform and repro.hw.kernels."""

import pytest

from repro.hw.kernels import (
    KernelSpec,
    laelaps_kernels,
    simulate_kernel,
    simulate_kernels,
)
from repro.hw.platform import MAXQ


class TestPlatform:
    def test_datasheet_values(self):
        assert MAXQ.gpu_sms == 2
        assert MAXQ.gpu_cores == 256
        assert MAXQ.gpu_clock_ghz == pytest.approx(0.85)
        assert MAXQ.cpu_clock_ghz == pytest.approx(1.2)
        assert MAXQ.dram_bandwidth_gbs == pytest.approx(58.4)
        assert MAXQ.shared_mem_per_sm_kb == pytest.approx(64.0)

    def test_cores_per_sm(self):
        assert MAXQ.cores_per_sm == 128

    def test_peak_flops(self):
        # 256 cores x 0.85 GHz x 2 = 435 GFLOPS; the paper quotes
        # 750 GFLOPS at the full 1.3 GHz clock.
        assert MAXQ.gpu_flops_per_s == pytest.approx(435.2e9)

    def test_shared_mem_fits(self):
        assert MAXQ.shared_mem_fits(64 * 1024)
        assert not MAXQ.shared_mem_fits(64 * 1024 + 1)


class TestKernelModel:
    def test_launch_overhead_floor(self):
        spec = KernelSpec("tiny", 1, 32, instructions_per_thread=1.0)
        cost = simulate_kernel(spec, MAXQ)
        assert cost.time_ms >= MAXQ.kernel_launch_overhead_us * 1e-3

    def test_more_blocks_more_time(self):
        small = KernelSpec("s", 2, 256, 1000.0)
        big = KernelSpec("b", 2048, 256, 1000.0)
        assert (
            simulate_kernel(big, MAXQ).time_ms
            > simulate_kernel(small, MAXQ).time_ms
        )

    def test_memory_bound_detection(self):
        compute = KernelSpec("c", 64, 256, 1e6, dram_bytes=1)
        memory = KernelSpec("m", 1, 32, 1.0, dram_bytes=10**9)
        assert simulate_kernel(compute, MAXQ).bound == "compute"
        assert simulate_kernel(memory, MAXQ).bound == "memory"

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            KernelSpec("bad", 0, 32, 1.0)

    def test_sequence_sums(self):
        specs = [KernelSpec("a", 1, 32, 10.0), KernelSpec("b", 1, 32, 10.0)]
        total, costs = simulate_kernels(specs, MAXQ)
        assert total == pytest.approx(sum(c.time_ms for c in costs))


class TestLaelapsKernels:
    def test_grid_shapes_match_fig2(self):
        lbp, encoding, classification = laelaps_kernels(128, dim=1_000)
        assert lbp.blocks == 128 and lbp.threads_per_block == 256
        assert encoding.blocks == 32 and encoding.threads_per_block == 32
        assert classification.blocks == 1
        assert classification.threads_per_block == 32

    def test_item_memories_fit_shared_memory(self):
        # Sec. V-B: IM1 (64 kbit) + IM2 (128 kbit) fit the 64 kB shared
        # memory even for the largest configuration (128 electrodes,
        # d = 1 kbit).
        _, encoding, _ = laelaps_kernels(128, dim=1_000)
        assert MAXQ.shared_mem_fits(encoding.shared_mem_bytes)

    def test_near_constant_electrode_scaling(self):
        t24, _ = simulate_kernels(laelaps_kernels(24, 1_000), MAXQ)
        t128, _ = simulate_kernels(laelaps_kernels(128, 1_000), MAXQ)
        # Sec. V-C: 12.5 ms vs 13.0 ms on hardware -> within ~10 %.
        assert t128 / t24 < 1.6

    def test_rejects_tiny_dim(self):
        with pytest.raises(ValueError):
            laelaps_kernels(8, dim=16)
