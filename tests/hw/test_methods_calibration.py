"""Tests for repro.hw.methods and repro.hw.calibration."""

import pytest

from repro.hw.calibration import TABLE2_ANCHORS, calibrate
from repro.hw.methods import method_op_counts


class TestOpCounts:
    @pytest.mark.parametrize("method", ["laelaps", "svm", "cnn", "lstm"])
    def test_positive_costs(self, method):
        counts = method_op_counts(method, 64)
        assert counts.flops > 0
        assert counts.dram_bytes > 0
        assert counts.kernel_launches >= 1

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            method_op_counts("mlp", 64)

    def test_laelaps_sublinear_in_electrodes(self):
        f24 = method_op_counts("laelaps", 24).flops
        f128 = method_op_counts("laelaps", 128).flops
        # The *serial* op count grows sublinearly (the encoding kernel
        # folds 32 electrodes per popcount); the near-constant *time* of
        # Table II additionally comes from the per-electrode LBP work
        # running on parallel thread blocks — asserted in test_energy.
        assert f128 / f24 < 0.9 * (128 / 24)

    @pytest.mark.parametrize("method", ["svm", "cnn", "lstm"])
    def test_baselines_linear_in_electrodes(self, method):
        f24 = method_op_counts(method, 24).flops
        f128 = method_op_counts(method, 128).flops
        assert f128 / f24 > 3.0

    def test_lstm_is_memory_heavy(self):
        lstm = method_op_counts("lstm", 64)
        cnn = method_op_counts("cnn", 64)
        # Bytes per flop: the LSTM re-streams its weights every step
        # (Sec. V-C calls it memory bound).
        assert lstm.dram_bytes / lstm.flops > cnn.dram_bytes / cnn.flops


class TestCalibration:
    @pytest.fixture(scope="class")
    def methods(self):
        return calibrate()

    def test_reproduces_anchor_times(self, methods):
        for name, points in TABLE2_ANCHORS.items():
            for n, (time_ms, _) in points.items():
                assert methods[name].time_ms(n) == pytest.approx(
                    time_ms, rel=1e-9
                ), f"{name}@{n}"

    def test_reproduces_anchor_energy_closely(self, methods):
        # Energy uses a single mean power per method, so anchors match
        # within the power spread between the two operating points.
        for name, points in TABLE2_ANCHORS.items():
            for n, (_, energy_mj) in points.items():
                assert methods[name].energy_mj(n) == pytest.approx(
                    energy_mj, rel=0.12
                ), f"{name}@{n}"

    def test_power_in_maxq_envelope(self, methods):
        for method in methods.values():
            assert 1.5 < method.power_w < 3.5

    def test_resources_match_table2_legend(self, methods):
        assert methods["laelaps"].resource == "gpu"
        assert methods["svm"].resource == "cpu"
        assert methods["cnn"].resource == "gpu"
        assert methods["lstm"].resource == "cpu"

    def test_missing_anchor_raises(self):
        with pytest.raises(ValueError):
            calibrate({"laelaps": {24: (12.5, 32.0)}})
