"""Tests for repro.hw.energy — the Table II / Fig. 3 claims."""

import pytest

from repro.hw.energy import (
    MethodCostModel,
    electrode_scaling,
    fig3_points,
    table2,
)


@pytest.fixture(scope="module")
def model() -> MethodCostModel:
    return MethodCostModel()


class TestTable2Reproduction:
    @pytest.fixture(scope="class")
    def rows(self):
        return {(r["electrodes"], r["method"]): r for r in table2()}

    def test_paper_time_ratios_at_128(self, rows):
        # Paper: SVM 3.9x, CNN 16x, LSTM 487x.
        assert rows[(128, "svm")]["time_ratio"] == pytest.approx(3.9, rel=0.05)
        assert rows[(128, "cnn")]["time_ratio"] == pytest.approx(16.0, rel=0.05)
        assert rows[(128, "lstm")]["time_ratio"] == pytest.approx(487.0, rel=0.05)

    def test_paper_time_ratios_at_24(self, rows):
        # Paper: SVM 1.7x, CNN 4.2x, LSTM 113x.
        assert rows[(24, "svm")]["time_ratio"] == pytest.approx(1.7, rel=0.05)
        assert rows[(24, "cnn")]["time_ratio"] == pytest.approx(4.2, rel=0.05)
        assert rows[(24, "lstm")]["time_ratio"] == pytest.approx(113.0, rel=0.05)

    def test_paper_energy_ratios(self, rows):
        # Paper: SVM 2.9x/1.4x, CNN 16x/4.1x, LSTM 464x/124x (energy uses
        # one mean power per method, so allow a wider band).
        assert rows[(128, "svm")]["energy_ratio"] == pytest.approx(2.9, rel=0.15)
        assert rows[(24, "svm")]["energy_ratio"] == pytest.approx(1.4, rel=0.15)
        assert rows[(128, "cnn")]["energy_ratio"] == pytest.approx(16.0, rel=0.15)
        assert rows[(24, "cnn")]["energy_ratio"] == pytest.approx(4.1, rel=0.15)
        assert rows[(128, "lstm")]["energy_ratio"] == pytest.approx(464.0, rel=0.15)
        assert rows[(24, "lstm")]["energy_ratio"] == pytest.approx(124.0, rel=0.15)

    def test_laelaps_always_fastest_and_lowest_energy(self, rows):
        for n in (24, 128):
            for method in ("svm", "cnn", "lstm"):
                assert rows[(n, method)]["time_ratio"] > 1.0
                assert rows[(n, method)]["energy_ratio"] > 1.0


class TestFig3:
    def test_default_points_use_paper_fdr(self):
        points = {p["method"]: p for p in fig3_points()}
        assert points["laelaps"]["fdr_per_hour"] == 0.0
        assert points["lstm"]["fdr_per_hour"] == pytest.approx(0.54)

    def test_laelaps_dominates_pareto(self):
        # Fig. 3's message: Laelaps is bottom-left — no method has lower
        # energy or lower FDR.
        points = {p["method"]: p for p in fig3_points()}
        for method in ("svm", "cnn", "lstm"):
            assert points[method]["energy_mj"] > points["laelaps"]["energy_mj"]
            assert points[method]["fdr_per_hour"] >= points["laelaps"]["fdr_per_hour"]

    def test_svm_beats_deep_learning_energy(self):
        # Sec. V-C: the SVM needs up to 2 orders of magnitude less
        # energy than the deep-learning methods.
        points = {p["method"]: p for p in fig3_points()}
        assert points["svm"]["energy_mj"] < points["cnn"]["energy_mj"]
        assert points["lstm"]["energy_mj"] > 50 * points["svm"]["energy_mj"]

    def test_measured_fdr_override(self):
        points = fig3_points({"laelaps": 0.1, "svm": 0.2})
        assert {p["method"] for p in points} == {"laelaps", "svm"}


class TestScalingClaims:
    def test_laelaps_nearly_constant(self, model):
        sweep = electrode_scaling(model=model)["laelaps"]
        times = [e.time_ms for e in sweep]
        assert max(times) / min(times) < 1.1  # 12.5 -> 13.0 ms in the paper

    def test_baselines_grow_superlinearly_in_range(self, model):
        sweep = electrode_scaling(model=model)
        for method in ("svm", "cnn", "lstm"):
            times = [e.time_ms for e in sweep[method]]
            assert times[-1] / times[0] > 2.0

    def test_speedup_range_matches_abstract(self, model):
        # Abstract: 1.7x-3.9x faster, 1.4x-2.9x lower energy than the
        # best SoA (the SVM).
        lo = model.estimate("laelaps", 24)
        hi = model.estimate("laelaps", 128)
        svm_lo = model.estimate("svm", 24)
        svm_hi = model.estimate("svm", 128)
        assert lo.speedup_vs(svm_lo) == pytest.approx(1.7, abs=0.1)
        assert hi.speedup_vs(svm_hi) == pytest.approx(3.9, abs=0.1)
        assert lo.energy_saving_vs(svm_lo) == pytest.approx(1.4, abs=0.15)
        assert hi.energy_saving_vs(svm_hi) == pytest.approx(2.9, abs=0.3)

    def test_kernel_breakdown_fits_shared_memory(self, model):
        total_ms, costs = model.laelaps_kernel_breakdown(128, dim=1_000)
        assert total_ms > 0
        assert [c.name for c in costs] == ["lbp", "encoding", "classification"]

    def test_unknown_method_raises(self, model):
        with pytest.raises(KeyError):
            model.estimate("transformer", 64)

    def test_bad_electrodes_raises(self, model):
        with pytest.raises(ValueError):
            model.estimate("laelaps", 0)
