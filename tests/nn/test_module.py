"""Tests for repro.nn.module structure (parameters, modes)."""

import numpy as np

from repro.nn import LSTM, Conv2d, Dropout, Linear, ReLU, Sequential
from repro.nn.module import Parameter


class TestParameterDiscovery:
    def test_linear_has_two_parameters(self):
        assert len(Linear(3, 2).parameters()) == 2

    def test_sequential_collects_recursively(self):
        model = Sequential(Linear(3, 4), ReLU(), Linear(4, 2))
        assert len(model.parameters()) == 4

    def test_lstm_exposes_cell_parameters(self):
        assert len(LSTM(3, 4).parameters()) == 2

    def test_n_parameters_counts_scalars(self):
        model = Linear(3, 2)
        assert model.n_parameters() == 3 * 2 + 2

    def test_zero_grad_clears_all(self, rng):
        model = Sequential(Linear(3, 4), ReLU(), Linear(4, 2))
        out = model.forward(rng.standard_normal((2, 3)))
        model.backward(np.ones_like(out))
        assert any(np.any(p.grad != 0) for p in model.parameters())
        model.zero_grad()
        assert all(np.all(p.grad == 0) for p in model.parameters())


class TestModes:
    def test_train_eval_propagates(self):
        model = Sequential(Conv2d(1, 2, 3), Dropout(0.5), Linear(2, 2))
        model.eval()
        assert not model.modules[1].training
        model.train(True)
        assert model.modules[1].training

    def test_parameter_repr(self):
        param = Parameter(np.zeros((2, 3)), name="weight")
        assert "weight" in repr(param)
        assert "(2, 3)" in repr(param)


class TestSequentialDataflow:
    def test_forward_backward_shapes(self, rng):
        model = Sequential(Linear(6, 5), ReLU(), Linear(5, 3))
        x = rng.standard_normal((4, 6))
        out = model.forward(x)
        assert out.shape == (4, 3)
        grad = model.backward(np.ones((4, 3)))
        assert grad.shape == (4, 6)
