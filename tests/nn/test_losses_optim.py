"""Tests for repro.nn losses and optimisers."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Linear, hinge_loss, softmax_cross_entropy
from repro.nn.gradcheck import numerical_gradient
from repro.nn.losses import softmax


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probs = softmax(rng.standard_normal((5, 3)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_stable_with_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(probs, [[0.5, 0.5]])


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_gradient_matches_numerical(self, rng):
        logits = rng.standard_normal((4, 3))
        targets = np.array([0, 2, 1, 1])

        def f(x):
            return softmax_cross_entropy(x, targets)[0]

        _, grad = softmax_cross_entropy(logits.copy(), targets)
        numeric = numerical_gradient(f, logits.copy())
        np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 2)), np.zeros(3, dtype=int))


class TestHinge:
    def test_zero_loss_beyond_margin(self):
        loss, grad = hinge_loss(np.array([2.0, -2.0]), np.array([1.0, -1.0]))
        assert loss == 0.0
        np.testing.assert_array_equal(grad, 0.0)

    def test_gradient_matches_numerical(self, rng):
        scores = rng.standard_normal(6) * 2
        y = np.where(rng.random(6) > 0.5, 1.0, -1.0)

        def f(s):
            return hinge_loss(s, y)[0]

        _, grad = hinge_loss(scores.copy(), y)
        numeric = numerical_gradient(f, scores.copy())
        np.testing.assert_allclose(grad, numeric, atol=1e-5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            hinge_loss(np.zeros(3), np.zeros(4))


def _quadratic_problem(seed=0):
    """A linear layer fit to a fixed random regression target."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((64, 4))
    true_w = rng.standard_normal((4, 2))
    y = x @ true_w
    layer = Linear(4, 2, seed=seed)

    def loss_and_grad():
        pred = layer.forward(x)
        diff = pred - y
        loss = float((diff**2).mean())
        layer.zero_grad()
        layer.backward(2 * diff / diff.size)
        return loss

    return layer, loss_and_grad


class TestOptimisers:
    @pytest.mark.parametrize("make_opt", [
        lambda p: SGD(p, lr=0.1),
        lambda p: SGD(p, lr=0.05, momentum=0.9),
        lambda p: Adam(p, lr=0.05),
    ])
    def test_converges_on_regression(self, make_opt):
        layer, loss_and_grad = _quadratic_problem()
        optimizer = make_opt(layer.parameters())
        first = loss_and_grad()
        optimizer.step()
        for _ in range(200):
            loss = loss_and_grad()
            optimizer.step()
        assert loss < 0.01 * first

    def test_weight_decay_shrinks_weights(self):
        layer, loss_and_grad = _quadratic_problem()
        optimizer = SGD(layer.parameters(), lr=0.01, weight_decay=10.0)
        for _ in range(100):
            loss_and_grad()
            optimizer.step()
        assert np.abs(layer.weight.data).mean() < 0.1

    def test_zero_grad(self):
        layer, loss_and_grad = _quadratic_problem()
        loss_and_grad()
        optimizer = SGD(layer.parameters(), lr=0.1)
        optimizer.zero_grad()
        assert all(np.all(p.grad == 0) for p in layer.parameters())

    def test_empty_parameters_raise(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_raises(self):
        layer, _ = _quadratic_problem()
        with pytest.raises(ValueError):
            Adam(layer.parameters(), lr=0.0)
