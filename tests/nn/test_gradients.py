"""Numerical gradient checks for every layer of repro.nn."""

import numpy as np
import pytest

from repro.nn import (
    LSTM,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAveragePool2d,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.gradcheck import gradient_check


@pytest.fixture()
def x_small(rng):
    return rng.standard_normal((3, 5))


class TestLayerGradients:
    def test_linear(self, rng, x_small):
        gradient_check(Linear(5, 4, seed=1), x_small)

    def test_linear_no_bias(self, rng, x_small):
        gradient_check(Linear(5, 4, seed=1, bias=False), x_small)

    def test_relu(self, rng):
        # Offset inputs away from the kink at zero.
        x = rng.standard_normal((4, 6)) + np.where(
            rng.random((4, 6)) > 0.5, 1.0, -1.0
        )
        gradient_check(ReLU(), x)

    def test_leaky_relu(self, rng):
        x = rng.standard_normal((4, 6)) + np.where(
            rng.random((4, 6)) > 0.5, 1.0, -1.0
        )
        gradient_check(LeakyReLU(0.1), x)

    def test_tanh(self, rng):
        gradient_check(Tanh(), rng.standard_normal((3, 4)))

    def test_sigmoid(self, rng):
        gradient_check(Sigmoid(), rng.standard_normal((3, 4)))

    def test_conv2d(self, rng):
        x = rng.standard_normal((2, 2, 6, 6))
        gradient_check(Conv2d(2, 3, 3, padding=1, seed=2), x, tol=1e-4)

    def test_conv2d_stride(self, rng):
        x = rng.standard_normal((2, 1, 8, 8))
        gradient_check(Conv2d(1, 2, 3, stride=2, padding=0, seed=3), x, tol=1e-4)

    def test_maxpool(self, rng):
        # Well-separated values avoid argmax ties under perturbation.
        x = rng.permutation(np.arange(2 * 2 * 4 * 4).astype(float)).reshape(2, 2, 4, 4)
        gradient_check(MaxPool2d(2), x)

    def test_global_average_pool(self, rng):
        gradient_check(GlobalAveragePool2d(), rng.standard_normal((2, 3, 4, 4)))

    def test_flatten(self, rng):
        gradient_check(Flatten(), rng.standard_normal((2, 3, 4)))

    def test_lstm(self, rng):
        x = rng.standard_normal((2, 5, 3))
        gradient_check(LSTM(3, 4, seed=4), x, tol=1e-4)

    def test_sequential_cnn_stack(self, rng):
        model = Sequential(
            Conv2d(1, 2, 3, padding=1, seed=5),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(2 * 2 * 2, 3, seed=6),
        )
        x = rng.standard_normal((2, 1, 4, 4)) * 2.0
        gradient_check(model, x, tol=1e-4)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        dropout = Dropout(0.5, seed=1).eval()
        x = rng.standard_normal((4, 4))
        np.testing.assert_array_equal(dropout.forward(x), x)

    def test_train_mode_scales_kept_units(self, rng):
        dropout = Dropout(0.5, seed=1)
        dropout.train(True)
        x = np.ones((2000, 1))
        y = dropout.forward(x)
        kept = y[y != 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.4 < (y != 0).mean() < 0.6

    def test_backward_uses_same_mask(self, rng):
        dropout = Dropout(0.5, seed=2)
        dropout.train(True)
        x = rng.standard_normal((5, 5))
        y = dropout.forward(x)
        grad = dropout.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad != 0, y != 0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
