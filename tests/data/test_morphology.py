"""Morphology-module tests.

The shared waveform helpers were extracted from
``SyntheticIEEGGenerator`` and ``ClockedEEGSource``; the regression
class pins seeded outputs captured *before* the extraction, so any
drift in the shared helpers (filter coefficients, envelope shapes,
normalisation order) fails loudly instead of silently changing every
recording in the repo.
"""

import numpy as np
import pytest

from repro.data import morphology
from repro.data.synthetic import (
    ClockedEEGSource,
    SeizurePlan,
    SynthesisParams,
    SyntheticIEEGGenerator,
)


class TestSeededOutputRegression:
    """Seeded outputs captured before the morphology extraction."""

    def test_batch_generator_pinned(self):
        rec = SyntheticIEEGGenerator(
            8, SynthesisParams(fs=256.0), seed=42
        ).generate(30.0, [SeizurePlan(12.0, 8.0)])
        assert rec.data.dtype == np.float32
        assert float(rec.data.astype(np.float64).sum()) == pytest.approx(
            2432.2353656840187, abs=0.0
        )
        assert float(rec.data[1000, 3]) == 0.8481993079185486
        assert float(rec.data[5000, 0]) == 0.10232450813055038

    def test_batch_generator_subtle_pinned(self):
        rec = SyntheticIEEGGenerator(4, None, seed=7).generate(
            20.0, [SeizurePlan(8.0, 5.0, subtle=True)]
        )
        assert float(rec.data.astype(np.float64).sum()) == pytest.approx(
            -2804.008942991055, abs=0.0
        )
        assert float(rec.data[2048, 2]) == -0.309338241815567

    def test_clocked_source_pinned(self):
        source = ClockedEEGSource(
            6, fs=128.0, seed=11, seizure_rate_per_min=4.0
        )
        data = np.concatenate(
            [source.next_chunk(n) for n in (64, 1, 257, 640, 38)], axis=0
        )
        assert float(data.astype(np.float64).sum()) == pytest.approx(
            -2008.0800085783194, abs=0.0
        )
        assert float(data[700, 5]) == -2.0546367168426514
        assert source.injected_onsets_s == (7.7578125,)


class TestPinkNoise:
    def test_stream_matches_monolithic_filtering(self):
        """Chunked filtering with carried state == one-shot filtering."""
        rng = np.random.default_rng(3)
        white = rng.standard_normal((1000, 3))
        zi = morphology.pink_filter_state(3)
        whole, _ = morphology.pink_noise_stream(white, zi)
        zi = morphology.pink_filter_state(3)
        parts = []
        for lo, hi in ((0, 7), (7, 8), (8, 500), (500, 1000)):
            part, zi = morphology.pink_noise_stream(white[lo:hi], zi)
            parts.append(part)
        np.testing.assert_array_equal(np.concatenate(parts, axis=0), whole)

    def test_batch_form_is_unit_std(self):
        rng = np.random.default_rng(0)
        pink = morphology.pink_noise_batch(rng.standard_normal((4096, 4)))
        np.testing.assert_allclose(pink.std(axis=0), 1.0, rtol=1e-12)

    def test_steady_state_gain_matches_constant(self):
        """PINK_STEADY_STD ≈ the realised std of a long filtered run."""
        rng = np.random.default_rng(1)
        zi = morphology.pink_filter_state(1)
        pink, _ = morphology.pink_noise_stream(
            rng.standard_normal((200_000, 1)), zi
        )
        assert float(pink[1000:].std()) == pytest.approx(
            morphology.PINK_STEADY_STD, rel=0.05
        )


class TestWaveforms:
    def test_chirp_phase_constant_frequency(self):
        fs, f = 256.0, 8.0
        phase = morphology.chirp_phase(100, fs, f)
        np.testing.assert_allclose(
            np.diff(phase), 2 * np.pi * f / fs, rtol=1e-12
        )

    def test_chirp_phase_sweeps_down(self):
        phase = morphology.chirp_phase(1000, 256.0, 8.0, chirp_to_hz=2.0)
        inst = np.diff(phase)
        assert inst[0] > inst[-1] > 0

    def test_rhythm_envelope_shape(self):
        env = morphology.rhythm_envelope(100, 10)
        assert env[0] == 0.0
        assert env[9] == 1.0
        assert env[-1] == pytest.approx(0.2)
        assert np.all((0.0 <= env) & (env <= 1.0))

    def test_asymmetric_wave_is_skewed(self):
        phase = morphology.chirp_phase(10_000, 256.0, 4.0)
        wave = morphology.asymmetric_wave(phase, 0.85)
        rising = np.diff(wave) > 0
        assert 0.7 < rising.mean() < 0.95  # rise ~85 % of the cycle

    def test_ictal_stream_wave_ramps_and_fades(self):
        fs, total = 128.0, 1280
        t = np.arange(total, dtype=np.float64)
        wave = morphology.ictal_stream_wave(t, total, fs, 3.0, 4.0)
        assert np.abs(wave[:10]).max() < np.abs(wave).max() * 0.1
        assert np.abs(wave[-5:]).max() < np.abs(wave).max() * 0.2
        assert np.abs(wave).max() <= 4.0 + 1e-9

    def test_spike_kernel_biphasic_and_gated(self):
        kernel = morphology.spike_kernel(256.0)
        assert kernel is not None
        assert np.abs(kernel).max() == pytest.approx(1.0)
        assert kernel.min() < 0 < kernel.max()
        assert morphology.spike_kernel(16.0) is None  # too coarse

    def test_bandpassed_noise_unit_std(self):
        rng = np.random.default_rng(5)
        shaped = morphology.bandpassed_noise(
            rng.standard_normal((2048, 3)), 256.0
        )
        np.testing.assert_allclose(shaped.std(axis=0), 1.0, rtol=1e-12)

    def test_taper_envelope(self):
        env = morphology.taper_envelope(50, 10)
        assert env[0] == 0.0 and env[-1] == 0.0
        np.testing.assert_array_equal(env[10:40], 1.0)
        np.testing.assert_array_equal(
            morphology.taper_envelope(5, 0), np.ones(5)
        )
