"""Tests for repro.data.cohort (the Table I patient roster)."""

import pytest

from repro.data.cohort import (
    CohortLayout,
    PatientSpec,
    cohort_patient_specs,
    synthesize_patient,
)


class TestSpecsMirrorTableI:
    @pytest.fixture(scope="class")
    def specs(self):
        return cohort_patient_specs()

    def test_eighteen_patients(self, specs):
        assert len(specs) == 18
        assert [s.patient_id for s in specs] == [f"P{i}" for i in range(1, 19)]

    def test_total_seizures_116(self, specs):
        assert sum(s.n_seizures for s in specs) == 116

    def test_training_seizures_24(self, specs):
        assert sum(s.train_seizures for s in specs) == 24

    def test_test_seizures_92(self, specs):
        assert sum(s.n_test_seizures for s in specs) == 92

    def test_subtle_test_seizures_13(self, specs):
        # 79 of 92 detected in Table I -> 13 undetectable by design.
        assert sum(s.n_subtle_test for s in specs) == 13

    def test_electrode_range_24_to_128(self, specs):
        counts = [s.n_electrodes for s in specs]
        assert min(counts) == 24  # P14
        assert max(counts) == 128  # P5

    def test_total_hours_match_table1(self, specs):
        # Table I's per-patient hours sum to 2655; the paper's headline
        # "2656 h" rounds the unpublished per-patient minutes.
        assert sum(s.recording_hours for s in specs) == pytest.approx(2655.0)

    def test_p14_fully_subtle(self, specs):
        p14 = next(s for s in specs if s.patient_id == "P14")
        assert p14.train_subtle
        assert p14.n_subtle_test == p14.n_test_seizures == 1

    def test_table1_electrode_column(self, specs):
        expected = [88, 66, 64, 32, 128, 32, 75, 61, 48, 32, 32, 56, 64, 24, 98, 34, 60, 42]
        assert [s.n_electrodes for s in specs] == expected

    def test_trs_column(self, specs):
        expected = [1, 1, 1, 2, 1, 1, 2, 2, 2, 1, 1, 2, 2, 1, 1, 1, 1, 1]
        assert [s.train_seizures for s in specs] == expected


class TestSpecValidation:
    def test_rejects_all_training(self):
        with pytest.raises(ValueError):
            PatientSpec("PX", 8, 2, 10.0, train_seizures=2)

    def test_rejects_too_many_subtle(self):
        with pytest.raises(ValueError):
            PatientSpec("PX", 8, 3, 10.0, train_seizures=1, n_subtle_test=3)


class TestSynthesizePatient:
    @pytest.fixture(scope="class")
    def patient(self):
        spec = PatientSpec(
            "PT", n_electrodes=8, n_seizures=3, recording_hours=0.05,
            train_seizures=1, n_subtle_test=1, seed=5,
        )
        return synthesize_patient(spec, hours_scale=1.0, fs=256.0)

    def test_seizure_count(self, patient):
        assert len(patient.recording.seizures) == 3

    def test_subtle_count(self, patient):
        subtle = [s for s in patient.recording.seizures if s.seizure_type == "subtle"]
        assert len(subtle) == 1

    def test_chronological(self, patient):
        onsets = [s.onset_s for s in patient.recording.seizures]
        assert onsets == sorted(onsets)

    def test_duration_extends_to_fit_seizures(self, patient):
        # 0.05 h = 180 s cannot hold 3 seizures + gaps; layout must grow.
        assert patient.recording.duration_s > 180.0

    def test_min_gap_respected(self, patient):
        layout = CohortLayout()
        events = patient.recording.seizures
        for a, b in zip(events, events[1:]):
            assert b.onset_s - a.offset_s >= min(
                layout.train_seizure_gap_s, layout.test_seizure_gap_s
            ) - 1e-6

    def test_deterministic(self):
        spec = PatientSpec("PT", 4, 2, 0.02, 1, seed=6)
        a = synthesize_patient(spec, hours_scale=1.0, fs=256.0)
        b = synthesize_patient(spec, hours_scale=1.0, fs=256.0)
        import numpy as np
        np.testing.assert_array_equal(a.recording.data, b.recording.data)

    def test_base_seed_changes_realisation(self):
        spec = PatientSpec("PT", 4, 2, 0.02, 1, seed=6)
        import numpy as np
        a = synthesize_patient(spec, hours_scale=1.0, fs=256.0, base_seed=0)
        b = synthesize_patient(spec, hours_scale=1.0, fs=256.0, base_seed=1)
        assert not np.array_equal(a.recording.data, b.recording.data)
