"""Tests for repro.data.model."""

import numpy as np
import pytest

from repro.data.model import (
    CLINICAL,
    SUBTLE,
    Cohort,
    Patient,
    Recording,
    SeizureEvent,
)


def _recording(duration_s=100.0, fs=64.0, n_elec=2, seizures=()):
    data = np.zeros((int(duration_s * fs), n_elec), dtype=np.float32)
    return Recording(data=data, fs=fs, seizures=tuple(seizures))


class TestSeizureEvent:
    def test_duration(self):
        assert SeizureEvent(10.0, 30.0).duration_s == 20.0

    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            SeizureEvent(30.0, 10.0)

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            SeizureEvent(1.0, 2.0, seizure_type="odd")

    def test_shifted(self):
        event = SeizureEvent(10.0, 30.0, SUBTLE).shifted(5.0)
        assert event.onset_s == 5.0
        assert event.offset_s == 25.0
        assert event.seizure_type == SUBTLE


class TestRecording:
    def test_basic_properties(self):
        rec = _recording(100.0, 64.0, 3)
        assert rec.n_samples == 6400
        assert rec.n_electrodes == 3
        assert rec.duration_s == pytest.approx(100.0)

    def test_rejects_1d_data(self):
        with pytest.raises(ValueError):
            Recording(data=np.zeros(10), fs=64.0)

    def test_rejects_unordered_seizures(self):
        with pytest.raises(ValueError):
            _recording(
                seizures=[SeizureEvent(50.0, 60.0), SeizureEvent(10.0, 20.0)]
            )

    def test_rejects_seizure_past_end(self):
        with pytest.raises(ValueError):
            _recording(duration_s=50.0, seizures=[SeizureEvent(40.0, 60.0)])

    def test_interictal_seconds(self):
        rec = _recording(100.0, seizures=[SeizureEvent(10.0, 30.0)])
        assert rec.interictal_seconds() == pytest.approx(80.0)

    def test_seizure_segments(self):
        rec = _recording(100.0, seizures=[SeizureEvent(10.0, 30.0)])
        assert rec.seizure_segments() == [(10.0, 30.0)]


class TestSliceTime:
    def test_rebases_seizures(self):
        rec = _recording(
            100.0,
            seizures=[SeizureEvent(10.0, 20.0), SeizureEvent(70.0, 80.0)],
        )
        sliced = rec.slice_time(50.0, 100.0)
        assert sliced.duration_s == pytest.approx(50.0)
        assert len(sliced.seizures) == 1
        assert sliced.seizures[0].onset_s == pytest.approx(20.0)

    def test_clips_partial_overlap(self):
        rec = _recording(100.0, seizures=[SeizureEvent(45.0, 55.0)])
        sliced = rec.slice_time(50.0, 100.0)
        assert sliced.seizures[0].onset_s == pytest.approx(0.0)
        assert sliced.seizures[0].offset_s == pytest.approx(5.0)

    def test_preserves_type(self):
        rec = _recording(100.0, seizures=[SeizureEvent(10.0, 20.0, SUBTLE)])
        assert rec.slice_time(0.0, 50.0).seizures[0].seizure_type == SUBTLE

    def test_rejects_bad_span(self):
        with pytest.raises(ValueError):
            _recording().slice_time(50.0, 10.0)


class TestPatientAndCohort:
    def test_patient_counts(self):
        rec = _recording(
            100.0,
            seizures=[SeizureEvent(10.0, 20.0), SeizureEvent(70.0, 80.0)],
        )
        patient = Patient("P1", rec, train_seizures=1)
        assert patient.n_test_seizures == 1
        assert patient.n_electrodes == 2

    def test_patient_needs_spare_seizure(self):
        rec = _recording(100.0, seizures=[SeizureEvent(10.0, 20.0)])
        with pytest.raises(ValueError):
            Patient("P1", rec, train_seizures=1)

    def test_cohort_aggregates(self):
        rec = _recording(
            3600.0,
            seizures=[
                SeizureEvent(100.0, 120.0),
                SeizureEvent(1000.0, 1020.0, SUBTLE),
            ],
        )
        cohort = Cohort(patients=(Patient("P1", rec), Patient("P2", rec)))
        assert len(cohort) == 2
        assert cohort.total_hours() == pytest.approx(2.0)
        assert cohort.total_seizures() == 4
        assert cohort.total_test_seizures() == 2
        assert CLINICAL == "clinical"
