"""Tests for repro.data.io (recording persistence)."""

import numpy as np
import pytest

from repro.data.io import load_recording, save_recording
from repro.data.model import Recording, SeizureEvent


@pytest.fixture()
def recording() -> Recording:
    rng = np.random.default_rng(0)
    return Recording(
        data=rng.standard_normal((1000, 4)).astype(np.float32),
        fs=256.0,
        seizures=(
            SeizureEvent(1.0, 2.0),
            SeizureEvent(3.0, 3.5, seizure_type="subtle"),
        ),
        patient_id="P9",
    )


class TestRoundTrip:
    def test_data_preserved(self, recording, tmp_path):
        path = save_recording(recording, tmp_path / "rec.npz")
        loaded = load_recording(path)
        np.testing.assert_array_equal(loaded.data, recording.data)

    def test_metadata_preserved(self, recording, tmp_path):
        loaded = load_recording(save_recording(recording, tmp_path / "r.npz"))
        assert loaded.fs == recording.fs
        assert loaded.patient_id == "P9"
        assert len(loaded.seizures) == 2
        assert loaded.seizures[1].seizure_type == "subtle"
        assert loaded.seizures[0].onset_s == 1.0

    def test_creates_parent_directories(self, recording, tmp_path):
        path = save_recording(recording, tmp_path / "a" / "b" / "rec.npz")
        assert path.exists()

    def test_rejects_unknown_version(self, recording, tmp_path):
        import json

        path = save_recording(recording, tmp_path / "rec.npz")
        with np.load(path) as archive:
            data = archive["data"]
            meta = json.loads(bytes(archive["meta"].tobytes()).decode())
        meta["version"] = 99
        np.savez_compressed(
            tmp_path / "bad.npz",
            data=data,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError):
            load_recording(tmp_path / "bad.npz")
