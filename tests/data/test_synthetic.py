"""Tests for repro.data.synthetic (the iEEG generator)."""

import numpy as np
import pytest

from repro.data.model import CLINICAL, SUBTLE
from repro.data.synthetic import (
    ClockedEEGSource,
    SeizurePlan,
    SynthesisParams,
    SyntheticIEEGGenerator,
)

FS = 256.0


@pytest.fixture(scope="module")
def params() -> SynthesisParams:
    return SynthesisParams(fs=FS)


class TestSeizurePlan:
    def test_offset(self):
        assert SeizurePlan(10.0, 20.0).offset_s == 30.0

    def test_rejects_negative_onset(self):
        with pytest.raises(ValueError):
            SeizurePlan(-1.0, 5.0)

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            SeizurePlan(1.0, 0.0)


class TestParams:
    def test_rejects_bad_mixing(self):
        with pytest.raises(ValueError):
            SynthesisParams(spatial_mixing=1.0)

    def test_rejects_bad_focal_fraction(self):
        with pytest.raises(ValueError):
            SynthesisParams(ictal_focal_fraction=0.0)


class TestDeterminism:
    def test_same_seed_same_recording(self, params):
        a = SyntheticIEEGGenerator(4, params, seed=9).generate(20.0)
        b = SyntheticIEEGGenerator(4, params, seed=9).generate(20.0)
        np.testing.assert_array_equal(a.data, b.data)

    def test_different_seed_different_recording(self, params):
        a = SyntheticIEEGGenerator(4, params, seed=9).generate(20.0)
        b = SyntheticIEEGGenerator(4, params, seed=10).generate(20.0)
        assert not np.array_equal(a.data, b.data)


class TestBackground:
    def test_shape_and_scale(self, params):
        gen = SyntheticIEEGGenerator(6, params, seed=1)
        bg = gen.background(int(60 * FS))
        assert bg.shape == (int(60 * FS), 6)
        assert bg.std() == pytest.approx(params.background_std, rel=0.2)

    def test_spatial_correlation_present(self, params):
        gen = SyntheticIEEGGenerator(4, params, seed=2)
        bg = gen.background(int(60 * FS))
        corr = np.corrcoef(bg.T)
        off_diag = corr[~np.eye(4, dtype=bool)]
        assert off_diag.mean() > 0.02

    def test_spectrum_is_pink_like(self, params):
        gen = SyntheticIEEGGenerator(1, params, seed=3)
        bg = gen.background(int(120 * FS))[:, 0]
        spectrum = np.abs(np.fft.rfft(bg)) ** 2
        freqs = np.fft.rfftfreq(bg.size, 1 / FS)
        low = spectrum[(freqs > 0.5) & (freqs < 4)].mean()
        high = spectrum[(freqs > 40) & (freqs < 80)].mean()
        assert low > 10 * high


class TestSeizures:
    def test_annotations_match_plans(self, params):
        gen = SyntheticIEEGGenerator(8, params, seed=4)
        rec = gen.generate(
            120.0,
            [SeizurePlan(40.0, 20.0), SeizurePlan(90.0, 15.0, subtle=True)],
        )
        assert len(rec.seizures) == 2
        assert rec.seizures[0].seizure_type == CLINICAL
        assert rec.seizures[1].seizure_type == SUBTLE
        assert rec.seizures[0].onset_s == 40.0
        assert rec.seizures[1].duration_s == 15.0

    def test_clinical_seizure_raises_amplitude(self, params):
        gen = SyntheticIEEGGenerator(8, params, seed=5)
        rec = gen.generate(120.0, [SeizurePlan(60.0, 30.0)])
        ictal = rec.data[int(70 * FS) : int(85 * FS)]
        inter = rec.data[int(10 * FS) : int(50 * FS)]
        assert ictal.std() > 1.5 * inter.std()

    def test_subtle_seizure_stays_at_background_level(self, params):
        gen = SyntheticIEEGGenerator(8, params, seed=6)
        rec = gen.generate(120.0, [SeizurePlan(60.0, 30.0, subtle=True)])
        ictal = rec.data[int(65 * FS) : int(85 * FS)]
        inter = rec.data[int(10 * FS) : int(50 * FS)]
        assert ictal.std() < 1.5 * inter.std()

    def test_onset_zone_is_stereotyped(self, params):
        # Two seizures of one patient must recruit the same electrodes.
        gen = SyntheticIEEGGenerator(16, params, seed=7)
        rec = gen.generate(
            200.0, [SeizurePlan(60.0, 25.0), SeizurePlan(140.0, 25.0)]
        )
        def ictal_power(lo, hi):
            seg = rec.data[int(lo * FS) : int(hi * FS)]
            return seg.std(axis=0)
        p1 = ictal_power(70, 85)
        p2 = ictal_power(150, 165)
        inter = rec.data[int(10 * FS) : int(50 * FS)].std(axis=0)
        recruited1 = p1 > 1.6 * inter
        recruited2 = p2 > 1.6 * inter
        assert recruited1.sum() >= 4
        # Jaccard overlap of recruited sets close to 1.
        overlap = (recruited1 & recruited2).sum() / max(1, (recruited1 | recruited2).sum())
        assert overlap > 0.6

    def test_seizure_past_end_raises(self, params):
        gen = SyntheticIEEGGenerator(4, params, seed=8)
        with pytest.raises(ValueError):
            gen.generate(50.0, [SeizurePlan(45.0, 10.0)])

    def test_output_dtype_float32(self, params):
        rec = SyntheticIEEGGenerator(2, params, seed=9).generate(10.0)
        assert rec.data.dtype == np.float32


class TestConfounders:
    def test_confounders_do_not_overlap_seizures(self, params):
        # Statistical check: with the keep-out margin, the signal right
        # before a seizure stays near background level.
        gen = SyntheticIEEGGenerator(8, params, seed=10)
        rec = gen.generate(120.0, [SeizurePlan(60.0, 20.0)])
        pre = rec.data[int(56 * FS) : int(59 * FS)]
        assert pre.std() < 3.0 * params.background_std

    def test_rates_scale_event_counts(self):
        quiet = SynthesisParams(
            fs=FS, spike_rate_per_hour=0.0, burst_rate_per_hour=0.0,
            drift_rate_per_hour=0.0,
        )
        busy = SynthesisParams(
            fs=FS, spike_rate_per_hour=0.0, burst_rate_per_hour=0.0,
            drift_rate_per_hour=600.0,
        )
        quiet_rec = SyntheticIEEGGenerator(4, quiet, seed=11).generate(120.0)
        busy_rec = SyntheticIEEGGenerator(4, busy, seed=11).generate(120.0)
        # Drifts add sustained high-amplitude epochs: the tail mass above
        # 3 sigma grows by an order of magnitude.
        tail_quiet = np.mean(np.abs(quiet_rec.data) > 3.0)
        tail_busy = np.mean(np.abs(busy_rec.data) > 3.0)
        assert tail_busy > 5.0 * max(tail_quiet, 1e-6)


class TestClockedEEGSource:
    """The live streaming source: deterministic and chunking-invariant."""

    def _stream(self, source, total, chunk):
        parts = []
        remaining = total
        while remaining > 0:
            n = min(chunk, remaining)
            parts.append(source.next_chunk(n))
            remaining -= n
        return np.concatenate(parts, axis=0)

    def test_same_seed_same_stream(self):
        a = ClockedEEGSource(4, FS, seed=5)
        b = ClockedEEGSource(4, FS, seed=5)
        np.testing.assert_array_equal(
            self._stream(a, 2048, 128), self._stream(b, 2048, 128)
        )
        assert a.injected_onsets_s == b.injected_onsets_s

    def test_chunking_invariance(self):
        # 16 x 128-sample ticks, 4 x 512-sample ticks and one 2048-sample
        # pull must all yield the identical sample stream.
        seed = 21
        fine = self._stream(ClockedEEGSource(3, FS, seed=seed), 2048, 128)
        coarse = self._stream(ClockedEEGSource(3, FS, seed=seed), 2048, 512)
        single = ClockedEEGSource(3, FS, seed=seed).next_chunk(2048)
        np.testing.assert_array_equal(fine, coarse)
        np.testing.assert_array_equal(fine, single)

    def test_different_seed_different_stream(self):
        a = ClockedEEGSource(4, FS, seed=5).next_chunk(512)
        b = ClockedEEGSource(4, FS, seed=6).next_chunk(512)
        assert not np.array_equal(a, b)

    def test_clock_advances_by_samples_over_fs(self):
        source = ClockedEEGSource(2, FS, seed=0)
        source.next_chunk(128)
        assert source.t_s == pytest.approx(128 / FS)
        source.tick(0.5)
        assert source.t_s == pytest.approx(128 / FS + 0.5)

    def test_zero_rate_disables_injection(self):
        source = ClockedEEGSource(4, FS, seed=2, seizure_rate_per_min=0.0)
        data = source.next_chunk(int(30 * FS))
        assert source.injected_onsets_s == ()
        # Pure background: nothing sustained above a few sigma.
        assert np.abs(data).max() < 6.0

    def test_high_rate_injects_recorded_focal_onsets(self):
        source = ClockedEEGSource(
            4, FS, seed=7, seizure_rate_per_min=6.0, focal_fraction=0.5
        )
        data = self._stream(source, int(90 * FS), 128)
        onsets = source.injected_onsets_s
        assert len(onsets) >= 2
        assert all(0.0 <= t <= 90.0 for t in onsets)
        assert list(onsets) == sorted(onsets)
        # Seizures are focal: the onset-zone channels carry visibly more
        # energy than the uninvolved half of the montage.
        per_channel = data.std(axis=0)
        assert per_channel.max() > 1.5 * per_channel.min()

    def test_shape_and_chunk_sizes(self):
        source = ClockedEEGSource(5, FS, seed=1)
        assert source.next_chunk(7).shape == (7, 5)
        assert source.tick(0.5).shape == (128, 5)

    @pytest.mark.parametrize("bad", [
        dict(n_electrodes=0),
        dict(fs=0.0),
        dict(seizure_rate_per_min=-1.0),
        dict(focal_fraction=0.0),
        dict(focal_fraction=1.5),
    ])
    def test_rejects_invalid_parameters(self, bad):
        kwargs = dict(n_electrodes=4, fs=FS)
        kwargs.update(bad)
        n = kwargs.pop("n_electrodes")
        fs = kwargs.pop("fs")
        with pytest.raises(ValueError):
            ClockedEEGSource(n, fs, **kwargs)
