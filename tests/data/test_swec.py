"""Tests for the SWEC-ETHZ dataset loader (against synthetic .mat files)."""

import numpy as np
import pytest
from scipy import io as sio

from repro.data.swec import (
    SWEC_FS,
    load_info,
    load_long_term_hours,
    load_short_term,
)


@pytest.fixture()
def short_term_file(tmp_path, rng):
    # 3 min at a reduced rate keeps the file small; channels x samples
    # orientation, as MATLAB exports often are.
    fs = 128.0
    data = rng.standard_normal((8, int(180 * fs))).astype(np.float64)
    path = tmp_path / "ID01_Sz2.mat"
    sio.savemat(path, {"EEG": data})
    return path, fs, data


class TestShortTerm:
    def test_loads_and_orients(self, short_term_file):
        path, fs, data = short_term_file
        rec = load_short_term(path, fs=fs)
        assert rec.data.shape == (data.shape[1], 8)
        np.testing.assert_allclose(rec.data[:, 0], data[0], rtol=1e-6)

    def test_middle_minute_annotation(self, short_term_file):
        path, fs, _ = short_term_file
        rec = load_short_term(path, fs=fs)
        assert len(rec.seizures) == 1
        assert rec.seizures[0].onset_s == 60.0
        assert rec.seizures[0].offset_s == 120.0

    def test_patient_id_from_filename(self, short_term_file):
        path, fs, _ = short_term_file
        assert load_short_term(path, fs=fs).patient_id == "ID01"

    def test_fallback_key(self, tmp_path, rng):
        data = rng.standard_normal((int(180 * 64), 4))
        path = tmp_path / "odd.mat"
        sio.savemat(path, {"signal_matrix": data})
        rec = load_short_term(path, fs=64.0)
        assert rec.data.shape == data.shape

    def test_ambiguous_file_raises(self, tmp_path, rng):
        path = tmp_path / "two.mat"
        sio.savemat(path, {
            "a": rng.standard_normal((10, 4)),
            "b": rng.standard_normal((10, 4)),
        })
        with pytest.raises(ValueError):
            load_short_term(path, fs=64.0)


@pytest.fixture()
def long_term_files(tmp_path, rng):
    fs = 64.0
    hours = []
    for k in range(3):
        data = rng.standard_normal((int(120 * fs), 6))  # "hours" of 2 min
        path = tmp_path / f"ID02_{k + 1}h.mat"
        sio.savemat(path, {"EEG": data})
        hours.append(path)
    info = tmp_path / "ID02_info.mat"
    sio.savemat(info, {
        "fs": np.array([[fs]]),
        "seizure_begin": np.array([[100.0], [250.0]]),
        "seizure_end": np.array([[130.0], [280.0]]),
    })
    return hours, info, fs


class TestLongTerm:
    def test_info_parsing(self, long_term_files):
        _, info, fs = long_term_files
        parsed_fs, seizures = load_info(info)
        assert parsed_fs == fs
        assert seizures == [(100.0, 130.0), (250.0, 280.0)]

    def test_concatenation(self, long_term_files):
        hours, info, fs = long_term_files
        rec = load_long_term_hours(hours, info)
        assert rec.data.shape == (3 * int(120 * fs), 6)
        assert rec.patient_id == "ID02"
        assert len(rec.seizures) == 2

    def test_subset_of_hours_drops_late_seizures(self, long_term_files):
        hours, info, _ = long_term_files
        rec = load_long_term_hours(hours[:2], info)
        # Second seizure at 250-280 s still fits in 240 s? No: dropped
        # if onset >= duration; 250 > 240 -> only the first remains.
        assert len(rec.seizures) == 1
        assert rec.seizures[0].onset_s == 100.0

    def test_mismatched_channels_raise(self, long_term_files, tmp_path, rng):
        hours, info, fs = long_term_files
        bad = tmp_path / "ID02_9h.mat"
        sio.savemat(bad, {"EEG": rng.standard_normal((int(120 * fs), 5))})
        with pytest.raises(ValueError):
            load_long_term_hours([hours[0], bad], info)

    def test_missing_info_variables_raise(self, tmp_path):
        info = tmp_path / "broken_info.mat"
        sio.savemat(info, {"fs": np.array([[64.0]])})
        with pytest.raises(ValueError):
            load_info(info)

    def test_empty_hour_list_raises(self, long_term_files):
        _, info, _ = long_term_files
        with pytest.raises(ValueError):
            load_long_term_hours([], info)

    def test_loaded_recording_feeds_detector(self, long_term_files):
        # The loader's output must plug into the pipeline unmodified.
        from repro.core.config import LaelapsConfig
        from repro.core.detector import LaelapsDetector

        hours, info, fs = long_term_files
        rec = load_long_term_hours(hours, info)
        # The 64 Hz test rate needs a shorter code so the 1 s window
        # still exceeds the alphabet (Sec. III-A constraint).
        det = LaelapsDetector(
            rec.n_electrodes,
            LaelapsConfig(dim=1_000, fs=fs, lbp_length=5, seed=1),
        )
        h = det.encode(rec.data[: int(10 * fs)])
        assert h.shape[1] == 1_000
