"""Tests for repro.data.splits (the chronological protocol)."""

import numpy as np
import pytest

from repro.data.model import Patient, Recording, SeizureEvent
from repro.data.splits import make_chronological_split, split_patient


def _recording(seizures, duration_s=600.0, fs=64.0):
    data = np.zeros((int(duration_s * fs), 2), dtype=np.float32)
    return Recording(data=data, fs=fs, seizures=tuple(seizures))


class TestMakeSplit:
    def test_one_training_seizure(self):
        rec = _recording(
            [SeizureEvent(120.0, 140.0), SeizureEvent(400.0, 420.0)]
        )
        split = make_chronological_split(rec, train_seizures=1)
        assert split.training_segments.ictal == ((120.0, 140.0),)
        assert split.train_span_s[1] == pytest.approx(150.0)
        assert len(split.test_seizures) == 1

    def test_two_training_seizures(self):
        rec = _recording(
            [
                SeizureEvent(120.0, 140.0),
                SeizureEvent(200.0, 215.0),
                SeizureEvent(400.0, 420.0),
            ]
        )
        split = make_chronological_split(rec, train_seizures=2)
        assert len(split.training_segments.ictal) == 2
        assert split.train_span_s[1] == pytest.approx(225.0)
        assert len(split.test_seizures) == 1

    def test_ictal_segment_capped_at_30s(self):
        rec = _recording(
            [SeizureEvent(120.0, 180.0), SeizureEvent(400.0, 420.0)]
        )
        split = make_chronological_split(rec, train_seizures=1)
        start, end = split.training_segments.ictal[0]
        assert end - start == pytest.approx(30.0)

    def test_interictal_lead_respected(self):
        rec = _recording(
            [SeizureEvent(120.0, 140.0), SeizureEvent(400.0, 420.0)]
        )
        split = make_chronological_split(
            rec, train_seizures=1, interictal_lead_s=60.0
        )
        start, end = split.training_segments.interictal
        assert end == pytest.approx(60.0)
        assert end - start == pytest.approx(30.0)

    def test_short_lead_slides_segment(self):
        rec = _recording(
            [SeizureEvent(50.0, 70.0), SeizureEvent(400.0, 420.0)]
        )
        split = make_chronological_split(
            rec, train_seizures=1, interictal_lead_s=600.0
        )
        start, end = split.training_segments.interictal
        assert end <= 40.0
        assert start >= 0.0

    def test_no_room_raises(self):
        rec = _recording(
            [SeizureEvent(15.0, 30.0), SeizureEvent(400.0, 420.0)]
        )
        with pytest.raises(ValueError):
            make_chronological_split(rec, train_seizures=1)

    def test_too_few_seizures_raises(self):
        rec = _recording([SeizureEvent(120.0, 140.0)])
        with pytest.raises(ValueError):
            make_chronological_split(rec, train_seizures=1)

    def test_train_fraction(self):
        rec = _recording(
            [SeizureEvent(120.0, 140.0), SeizureEvent(400.0, 420.0)]
        )
        split = make_chronological_split(rec, train_seizures=1)
        assert split.train_fraction == pytest.approx(150.0 / 600.0)

    def test_test_seizures_exclude_training(self):
        rec = _recording(
            [
                SeizureEvent(120.0, 140.0),
                SeizureEvent(300.0, 320.0),
                SeizureEvent(500.0, 520.0),
            ]
        )
        split = make_chronological_split(rec, train_seizures=1)
        assert [s.onset_s for s in split.test_seizures] == [300.0, 500.0]


class TestSplitPatient:
    def test_uses_patient_train_count(self):
        rec = _recording(
            [
                SeizureEvent(120.0, 140.0),
                SeizureEvent(200.0, 215.0),
                SeizureEvent(400.0, 420.0),
            ]
        )
        patient = Patient("P1", rec, train_seizures=2)
        split = split_patient(patient)
        assert len(split.training_segments.ictal) == 2
