"""Disk-backed cohort tests: manifest hygiene, determinism, invariance."""

import json

import numpy as np
import pytest

from repro.data.model import CLINICAL, SUBTLE, Recording
from repro.data.outofcore import (
    MANIFEST_NAME,
    CohortSpec,
    DiskCohort,
    MemberSpec,
    default_member_plans,
    generate_cohort,
    load_cohort,
    open_member,
)
from repro.data.synthetic import SeizurePlan, SynthesisParams

_PARAMS = SynthesisParams(fs=128.0)


def _spec(**overrides):
    defaults = dict(
        name="unit",
        members=(
            MemberSpec("m0", 6, 240.0, default_member_plans(240.0, 2),
                       seed=1),
            MemberSpec("m1", 3, 180.0,
                       (SeizurePlan(60.0, 15.0),
                        SeizurePlan(120.0, 15.0, subtle=True)),
                       seed=2),
        ),
        params=_PARAMS,
        seed=7,
    )
    defaults.update(overrides)
    return CohortSpec(**defaults)


class TestSpecs:
    def test_member_spec_validation(self):
        with pytest.raises(ValueError, match="member_id"):
            MemberSpec("", 4, 60.0)
        with pytest.raises(ValueError, match="n_electrodes"):
            MemberSpec("m", 0, 60.0)
        with pytest.raises(ValueError, match="chronological"):
            MemberSpec("m", 4, 300.0,
                       (SeizurePlan(100.0, 10.0), SeizurePlan(50.0, 10.0)))
        with pytest.raises(ValueError, match="exceeds"):
            MemberSpec("m", 4, 60.0, (SeizurePlan(55.0, 10.0),))

    def test_cohort_spec_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            CohortSpec("c", ())
        member = MemberSpec("m", 4, 60.0)
        with pytest.raises(ValueError, match="duplicate"):
            CohortSpec("c", (member, member))

    def test_default_member_plans(self):
        plans = default_member_plans(1800.0, 3)
        assert [p.onset_s for p in plans] == [450.0, 900.0, 1350.0]
        assert all(not p.subtle for p in plans)
        with pytest.raises(ValueError, match="too short"):
            default_member_plans(60.0, 4)
        with pytest.raises(ValueError, match="n_seizures"):
            default_member_plans(600.0, 0)


class TestGeneration:
    def test_chunk_size_is_not_semantic(self, tmp_path):
        """Bit-identical files for ragged, odd and monolithic chunkings."""
        digests = []
        for i, chunk in enumerate((997, 1024, None, 10**9)):
            root = tmp_path / f"c{i}"
            generate_cohort(_spec(), root, chunk_samples=chunk)
            digests.append(tuple(
                (root / f"{m}.f32").read_bytes() for m in ("m0", "m1")
            ))
        assert all(d == digests[0] for d in digests[1:])

    def test_deterministic_under_seed(self, tmp_path):
        generate_cohort(_spec(), tmp_path / "a", chunk_samples=512)
        generate_cohort(_spec(), tmp_path / "b", chunk_samples=2048)
        a = (tmp_path / "a" / "m0.f32").read_bytes()
        b = (tmp_path / "b" / "m0.f32").read_bytes()
        assert a == b
        generate_cohort(_spec(seed=8), tmp_path / "c", chunk_samples=512)
        assert (tmp_path / "c" / "m0.f32").read_bytes() != a

    def test_seizures_are_visible_in_the_signal(self, tmp_path):
        cohort = generate_cohort(_spec(), tmp_path, chunk_samples=4096)
        rec = cohort.member("m0").open()
        fs = int(_PARAMS.fs)
        onset = int(rec.seizures[0].onset_s) * fs
        ictal = np.abs(rec.data[onset + 2 * fs:onset + 10 * fs]).mean()
        background = np.abs(rec.data[:30 * fs]).mean()
        assert ictal > 1.3 * background


class TestLoading:
    @pytest.fixture(scope="class")
    def root(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cohort")
        generate_cohort(_spec(), root)
        return root

    def test_round_trip(self, root):
        cohort = load_cohort(root)
        assert isinstance(cohort, DiskCohort)
        assert cohort.name == "unit" and cohort.fs == 128.0
        assert cohort.seed == 7 and len(cohort) == 2
        m0 = cohort.member("m0")
        assert m0.n_electrodes == 6
        assert m0.duration_s == 240.0
        assert [s.seizure_type for s in m0.seizures] == [CLINICAL, CLINICAL]
        m1 = cohort.member("m1")
        assert [s.seizure_type for s in m1.seizures] == [CLINICAL, SUBTLE]
        assert m1.seizures[0].offset_s == 75.0
        with pytest.raises(KeyError, match="m9"):
            cohort.member("m9")

    def test_open_is_a_memmap_view(self, root):
        rec = open_member(root, "m0")
        assert isinstance(rec, Recording)
        assert isinstance(rec.data, np.memmap)
        assert rec.data.dtype == np.float32
        # slice_time must stay lazy: a view into the same mapped buffer.
        sub = rec.slice_time(10.0, 20.0)
        assert sub.data.base is not None
        assert np.shares_memory(sub.data, rec.data)
        assert sub.n_samples == int(10.0 * rec.fs)

    def test_patient_wrapper(self, root):
        patient = load_cohort(root).member("m0").patient()
        assert patient.n_test_seizures == 1
        assert isinstance(patient.recording.data, np.memmap)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ValueError, match="no cohort manifest"):
            load_cohort(tmp_path)

    def test_schema_version_gate(self, root, tmp_path):
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["schema_version"] = 999
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="schema v999"):
            load_cohort(bad)

    def test_missing_key_rejected(self, root, tmp_path):
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        del manifest["members"][0]["n_samples"]
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="n_samples"):
            load_cohort(bad)

    def test_size_mismatch_rejected(self, root, tmp_path):
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / MANIFEST_NAME).write_text((root / MANIFEST_NAME).read_text())
        for member in ("m0", "m1"):
            data = (root / f"{member}.f32").read_bytes()
            (bad / f"{member}.f32").write_bytes(data[:-4])
        with pytest.raises(ValueError, match="bytes"):
            load_cohort(bad)

    def test_missing_data_file_rejected(self, root, tmp_path):
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / MANIFEST_NAME).write_text((root / MANIFEST_NAME).read_text())
        with pytest.raises(ValueError, match="missing"):
            load_cohort(bad)


class TestSequentialContract:
    def test_out_of_order_render_rejected(self):
        from repro.data.outofcore import _MemberSynthesizer

        member = MemberSpec("m", 2, 10.0)
        synth = _MemberSynthesizer(member, _PARAMS, cohort_seed=0)
        synth.render(0, 100)
        with pytest.raises(ValueError, match="sequentially"):
            synth.render(50, 100)
