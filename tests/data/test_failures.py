"""Tests for repro.data.failures and detector robustness to faults."""

import numpy as np
import pytest

from repro.data.failures import (
    inject_artifact_bursts,
    kill_electrodes,
    saturate_electrodes,
)


class TestKillElectrodes:
    def test_flatlines_selected_channels(self, mini_recording):
        degraded = kill_electrodes(mini_recording, [0, 3])
        assert np.all(degraded.data[:, 0] == 0.0)
        assert np.all(degraded.data[:, 3] == 0.0)
        np.testing.assert_array_equal(
            degraded.data[:, 1], mini_recording.data[:, 1]
        )

    def test_from_time_onwards(self, mini_recording):
        degraded = kill_electrodes(mini_recording, [2], from_s=100.0)
        cut = int(100.0 * mini_recording.fs)
        np.testing.assert_array_equal(
            degraded.data[:cut, 2], mini_recording.data[:cut, 2]
        )
        assert np.all(degraded.data[cut:, 2] == 0.0)

    def test_original_untouched(self, mini_recording):
        before = mini_recording.data.copy()
        kill_electrodes(mini_recording, [0])
        np.testing.assert_array_equal(mini_recording.data, before)

    def test_out_of_range_raises(self, mini_recording):
        with pytest.raises(ValueError):
            kill_electrodes(mini_recording, [99])

    def test_annotations_preserved(self, mini_recording):
        degraded = kill_electrodes(mini_recording, [0])
        assert degraded.seizures == mini_recording.seizures


class TestSaturate:
    def test_clips_to_rails(self, mini_recording):
        degraded = saturate_electrodes(mini_recording, [1], limit=0.5)
        assert degraded.data[:, 1].max() <= 0.5
        assert degraded.data[:, 1].min() >= -0.5

    def test_other_channels_untouched(self, mini_recording):
        degraded = saturate_electrodes(mini_recording, [1], limit=0.5)
        np.testing.assert_array_equal(
            degraded.data[:, 0], mini_recording.data[:, 0]
        )

    def test_rejects_bad_limit(self, mini_recording):
        with pytest.raises(ValueError):
            saturate_electrodes(mini_recording, [0], limit=0.0)


class TestArtifactBursts:
    def test_adds_energy(self, mini_recording):
        degraded = inject_artifact_bursts(
            mini_recording, rate_per_hour=600.0, amplitude=8.0, seed=1
        )
        assert degraded.data.std() > mini_recording.data.std()

    def test_zero_rate_is_identity(self, mini_recording):
        degraded = inject_artifact_bursts(
            mini_recording, rate_per_hour=0.0, amplitude=8.0, seed=1
        )
        np.testing.assert_array_equal(degraded.data, mini_recording.data)

    def test_deterministic(self, mini_recording):
        a = inject_artifact_bursts(mini_recording, 300.0, 5.0, seed=2)
        b = inject_artifact_bursts(mini_recording, 300.0, 5.0, seed=2)
        np.testing.assert_array_equal(a.data, b.data)

    def test_rejects_negative_rate(self, mini_recording):
        with pytest.raises(ValueError):
            inject_artifact_bursts(mini_recording, -1.0, 5.0)


class TestDetectorRobustness:
    """Failure injection against a trained detector."""

    def _alarms_in_second_seizure(self, detector, recording):
        result = detector.detect(recording.data)
        second = recording.seizures[1]
        return np.any(
            (result.alarm_times >= second.onset_s)
            & (result.alarm_times <= second.offset_s + 5.0)
        )

    def test_survives_two_dead_electrodes(
        self, fitted_detector, mini_recording
    ):
        # The holographic bundle degrades gracefully: killing 2 of 16
        # electrodes after training must not lose the unseen seizure.
        degraded = kill_electrodes(
            mini_recording, [0, 8], from_s=150.0
        )
        assert self._alarms_in_second_seizure(fitted_detector, degraded)

    def test_survives_saturation(self, fitted_detector, mini_recording):
        # Rails at 4 sigma clip only the ictal peaks; the sign structure
        # below the rails keeps the LBP histogram separable.
        degraded = saturate_electrodes(
            mini_recording, list(range(4)), limit=4.0
        )
        assert self._alarms_in_second_seizure(fitted_detector, degraded)

    def test_short_bursts_filtered_by_tc(self, fitted_detector, mini_recording):
        degraded = inject_artifact_bursts(
            mini_recording, rate_per_hour=120.0, amplitude=6.0, seed=3
        )
        result = fitted_detector.detect(degraded.data)
        # Alarms only near the two seizures — bursts (< 3 s) cannot
        # satisfy ten consecutive ictal labels.
        for t in result.alarm_times:
            assert any(
                s.onset_s - 1.0 <= t <= s.offset_s + 5.0
                for s in mini_recording.seizures
            ), f"burst-induced false alarm at {t:.1f} s"
