"""Tests for repro.baselines.svm."""

import numpy as np
import pytest

from repro.baselines.svm import LbpSvmDetector, LinearSVM


def _blobs(rng, n=100, gap=2.0):
    x0 = rng.standard_normal((n, 5)) - gap
    x1 = rng.standard_normal((n, 5)) + gap
    x = np.concatenate([x0, x1])
    y = np.concatenate([np.zeros(n, dtype=int), np.ones(n, dtype=int)])
    return x, y


class TestLinearSVM:
    def test_separable_data_perfect_accuracy(self, rng):
        x, y = _blobs(rng)
        model = LinearSVM(epochs=30, seed=1).fit(x, y)
        assert (model.predict(x) == y).mean() == 1.0

    def test_margin_sign_tracks_class(self, rng):
        x, y = _blobs(rng)
        model = LinearSVM(epochs=30, seed=1).fit(x, y)
        scores = model.decision_function(x)
        assert scores[y == 1].min() > 0
        assert scores[y == 0].max() < 0

    def test_deterministic(self, rng):
        x, y = _blobs(rng)
        a = LinearSVM(epochs=10, seed=3).fit(x, y)
        b = LinearSVM(epochs=10, seed=3).fit(x, y)
        np.testing.assert_array_equal(a.weights, b.weights)

    def test_single_class_raises(self, rng):
        x = rng.standard_normal((10, 3))
        with pytest.raises(ValueError):
            LinearSVM().fit(x, np.zeros(10, dtype=int))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LinearSVM().decision_function(np.zeros((1, 3)))

    def test_regulariser_bounds_weights(self, rng):
        x, y = _blobs(rng, gap=5.0)
        weak = LinearSVM(lam=1e-4, epochs=20, seed=0).fit(x, y)
        strong = LinearSVM(lam=1.0, epochs=20, seed=0).fit(x, y)
        assert np.linalg.norm(strong.weights) < np.linalg.norm(weak.weights)

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            LinearSVM(lam=0.0)
        with pytest.raises(ValueError):
            LinearSVM(epochs=0)


class TestLbpSvmDetector:
    def test_detects_unseen_seizure(self, mini_recording, mini_segments):
        det = LbpSvmDetector(mini_recording.n_electrodes, fs=256.0, seed=2)
        det.fit(mini_recording.data, mini_segments)
        result = det.detect(mini_recording.data)
        second = mini_recording.seizures[1]
        hits = (result.alarm_times >= second.onset_s) & (
            result.alarm_times <= second.offset_s + 5.0
        )
        assert hits.any()

    def test_predict_before_fit_raises(self):
        det = LbpSvmDetector(4, fs=256.0)
        with pytest.raises(RuntimeError):
            det.predict(np.zeros((1000, 4)))

    def test_wrong_channel_count_raises(self, mini_recording, mini_segments):
        det = LbpSvmDetector(mini_recording.n_electrodes, fs=256.0)
        det.fit(mini_recording.data, mini_segments)
        with pytest.raises(ValueError):
            det.predict(np.zeros((1000, 2)))

    def test_window_predictions_structure(self, mini_recording, mini_segments):
        det = LbpSvmDetector(mini_recording.n_electrodes, fs=256.0, seed=2)
        det.fit(mini_recording.data, mini_segments)
        preds = det.predict(mini_recording.data[: 256 * 20])
        assert preds.labels.shape == preds.deltas.shape == preds.times.shape
        assert set(np.unique(preds.labels)) <= {0, 1}
        assert np.all(preds.deltas >= 0)
