"""Tests for the CNN and LSTM baseline detectors."""

import numpy as np
import pytest

from repro.baselines.cnn import StftCnnDetector, build_cnn
from repro.baselines.lstm import LstmDetector


class TestCnnArchitecture:
    def test_output_shape(self, rng):
        model = build_cnn(seed=0)
        logits = model.forward(rng.standard_normal((3, 1, 16, 16)))
        assert logits.shape == (3, 2)

    def test_deterministic_weights(self):
        a = build_cnn(seed=5)
        b = build_cnn(seed=5)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


@pytest.fixture(scope="module")
def fast_cnn(mini_recording, mini_segments):
    det = StftCnnDetector(
        mini_recording.n_electrodes, fs=256.0, epochs=80, seed=2
    )
    det.fit(mini_recording.data, mini_segments)
    return det


@pytest.fixture(scope="module")
def fast_lstm(mini_recording, mini_segments):
    det = LstmDetector(
        mini_recording.n_electrodes, fs=256.0, epochs=120, seed=2
    )
    det.fit(mini_recording.data, mini_segments)
    return det


class TestCnnDetector:
    def test_training_loss_decreases(self, fast_cnn):
        losses = fast_cnn.training_losses
        assert losses[-1] < 0.5 * losses[0]

    def test_detects_unseen_seizure(self, fast_cnn, mini_recording):
        result = fast_cnn.detect(mini_recording.data)
        second = mini_recording.seizures[1]
        hits = (result.alarm_times >= second.onset_s) & (
            result.alarm_times <= second.offset_s + 5.0
        )
        assert hits.any()

    def test_epoch_validation(self):
        with pytest.raises(ValueError):
            StftCnnDetector(4, fs=256.0, epochs=0)


class TestLstmDetector:
    def test_training_loss_decreases(self, fast_lstm):
        losses = fast_lstm.training_losses
        assert losses[-1] < 0.5 * losses[0]

    def test_detects_unseen_seizure(self, fast_lstm, mini_recording):
        result = fast_lstm.detect(mini_recording.data)
        second = mini_recording.seizures[1]
        hits = (result.alarm_times >= second.onset_s) & (
            result.alarm_times <= second.offset_s + 5.0
        )
        assert hits.any()

    def test_scores_batched_equals_direct(self, fast_lstm, mini_recording):
        feats = fast_lstm._features(mini_recording.data[: 256 * 30])
        flat = fast_lstm.scaler.transform(fast_lstm._flat(feats))
        scores = fast_lstm._scores(flat.reshape(feats.shape))
        logits = fast_lstm._forward(flat.reshape(feats.shape))
        np.testing.assert_allclose(scores, logits[:, 1] - logits[:, 0])

    def test_epoch_validation(self):
        with pytest.raises(ValueError):
            LstmDetector(4, fs=256.0, epochs=0)


class TestSharedScaffolding:
    def test_scaler_applied_consistently(self, fast_lstm, mini_recording):
        # Scaling twice with the same detector must be idempotent across
        # calls (fit statistics are frozen after fit).
        a = fast_lstm.predict(mini_recording.data[: 256 * 20])
        b = fast_lstm.predict(mini_recording.data[: 256 * 20])
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_allclose(a.deltas, b.deltas)

    def test_empty_signal_predictions(self, fast_lstm):
        preds = fast_lstm.predict(
            np.zeros((10, fast_lstm.n_electrodes), dtype=np.float32)
        )
        assert len(preds.labels) == 0
