"""Tests for the shared baseline scaffolding (scaler, WindowedDetector)."""

import numpy as np
import pytest

from repro.baselines.base import FeatureScaler, WindowedDetector
from repro.core.training import TrainingSegments


class TestFeatureScaler:
    def test_standardises(self, rng):
        x = rng.standard_normal((200, 4)) * 5.0 + 3.0
        scaler = FeatureScaler().fit(x)
        z = scaler.transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_safe(self):
        x = np.ones((50, 2))
        x[:, 1] = np.arange(50)
        scaler = FeatureScaler().fit(x)
        z = scaler.transform(x)
        assert np.all(np.isfinite(z))
        np.testing.assert_allclose(z[:, 0], 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            FeatureScaler().transform(np.zeros((2, 2)))

    def test_transform_uses_training_statistics(self, rng):
        train = rng.standard_normal((100, 3))
        other = rng.standard_normal((100, 3)) + 10.0
        scaler = FeatureScaler().fit(train)
        z = scaler.transform(other)
        # Shifted data stays shifted: the scaler is frozen.
        assert z.mean() > 5.0


class _MeanDetector(WindowedDetector):
    """Trivial detector: score = mean window amplitude (for testing)."""

    def _features(self, signal):
        from repro.signal.windows import WindowSpec, window_view

        spec = WindowSpec.from_seconds(self.window_s, self.step_s, self.fs)
        windows = window_view(np.abs(signal).mean(axis=1), spec)
        return windows.mean(axis=1, keepdims=True)

    def _train(self, features, labels):
        positives = features[labels == 1].mean()
        negatives = features[labels == 0].mean()
        self._threshold = 0.5 * (positives + negatives)

    def _scores(self, features):
        return features[:, 0] - self._threshold


class TestWindowedDetectorScaffolding:
    def test_fit_predict_cycle(self, mini_recording, mini_segments):
        det = _MeanDetector(mini_recording.n_electrodes, fs=256.0)
        det.fit(mini_recording.data, mini_segments)
        preds = det.predict(mini_recording.data)
        in_seizure = (preds.times > 225) & (preds.times < 245)
        assert preds.labels[in_seizure].mean() > 0.5

    def test_rejects_empty_segment(self, mini_recording):
        det = _MeanDetector(mini_recording.n_electrodes, fs=256.0)
        segments = TrainingSegments(
            ictal=((100.0, 100.2),), interictal=(40.0, 70.0)
        )
        with pytest.raises(ValueError):
            det.fit(mini_recording.data, segments)

    def test_rejects_zero_electrodes(self):
        with pytest.raises(ValueError):
            _MeanDetector(0, fs=256.0)

    def test_detect_uses_tr_attribute(self, mini_recording, mini_segments):
        det = _MeanDetector(mini_recording.n_electrodes, fs=256.0)
        det.fit(mini_recording.data, mini_segments)
        baseline = det.detect(mini_recording.data)
        det.tr = 1e9
        suppressed = det.detect(mini_recording.data)
        assert len(suppressed.alarm_times) <= len(baseline.alarm_times)
        assert len(suppressed.alarm_times) == 0

    def test_times_at_window_ends(self, mini_recording, mini_segments):
        det = _MeanDetector(mini_recording.n_electrodes, fs=256.0)
        det.fit(mini_recording.data, mini_segments)
        preds = det.predict(mini_recording.data[: 256 * 10])
        assert preds.times[0] == pytest.approx(1.0)
        assert np.all(np.diff(preds.times) == pytest.approx(0.5))
