"""Tests for repro.baselines.features."""

import numpy as np
import pytest

from repro.baselines.features import (
    window_lbp_histograms,
    window_sequences,
    window_stft,
)

FS = 256.0


@pytest.fixture()
def signal(rng):
    return rng.standard_normal((int(10 * FS), 4))


class TestLbpHistograms:
    def test_shape(self, signal):
        feats = window_lbp_histograms(signal, FS)
        assert feats.shape[1] == 4 * 64
        # 10 s at 256 Hz -> 2554 codes -> 18 complete 1 s windows at 0.5 s hop.
        assert feats.shape[0] == 18

    def test_rows_normalised_per_electrode(self, signal):
        feats = window_lbp_histograms(signal, FS)
        per_elec = feats.reshape(feats.shape[0], 4, 64)
        np.testing.assert_allclose(per_elec.sum(axis=2), 1.0)

    def test_monotone_signal_concentrates_mass(self):
        ramp = np.tile(np.arange(int(4 * FS), dtype=float)[:, None], (1, 2))
        feats = window_lbp_histograms(ramp, FS)
        per_elec = feats.reshape(feats.shape[0], 2, 64)
        np.testing.assert_allclose(per_elec[:, :, 63], 1.0)

    def test_amplitude_invariance(self, signal):
        a = window_lbp_histograms(signal, FS)
        b = window_lbp_histograms(signal * 100.0, FS)
        np.testing.assert_allclose(a, b)


class TestStft:
    def test_shape(self, signal):
        feats = window_stft(signal, FS)
        assert feats.shape[1:] == (1, 16, 16)

    def test_tone_concentrates_in_frequency_row(self):
        t = np.arange(int(4 * FS)) / FS
        tone = np.sin(2 * np.pi * 42.67 * t)[:, None]  # bin 5 of 16
        feats = window_stft(np.tile(tone, (1, 2)), FS)
        image = feats[2, 0]
        assert image[5].mean() > 2 * np.delete(image, 5, axis=0).mean()

    def test_resamples_other_rates(self, rng):
        signal512 = rng.standard_normal((512 * 4, 2))
        feats = window_stft(signal512, 512.0)
        assert feats.shape[1:] == (1, 16, 16)

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            window_stft(rng.standard_normal(100), FS)


class TestSequences:
    def test_shape(self, signal):
        feats = window_sequences(signal, FS, n_steps=32)
        assert feats.shape[1:] == (32, 3)

    def test_amplitude_feature_tracks_scale(self, signal):
        a = window_sequences(signal, FS)
        b = window_sequences(signal * 10.0, FS)
        np.testing.assert_allclose(b[..., 2], 10.0 * a[..., 2], rtol=1e-6)

    def test_rejects_too_many_steps(self, rng):
        with pytest.raises(ValueError):
            window_sequences(rng.standard_normal((300, 2)), FS, n_steps=1000)

    def test_constant_signal_zero_variance_features(self):
        const = np.ones((int(3 * FS), 2))
        feats = window_sequences(const, FS)
        np.testing.assert_allclose(feats[..., 1], 0.0, atol=1e-12)
        np.testing.assert_allclose(feats[..., 0], 1.0)
