"""Shared fixtures for the test suite.

Fixtures use reduced dimensions/durations so the whole suite runs in
minutes on one CPU while still exercising every code path: a synthetic
mini-patient with two seizures, a trained small-d Laelaps detector, and
the shared synthesis parameters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.core.training import TrainingSegments
from repro.data.model import Recording
from repro.data.synthetic import (
    SeizurePlan,
    SynthesisParams,
    SyntheticIEEGGenerator,
)

#: Shared reduced sampling rate: halves compute, keeps every pipeline
#: invariant (the 1 s window still holds 4x the 64-code LBP alphabet).
TEST_FS = 256.0


@pytest.fixture(scope="session")
def synthesis_params() -> SynthesisParams:
    """Default synthesis parameters at the test sampling rate."""
    return SynthesisParams(fs=TEST_FS)


@pytest.fixture(scope="session")
def mini_recording(synthesis_params: SynthesisParams) -> Recording:
    """300 s, 16-electrode recording with one train + one test seizure."""
    generator = SyntheticIEEGGenerator(16, synthesis_params, seed=42)
    return generator.generate(
        300.0, [SeizurePlan(100.0, 25.0), SeizurePlan(220.0, 25.0)]
    )


@pytest.fixture(scope="session")
def mini_segments() -> TrainingSegments:
    """Training segments matching ``mini_recording``'s first seizure."""
    return TrainingSegments(
        ictal=((100.0, 125.0),), interictal=(40.0, 70.0)
    )


@pytest.fixture(scope="session")
def small_config() -> LaelapsConfig:
    """Laelaps config with a reduced dimension for fast tests."""
    return LaelapsConfig(dim=1_000, fs=TEST_FS, seed=7)


@pytest.fixture(scope="session")
def fitted_detector(
    mini_recording: Recording,
    mini_segments: TrainingSegments,
    small_config: LaelapsConfig,
) -> LaelapsDetector:
    """A Laelaps detector trained on the mini recording."""
    detector = LaelapsDetector(mini_recording.n_electrodes, small_config)
    detector.fit(mini_recording.data, mini_segments)
    return detector


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)
