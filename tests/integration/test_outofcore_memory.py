"""RAM-budget contract of the out-of-core pipeline.

Tier-1 scale: the streamed path's peak (tracemalloc) must be flat in
the recording length while the in-memory sweep's grows, and disk-backed
generation must stay bounded by its chunk budget.  The slow-marked test
is the acceptance criterion of the out-of-core pipeline: a 1024-channel
30-minute recording generated to disk and evaluated end to end (train,
streamed predict, alarms) under a 200 MB evaluation-memory ceiling the
in-memory path cannot meet (its float64 generation buffer alone is
~1.9 GB).

``tracemalloc`` counts every traced allocation (numpy registers its
buffers) but *not* memmap pages — which is the point: mapped file pages
are reclaimable cache, not working-set demand.  Peak RSS is recorded in
the channel-scaling benchmark (``BENCH_channel_scaling.json``) rather
than asserted here, because it is a process-lifetime high-water mark.
"""

import gc
import tracemalloc

import numpy as np
import pytest

from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.data.outofcore import (
    CohortSpec,
    MemberSpec,
    default_member_plans,
    generate_cohort,
)
from repro.data.synthetic import SynthesisParams
from repro.evaluation.runner import (
    finalize_run,
    predict_windows,
    predict_windows_streamed,
    run_patient,
    tune_run_tr,
)

#: The out-of-core evaluation memory ceiling (ISSUE acceptance).
BUDGET_MB = 200.0


def _peak_mb(fn) -> float:
    gc.collect()
    tracemalloc.start()
    try:
        fn()
        return tracemalloc.get_traced_memory()[1] / 1e6
    finally:
        tracemalloc.stop()


class TestStreamedPeakIsFlat:
    """Streamed peak ~constant in duration; in-memory peak grows."""

    @pytest.fixture(scope="class")
    def setup(self, tmp_path_factory):
        fs = 256.0
        spec = CohortSpec(
            "mem-probe",
            (MemberSpec("m0", 64, 90.0, seed=5),),
            params=SynthesisParams(fs=fs),
            seed=1,
        )
        root = tmp_path_factory.mktemp("probe")
        recording = generate_cohort(spec, root).member("m0").open()
        detector = LaelapsDetector(
            64, LaelapsConfig(dim=256, fs=fs, seed=9)
        )
        from repro.core.training import TrainingSegments

        detector.fit(
            recording.data[: int(80.0 * fs)],
            TrainingSegments(ictal=((55.0, 70.0),), interictal=(10.0, 40.0)),
        )
        short = recording.data[: int(20.0 * fs)]
        long = recording.data[: int(60.0 * fs)]
        return detector, short, long

    def test_streamed_peak_does_not_grow_with_duration(self, setup):
        detector, short, long = setup
        peak_short = _peak_mb(
            lambda: predict_windows_streamed(detector, short, 2048)
        )
        peak_long = _peak_mb(
            lambda: predict_windows_streamed(detector, long, 2048)
        )
        assert peak_long < 1.4 * peak_short, (peak_short, peak_long)

    def test_in_memory_peak_grows_and_exceeds_streamed(self, setup):
        detector, short, long = setup
        mem_short = _peak_mb(lambda: predict_windows(detector, short))
        mem_long = _peak_mb(lambda: predict_windows(detector, long))
        streamed_long = _peak_mb(
            lambda: predict_windows_streamed(detector, long, 2048)
        )
        # The batched sweep materialises codes + spatial gather buffers
        # proportional to the whole span; 3x the duration must show up.
        assert mem_long > 1.8 * mem_short, (mem_short, mem_long)
        assert streamed_long < mem_long, (streamed_long, mem_long)


class TestGenerationBudget:
    def test_generation_peak_is_chunk_bounded(self, tmp_path):
        spec = CohortSpec(
            "gen-probe",
            (MemberSpec("m0", 64, 300.0, default_member_plans(300.0, 2),
                        seed=2),),
            params=SynthesisParams(fs=256.0),
            seed=3,
        )
        peak = _peak_mb(lambda: generate_cohort(spec, tmp_path))
        assert peak < 150.0, peak


@pytest.mark.slow
class TestHighChannelAcceptance:
    """1024 channels x 30 minutes, end to end, under the 200 MB ceiling."""

    def test_1024_channel_30_minute_member(self, tmp_path):
        fs = 128.0  # keeps the slow run in minutes; channel count is the point
        duration_s = 1800.0
        spec = CohortSpec(
            "hd-1024",
            (MemberSpec("m0", 1024, duration_s,
                        default_member_plans(duration_s, 3), seed=0),),
            params=SynthesisParams(fs=fs),
            seed=0,
        )
        gen_peak = _peak_mb(lambda: generate_cohort(spec, tmp_path))
        data_file = tmp_path / "m0.f32"
        assert data_file.stat().st_size == int(duration_s * fs) * 1024 * 4
        assert gen_peak < BUDGET_MB, f"generation peak {gen_peak:.0f} MB"

        # The in-memory path cannot meet the ceiling at this scale: the
        # batch generator's float64 working array alone is ~1.9 GB.
        in_memory_floor_mb = int(duration_s * fs) * 1024 * 8 / 1e6
        assert in_memory_floor_mb > 4 * BUDGET_MB

        from repro.data.outofcore import load_cohort

        patient = load_cohort(tmp_path).member("m0").patient()
        results = {}

        def evaluate():
            def factory(n_electrodes, rec_fs):
                return LaelapsDetector(
                    n_electrodes,
                    LaelapsConfig(dim=1_000, fs=rec_fs, seed=7),
                )

            run = run_patient(factory, patient, method="laelaps",
                              chunk_samples=2048)
            result = finalize_run(run, tr=tune_run_tr(run))
            results["result"] = result

        eval_peak = _peak_mb(evaluate)
        assert eval_peak < BUDGET_MB, f"evaluation peak {eval_peak:.0f} MB"

        result = results["result"]
        # Both unseen test seizures should raise alarms at this SNR.
        assert result.metrics.n_seizures == 2
        assert result.metrics.n_detected >= 1
        assert len(result.alarm_times) >= 1
        assert np.all(np.diff(result.alarm_times) > 0)
