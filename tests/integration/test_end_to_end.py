"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.data.cohort import PatientSpec, synthesize_patient
from repro.data.io import load_recording, save_recording
from repro.data.splits import split_patient
from repro.evaluation.runner import finalize_run, run_patient, tune_run_tr


@pytest.fixture(scope="module")
def patient():
    spec = PatientSpec(
        "IT1", n_electrodes=12, n_seizures=4, recording_hours=0.12,
        train_seizures=1, n_subtle_test=1, seed=77,
    )
    return synthesize_patient(spec, hours_scale=1.0, fs=256.0)


class TestFullProtocol:
    """Synthesise -> split -> fit -> tune -> detect, as the paper does."""

    @pytest.fixture(scope="class")
    def run(self, patient):
        def factory(n_electrodes, fs):
            return LaelapsDetector(
                n_electrodes, LaelapsConfig(dim=1_000, fs=fs, seed=3)
            )

        return run_patient(factory, patient, method="laelaps")

    def test_detects_clinical_not_subtle(self, run):
        tr = tune_run_tr(run)
        result = finalize_run(run, tr=tr)
        clinical = [s for s in run.test_seizures if s.seizure_type == "clinical"]
        subtle = [s for s in run.test_seizures if s.seizure_type == "subtle"]
        assert len(clinical) == 2 and len(subtle) == 1
        # All clinical test seizures detected, the subtle one missed.
        assert result.metrics.n_detected == len(clinical)

    def test_zero_false_alarms_with_tuned_tr(self, run):
        tr = tune_run_tr(run)
        result = finalize_run(run, tr=tr)
        assert result.metrics.n_false_alarms == 0

    def test_delay_in_plausible_range(self, run):
        result = finalize_run(run, tr=tune_run_tr(run))
        for delay in result.metrics.delays_s:
            # t_c = 10 imposes >= ~5.5 s; the paper reports 5-36 s.
            assert 4.0 <= delay <= 40.0


class TestDeterminismAcrossStack:
    def test_same_seed_same_alarms(self, patient):
        def factory(n_electrodes, fs):
            return LaelapsDetector(
                n_electrodes, LaelapsConfig(dim=1_000, fs=fs, seed=9)
            )

        split = split_patient(patient)
        a = run_patient(factory, patient, split=split)
        b = run_patient(factory, patient, split=split)
        np.testing.assert_array_equal(a.test_preds.labels, b.test_preds.labels)
        np.testing.assert_array_equal(a.test_preds.deltas, b.test_preds.deltas)


class TestPersistenceRoundTrip:
    def test_detector_results_stable_across_io(self, patient, tmp_path):
        path = save_recording(patient.recording, tmp_path / "p.npz")
        loaded = load_recording(path)
        config = LaelapsConfig(dim=1_000, fs=256.0, seed=3)
        det = LaelapsDetector(patient.recording.n_electrodes, config)
        split = split_patient(patient)
        det.fit(patient.recording.data, split.training_segments)
        direct = det.predict(patient.recording.data[: 256 * 60])
        via_io = det.predict(loaded.data[: 256 * 60])
        np.testing.assert_array_equal(direct.labels, via_io.labels)


class TestDimensionRobustness:
    @pytest.mark.parametrize("dim", [1_000, 2_000])
    def test_detection_across_dims(self, patient, dim):
        def factory(n_electrodes, fs):
            return LaelapsDetector(
                n_electrodes, LaelapsConfig(dim=dim, fs=fs, seed=3)
            )

        run = run_patient(factory, patient, method="laelaps")
        result = finalize_run(run, tr=tune_run_tr(run))
        clinical = [s for s in run.test_seizures if s.seizure_type == "clinical"]
        assert result.metrics.n_detected == len(clinical)
