"""Smoke tests executing every runnable example under a tiny config.

Each ``examples/*.py`` (underscore-prefixed helpers excluded) runs as a
subprocess with ``REPRO_EXAMPLE_SMOKE=1`` (see ``examples/_smoke.py``),
so any drift between the examples and the current API fails CI instead
of rotting silently.  Examples run from a temp directory so artefacts
they write (e.g. checkpoints) never land in the repository.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted(
    p
    for p in (REPO_ROOT / "examples").glob("*.py")
    if not p.name.startswith("_")
)


def test_every_example_is_collected():
    # A new example is covered automatically; an emptied glob would
    # silently skip everything, so pin the floor.
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_in_smoke_mode(example, tmp_path):
    env = os.environ.copy()
    env["REPRO_EXAMPLE_SMOKE"] = "1"
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    result = subprocess.run(
        [sys.executable, str(example)],
        cwd=tmp_path,  # artefacts (checkpoints, ...) land here
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{example.name} exited with {result.returncode}\n"
        f"--- stdout ---\n{result.stdout}\n"
        f"--- stderr ---\n{result.stderr}"
    )
