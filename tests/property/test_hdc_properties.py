"""Property-based tests (hypothesis) for the HD computing substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.hdc.backend import (
    hamming_distance,
    hamming_distance_packed,
    pack_bits,
    unpack_bits,
)
from repro.hdc.ops import BundleAccumulator, bind, bundle, majority_from_counts

DIMS = st.integers(min_value=1, max_value=300)


def bit_arrays(dim: int, rows: int | None = None):
    shape = (dim,) if rows is None else (rows, dim)
    return hnp.arrays(np.uint8, shape, elements=st.integers(0, 1))


@st.composite
def vector_pair(draw):
    dim = draw(DIMS)
    a = draw(bit_arrays(dim))
    b = draw(bit_arrays(dim))
    return a, b


@st.composite
def vector_triple(draw):
    dim = draw(DIMS)
    return tuple(draw(bit_arrays(dim)) for _ in range(3))


@st.composite
def vector_stack(draw):
    dim = draw(st.integers(1, 100))
    rows = draw(st.integers(1, 12))
    return draw(bit_arrays(dim, rows))


class TestPackingProperties:
    @settings(max_examples=60, deadline=None)
    @given(vector_pair())
    def test_round_trip(self, pair):
        a, _ = pair
        np.testing.assert_array_equal(unpack_bits(pack_bits(a), a.size), a)

    @settings(max_examples=60, deadline=None)
    @given(vector_pair())
    def test_packed_hamming_equals_unpacked(self, pair):
        a, b = pair
        assert hamming_distance_packed(
            pack_bits(a), pack_bits(b)
        ) == hamming_distance(a, b)


class TestHammingMetricAxioms:
    @settings(max_examples=60, deadline=None)
    @given(vector_pair())
    def test_symmetry_and_identity(self, pair):
        a, b = pair
        assert hamming_distance(a, b) == hamming_distance(b, a)
        assert hamming_distance(a, a) == 0
        assert 0 <= hamming_distance(a, b) <= a.size

    @settings(max_examples=60, deadline=None)
    @given(vector_triple())
    def test_triangle_inequality(self, triple):
        a, b, c = triple
        assert hamming_distance(a, c) <= (
            hamming_distance(a, b) + hamming_distance(b, c)
        )


class TestBindProperties:
    @settings(max_examples=60, deadline=None)
    @given(vector_triple())
    def test_associative(self, triple):
        a, b, c = triple
        np.testing.assert_array_equal(bind(bind(a, b), c), bind(a, bind(b, c)))

    @settings(max_examples=60, deadline=None)
    @given(vector_pair())
    def test_self_inverse_and_isometry(self, pair):
        a, b = pair
        np.testing.assert_array_equal(bind(a, bind(a, b)), b)
        # Binding with any vector preserves distances.
        c = np.roll(a, 1)
        assert hamming_distance(bind(a, c), bind(b, c)) == hamming_distance(a, b)


class TestBundleProperties:
    @settings(max_examples=60, deadline=None)
    @given(vector_stack())
    def test_order_invariance(self, stack):
        shuffled = stack[::-1].copy()
        np.testing.assert_array_equal(bundle(stack), bundle(shuffled))

    @settings(max_examples=60, deadline=None)
    @given(vector_stack())
    def test_bundle_no_farther_than_majority_bound(self, stack):
        # The bundle is at least as close to each input as to its
        # complement on average: distance <= dim (trivial) and the
        # summed distance over inputs is minimal for the majority vector.
        out = bundle(stack)
        total = sum(int(hamming_distance(out, v)) for v in stack)
        flipped = 1 - out
        total_flipped = sum(int(hamming_distance(flipped, v)) for v in stack)
        assert total <= total_flipped

    @settings(max_examples=60, deadline=None)
    @given(vector_stack())
    def test_streaming_equals_batch(self, stack):
        acc = BundleAccumulator(stack.shape[1])
        for row in stack:
            acc.add(row)
        np.testing.assert_array_equal(acc.finalize(), bundle(stack))

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 50), st.integers(0, 50))
    def test_majority_threshold_consistent(self, k, count):
        counts = np.array([min(count, k)])
        bit = majority_from_counts(counts, k)[0]
        assert bit == (1 if counts[0] > k // 2 else 0)


class TestIdempotence:
    @settings(max_examples=40, deadline=None)
    @given(vector_pair())
    def test_bundling_duplicates_returns_vector(self, pair):
        a, _ = pair
        np.testing.assert_array_equal(bundle(np.stack([a, a, a])), a)
