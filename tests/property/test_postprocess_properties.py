"""Property-based tests for the postprocessor and event matching."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.postprocess import alarm_flags, flags_to_onsets
from repro.evaluation.events import merge_alarms

LABELS = hnp.arrays(np.int64, st.integers(0, 80), elements=st.integers(0, 1))


@st.composite
def label_delta_stream(draw):
    labels = draw(LABELS)
    deltas = draw(
        hnp.arrays(
            np.float64,
            labels.shape[0],
            elements=st.floats(0, 1e3, allow_nan=False),
        )
    )
    return labels, deltas


class TestAlarmFlagProperties:
    @settings(max_examples=80, deadline=None)
    @given(label_delta_stream(), st.floats(0, 1e3, allow_nan=False))
    def test_monotone_in_tr(self, stream, tr):
        labels, deltas = stream
        at_zero = alarm_flags(labels, deltas, 10, 10, 0.0)
        at_tr = alarm_flags(labels, deltas, 10, 10, tr)
        # Raising t_r can only remove flags, never add them.
        assert not np.any(at_tr & ~at_zero)

    @settings(max_examples=80, deadline=None)
    @given(label_delta_stream(), st.integers(1, 10))
    def test_monotone_in_tc(self, stream, tc):
        labels, deltas = stream
        strict = alarm_flags(labels, deltas, 10, 10, 0.0)
        loose = alarm_flags(labels, deltas, 10, tc, 0.0)
        assert not np.any(strict & ~loose)

    @settings(max_examples=80, deadline=None)
    @given(label_delta_stream())
    def test_flag_requires_ictal_window(self, stream):
        labels, deltas = stream
        flags = alarm_flags(labels, deltas, 10, 10, 0.0)
        # tc = 10 over 10 labels: a flag at i implies the 10 trailing
        # labels (or all labels so far, near the start) are ictal.
        for i in np.flatnonzero(flags):
            lo = max(0, i - 9)
            assert np.all(labels[lo : i + 1] == 1)
            assert i - lo + 1 >= 10 or lo == 0

    @settings(max_examples=80, deadline=None)
    @given(label_delta_stream())
    def test_onsets_are_flagged_and_rising(self, stream):
        labels, deltas = stream
        flags = alarm_flags(labels, deltas, 10, 8, 0.0)
        onsets = flags_to_onsets(flags)
        for idx in onsets:
            assert flags[idx]
            if idx > 0:
                assert not flags[idx - 1]


class TestMergeProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            st.integers(0, 40),
            elements=st.floats(0, 1e4, allow_nan=False),
        ),
        st.floats(0.1, 100),
    )
    def test_merged_events_respect_refractory(self, times, refractory):
        merged = merge_alarms(times, refractory)
        assert np.all(np.diff(merged) >= refractory)
        # Every merged event is one of the original alarms.
        assert set(merged.tolist()) <= set(np.asarray(times, float).tolist())
        # Never more events than alarms; at least one if any alarm.
        if times.size:
            assert 1 <= merged.size <= times.size
