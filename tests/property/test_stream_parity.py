"""Property tests: batch and streaming alarms are bit-identical.

The tentpole contract of the shared :class:`AlarmStateMachine`: for every
``t_c <= postprocess_len``, any label/delta stream and any chunking —
one label at a time, ragged chunks, everything at once — the incremental
path produces exactly the flags and onsets of the batch path, including
the warm-up rule (first possible alarm at window ``postprocess_len - 1``)
and checkpoint/restore at arbitrary cut points.  A detector-level layer
repeats the guarantee end to end: ``detect()`` and streaming ``run()``
raise alarms at identical times under adversarial raw-sample chunkings.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detector import LaelapsDetector
from repro.core.postprocess import (
    AlarmStateMachine,
    PostprocessConfig,
    alarm_flags,
    flags_to_onsets,
)
from repro.core.streaming import StreamingLaelaps


@st.composite
def stream_and_chunking(draw):
    n = draw(st.integers(0, 120))
    labels = np.array(
        draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    deltas = np.array(
        draw(
            st.lists(
                st.floats(0, 100, allow_nan=False), min_size=n, max_size=n
            )
        )
    )
    cuts = draw(
        st.lists(st.integers(0, max(n, 1)), max_size=8).map(sorted)
    )
    postprocess_len = draw(st.integers(1, 12))
    tc = draw(st.integers(1, postprocess_len))
    tr = draw(st.floats(0, 50, allow_nan=False))
    return labels, deltas, cuts, postprocess_len, tc, tr


class TestMachineMatchesBatch:
    @settings(max_examples=150, deadline=None)
    @given(stream_and_chunking())
    def test_any_chunking_any_tc(self, case):
        labels, deltas, cuts, postprocess_len, tc, tr = case
        batch = alarm_flags(labels, deltas, postprocess_len, tc, tr)
        machine = AlarmStateMachine(
            PostprocessConfig(postprocess_len=postprocess_len, tc=tc, tr=tr)
        )
        bounds = [0, *cuts, len(labels)]
        parts = [
            machine.update(labels[lo:hi], deltas[lo:hi])[0]
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        streamed = (
            np.concatenate(parts) if parts else np.zeros(0, dtype=bool)
        )
        np.testing.assert_array_equal(streamed, batch)
        # Warm-up contract holds regardless of parameters.
        assert not batch[: postprocess_len - 1].any()

    @settings(max_examples=100, deadline=None)
    @given(stream_and_chunking())
    def test_rising_edges_equal_batch_onsets(self, case):
        labels, deltas, cuts, postprocess_len, tc, tr = case
        onsets = flags_to_onsets(
            alarm_flags(labels, deltas, postprocess_len, tc, tr)
        )
        machine = AlarmStateMachine(
            PostprocessConfig(postprocess_len=postprocess_len, tc=tc, tr=tr)
        )
        bounds = [0, *cuts, len(labels)]
        rising = [
            machine.update(labels[lo:hi], deltas[lo:hi])[1]
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        streamed = (
            np.flatnonzero(np.concatenate(rising))
            if rising
            else np.zeros(0, dtype=np.int64)
        )
        np.testing.assert_array_equal(streamed, onsets)

    @settings(max_examples=100, deadline=None)
    @given(stream_and_chunking(), st.integers(0, 120))
    def test_checkpoint_restore_at_any_cut(self, case, cut_raw):
        labels, deltas, _, postprocess_len, tc, tr = case
        cut = min(cut_raw, len(labels))
        config = PostprocessConfig(
            postprocess_len=postprocess_len, tc=tc, tr=tr
        )
        batch = alarm_flags(labels, deltas, postprocess_len, tc, tr)
        machine = AlarmStateMachine(config)
        head, _ = machine.update(labels[:cut], deltas[:cut])
        resumed = AlarmStateMachine(config).restore_state(
            machine.state_dict()
        )
        tail, _ = resumed.update(labels[cut:], deltas[cut:])
        np.testing.assert_array_equal(np.concatenate([head, tail]), batch)


def _with_tc(detector: LaelapsDetector, tc: int) -> LaelapsDetector:
    """A detector sharing prototypes/t_r but voting with another t_c."""
    config = dataclasses.replace(detector.config, tc=tc)
    clone = LaelapsDetector(detector.n_electrodes, config)
    for label in detector.memory.labels:
        clone.memory.store(label, detector.memory.prototype(label))
    clone.tr = detector.tr
    return clone


class TestDetectorLevelParity:
    """detect() and streaming run() agree end to end."""

    @pytest.mark.parametrize("tc", list(range(1, 11)))
    def test_every_tc_up_to_postprocess_len(
        self, fitted_detector, mini_recording, tc
    ):
        detector = _with_tc(fitted_detector, tc)
        segment = mini_recording.data[: 256 * 60]
        batch = detector.detect(segment)
        events = StreamingLaelaps(detector).run(segment, 333)
        stream_alarms = [e.time_s for e in events if e.alarm]
        np.testing.assert_allclose(stream_alarms, batch.alarm_times)

    @pytest.mark.parametrize(
        "chunk_samples",
        [1, 17, 255, 256, 257, 4096],
        ids=["one-sample", "tiny", "sub-block", "block", "ragged", "multi"],
    )
    def test_adversarial_chunkings(
        self, fitted_detector, mini_recording, chunk_samples
    ):
        detector = _with_tc(fitted_detector, 5)
        seconds = 12 if chunk_samples == 1 else 45
        segment = mini_recording.data[: 256 * seconds]
        batch = detector.detect(segment)
        flags_onsets = flags_to_onsets(batch.flags)
        events = StreamingLaelaps(detector).run(segment, chunk_samples)
        stream_alarms = [e.time_s for e in events if e.alarm]
        np.testing.assert_allclose(stream_alarms, batch.alarm_times)
        # Onset *indices* agree too (not only times).
        stream_idx = [i for i, e in enumerate(events) if e.alarm]
        np.testing.assert_array_equal(stream_idx, flags_onsets)
