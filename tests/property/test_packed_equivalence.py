"""Property tests: the packed domain is bit-exact against the unpacked.

Every packed-domain operation (permutation, carry-save counting, the
spatial/temporal encoders, prototype training, associative-memory
queries) must agree with its unpacked reference on arbitrary inputs —
in particular across *odd* dimensions where the top word carries
padding bits.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdc.associative import (
    AssociativeMemory,
    PackedPrototypeAccumulator,
    PrototypeAccumulator,
)
from repro.hdc.backend import (
    pack_bits,
    packed_words,
    permute_packed,
    unpack_bits,
)
from repro.hdc.bitsliced import (
    bitsliced_counts,
    planes_add,
    planes_greater_than,
    planes_to_counts,
)
from repro.hdc.item_memory import ItemMemory
from repro.hdc.spatial import SpatialEncoder
from repro.hdc.spatial_packed import PackedSpatialEncoder
from repro.hdc.temporal import TemporalEncoder
from repro.hdc.temporal_packed import PackedTemporalEncoder
from repro.signal.windows import WindowSpec

#: Dimensions straddling word boundaries: d % 64 in {1, 63, 0, ...}.
ODD_DIMS = st.sampled_from([1, 2, 63, 64, 65, 100, 127, 128, 129, 200])


def _bits(rng: np.random.Generator, shape) -> np.ndarray:
    return rng.integers(0, 2, size=shape, dtype=np.uint8)


class TestPackingRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(ODD_DIMS, st.integers(1, 8), st.integers(0, 2**32 - 1))
    def test_round_trip_batch(self, dim, rows, seed):
        bits = _bits(np.random.default_rng(seed), (rows, dim))
        packed = pack_bits(bits)
        assert packed.shape == (rows, packed_words(dim))
        np.testing.assert_array_equal(unpack_bits(packed, dim), bits)

    @settings(max_examples=60, deadline=None)
    @given(ODD_DIMS, st.integers(0, 2**32 - 1))
    def test_padding_bits_stay_zero(self, dim, seed):
        packed = pack_bits(_bits(np.random.default_rng(seed), dim))
        tail = dim % 64
        if tail:
            assert int(packed[-1]) >> tail == 0


class TestPackedPermutation:
    @settings(max_examples=80, deadline=None)
    @given(ODD_DIMS, st.integers(-300, 300), st.integers(0, 2**32 - 1))
    def test_matches_roll(self, dim, shift, seed):
        bits = _bits(np.random.default_rng(seed), dim)
        rolled = unpack_bits(permute_packed(pack_bits(bits), dim, shift), dim)
        np.testing.assert_array_equal(rolled, np.roll(bits, shift))

    @settings(max_examples=40, deadline=None)
    @given(ODD_DIMS, st.integers(-300, 300), st.integers(0, 2**32 - 1))
    def test_inverse(self, dim, shift, seed):
        packed = pack_bits(_bits(np.random.default_rng(seed), dim))
        back = permute_packed(permute_packed(packed, dim, shift), dim, -shift)
        np.testing.assert_array_equal(back, packed)


class TestBitslicedCounting:
    @settings(max_examples=60, deadline=None)
    @given(ODD_DIMS, st.integers(1, 20), st.integers(0, 2**32 - 1))
    def test_counts_decode(self, dim, k, seed):
        bits = _bits(np.random.default_rng(seed), (k, dim))
        planes = bitsliced_counts(pack_bits(bits))
        np.testing.assert_array_equal(
            planes_to_counts(planes, dim), bits.sum(axis=0)
        )

    @settings(max_examples=40, deadline=None)
    @given(ODD_DIMS, st.integers(1, 12), st.integers(1, 12),
           st.integers(0, 2**32 - 1))
    def test_planes_add(self, dim, k1, k2, seed):
        rng = np.random.default_rng(seed)
        a = _bits(rng, (k1, dim))
        b = _bits(rng, (k2, dim))
        total = planes_add(
            bitsliced_counts(pack_bits(a)), bitsliced_counts(pack_bits(b))
        )
        np.testing.assert_array_equal(
            planes_to_counts(total, dim), a.sum(axis=0) + b.sum(axis=0)
        )

    @settings(max_examples=60, deadline=None)
    @given(ODD_DIMS, st.integers(1, 20), st.integers(-1, 25),
           st.integers(0, 2**32 - 1))
    def test_threshold_comparator(self, dim, k, threshold, seed):
        bits = _bits(np.random.default_rng(seed), (k, dim))
        mask = planes_greater_than(bitsliced_counts(pack_bits(bits)), threshold)
        np.testing.assert_array_equal(
            unpack_bits(mask, dim),
            (bits.sum(axis=0) > threshold).astype(np.uint8),
        )


class TestEncoderEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(ODD_DIMS, st.integers(2, 9), st.integers(1, 40),
           st.integers(0, 2**32 - 1))
    def test_spatial(self, dim, n_electrodes, n_samples, seed):
        code_memory = ItemMemory(8, dim, seed=3)
        electrode_memory = ItemMemory(n_electrodes, dim, seed=4)
        unpacked = SpatialEncoder(code_memory, electrode_memory)
        packed = PackedSpatialEncoder(code_memory, electrode_memory)
        codes = np.random.default_rng(seed).integers(
            0, 8, (n_samples, n_electrodes)
        )
        np.testing.assert_array_equal(
            unpack_bits(packed.encode_packed(codes), dim),
            unpacked.encode(codes),
        )

    @settings(max_examples=15, deadline=None)
    @given(ODD_DIMS, st.integers(0, 2**32 - 1))
    def test_temporal(self, dim, seed):
        code_memory = ItemMemory(8, dim, seed=3)
        electrode_memory = ItemMemory(4, dim, seed=4)
        spec = WindowSpec.from_seconds(1.0, 0.5, 16.0)
        codes = np.random.default_rng(seed).integers(0, 8, (100, 4))
        h_unpacked = TemporalEncoder(
            SpatialEncoder(code_memory, electrode_memory), spec
        ).encode_all(codes)
        h_packed = PackedTemporalEncoder(
            PackedSpatialEncoder(code_memory, electrode_memory), spec
        ).encode_all(codes)
        np.testing.assert_array_equal(unpack_bits(h_packed, dim), h_unpacked)


class TestAssociativeEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(ODD_DIMS, st.integers(1, 10), st.integers(1, 12),
           st.integers(0, 2**32 - 1))
    def test_prototypes_and_distances(self, dim, k_train, k_query, seed):
        rng = np.random.default_rng(seed)
        train = _bits(rng, (k_train, dim))
        other = _bits(rng, (k_train, dim))
        queries = _bits(rng, (k_query, dim))

        unpacked_memory = AssociativeMemory(dim)
        unpacked_memory.train(0, train)
        unpacked_memory.train(1, other)
        packed_memory = AssociativeMemory(dim)
        packed_memory.train_packed(0, pack_bits(train))
        packed_memory.train_packed(1, pack_bits(other))

        np.testing.assert_array_equal(
            packed_memory.prototype(0), unpacked_memory.prototype(0)
        )
        labels_u, dists_u = unpacked_memory.classify(queries)
        labels_p, dists_p = packed_memory.classify_packed(pack_bits(queries))
        np.testing.assert_array_equal(labels_p, labels_u)
        np.testing.assert_array_equal(dists_p, dists_u)

    @settings(max_examples=40, deadline=None)
    @given(ODD_DIMS, st.integers(1, 15), st.integers(0, 2**32 - 1))
    def test_accumulators_agree(self, dim, k, seed):
        vectors = _bits(np.random.default_rng(seed), (k, dim))
        unpacked = PrototypeAccumulator(dim).add(vectors).finalize()
        packed = (
            PackedPrototypeAccumulator(dim).add(pack_bits(vectors)).finalize()
        )
        np.testing.assert_array_equal(unpack_bits(packed, dim), unpacked)
