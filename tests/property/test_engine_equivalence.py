"""Property tests: every registered compute engine is bit-exact.

The tentpole contract of :mod:`repro.hdc.engine`: the ``unpacked``,
``packed``, ``packed-fused`` and ``packed-native`` engines produce
identical prototypes, labels, Hamming distances and stream events on
arbitrary inputs — over odd dimensions (padding bits in the top word),
ragged stream chunking, mixed-engine session fleets sharing one grouped
sweep, and mid-stream checkpoint/restore where the checkpoint is
reopened on a *different* engine than the one that wrote it.

``packed-native`` participates on every host: with numba installed (the
``native-engine`` CI job) its kernels run JIT-compiled and parallel,
without it the module-scoped fixture below forces the pure-Python
kernel twins — the exact same kernel code, so bit-exactness holds in
both environments.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.hdc.engine as engine_module
from repro.core.config import ICTAL, INTERICTAL, LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.core.sessions import StreamSessionManager
from repro.core.streaming import StreamingLaelaps
from repro.hdc.backend import random_bits, unpack_bits
from repro.hdc.engine import PACKED_NATIVE_ENGINE, engine_names
from repro.hdc.native import NATIVE_PURE_PYTHON_ENV

ENGINES = engine_names()


@pytest.fixture(scope="module", autouse=True)
def _native_engine_constructible():
    """Let ``packed-native`` build on numba-free hosts (pure-Python twins).

    Module-scoped (not function-scoped) so hypothesis's
    function_scoped_fixture health check stays quiet; restores the
    environment on the way out.
    """
    previous = os.environ.get(NATIVE_PURE_PYTHON_ENV)
    os.environ[NATIVE_PURE_PYTHON_ENV] = "1"
    yield
    if previous is None:
        os.environ.pop(NATIVE_PURE_PYTHON_ENV, None)
    else:
        os.environ[NATIVE_PURE_PYTHON_ENV] = previous
#: Dimensions straddling word boundaries: d % 64 in {63, 0, 1, ...}.
ODD_DIMS = st.sampled_from([63, 64, 65, 127, 129, 200, 257])
FS = 32.0  # 32-sample windows, 16-sample blocks: fast under hypothesis


def _fitted(engine: str, dim: int, rng: np.random.Generator,
            n_electrodes: int = 3) -> LaelapsDetector:
    """A fitted detector on ``engine``, trained from shared unpacked H.

    Every engine accepts the unpacked window form, so training all
    engines from the same uint8 windows checks the training dispatch
    (``engine.train``) as well as the query path.
    """
    detector = LaelapsDetector(
        n_electrodes,
        LaelapsConfig(dim=dim, fs=FS, lbp_length=3, seed=11, backend=engine),
    )
    detector.fit_from_windows(
        random_bits((4, dim), np.random.default_rng(rng.integers(2**31))),
        random_bits((4, dim), np.random.default_rng(rng.integers(2**31))),
    )
    detector.tr = 1.0
    return detector


def _signal(rng: np.random.Generator, seconds: float,
            n_electrodes: int = 3) -> np.ndarray:
    return rng.standard_normal((int(seconds * FS), n_electrodes))


class TestBatchEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(ODD_DIMS, st.integers(0, 2**31 - 1))
    def test_encode_matches_across_engines(self, dim, seed):
        """H vectors agree component for component after unpacking."""
        signal = _signal(np.random.default_rng(seed + 1), 3.0)
        reference = None
        for engine in ENGINES:
            h = _fitted(engine, dim, np.random.default_rng(seed)).encode(
                signal
            )
            as_bits = h if h.dtype == np.uint8 else unpack_bits(h, dim)
            if reference is None:
                reference = as_bits
            else:
                np.testing.assert_array_equal(as_bits, reference)
        assert reference is not None and reference.shape[0] > 0

    @settings(max_examples=20, deadline=None)
    @given(ODD_DIMS, st.integers(0, 2**31 - 1))
    def test_train_and_predict_bit_exact(self, dim, seed):
        """Prototypes, labels, distances and deltas agree everywhere."""
        signal = _signal(np.random.default_rng(seed + 1), 4.0)
        results = {}
        for engine in ENGINES:
            detector = _fitted(engine, dim, np.random.default_rng(seed))
            results[engine] = (
                detector.memory.prototype(INTERICTAL),
                detector.memory.prototype(ICTAL),
                detector.predict(signal),
            )
        ref_inter, ref_ictal, ref_preds = results[ENGINES[0]]
        for engine in ENGINES[1:]:
            inter, ictal, preds = results[engine]
            np.testing.assert_array_equal(inter, ref_inter)
            np.testing.assert_array_equal(ictal, ref_ictal)
            np.testing.assert_array_equal(preds.labels, ref_preds.labels)
            np.testing.assert_array_equal(
                preds.distances, ref_preds.distances
            )
            np.testing.assert_array_equal(preds.deltas, ref_preds.deltas)
            np.testing.assert_array_equal(preds.times, ref_preds.times)

    @settings(max_examples=25, deadline=None)
    @given(ODD_DIMS, st.integers(1, 6), st.integers(0, 2**31 - 1))
    def test_cross_engine_window_feeding(self, dim, n_windows, seed):
        """Windows encoded on any engine classify identically on any other."""
        rng = np.random.default_rng(seed)
        detectors = {
            engine: _fitted(engine, dim, np.random.default_rng(seed))
            for engine in ENGINES
        }
        windows = random_bits((n_windows, dim), rng)
        forms = [windows, detectors["packed"].engine.pack_queries(windows)]
        reference = None
        for detector in detectors.values():
            for form in forms:
                labels, dists, deltas = detector.classify_from_windows(form)
                if reference is None:
                    reference = (labels, dists, deltas)
                else:
                    np.testing.assert_array_equal(labels, reference[0])
                    np.testing.assert_array_equal(dists, reference[1])
                    np.testing.assert_array_equal(deltas, reference[2])


class TestFusedSweep:
    """The fused block sweep equals encode-everything-then-classify."""

    @pytest.mark.parametrize("chunk_windows", [1, 2, 3, 7])
    def test_block_sweep_matches_unfused(self, monkeypatch, chunk_windows):
        # Shrink the flush size so a short recording spans many slices,
        # exercising the slice loop and the cross-slice concatenation.
        monkeypatch.setattr(
            engine_module, "_FUSED_WINDOW_CHUNK", chunk_windows
        )
        rng = np.random.default_rng(5)
        fused = _fitted("packed-fused", 129, np.random.default_rng(9))
        packed = _fitted("packed", 129, np.random.default_rng(9))
        signal = _signal(rng, 8.0)
        preds_fused = fused.predict(signal)
        preds_packed = packed.predict(signal)
        assert len(preds_fused) > chunk_windows  # really crossed slices
        np.testing.assert_array_equal(
            preds_fused.labels, preds_packed.labels
        )
        np.testing.assert_array_equal(
            preds_fused.distances, preds_packed.distances
        )

    def test_single_window_scratch_query(self):
        """The preallocated streaming query equals the general sweep."""
        rng = np.random.default_rng(6)
        fused = _fitted("packed-fused", 200, np.random.default_rng(3))
        packed = _fitted("packed", 200, np.random.default_rng(3))
        for _ in range(5):  # reuses the scratch across calls
            window = random_bits((1, 200), rng)
            query = fused.engine.pack_queries(window)
            labels_f, dists_f = fused.engine.classify_windows(
                fused.memory, query
            )
            labels_p, dists_p = packed.memory.classify_packed(query)
            np.testing.assert_array_equal(labels_f, labels_p)
            np.testing.assert_array_equal(dists_f, dists_p)

    def test_empty_code_stream(self):
        fused = _fitted("packed-fused", 65, np.random.default_rng(3))
        codes = np.zeros((0, 3), dtype=np.int64)
        labels, dists = fused.engine.encode_classify(fused.memory, codes)
        assert labels.shape == (0,)
        assert dists.shape == (0, 2)


@st.composite
def ragged_cuts(draw, n_samples: int):
    cuts = draw(st.lists(st.integers(1, n_samples), max_size=6).map(sorted))
    return [0, *cuts, n_samples]


class TestStreamingEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(ODD_DIMS, st.data())
    def test_ragged_chunking_matches_batch_on_every_engine(self, dim, data):
        seed = data.draw(st.integers(0, 2**31 - 1))
        signal = _signal(np.random.default_rng(seed + 1), 5.0)
        bounds = data.draw(ragged_cuts(signal.shape[0]))
        reference = None
        for engine in ENGINES:
            detector = _fitted(engine, dim, np.random.default_rng(seed))
            batch = detector.detect(signal)
            stream = StreamingLaelaps(detector)
            events = []
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                events.extend(stream.push(signal[lo:hi]))
            streamed = [
                (e.time_s, e.label, e.delta, e.alarm) for e in events
            ]
            assert len(streamed) == len(batch.predictions)
            np.testing.assert_array_equal(
                [s[1] for s in streamed], batch.predictions.labels
            )
            if reference is None:
                reference = streamed
            else:
                assert streamed == reference


class TestMixedEngineFleet:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.sampled_from([5, 11, 16, 37]))
    def test_grouped_sweep_matches_solo_streams(self, seed, chunk):
        """One manager serving every engine at once is bit-exact."""
        dim = 127
        rng = np.random.default_rng(seed)
        manager = StreamSessionManager()
        solo = {}
        signals = {}
        for i, engine in enumerate(ENGINES):
            detector = _fitted(engine, dim, np.random.default_rng(seed + i))
            twin = _fitted(engine, dim, np.random.default_rng(seed + i))
            session_id = f"s-{engine}"
            manager.open(session_id, detector)
            solo[session_id] = StreamingLaelaps(twin)
            signals[session_id] = _signal(
                np.random.default_rng(seed + 50 + i), 4.0
            )
        fleet_events = manager.run(signals, chunk)
        for session_id, signal in signals.items():
            solo_events = solo[session_id].run(signal, chunk)
            assert [
                (e.time_s, e.label, e.delta, e.alarm)
                for e in fleet_events[session_id]
            ] == [
                (e.time_s, e.label, e.delta, e.alarm) for e in solo_events
            ]
        del rng  # randomness flows through the per-session seeds


class TestCheckpointAcrossEngines:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(0, 2**31 - 1),
        st.sampled_from([17, 29, 40]),
        st.sampled_from(ENGINES),
        st.sampled_from(ENGINES),
    )
    def test_midstream_export_reopens_on_any_engine(
        self, seed, cut_chunk, engine_a, engine_b
    ):
        """A session checkpointed on one engine resumes on another.

        The exported payload pins the engine that wrote it; rewriting
        the tag before import must still produce bit-identical events,
        because the persisted state (prototypes, symboliser tail, block
        counters as plain numpy data) is engine-independent.
        """
        _roundtrip_checkpoint(engine_a, engine_b, seed, cut_chunk)


def _roundtrip_checkpoint(
    engine_a: str, engine_b: str, seed: int, cut_chunk: int, dim: int = 100
) -> None:
    """Checkpoint mid-stream on ``engine_a``, resume on ``engine_b``."""
    signal = _signal(np.random.default_rng(seed + 1), 5.0)
    half = signal.shape[0] // 2

    reference = StreamingLaelaps(
        _fitted(engine_a, dim, np.random.default_rng(seed))
    )
    expected = reference.run(signal, cut_chunk)

    manager = StreamSessionManager()
    manager.open(
        "p0", _fitted(engine_a, dim, np.random.default_rng(seed))
    )
    events = []
    for start in range(0, half, cut_chunk):
        events.extend(
            manager.push("p0", signal[start : start + cut_chunk])
        )
    payload = manager.pop_session("p0")
    assert payload["model"]["engine"] == engine_a

    payload["model"]["engine"] = engine_b
    resumed = StreamSessionManager()
    stream = resumed.import_session("p0", payload)
    assert stream.detector.backend == engine_b
    consumed = stream.samples_seen
    for lo in range(consumed, signal.shape[0], cut_chunk):
        events.extend(resumed.push("p0", signal[lo : lo + cut_chunk]))
    assert [
        (e.time_s, e.label, e.delta, e.alarm) for e in events
    ] == [(e.time_s, e.label, e.delta, e.alarm) for e in expected]


class TestNativeCheckpointDirections:
    """Explicit to/from ``packed-native`` restore coverage, both ways.

    The hypothesis test above samples engine pairs; these pin the four
    native-engine directions so every run exercises them, odd dim and
    mid-window cut included.
    """

    @pytest.mark.parametrize("engine_a, engine_b", [
        (PACKED_NATIVE_ENGINE, "packed-fused"),
        ("packed-fused", PACKED_NATIVE_ENGINE),
        (PACKED_NATIVE_ENGINE, "unpacked"),
        ("unpacked", PACKED_NATIVE_ENGINE),
    ])
    def test_midstream_restore(self, engine_a, engine_b):
        _roundtrip_checkpoint(engine_a, engine_b, seed=123, cut_chunk=29,
                              dim=127)
