"""Property-based tests for window geometry and the encoder alignment."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signal.windows import WindowSpec, num_windows, window_start_indices, window_view


@st.composite
def spec_and_length(draw):
    window = draw(st.integers(1, 64))
    step = draw(st.integers(1, window))
    n = draw(st.integers(0, 500))
    return WindowSpec(window, step), n


class TestWindowProperties:
    @settings(max_examples=100, deadline=None)
    @given(spec_and_length())
    def test_counts_consistent(self, case):
        spec, n = case
        count = num_windows(n, spec)
        starts = window_start_indices(n, spec)
        assert len(starts) == count
        if count:
            # Every window fits entirely inside the signal.
            assert starts[-1] + spec.window_samples <= n
            # One more window would not fit.
            assert starts[-1] + spec.step_samples + spec.window_samples > n

    @settings(max_examples=100, deadline=None)
    @given(spec_and_length())
    def test_view_matches_slices(self, case):
        spec, n = case
        data = np.arange(n)
        view = window_view(data, spec)
        for i, start in enumerate(window_start_indices(n, spec)):
            np.testing.assert_array_equal(
                view[i], data[start : start + spec.window_samples]
            )

    @settings(max_examples=100, deadline=None)
    @given(spec_and_length())
    def test_full_coverage_when_step_divides(self, case):
        spec, n = case
        count = num_windows(n, spec)
        if count == 0:
            return
        covered = np.zeros(n, dtype=bool)
        for start in window_start_indices(n, spec):
            covered[start : start + spec.window_samples] = True
        # All samples up to the last window's end are covered (windows
        # overlap or tile; no interior gaps).
        last_end = window_start_indices(n, spec)[-1] + spec.window_samples
        assert covered[:last_end].all()
