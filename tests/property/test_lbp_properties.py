"""Property-based tests for the LBP symbolisation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.lbp.codes import lbp_codes, num_codes, sign_bits

SIGNALS = hnp.arrays(
    np.float64,
    st.integers(2, 200),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)
LENGTHS = st.integers(1, 8)


class TestLbpProperties:
    @settings(max_examples=80, deadline=None)
    @given(SIGNALS, LENGTHS)
    def test_count_and_range(self, signal, length):
        codes = lbp_codes(signal, length)
        assert codes.shape[0] == num_codes(signal.size, length)
        if codes.size:
            assert codes.min() >= 0
            assert codes.max() < (1 << length)

    @settings(max_examples=80, deadline=None)
    @given(SIGNALS, LENGTHS)
    def test_amplitude_invariance(self, signal, length):
        # LBP depends only on the sign of differences: positive scaling
        # changes nothing.  (Additive offsets also preserve codes on real
        # signals but can absorb sub-epsilon differences in float64, so
        # only the exact scale property is asserted.)
        np.testing.assert_array_equal(
            lbp_codes(signal, length), lbp_codes(signal * 3.5, length)
        )

    @settings(max_examples=80, deadline=None)
    @given(SIGNALS)
    def test_negation_flips_strict_bits(self, signal):
        # Where the signal strictly decreases, the negated signal
        # strictly increases; ties stay 0 in both.
        bits = sign_bits(signal)
        neg_bits = sign_bits(-signal)
        diffs = np.diff(signal)
        strict = diffs != 0
        assert not np.any(bits[strict] & neg_bits[strict])
        assert np.all((bits | neg_bits)[strict] == 1)
        ties = ~strict
        assert not np.any(bits[ties]) and not np.any(neg_bits[ties])

    @settings(max_examples=80, deadline=None)
    @given(SIGNALS, LENGTHS)
    def test_shift_equivariance(self, signal, length):
        # Codes of signal[1:] are codes of signal shifted by one.
        full = lbp_codes(signal, length)
        shifted = lbp_codes(signal[1:], length)
        if shifted.size:
            np.testing.assert_array_equal(full[1:], shifted)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 50))
    def test_constant_signal_is_all_zero_codes(self, n):
        codes = lbp_codes(np.ones(n), 4)
        assert np.all(codes == 0)
