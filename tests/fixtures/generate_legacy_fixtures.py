"""Regenerate the pre-engine-registry checkpoint fixtures.

The committed ``legacy_packed_*`` files freeze the payload schema that
existed *before* the compute-engine registry: model metas carry no
``engine`` tag and name their engine only through the config's
``backend`` field (``"packed"`` / ``"unpacked"``).  The compat test
(``tests/core/test_legacy_checkpoint.py``) restores them onto the
current registry and checks the results bit-exactly against the frozen
expectations.

Run from the repository root to regenerate after an *intentional*
format change (the whole point of the fixtures is that unintentional
changes fail the test)::

    PYTHONPATH=src python tests/fixtures/generate_legacy_fixtures.py

Everything is derived from fixed seeds, so regeneration is
deterministic; the writers below produce the legacy schema by saving
with the current code and stripping the ``engine`` tags.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

FIXTURE_DIR = Path(__file__).resolve().parent

# The frozen model/session parameters (mirrored by the compat test).
DIM = 300
FS = 128.0
N_ELECTRODES = 4
MODEL_SEED = 11
MODEL_TR = 1.5
EVAL_SECONDS = 8.0
SESSION_SPECS = (
    {"id": "legacy-0", "seed": 21, "backend": "packed"},
    {"id": "legacy-1", "seed": 22, "backend": "unpacked"},
)
SESSION_TR = 0.5
#: Samples pushed before the mid-stream checkpoint: more than one 0.5 s
#: block (64 samples at 128 Hz), so the snapshot holds a live block
#: accumulator *and* pending codes.
WARMUP_SAMPLES = 70
SESSION_SECONDS = 7.0
RESUME_CHUNK = 32


def build_legacy_model():
    """The fitted packed-era detector and its evaluation signal."""
    from repro.core.config import LaelapsConfig
    from repro.core.detector import LaelapsDetector
    from repro.hdc.backend import random_bits

    detector = LaelapsDetector(
        N_ELECTRODES,
        LaelapsConfig(dim=DIM, fs=FS, seed=MODEL_SEED, backend="packed"),
    )
    detector.fit_from_windows(
        random_bits((5, DIM), np.random.default_rng(101)),
        random_bits((5, DIM), np.random.default_rng(102)),
    )
    detector.tr = MODEL_TR
    signal = np.random.default_rng(2024).standard_normal(
        (int(EVAL_SECONDS * FS), N_ELECTRODES)
    )
    return detector, signal


def build_legacy_sessions():
    """A mid-stream two-session manager (mixed engines) + its signals."""
    from repro.core.config import LaelapsConfig
    from repro.core.detector import LaelapsDetector
    from repro.core.sessions import StreamSessionManager
    from repro.hdc.backend import random_bits

    manager = StreamSessionManager()
    signals = {}
    for spec in SESSION_SPECS:
        detector = LaelapsDetector(
            N_ELECTRODES,
            LaelapsConfig(
                dim=DIM, fs=FS, seed=spec["seed"], backend=spec["backend"]
            ),
        )
        detector.fit_from_windows(
            random_bits((4, DIM), np.random.default_rng(spec["seed"] + 100)),
            random_bits((4, DIM), np.random.default_rng(spec["seed"] + 200)),
        )
        detector.tr = SESSION_TR
        manager.open(spec["id"], detector)
        signals[spec["id"]] = np.random.default_rng(
            spec["seed"] + 300
        ).standard_normal((int(SESSION_SECONDS * FS), N_ELECTRODES))
    warmup = manager.push_many(
        {sid: sig[:WARMUP_SAMPLES] for sid, sig in signals.items()}
    )
    assert all(not events for events in warmup.values())
    return manager, signals


def resume_events(manager, signals):
    """Stream the post-checkpoint remainder; returns JSON-ready events."""
    events = {sid: [] for sid in signals}
    for start in range(
        WARMUP_SAMPLES, int(SESSION_SECONDS * FS), RESUME_CHUNK
    ):
        tick = {
            sid: sig[start : start + RESUME_CHUNK]
            for sid, sig in signals.items()
        }
        for sid, new_events in manager.push_many(tick).items():
            events[sid].extend(
                [e.time_s, e.label, e.delta, int(e.alarm)]
                for e in new_events
            )
    return events


def _strip_engine_tags(path: Path) -> None:
    """Rewrite an ``.npz`` checkpoint into the pre-registry schema.

    Two legacy traits: model metas lose their ``engine`` tag, and
    packed sessions store their live block state as bit-sliced digit
    planes (the engine-specific form the packed encoder checkpointed
    before block state was canonicalised to integer counts).
    """
    from repro.hdc.bitsliced import planes_from_counts

    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    meta = json.loads(bytes(arrays["meta"].tobytes()).decode("utf-8"))
    meta.pop("engine", None)
    for i, session in enumerate(meta.get("sessions", [])):
        session.pop("engine", None)
        if session["config"]["backend"] == "packed":
            for j in range(session["n_blocks"]):
                key = f"s{i}__block{j}"
                arrays[key] = planes_from_counts(arrays[key], DIM)
    arrays["meta"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def main() -> None:
    from repro.core.persistence import save_model, save_sessions

    detector, signal = build_legacy_model()
    model_path = save_model(detector, FIXTURE_DIR / "legacy_packed_model.npz")
    _strip_engine_tags(model_path)
    preds = detector.predict(signal)
    np.savez_compressed(
        FIXTURE_DIR / "legacy_packed_expected.npz",
        labels=preds.labels,
        distances=preds.distances,
        deltas=preds.deltas,
        times=preds.times,
    )

    manager, signals = build_legacy_sessions()
    sessions_path = save_sessions(
        manager, FIXTURE_DIR / "legacy_packed_sessions.npz"
    )
    _strip_engine_tags(sessions_path)
    expected = resume_events(manager, signals)
    (FIXTURE_DIR / "legacy_packed_sessions_expected.json").write_text(
        json.dumps(expected, indent=1)
    )
    print(f"regenerated legacy fixtures under {FIXTURE_DIR}")


if __name__ == "__main__":
    main()
