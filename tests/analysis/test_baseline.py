"""Tests for the committed-baseline layer of ``repro lint``."""

from __future__ import annotations

import json

import pytest

from repro.analysis import META_CODE, Finding, lint_paths
from repro.analysis.baseline import (
    BASELINE_VERSION,
    Baseline,
    BaselineEntry,
    BaselineError,
    load_baseline,
    write_baseline,
)


def _entry(**overrides):
    base = dict(
        code="RPR003", path="src/repro/core/persistence.py",
        match="backend literal 'unpacked' outside repro.hdc; import the "
              "name from repro.hdc.engine or resolve it through the "
              "registry",
        reason="legacy checkpoint path, documented",
    )
    base.update(overrides)
    return BaselineEntry(**base)


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_entry(), _entry(code="RPR008", match="fp")])
        loaded = load_baseline(path)
        assert len(loaded.entries) == 2
        assert {e.code for e in loaded.entries} == {"RPR003", "RPR008"}

    def test_layout_is_sorted_and_stable(self, tmp_path):
        path = tmp_path / "baseline.json"
        entries = [_entry(code="RPR008", match="z"), _entry()]
        write_baseline(path, entries)
        first = path.read_text()
        write_baseline(path, list(reversed(entries)))
        assert path.read_text() == first
        payload = json.loads(first)
        assert payload["version"] == BASELINE_VERSION


class TestValidation:
    def test_missing_reason_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        payload = {
            "version": BASELINE_VERSION,
            "entries": [{"code": "RPR003", "path": "a.py",
                         "match": "m", "reason": "   "}],
        }
        path.write_text(json.dumps(payload))
        with pytest.raises(BaselineError, match="no reason"):
            load_baseline(path)

    def test_missing_field_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        payload = {
            "version": BASELINE_VERSION,
            "entries": [{"code": "RPR003", "path": "a.py",
                         "reason": "r"}],
        }
        path.write_text(json.dumps(payload))
        with pytest.raises(BaselineError, match="missing fields"):
            load_baseline(path)

    def test_unknown_version_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(BaselineError, match="version"):
            load_baseline(path)

    def test_unreadable_json_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{nope")
        with pytest.raises(BaselineError, match="cannot read"):
            load_baseline(path)


class TestMatching:
    def test_match_is_code_path_and_message(self):
        entry = _entry()
        hit = Finding(path=entry.path, line=107, col=44,
                      code=entry.code, message=entry.match)
        assert entry.sanctions(hit)
        # Line numbers are deliberately not part of the match.
        moved = Finding(path=entry.path, line=1, col=0,
                        code=entry.code, message=entry.match)
        assert entry.sanctions(moved)
        other = Finding(path=entry.path, line=107, col=44,
                        code=entry.code, message="different message")
        assert not entry.sanctions(other)
        elsewhere = Finding(path="src/repro/cli.py", line=107, col=44,
                            code=entry.code, message=entry.match)
        assert not entry.sanctions(elsewhere)


class TestStaleEntries:
    def test_stale_entry_becomes_a_meta_finding(self, tmp_path):
        target = tmp_path / "src" / "repro" / "core" / "x.py"
        target.parent.mkdir(parents=True)
        target.write_text("x = 1\n")  # nothing to sanction
        baseline = Baseline([_entry()], path="lint-baseline.json")
        result = lint_paths([target], baseline=baseline, root=tmp_path)
        stale = [f for f in result.findings if f.code == META_CODE]
        assert len(stale) == 1
        assert "stale baseline entry" in stale[0].message
        assert stale[0].path == "lint-baseline.json"
        assert result.exit_code == 1  # the file can only shrink honestly

    def test_matching_entry_is_not_stale(self, tmp_path):
        target = tmp_path / "src" / "repro" / "serve" / "x.py"
        target.parent.mkdir(parents=True)
        target.write_text("_CACHE = {}\n")
        raw = lint_paths([target], root=tmp_path)
        entry = BaselineEntry(
            code=raw.findings[0].code, path=raw.findings[0].path,
            match=raw.findings[0].message, reason="fixture",
        )
        baseline = Baseline([entry], path="lint-baseline.json")
        result = lint_paths([target], baseline=baseline, root=tmp_path)
        assert result.exit_code == 0
        assert [f.baselined for f in result.findings] == [True]


class TestCommittedBaseline:
    def test_every_committed_entry_has_a_documented_reason(self):
        baseline = load_baseline("lint-baseline.json")
        assert baseline.entries, "committed baseline unexpectedly empty"
        for entry in baseline.entries:
            assert len(entry.reason.strip()) > 20, (
                f"{entry.code} at {entry.path}: a baseline reason must "
                "actually document why the violation may stay"
            )

    def test_committed_tree_lints_clean(self):
        baseline = load_baseline("lint-baseline.json")
        result = lint_paths(
            ["src", "tests", "benchmarks", "examples"], baseline=baseline
        )
        assert result.exit_code == 0, "\n".join(
            f.render() for f in result.new_findings
        )
        # The baseline is exactly the sanctioned set: no stale entries.
        assert not [f for f in result.findings if f.code == META_CODE]
