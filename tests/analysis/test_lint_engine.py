"""Engine-level tests: suppressions, RPR000 hygiene, JSON, file walking.

Suppression comments are assembled by concatenation throughout so this
file's raw lines never contain one themselves (parsing is line-based
and ``tests/`` is linted).
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    JSON_FORMAT_VERSION,
    META_CODE,
    Finding,
    LintResult,
    iter_python_files,
    lint_paths,
    lint_source,
    parse_suppressions,
    result_from_json,
)

NOQA = "# repro: " + "noqa"

_RNG_LINE = "import numpy as np\nnp.random.seed(0)"


def _meta(findings):
    return [f for f in findings if f.code == META_CODE]


class TestSuppressionParsing:
    def test_single_code(self):
        sups, malformed = parse_suppressions([f"x = 1  {NOQA}[RPR001]"])
        assert not malformed
        assert sups[0].line == 1
        assert sups[0].codes == ("RPR001",)

    def test_comma_list_with_spaces(self):
        sups, malformed = parse_suppressions(
            [f"x = 1  {NOQA}[RPR001, RPR003 ,RPR009]"]
        )
        assert not malformed
        assert sups[0].codes == ("RPR001", "RPR003", "RPR009")

    def test_codes_are_case_normalized(self):
        sups, _ = parse_suppressions([f"x = 1  {NOQA}[rpr001]"])
        assert sups[0].codes == ("RPR001",)

    def test_blanket_noqa_is_malformed(self):
        sups, malformed = parse_suppressions([f"x = 1  {NOQA}"])
        assert not sups
        assert malformed[0][0] == 1
        assert "blanket" in malformed[0][1]

    def test_empty_brackets_are_malformed(self):
        sups, malformed = parse_suppressions([f"x = 1  {NOQA}[]"])
        assert not sups
        assert malformed

    def test_garbage_codes_are_malformed(self):
        sups, malformed = parse_suppressions([f"x = 1  {NOQA}[banana]"])
        assert not sups
        assert "BANANA" in malformed[0][1]  # codes are case-normalized

    def test_flexible_comment_spacing(self):
        loose = "#  repro:" + "  noqa"  # extra spaces still parse
        sups, malformed = parse_suppressions([f"x = 1  {loose}[RPR002]"])
        assert not malformed
        assert sups[0].codes == ("RPR002",)

    def test_non_suppression_comments_ignored(self):
        sups, malformed = parse_suppressions(
            ["x = 1  # plain comment", "y = 2"]
        )
        assert not sups and not malformed


class TestSuppressionHygiene:
    def test_unknown_code_is_reported(self):
        findings = lint_source(
            f"x = 1  {NOQA}[RPR999]\n", "src/repro/core/x.py"
        )
        assert any("unknown rule code RPR999" in f.message
                   for f in _meta(findings))

    def test_unused_suppression_is_reported(self):
        findings = lint_source(
            f"x = 1  {NOQA}[RPR001]\n", "src/repro/core/x.py"
        )
        assert any("unused suppression" in f.message
                   for f in _meta(findings))

    def test_meta_code_cannot_be_suppressed(self):
        findings = lint_source(
            f"x = 1  {NOQA}[RPR000]\n", "src/repro/core/x.py"
        )
        assert any("cannot be suppressed" in f.message
                   for f in _meta(findings))

    def test_suppression_only_covers_its_own_line(self):
        source = (
            "import time\n"
            f"a = time.time()  {NOQA}[RPR002]\n"
            "b = time.time()\n"
        )
        findings = lint_source(source, "src/repro/core/x.py")
        rpr002 = [f for f in findings if f.code == "RPR002"]
        assert [f.line for f in rpr002] == [3]
        assert not _meta(findings)

    def test_one_comment_may_suppress_multiple_codes(self):
        source = (
            "import time\n"
            f"a = (time.time(), 'packed')  {NOQA}[RPR002, RPR003]\n"
        )
        findings = lint_source(source, "src/repro/core/x.py")
        assert not findings

    def test_syntax_error_is_a_meta_finding(self):
        findings = lint_source("def f(:\n", "src/repro/core/x.py")
        assert len(findings) == 1
        assert findings[0].code == META_CODE
        assert "syntax error" in findings[0].message


class TestJsonEnvelope:
    def _result(self):
        findings = lint_source(_RNG_LINE, "src/repro/core/x.py")
        assert findings
        findings[0] = Finding(
            path=findings[0].path, line=findings[0].line,
            col=findings[0].col, code=findings[0].code,
            message=findings[0].message, baselined=True,
        )
        return LintResult(findings=findings, files=1)

    def test_round_trip_preserves_everything(self):
        result = self._result()
        rebuilt = result_from_json(result.to_json())
        assert rebuilt.findings == result.findings
        assert rebuilt.files == result.files
        assert rebuilt.exit_code == result.exit_code

    def test_envelope_is_versioned_and_summarised(self):
        payload = self._result().to_json()
        assert payload["version"] == JSON_FORMAT_VERSION
        summary = payload["summary"]
        assert summary["findings"] == summary["new"] + summary["baselined"]
        assert summary["baselined"] == 1

    def test_unknown_version_is_rejected(self):
        payload = self._result().to_json()
        payload["version"] = 999
        with pytest.raises(ValueError, match="version"):
            result_from_json(payload)

    def test_exit_code_ignores_baselined_findings(self):
        finding = Finding(path="a.py", line=1, col=0, code="RPR001",
                          message="m", baselined=True)
        assert LintResult(findings=[finding], files=1).exit_code == 0
        fresh = Finding(path="a.py", line=1, col=0, code="RPR001",
                        message="m")
        assert LintResult(findings=[fresh], files=1).exit_code == 1


class TestFileWalking:
    def test_directories_expand_recursively_and_sorted(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
        names = [p.name for p in iter_python_files([tmp_path])]
        assert names == ["a.py", "b.py"]

    def test_hidden_and_pycache_are_skipped(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "x.py").write_text("x = 1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "y.py").write_text("x = 1\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        names = [p.name for p in iter_python_files([tmp_path])]
        assert names == ["ok.py"]

    def test_explicit_files_pass_through(self, tmp_path):
        f = tmp_path / "one.py"
        f.write_text("x = 1\n")
        assert list(iter_python_files([f])) == [f]

    def test_lint_paths_relativizes_against_root(self, tmp_path):
        target = tmp_path / "src" / "repro" / "serve" / "x.py"
        target.parent.mkdir(parents=True)
        target.write_text("_CACHE = {}\n")
        result = lint_paths([target], root=tmp_path)
        assert result.files == 1
        assert result.findings[0].path == "src/repro/serve/x.py"
        assert result.findings[0].code == "RPR004"
