"""Meta-tests over the rule registry itself.

The registry is the contract surface of ``repro lint``: every rule must
be documented, scoped, and fixture-tested.  These tests make "add a
rule" fail CI until the rule carries a rationale and a fixture table
entry, so the catalogue in ``docs/static_analysis.md`` and the test
suite cannot silently lag the code.
"""

from __future__ import annotations

import re

import pytest

from repro.analysis import META_CODE, registered_rules, rule_codes
from tests.analysis.test_rules import FIXTURES

_CODE_RE = re.compile(r"^RPR\d{3}$")


class TestRegistry:
    def test_codes_are_wellformed_unique_and_sorted(self):
        codes = rule_codes()
        assert codes == tuple(sorted(set(codes)))
        for code in codes:
            assert _CODE_RE.match(code)

    def test_meta_code_is_registered(self):
        assert META_CODE in rule_codes()

    def test_every_rule_documents_itself(self):
        for rule in registered_rules():
            assert rule.name, f"{rule.code} has no name slug"
            assert len(rule.rationale) > 40, (
                f"{rule.code} needs a real rationale paragraph, not a stub"
            )

    def test_scoping_prefixes_are_repo_relative(self):
        for rule in registered_rules():
            for prefix in rule.include + rule.exclude:
                assert not prefix.startswith("/"), (
                    f"{rule.code}: scope {prefix!r} must be repo-relative"
                )


class TestFixtureCoverage:
    def test_every_rule_code_has_fixtures(self):
        missing = set(rule_codes()) - set(FIXTURES)
        assert not missing, (
            f"rules without fixtures in tests/analysis/test_rules.py: "
            f"{sorted(missing)}"
        )

    def test_no_fixtures_for_unregistered_codes(self):
        unknown = set(FIXTURES) - set(rule_codes())
        assert not unknown, f"fixtures for unknown codes: {sorted(unknown)}"

    @pytest.mark.parametrize("code", sorted(FIXTURES))
    def test_each_code_has_violating_and_clean_fixtures(self, code):
        outcomes = {fixture.violates for fixture in FIXTURES[code]}
        assert True in outcomes, f"{code}: no violating fixture"
        assert False in outcomes, f"{code}: no clean/out-of-scope fixture"

    def test_scoped_rules_have_an_out_of_scope_fixture(self):
        scoped = [r for r in registered_rules() if r.include]
        for rule in scoped:
            fixtures = FIXTURES[rule.code]
            assert any(
                not rule.applies_to(f.path) for f in fixtures
            ), f"{rule.code}: no fixture outside {rule.include}"
