"""Fixture-backed tests for every registered ``repro lint`` rule.

Each rule code owns a table of :class:`Fixture` snippets — violating,
clean, and out-of-scope variants — and the generic tests below run the
whole table: violations are found (and fail the exit code), clean and
out-of-scope code is silent, every violating line can be suppressed
inline, and every violation can be sanctioned by a baseline entry.
``tests/analysis/test_meta.py`` asserts this table covers every
registered rule code, so adding a rule without fixtures fails CI.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.analysis import LintResult, lint_paths, lint_source
from repro.analysis.baseline import Baseline, BaselineEntry

# Built by concatenation so this file's own raw lines never contain a
# suppression comment (the parser is line-based and tests/ is linted).
NOQA = "# repro: " + "noqa"


@dataclass(frozen=True)
class Fixture:
    """One snippet: where it pretends to live and what to expect."""

    path: str
    source: str
    violates: bool


FIXTURES: dict[str, tuple[Fixture, ...]] = {
    # -- RPR000: engine hygiene (syntax errors; suppression hygiene has
    #    dedicated tests in test_engine.py) ----------------------------
    "RPR000": (
        Fixture("src/repro/core/x.py", "def f(:\n", True),
        Fixture("src/repro/core/x.py", "x = 1\n", False),
    ),
    # -- RPR001: no global RNG state ----------------------------------
    "RPR001": (
        Fixture(
            "src/repro/core/x.py",
            "import numpy as np\n"
            "\n"
            "\n"
            "def f():\n"
            "    np.random.seed(0)\n"
            "    return np.random.rand(4)\n",
            True,
        ),
        Fixture(
            "tests/core/test_x.py",
            "import random\n"
            "\n"
            "\n"
            "def f():\n"
            "    return random.choice([1, 2])\n",
            True,
        ),
        Fixture(
            "src/repro/core/x.py",
            "from numpy.random import RandomState\n"
            "\n"
            "\n"
            "def f():\n"
            "    return RandomState(0)\n",
            True,
        ),
        Fixture(
            "src/repro/core/x.py",
            "import numpy as np\n"
            "\n"
            "\n"
            "def f(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.integers(0, 2, size=8)\n",
            False,
        ),
        # A *local* called `random` must not false-positive: only
        # import-bound names resolve.
        Fixture(
            "src/repro/core/x.py",
            "def f(random):\n"
            "    return random()\n",
            False,
        ),
    ),
    # -- RPR002: wall clocks only in loadgen/benchmarks ---------------
    "RPR002": (
        Fixture(
            "src/repro/core/x.py",
            "import time\n"
            "\n"
            "\n"
            "def stamp():\n"
            "    return time.time()\n",
            True,
        ),
        Fixture(
            "examples/x.py",
            "from datetime import datetime\n"
            "\n"
            "\n"
            "def stamp():\n"
            "    return datetime.now()\n",
            True,
        ),
        Fixture(
            "src/repro/core/x.py",
            "import time\n"
            "\n"
            "\n"
            "def measure():\n"
            "    return time.perf_counter()\n",
            False,
        ),
        # The sanctioned wall-clock homes are carved out of the scope.
        Fixture(
            "src/repro/serve/loadgen.py",
            "import time\n"
            "\n"
            "\n"
            "def stamp():\n"
            "    return time.time()\n",
            False,
        ),
        Fixture(
            "benchmarks/bench_x.py",
            "import time\n"
            "\n"
            "\n"
            "def stamp():\n"
            "    return time.time()\n",
            False,
        ),
    ),
    # -- RPR003: engine literals stay inside repro.hdc ----------------
    "RPR003": (
        Fixture(
            "src/repro/core/x.py",
            'DEFAULT_BACKEND = "packed"\n',
            True,
        ),
        Fixture(
            "src/repro/serve/x.py",
            'def f(name):\n'
            '    return name == "packed-fused"\n',
            True,
        ),
        Fixture(
            "src/repro/core/x.py",
            "from repro.hdc.engine import UNPACKED_ENGINE\n"
            "\n"
            "DEFAULT_BACKEND = UNPACKED_ENGINE\n",
            False,
        ),
        # The registry's home may spell its own names.
        Fixture(
            "src/repro/hdc/x.py",
            'NAMES = ("packed", "unpacked")\n',
            False,
        ),
        # Docstrings are prose, not dispatch.
        Fixture(
            "src/repro/core/x.py",
            'def f():\n'
            '    "packed"\n'
            '    return 1\n',
            False,
        ),
    ),
    # -- RPR004: no module-level mutable state in serve/ --------------
    "RPR004": (
        Fixture(
            "src/repro/serve/x.py",
            "_CACHE = {}\n",
            True,
        ),
        Fixture(
            "src/repro/serve/x.py",
            "import threading\n"
            "\n"
            "_LOCK = threading.Lock()\n",
            True,
        ),
        Fixture(
            "src/repro/serve/x.py",
            "import collections\n"
            "\n"
            "_COUNTS = collections.defaultdict(int)\n",
            True,
        ),
        Fixture(
            "src/repro/serve/x.py",
            "import types\n"
            "\n"
            "_TABLE = types.MappingProxyType({'a': 1})\n"
            "_NAMES = ('a', 'b')\n"
            "_LIMIT = 8\n",
            False,
        ),
        # Same state outside serve/ is not this rule's business.
        Fixture(
            "src/repro/evaluation/x.py",
            "_CACHE = {}\n",
            False,
        ),
    ),
    # -- RPR005: no blocking I/O in the serve tick path ---------------
    "RPR005": (
        Fixture(
            "src/repro/serve/x.py",
            "def tick():\n"
            "    print('tick')\n",
            True,
        ),
        Fixture(
            "src/repro/serve/worker.py",
            "import time\n"
            "\n"
            "\n"
            "def tick():\n"
            "    time.sleep(0.1)\n",
            True,
        ),
        Fixture(
            "src/repro/serve/x.py",
            "import sys\n"
            "\n"
            "\n"
            "def tick():\n"
            "    sys.stdout.write('x')\n",
            True,
        ),
        # time.sleep outside the tick-path files is pacing, not a stall.
        Fixture(
            "src/repro/serve/x.py",
            "import time\n"
            "\n"
            "\n"
            "def pace():\n"
            "    time.sleep(0.1)\n",
            False,
        ),
        # A blocking sleep on the service event loop freezes every
        # connection the loop serves, /healthz included.
        Fixture(
            "src/repro/serve/service.py",
            "import time\n"
            "\n"
            "\n"
            "async def handle():\n"
            "    time.sleep(0.1)\n",
            True,
        ),
        # The awaitable form yields the loop; that is the sanctioned fix.
        Fixture(
            "src/repro/serve/service.py",
            "import asyncio\n"
            "\n"
            "\n"
            "async def handle():\n"
            "    await asyncio.sleep(0.1)\n",
            False,
        ),
        Fixture(
            "src/repro/evaluation/x.py",
            "def report():\n"
            "    print('fine outside serve/')\n",
            False,
        ),
    ),
    # -- RPR006: structured errors only across pipes ------------------
    "RPR006": (
        Fixture(
            "src/repro/serve/x.py",
            "def run(conn, work):\n"
            "    try:\n"
            "        work()\n"
            "    except Exception as exc:\n"
            "        conn.send(('error', exc))\n",
            True,
        ),
        Fixture(
            "src/repro/serve/x.py",
            "import traceback\n"
            "\n"
            "\n"
            "def run(conn, work):\n"
            "    try:\n"
            "        work()\n"
            "    except Exception as exc:\n"
            "        conn.send(\n"
            "            ('error', f'{type(exc).__name__}: {exc}\\n'\n"
            "             f'{traceback.format_exc()}')\n"
            "        )\n",
            False,
        ),
        Fixture(
            "src/repro/serve/x.py",
            "def run(conn, work):\n"
            "    try:\n"
            "        work()\n"
            "    except Exception as exc:\n"
            "        conn.send(('error', str(exc)))\n",
            False,
        ),
        # Pipe discipline is a serve/ contract; elsewhere is out of scope.
        Fixture(
            "src/repro/evaluation/x.py",
            "def run(conn, work):\n"
            "    try:\n"
            "        work()\n"
            "    except Exception as exc:\n"
            "        conn.send(('error', exc))\n",
            False,
        ),
    ),
    # -- RPR007: checkpoint keys written must be read back ------------
    "RPR007": (
        Fixture(
            "src/repro/core/persistence.py",
            "_FORMAT_VERSION = 1\n"
            "\n"
            "\n"
            "def save_model(model):\n"
            "    return {'dim': model.dim, 'orphan': 1}\n"
            "\n"
            "\n"
            "def load_model(payload):\n"
            "    return payload['dim']\n",
            True,
        ),
        Fixture(
            "src/repro/core/persistence.py",
            "_FORMAT_VERSION = 1\n"
            "\n"
            "\n"
            "def save_model(model):\n"
            "    return {'dim': model.dim, 'seed': model.seed}\n"
            "\n"
            "\n"
            "def load_model(payload):\n"
            "    return payload['dim'], payload.get('seed')\n",
            False,
        ),
        # Writer/reader symmetry is only enforced in the schema files.
        Fixture(
            "src/repro/core/x.py",
            "def save_model(model):\n"
            "    return {'orphan': 1}\n",
            False,
        ),
    ),
    # -- RPR008: key-set changes must bump the schema version ---------
    "RPR008": (
        # The fingerprint is always-on in schema files (the baseline
        # acknowledges it); a missing *_VERSION constant is violating
        # in its own right.
        Fixture(
            "src/repro/evaluation/benchrec.py",
            "def save_record(record):\n"
            "    return {'name': record.name}\n"
            "\n"
            "\n"
            "def load_record(payload):\n"
            "    return payload['name']\n",
            True,
        ),
        Fixture(
            "src/repro/evaluation/benchrec.py",
            "SCHEMA_VERSION = 1\n"
            "\n"
            "\n"
            "def save_record(record):\n"
            "    return {'name': record.name}\n"
            "\n"
            "\n"
            "def load_record(payload):\n"
            "    return payload['name']\n",
            True,  # the fingerprint itself, pending acknowledgement
        ),
        Fixture(
            "src/repro/core/x.py",
            "def save_record(record):\n"
            "    return {'name': record.name}\n",
            False,
        ),
    ),
    # -- RPR009: packed-domain entry points pin their dtypes ----------
    "RPR009": (
        Fixture(
            "src/repro/hdc/bitsliced.py",
            "import numpy as np\n"
            "\n"
            "\n"
            "def planes_to_counts(planes):\n"
            "    return planes.sum(axis=0)\n",
            True,
        ),
        Fixture(
            "src/repro/hdc/bitsliced.py",
            "import numpy as np\n"
            "\n"
            "\n"
            "def planes_to_counts(planes):\n"
            "    planes = np.asarray(planes, dtype=np.uint64)\n"
            "    return planes.sum(axis=0)\n",
            False,
        ),
        # Forwarding to a validating sibling satisfies the contract ...
        Fixture(
            "src/repro/hdc/associative.py",
            "import numpy as np\n"
            "\n"
            "\n"
            "class Memory:\n"
            "    def distances(self, h_vectors):\n"
            "        h_vectors = np.asarray(h_vectors, dtype=np.uint8)\n"
            "        return h_vectors\n"
            "\n"
            "    def classify(self, h_vectors):\n"
            "        return self.distances(h_vectors)\n",
            False,
        ),
        # ... but forwarding to a non-validating one does not.
        Fixture(
            "src/repro/hdc/associative.py",
            "class Memory:\n"
            "    def distances(self, h_vectors):\n"
            "        return h_vectors\n"
            "\n"
            "    def classify(self, h_vectors):\n"
            "        return self.distances(h_vectors)\n",
            True,
        ),
        # Same code outside the packed-domain files: out of scope.
        Fixture(
            "src/repro/hdc/ops.py",
            "def f(planes):\n"
            "    return planes.sum(axis=0)\n",
            False,
        ),
    ),
    # -- RPR010: optional accelerators import in one guarded place ----
    "RPR010": (
        # A bare accelerator import outside the guarded module.
        Fixture(
            "src/repro/core/detector.py",
            "import numba\n",
            True,
        ),
        # from-imports count too, and so do future accelerators.
        Fixture(
            "src/repro/serve/loadgen.py",
            "from cupy import asarray\n",
            True,
        ),
        # Even the guarded module may not import unguarded.
        Fixture(
            "src/repro/hdc/native.py",
            "from numba import njit\n",
            True,
        ),
        # The sanctioned form: guarded import inside native.py.
        Fixture(
            "src/repro/hdc/native.py",
            "try:\n"
            "    from numba import njit, prange\n"
            "except ImportError:\n"
            "    prange = range\n",
            False,
        ),
        # A guard elsewhere does not help: isolation is per-module.
        Fixture(
            "src/repro/core/detector.py",
            "try:\n"
            "    import numba\n"
            "except ImportError:\n"
            "    numba = None\n",
            True,
        ),
        # Ordinary imports are out of scope everywhere.
        Fixture(
            "src/repro/core/detector.py",
            "import numpy as np\n"
            "from repro.hdc import native\n",
            False,
        ),
    ),
    # -- RPR011: no whole-recording materialisation out-of-core -------
    "RPR011": (
        # np.asarray on a recording's mapped buffer pulls it into RAM.
        Fixture(
            "src/repro/evaluation/runner.py",
            "import numpy as np\n"
            "\n"
            "\n"
            "def f(recording):\n"
            "    return np.asarray(recording.data)\n",
            True,
        ),
        # Copying constructors count even nested in an expression.
        Fixture(
            "src/repro/data/outofcore.py",
            "import numpy as np\n"
            "\n"
            "\n"
            "def f(rec):\n"
            "    return np.ascontiguousarray(rec.data[:, ::2])\n",
            True,
        ),
        # So do buffer-duplicating methods on the mapped view.
        Fixture(
            "src/repro/evaluation/runner.py",
            "def f(recording):\n"
            "    return recording.data.copy()\n",
            True,
        ),
        # The sanctioned shape: slice the view, copy per chunk only.
        Fixture(
            "src/repro/data/outofcore.py",
            "import numpy as np\n"
            "\n"
            "\n"
            "def f(rec, start, n):\n"
            "    chunk = rec.data[start:start + n]\n"
            "    return np.abs(chunk).mean(axis=0)\n",
            False,
        ),
        # Materialising something that is not a recording is fine.
        Fixture(
            "src/repro/data/outofcore.py",
            "import numpy as np\n"
            "\n"
            "\n"
            "def f(electrode):\n"
            "    return np.array([electrode])\n",
            False,
        ),
        # Out of scope: the in-memory batch modules may materialise.
        Fixture(
            "src/repro/data/synthetic.py",
            "import numpy as np\n"
            "\n"
            "\n"
            "def f(recording):\n"
            "    return np.asarray(recording.data)\n",
            False,
        ),
    ),
}

_ALL = [
    pytest.param(code, fixture, id=f"{code}-{i}-{fixture.path}")
    for code, fixtures in sorted(FIXTURES.items())
    for i, fixture in enumerate(fixtures)
]
_VIOLATING = [
    pytest.param(code, fixture, id=f"{code}-{i}")
    for code, fixtures in sorted(FIXTURES.items())
    for i, fixture in enumerate(fixtures)
    if fixture.violates and code != "RPR000"
]


def _codes(findings, code):
    return [f for f in findings if f.code == code]


class TestFixtureTable:
    @pytest.mark.parametrize("code,fixture", _ALL)
    def test_expected_outcome(self, code, fixture):
        findings = lint_source(fixture.source, fixture.path)
        hits = _codes(findings, code)
        if fixture.violates:
            assert hits, f"expected a {code} finding in {fixture.path}"
            for f in hits:
                assert f.path == fixture.path
                assert f.line >= 1
                assert f.message
        else:
            assert not hits, [f.render() for f in hits]

    @pytest.mark.parametrize("code,fixture", _VIOLATING)
    def test_violation_fails_the_exit_code(self, code, fixture):
        findings = lint_source(fixture.source, fixture.path)
        result = LintResult(findings=findings, files=1)
        assert result.exit_code == 1

    @pytest.mark.parametrize("code,fixture", _VIOLATING)
    def test_inline_suppression_silences_the_line(self, code, fixture):
        findings = lint_source(fixture.source, fixture.path)
        line = _codes(findings, code)[0].line
        lines = fixture.source.splitlines()
        lines[line - 1] += f"  {NOQA}[{code}]"
        suppressed = lint_source("\n".join(lines) + "\n", fixture.path)
        assert not [
            f for f in _codes(suppressed, code) if f.line == line
        ], "suppression did not silence the flagged line"
        # A *used* suppression is hygienic: no RPR000 about it.
        assert not [
            f for f in suppressed if f.code == "RPR000" and f.line == line
        ]

    @pytest.mark.parametrize("code,fixture", _VIOLATING)
    def test_baseline_sanctions_the_finding(self, code, fixture, tmp_path):
        target = tmp_path / fixture.path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(fixture.source)
        raw = lint_paths([target], root=tmp_path)
        entries = [
            BaselineEntry(code=f.code, path=f.path, match=f.message,
                          reason="fixture: sanctioned for the test")
            for f in raw.findings
        ]
        baseline = Baseline(entries, path="lint-baseline.json")
        result = lint_paths([target], baseline=baseline, root=tmp_path)
        assert result.exit_code == 0
        assert all(f.baselined for f in result.findings)
        assert len(result.findings) == len(raw.findings)


class TestSchemaFingerprint:
    def test_fingerprint_tracks_the_key_set(self):
        base = (
            "SCHEMA_VERSION = 1\n"
            "\n"
            "\n"
            "def save_record(record):\n"
            "    return {'name': record.name}\n"
            "\n"
            "\n"
            "def load_record(payload):\n"
            "    return payload['name']\n"
        )
        grown = base.replace(
            "{'name': record.name}",
            "{'name': record.name, 'engine': record.engine}",
        ).replace(
            "payload['name']",
            "(payload['name'], payload['engine'])",
        )
        path = "src/repro/evaluation/benchrec.py"
        msg_a = [f for f in lint_source(base, path) if f.code == "RPR008"]
        msg_b = [f for f in lint_source(grown, path) if f.code == "RPR008"]
        assert len(msg_a) == len(msg_b) == 1
        # A key-set change changes the message, which un-matches the
        # committed baseline entry — that is the version-bump tripwire.
        assert msg_a[0].message != msg_b[0].message

    def test_fingerprint_is_stable_across_runs(self):
        source = (
            "SCHEMA_VERSION = 3\n"
            "\n"
            "\n"
            "def save_record(record):\n"
            "    return {'name': record.name}\n"
            "\n"
            "\n"
            "def load_record(payload):\n"
            "    return payload['name']\n"
        )
        path = "src/repro/core/persistence.py"
        first = lint_source(source, path)
        second = lint_source(source, path)
        assert first == second
