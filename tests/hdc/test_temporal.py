"""Tests for repro.hdc.temporal (window bundling over spatial records)."""

import numpy as np
import pytest

from repro.hdc.item_memory import ItemMemory
from repro.hdc.ops import majority_from_counts
from repro.hdc.spatial import SpatialEncoder
from repro.hdc.temporal import TemporalEncoder, encode_recording
from repro.signal.windows import WindowSpec


@pytest.fixture()
def spatial() -> SpatialEncoder:
    return SpatialEncoder(ItemMemory(64, 256, seed=1), ItemMemory(3, 256, seed=2))


def _reference_h(spatial: SpatialEncoder, window_codes: np.ndarray) -> np.ndarray:
    """Direct H = [S_1 + ... + S_T] for one window."""
    s = spatial.encode(window_codes)
    return majority_from_counts(s.sum(axis=0), window_codes.shape[0])


class TestTemporalEncoder:
    def test_matches_reference_per_window(self, spatial, rng):
        spec = WindowSpec(16, 8)
        codes = rng.integers(0, 64, size=(64, 3))
        h = encode_recording(codes, spatial, spec)
        assert h.shape == (7, 256)
        for i in range(7):
            window = codes[i * 8 : i * 8 + 16]
            np.testing.assert_array_equal(h[i], _reference_h(spatial, window))

    def test_streaming_chunks_match_one_shot(self, spatial, rng):
        spec = WindowSpec(16, 8)
        codes = rng.integers(0, 64, size=(100, 3))
        one_shot = encode_recording(codes, spatial, spec)
        enc = TemporalEncoder(spatial, spec)
        pieces = [enc.feed(chunk) for chunk in np.array_split(codes, 7)]
        streamed = np.concatenate([p for p in pieces if p.size], axis=0)
        np.testing.assert_array_equal(streamed, one_shot)

    def test_window_count_matches_windowspec(self, spatial, rng):
        from repro.signal.windows import num_windows

        spec = WindowSpec(16, 8)
        for n in [15, 16, 17, 48, 50]:
            codes = rng.integers(0, 64, size=(n, 3))
            h = encode_recording(codes, spatial, spec)
            # Trailing samples that do not fill a block are discarded, so
            # the count equals the block-aligned window count.
            aligned = (n // 8) * 8
            assert h.shape[0] == num_windows(aligned, spec)

    def test_reset_clears_state(self, spatial, rng):
        spec = WindowSpec(16, 8)
        enc = TemporalEncoder(spatial, spec)
        enc.feed(rng.integers(0, 64, size=(12, 3)))
        enc.reset()
        codes = rng.integers(0, 64, size=(32, 3))
        h = enc.feed(codes)
        np.testing.assert_array_equal(h, encode_recording(codes, spatial, spec))

    def test_rejects_non_multiple_window(self, spatial):
        with pytest.raises(ValueError):
            TemporalEncoder(spatial, WindowSpec(10, 4))

    def test_rejects_wrong_channel_count(self, spatial, rng):
        enc = TemporalEncoder(spatial, WindowSpec(16, 8))
        with pytest.raises(ValueError):
            enc.feed(rng.integers(0, 64, size=(8, 2)))

    def test_constant_codes_give_stable_h(self, spatial):
        # A constant code pattern yields identical S every sample, so
        # every H must equal that S.
        codes = np.tile(np.array([[7, 13, 40]]), (40, 1))
        spec = WindowSpec(16, 8)
        h = encode_recording(codes, spatial, spec)
        s = spatial.encode_sample(np.array([7, 13, 40]))
        for row in h:
            np.testing.assert_array_equal(row, s)
