"""Tests for repro.hdc.item_memory."""

import numpy as np
import pytest

from repro.hdc.item_memory import ItemMemory, bound_table


class TestItemMemory:
    def test_deterministic_given_seed(self):
        a = ItemMemory(8, 256, seed=5)
        b = ItemMemory(8, 256, seed=5)
        np.testing.assert_array_equal(a.vectors, b.vectors)

    def test_different_seeds_differ(self):
        a = ItemMemory(8, 256, seed=5)
        b = ItemMemory(8, 256, seed=6)
        assert not np.array_equal(a.vectors, b.vectors)

    def test_vectors_are_binary(self):
        memory = ItemMemory(16, 128, seed=0)
        assert set(np.unique(memory.vectors)) <= {0, 1}

    def test_vector_lookup(self):
        memory = ItemMemory(4, 64, seed=0)
        np.testing.assert_array_equal(memory.vector(2), memory.vectors[2])

    def test_vector_out_of_range(self):
        memory = ItemMemory(4, 64, seed=0)
        with pytest.raises(IndexError):
            memory.vector(4)

    def test_vectors_read_only(self):
        memory = ItemMemory(4, 64, seed=0)
        with pytest.raises(ValueError):
            memory.vectors[0, 0] = 1

    def test_near_orthogonality(self):
        # Sec. II-B: at d in the thousands atomic vectors are nearly
        # orthogonal — normalised distance concentrates around 0.5.
        memory = ItemMemory(64, 4096, seed=1)
        distances = memory.cross_distances()
        off_diag = distances[~np.eye(64, dtype=bool)]
        assert off_diag.min() > 0.42
        assert off_diag.max() < 0.58
        np.testing.assert_allclose(np.diag(distances), 0.0)

    def test_storage_bits(self):
        assert ItemMemory(64, 1000, seed=0).storage_bits() == 64_000

    def test_packed_shape(self):
        memory = ItemMemory(3, 100, seed=0)
        assert memory.packed().shape == (3, 2)

    @pytest.mark.parametrize("n,d", [(0, 8), (8, 0)])
    def test_rejects_empty(self, n, d):
        with pytest.raises(ValueError):
            ItemMemory(n, d, seed=0)


class TestBoundTable:
    def test_entries_are_xor(self):
        codes = ItemMemory(4, 64, seed=1)
        electrodes = ItemMemory(3, 64, seed=2)
        table = bound_table(codes, electrodes)
        assert table.shape == (3, 4, 64)
        for j in range(3):
            for c in range(4):
                np.testing.assert_array_equal(
                    table[j, c], electrodes.vector(j) ^ codes.vector(c)
                )

    def test_im_size_reduction_property(self):
        # Sec. III-B: binding lets 64 + n vectors represent 64 * n pairs;
        # all pairs must be distinct hypervectors.
        codes = ItemMemory(8, 2048, seed=1)
        electrodes = ItemMemory(4, 2048, seed=2)
        table = bound_table(codes, electrodes).reshape(32, 2048)
        # Pairwise distinct (random 2048-bit vectors never collide).
        unique = np.unique(table, axis=0)
        assert unique.shape[0] == 32

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            bound_table(ItemMemory(4, 64, 0), ItemMemory(4, 128, 0))
