"""Tests for repro.hdc.native (the packed-native engine).

The kernels run in every environment: with numba installed they
exercise the JIT-compiled parallel path (the ``native-engine`` CI job),
without it the pure-Python twins of the exact same code.  Bit-exactness
is asserted against the numpy implementations either way.
"""

import importlib
import os

import numpy as np
import pytest

import repro.hdc.native as native_module
from repro.cli import main
from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.hdc.associative import grouped_classify_packed
from repro.hdc.backend import pack_bits, popcount_words, random_bits
from repro.hdc.bitsliced import (
    bitsliced_counts,
    plane_depth,
    planes_to_counts,
)
from repro.hdc.engine import (
    AUTO_ENGINE,
    PACKED_FUSED_ENGINE,
    PACKED_NATIVE_ENGINE,
    EngineUnavailableError,
    PackedFusedEngine,
    build_engine,
    engine_capabilities,
    resolve_engine_name,
)
from repro.hdc.item_memory import ItemMemory
from repro.hdc.native import (
    NATIVE_PURE_PYTHON_ENV,
    NATIVE_THREADS_ENV,
    NativeSpatialEncoder,
    NativeTemporalEncoder,
    PackedNativeEngine,
    apply_native_threads,
    configure_native_threads,
    grouped_classify_packed_native,
    native_available,
    native_bitsliced_counts,
    native_bundle_exceeds,
    numba_available,
    requested_native_threads,
    sweep_classify_packed,
)
from repro.hdc.spatial_packed import PackedSpatialEncoder
from repro.hdc.temporal_packed import PackedTemporalEncoder
from repro.signal.windows import WindowSpec

# These tests always run (the pure-Python twins back them on
# numba-free hosts); the marker lets the CI native-engine job select
# exactly this surface with `-m native`.
pytestmark = pytest.mark.native

SPEC = WindowSpec.from_seconds(1.0, 0.5, 32.0)


@pytest.fixture()
def pure_python_ok(monkeypatch):
    """Make the engine constructible on numba-free hosts."""
    monkeypatch.setenv(NATIVE_PURE_PYTHON_ENV, "1")


def _native_engine(dim: int = 100) -> PackedNativeEngine:
    return build_engine(
        PACKED_NATIVE_ENGINE,
        ItemMemory(8, dim, seed=1),
        ItemMemory(4, dim, seed=2),
        SPEC,
    )


def _random_words(shape, seed) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**64, size=shape, dtype=np.uint64)


class TestSweepKernel:
    @pytest.mark.parametrize("dim", [1, 63, 64, 65, 200])
    def test_matches_numpy_sweep(self, dim):
        rng = np.random.default_rng(dim)
        queries = pack_bits(random_bits((9, dim), rng))
        protos = pack_bits(random_bits((4, dim), rng))
        best, dists = sweep_classify_packed(queries, protos)
        ref = popcount_words(
            queries[:, None, :] ^ protos[None, :, :]
        ).sum(axis=-1, dtype=np.int64)
        np.testing.assert_array_equal(dists, ref)
        np.testing.assert_array_equal(best, ref.argmin(axis=1))

    def test_ties_go_to_earliest_stored_prototype(self):
        queries = np.zeros((1, 1), dtype=np.uint64)
        # Both prototypes are 2 bits away; np.argmin picks index 0.
        protos = np.array([[0b0011], [0b1100]], dtype=np.uint64)
        best, dists = sweep_classify_packed(queries, protos)
        assert dists.tolist() == [[2, 2]]
        assert best.tolist() == [0]

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="prototypes"):
            sweep_classify_packed(
                np.zeros((2, 3), dtype=np.uint64),
                np.zeros((2, 4), dtype=np.uint64),
            )
        with pytest.raises(ValueError, match="at least one prototype"):
            sweep_classify_packed(
                np.zeros((2, 3), dtype=np.uint64),
                np.zeros((0, 3), dtype=np.uint64),
            )

    def test_grouped_matches_reference(self):
        rng = np.random.default_rng(7)
        dim = 130
        stack = pack_bits(random_bits((3 * 2, dim), rng)).reshape(3, 2, -1)
        label_table = np.array(
            [[10, 20], [30, 40], [50, 60]], dtype=np.int64
        )
        owners = np.array([0, 2, 1, 0, 2])
        queries = pack_bits(random_bits((5, dim), rng))
        labels, dists = grouped_classify_packed_native(
            queries, stack, owners, label_table
        )
        ref_labels, ref_dists = grouped_classify_packed(
            queries, stack, owners, label_table
        )
        np.testing.assert_array_equal(labels, ref_labels)
        np.testing.assert_array_equal(dists, ref_dists)

    def test_grouped_kernel_hook_is_the_native_twin(self):
        assert (
            PackedNativeEngine.grouped_kernel
            is grouped_classify_packed_native
        )
        assert PackedFusedEngine.grouped_kernel is grouped_classify_packed


class TestBundlingKernels:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8, 11])
    def test_counts_match_reference(self, k):
        masks = _random_words((k, 3), seed=k)
        dim = 3 * 64
        np.testing.assert_array_equal(
            planes_to_counts(native_bitsliced_counts(masks), dim),
            planes_to_counts(bitsliced_counts(masks), dim),
        )

    def test_counts_keep_batch_shape(self):
        masks = _random_words((5, 4, 2), seed=0)
        planes = native_bitsliced_counts(masks)
        assert planes.shape == (plane_depth(5), 4, 2)

    def test_counts_reject_empty_stack(self):
        with pytest.raises(ValueError, match="empty"):
            native_bitsliced_counts(np.zeros((0, 3), dtype=np.uint64))

    @pytest.mark.parametrize("threshold", [-1, 0, 3, 5, 6, 11, 12, 64])
    def test_bundle_exceeds_matches_bit_counts(self, threshold):
        k = 11
        masks = _random_words((k, 4), seed=threshold + 100)
        got = native_bundle_exceeds(masks, threshold)
        for word in range(4):
            for bit in range(64):
                count = sum(
                    int((int(masks[t, word]) >> bit) & 1) for t in range(k)
                )
                expected = count > threshold
                assert bool((int(got[word]) >> bit) & 1) == expected, (
                    f"word {word} bit {bit}: count {count}, "
                    f"threshold {threshold}"
                )


class TestNativeEncoders:
    def test_spatial_matches_packed(self):
        cm = ItemMemory(8, 130, seed=1)
        em = ItemMemory(5, 130, seed=2)
        ref = PackedSpatialEncoder(cm, em)
        nat = NativeSpatialEncoder(cm, em)
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 8, size=(17, 5))
        np.testing.assert_array_equal(
            nat.encode_packed(codes), ref.encode_packed(codes)
        )

    def test_spatial_validates_like_packed(self):
        cm = ItemMemory(8, 64, seed=1)
        em = ItemMemory(4, 64, seed=2)
        nat = NativeSpatialEncoder(cm, em)
        with pytest.raises(ValueError, match="expected"):
            nat.encode_packed(np.zeros((3, 7), dtype=np.int64))
        with pytest.raises(ValueError, match="out of range"):
            nat.encode_packed(np.full((3, 4), 9))
        assert nat.encode_packed(
            np.zeros((0, 4), dtype=np.int64)
        ).shape == (0, 1)

    def test_temporal_matches_packed(self):
        cm = ItemMemory(8, 129, seed=1)
        em = ItemMemory(4, 129, seed=2)
        rng = np.random.default_rng(4)
        codes = rng.integers(0, 8, size=(5 * 32, 4))
        ref = PackedTemporalEncoder(PackedSpatialEncoder(cm, em), SPEC)
        nat = NativeTemporalEncoder(NativeSpatialEncoder(cm, em), SPEC)
        np.testing.assert_array_equal(nat.feed(codes), ref.feed(codes))


class TestAvailability:
    def test_unavailable_without_numba_or_env(self, monkeypatch):
        monkeypatch.delenv(NATIVE_PURE_PYTHON_ENV, raising=False)
        monkeypatch.setattr(
            native_module, "_NUMBA_IMPORT_ERROR", "No module named 'numba'"
        )
        ok, why = native_available()
        assert ok is False
        assert "numba" in why and NATIVE_PURE_PYTHON_ENV in why
        with pytest.raises(EngineUnavailableError, match="unavailable"):
            _native_engine()
        rows = {r["name"]: r for r in engine_capabilities()}
        row = rows[PACKED_NATIVE_ENGINE]
        assert row["available"] is False
        assert "numba" in row["unavailable_reason"]
        assert resolve_engine_name(AUTO_ENGINE) == PACKED_FUSED_ENGINE

    def test_auto_prefers_native_with_real_numba(self, monkeypatch):
        monkeypatch.setattr(native_module, "_NUMBA_IMPORT_ERROR", None)
        assert resolve_engine_name(AUTO_ENGINE) == PACKED_NATIVE_ENGINE

    def test_pure_python_env_constructs_but_never_auto(
        self, pure_python_ok, monkeypatch
    ):
        engine = _native_engine()
        assert isinstance(engine, PackedNativeEngine)
        # The env knob only unlocks construction; auto still requires
        # the real JIT.
        monkeypatch.setattr(
            native_module, "_NUMBA_IMPORT_ERROR", "No module named 'numba'"
        )
        assert resolve_engine_name(AUTO_ENGINE) == PACKED_FUSED_ENGINE
        rows = {r["name"]: r for r in engine_capabilities()}
        assert rows[PACKED_NATIVE_ENGINE]["available"] is True

    def test_backends_cli_reports_unavailability(self, monkeypatch, capsys):
        monkeypatch.delenv(NATIVE_PURE_PYTHON_ENV, raising=False)
        monkeypatch.setattr(
            native_module, "_NUMBA_IMPORT_ERROR", "No module named 'numba'"
        )
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        row = next(
            line for line in out.splitlines()
            if line.startswith(PACKED_NATIVE_ENGINE)
        )
        assert " no " in row  # the Avail column
        assert "unavailable on this host" in out
        assert "No module named 'numba'" in out

    def test_backends_cli_silent_when_available(self, monkeypatch, capsys):
        monkeypatch.setattr(native_module, "_NUMBA_IMPORT_ERROR", None)
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "unavailable on this host" not in out


class TestNumbaAbsentReload:
    def test_module_degrades_without_numba(self):
        """Reload the module with the numba import forcibly failing."""
        import builtins

        real_import = builtins.__import__
        saved_env = os.environ.pop(NATIVE_PURE_PYTHON_ENV, None)

        def no_numba(name, *args, **kwargs):
            if name == "numba" or name.startswith("numba."):
                raise ImportError("No module named 'numba' (forced by test)")
            return real_import(name, *args, **kwargs)

        builtins.__import__ = no_numba
        try:
            importlib.reload(native_module)
            assert native_module.numba_available() is False
            assert "forced by test" in (
                native_module.numba_unavailable_reason() or ""
            )
            assert native_module.prange is range
            # The identity decorator keeps the kernels callable...
            best, dists = native_module.sweep_classify_packed(
                np.array([[5]], dtype=np.uint64),
                np.array([[0], [5]], dtype=np.uint64),
            )
            assert best.tolist() == [1]
            assert dists.tolist() == [[2, 0]]
            # ...threads pin to 1, and the registry degrades gracefully.
            assert native_module.apply_native_threads(4) == 1
            rows = {r["name"]: r for r in engine_capabilities()}
            assert rows[PACKED_NATIVE_ENGINE]["available"] is False
            assert resolve_engine_name(AUTO_ENGINE) == PACKED_FUSED_ENGINE
        finally:
            builtins.__import__ = real_import
            if saved_env is not None:
                os.environ[NATIVE_PURE_PYTHON_ENV] = saved_env
            importlib.reload(native_module)


class TestThreadKnob:
    def test_unset_means_numba_default(self, monkeypatch):
        monkeypatch.delenv(NATIVE_THREADS_ENV, raising=False)
        assert requested_native_threads() == 0

    def test_parses_the_env_value(self, monkeypatch):
        monkeypatch.setenv(NATIVE_THREADS_ENV, " 3 ")
        assert requested_native_threads() == 3

    @pytest.mark.parametrize("bad", ["two", "-1", "1.5"])
    def test_rejects_bad_values(self, monkeypatch, bad):
        monkeypatch.setenv(NATIVE_THREADS_ENV, bad)
        with pytest.raises(ValueError, match=NATIVE_THREADS_ENV):
            requested_native_threads()

    def test_configure_writes_env_for_worker_children(self, monkeypatch):
        monkeypatch.setenv(NATIVE_THREADS_ENV, "0")  # records the original
        configure_native_threads(2)
        assert os.environ[NATIVE_THREADS_ENV] == "2"

    def test_configure_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            configure_native_threads(-1)

    def test_apply_clamps_to_launch_maximum(self):
        effective = apply_native_threads(10_000)
        if numba_available():
            assert 1 <= effective <= 10_000
        else:
            assert effective == 1
        apply_native_threads(0)

    def test_engine_records_effective_threads(
        self, pure_python_ok, monkeypatch
    ):
        monkeypatch.setenv(NATIVE_THREADS_ENV, "2")
        engine = _native_engine()
        if numba_available():
            assert engine.threads >= 1
        else:
            assert engine.threads == 1

    def test_results_are_thread_count_invariant(self):
        queries = _random_words((8, 3), seed=1)
        protos = _random_words((3, 3), seed=2)
        masks = _random_words((9, 3), seed=3)
        baseline = None
        try:
            for n in (1, 2, 4):
                apply_native_threads(n)
                best, dists = sweep_classify_packed(queries, protos)
                bundle = native_bundle_exceeds(masks, 4)
                if baseline is None:
                    baseline = (best, dists, bundle)
                else:
                    np.testing.assert_array_equal(best, baseline[0])
                    np.testing.assert_array_equal(dists, baseline[1])
                    np.testing.assert_array_equal(bundle, baseline[2])
        finally:
            apply_native_threads(0)


class TestEngineParity:
    def test_full_pipeline_matches_packed_fused(self, pure_python_ok):
        rng = np.random.default_rng(11)
        signal = rng.standard_normal((3 * 128, 4))
        predictions = {}
        for backend in (PACKED_FUSED_ENGINE, PACKED_NATIVE_ENGINE):
            detector = LaelapsDetector(
                4, LaelapsConfig(dim=129, fs=128.0, seed=5, backend=backend)
            )
            detector.fit_from_windows(
                random_bits((3, 129), np.random.default_rng(1)),
                random_bits((3, 129), np.random.default_rng(2)),
            )
            predictions[backend] = detector.predict(signal)
        fused = predictions[PACKED_FUSED_ENGINE]
        nat = predictions[PACKED_NATIVE_ENGINE]
        assert len(nat) > 0
        np.testing.assert_array_equal(nat.labels, fused.labels)
        np.testing.assert_array_equal(nat.distances, fused.distances)
