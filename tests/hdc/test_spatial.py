"""Tests for repro.hdc.spatial (the spatial-record encoder)."""

import numpy as np
import pytest

from repro.hdc.item_memory import ItemMemory
from repro.hdc.ops import bundle
from repro.hdc.spatial import SpatialEncoder


@pytest.fixture()
def encoder() -> SpatialEncoder:
    return SpatialEncoder(
        code_memory=ItemMemory(64, 512, seed=1),
        electrode_memory=ItemMemory(5, 512, seed=2),
    )


def _reference_record(encoder: SpatialEncoder, codes: np.ndarray) -> np.ndarray:
    """Direct implementation of Sec. III-B for one sample."""
    bound = np.stack(
        [
            encoder.electrode_memory.vector(j) ^ encoder.code_memory.vector(int(c))
            for j, c in enumerate(codes)
        ]
    )
    return bundle(bound)


class TestSpatialEncoder:
    def test_matches_reference_formula(self, encoder, rng):
        for _ in range(5):
            codes = rng.integers(0, 64, size=5)
            np.testing.assert_array_equal(
                encoder.encode_sample(codes), _reference_record(encoder, codes)
            )

    def test_batch_matches_per_sample(self, encoder, rng):
        codes = rng.integers(0, 64, size=(20, 5))
        batch = encoder.encode(codes)
        for t in range(20):
            np.testing.assert_array_equal(
                batch[t], encoder.encode_sample(codes[t])
            )

    def test_counts_bounded_by_electrodes(self, encoder, rng):
        codes = rng.integers(0, 64, size=(10, 5))
        counts = encoder.counts(codes)
        assert counts.min() >= 0
        assert counts.max() <= 5

    def test_code_out_of_range_raises(self, encoder):
        with pytest.raises(ValueError):
            encoder.encode(np.full((2, 5), 64))

    def test_wrong_electrode_count_raises(self, encoder):
        with pytest.raises(ValueError):
            encoder.encode(np.zeros((2, 4), dtype=int))

    def test_mismatched_dims_raise(self):
        with pytest.raises(ValueError):
            SpatialEncoder(ItemMemory(64, 128, 1), ItemMemory(4, 256, 2))

    def test_permutation_of_electrode_codes_changes_record(self, encoder):
        # The record is a bound *record*, not a bag of codes: moving a
        # code to a different electrode produces a different vector.
        codes_a = np.array([1, 2, 3, 4, 5])
        codes_b = np.array([5, 4, 3, 2, 1])
        a = encoder.encode_sample(codes_a)
        b = encoder.encode_sample(codes_b)
        assert np.count_nonzero(a != b) > 100

    def test_single_electrode_record_is_bound_pair(self):
        enc = SpatialEncoder(ItemMemory(64, 256, 1), ItemMemory(1, 256, 2))
        code = 17
        expected = enc.electrode_memory.vector(0) ^ enc.code_memory.vector(code)
        np.testing.assert_array_equal(
            enc.encode_sample(np.array([code])), expected
        )
