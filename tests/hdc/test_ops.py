"""Tests for repro.hdc.ops (bind, bundle, permute, accumulator)."""

import numpy as np
import pytest

from repro.hdc.backend import hamming_distance, random_bits
from repro.hdc.ops import (
    BundleAccumulator,
    bind,
    bundle,
    majority_from_counts,
    normalized_hamming,
    permute,
)


class TestBind:
    def test_self_inverse(self, rng):
        a = random_bits(256, rng)
        b = random_bits(256, rng)
        np.testing.assert_array_equal(bind(a, bind(a, b)), b)

    def test_commutative(self, rng):
        a, b = random_bits((2, 256), rng)
        np.testing.assert_array_equal(bind(a, b), bind(b, a))

    def test_produces_dissimilar_vector(self, rng):
        a = random_bits(4096, rng)
        b = random_bits(4096, rng)
        bound = bind(a, b)
        assert abs(hamming_distance(bound, a) / 4096 - 0.5) < 0.05
        assert abs(hamming_distance(bound, b) / 4096 - 0.5) < 0.05

    def test_three_way(self, rng):
        a, b, c = random_bits((3, 64), rng)
        np.testing.assert_array_equal(bind(a, b, c), a ^ b ^ c)

    def test_needs_two_vectors(self, rng):
        with pytest.raises(ValueError):
            bind(random_bits(8, rng))

    def test_distance_preserving(self, rng):
        # eta(a xor c, b xor c) == eta(a, b): binding is an isometry.
        a, b, c = random_bits((3, 1024), rng)
        assert hamming_distance(bind(a, c), bind(b, c)) == hamming_distance(a, b)


class TestMajority:
    def test_paper_convention_even_ties_to_zero(self):
        # k = 2, count = 1 -> half the inputs are 0 -> result 0.
        np.testing.assert_array_equal(
            majority_from_counts(np.array([0, 1, 2]), 2), [0, 0, 1]
        )

    def test_odd_majority(self):
        np.testing.assert_array_equal(
            majority_from_counts(np.array([0, 1, 2, 3]), 3), [0, 0, 1, 1]
        )

    def test_rejects_empty_bundle(self):
        with pytest.raises(ValueError):
            majority_from_counts(np.array([0]), 0)


class TestBundle:
    def test_bundle_similar_to_inputs(self, rng):
        vectors = random_bits((5, 4096), rng)
        out = bundle(vectors)
        for vec in vectors:
            # Majority of 5: each input agrees on ~ 1 - C(4,2)/2^4 ... far
            # above chance; just require clearly better than 0.5.
            assert hamming_distance(out, vec) / 4096 < 0.45

    def test_single_vector_identity(self, rng):
        v = random_bits((1, 64), rng)
        np.testing.assert_array_equal(bundle(v), v[0])

    def test_duplicated_majority_wins(self, rng):
        a = random_bits(512, rng)
        b = random_bits(512, rng)
        out = bundle(np.stack([a, a, b]))
        np.testing.assert_array_equal(out, a)

    def test_rejects_non_2d(self, rng):
        with pytest.raises(ValueError):
            bundle(random_bits(16, rng))


class TestPermute:
    def test_invertible(self, rng):
        v = random_bits(128, rng)
        np.testing.assert_array_equal(permute(permute(v, 5), -5), v)

    def test_dissimilar_to_input(self, rng):
        v = random_bits(4096, rng)
        assert abs(hamming_distance(permute(v), v) / 4096 - 0.5) < 0.05


class TestNormalizedHamming:
    def test_range(self, rng):
        a = random_bits(64, rng)
        assert normalized_hamming(a, a) == 0.0
        assert normalized_hamming(a, 1 - a) == 1.0

    def test_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            normalized_hamming(random_bits(8, rng), random_bits(9, rng))


class TestBundleAccumulator:
    def test_matches_batch_bundle(self, rng):
        vectors = random_bits((9, 256), rng)
        acc = BundleAccumulator(256)
        for v in vectors:
            acc.add(v)
        np.testing.assert_array_equal(acc.finalize(), bundle(vectors))

    def test_batched_adds_equivalent(self, rng):
        vectors = random_bits((10, 128), rng)
        one = BundleAccumulator(128).add(vectors)
        two = BundleAccumulator(128).add(vectors[:4]).add(vectors[4:])
        np.testing.assert_array_equal(one.finalize(), two.finalize())
        assert one.count == two.count == 10

    def test_empty_finalize_raises(self):
        with pytest.raises(ValueError):
            BundleAccumulator(16).finalize()

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            BundleAccumulator(16).add(random_bits(17, rng))

    def test_counts_property_is_copy(self, rng):
        acc = BundleAccumulator(8).add(random_bits(8, rng))
        counts = acc.counts
        counts[:] = 99
        assert not np.array_equal(acc.counts, counts)
