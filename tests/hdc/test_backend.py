"""Tests for repro.hdc.backend (bit packing and Hamming distances)."""

import numpy as np
import pytest

from repro.hdc.backend import (
    hamming_distance,
    hamming_distance_packed,
    pack_bits,
    packed_words,
    random_bits,
    unpack_bits,
)


class TestPackedWords:
    @pytest.mark.parametrize("dim,words", [(1, 1), (64, 1), (65, 2), (1000, 16), (10000, 157)])
    def test_word_counts(self, dim, words):
        assert packed_words(dim) == words

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            packed_words(0)


class TestPackUnpackRoundTrip:
    @pytest.mark.parametrize("dim", [1, 7, 63, 64, 65, 1000, 1023])
    def test_round_trip_single(self, dim, rng):
        bits = random_bits(dim, rng)
        np.testing.assert_array_equal(unpack_bits(pack_bits(bits), dim), bits)

    def test_round_trip_batch(self, rng):
        bits = random_bits((5, 130), rng)
        packed = pack_bits(bits)
        assert packed.shape == (5, 3)
        np.testing.assert_array_equal(unpack_bits(packed, 130), bits)

    def test_padding_bits_are_zero(self, rng):
        bits = np.ones(65, dtype=np.uint8)
        packed = pack_bits(bits)
        # Word 1 holds only bit 64; the other 63 bits must be zero.
        assert packed[1] == 1

    def test_unpack_rejects_wrong_word_count(self):
        with pytest.raises(ValueError):
            unpack_bits(np.zeros(2, dtype=np.uint64), 64)

    def test_pack_rejects_scalar(self):
        with pytest.raises(ValueError):
            pack_bits(np.uint8(1))


class TestHamming:
    def test_identical_vectors_zero(self, rng):
        bits = random_bits(100, rng)
        assert hamming_distance(bits, bits) == 0

    def test_complement_distance_is_dim(self, rng):
        bits = random_bits(100, rng)
        assert hamming_distance(bits, 1 - bits) == 100

    def test_packed_matches_unpacked(self, rng):
        a = random_bits((8, 333), rng)
        b = random_bits((8, 333), rng)
        expected = hamming_distance(a, b)
        actual = hamming_distance_packed(pack_bits(a), pack_bits(b))
        np.testing.assert_array_equal(actual, expected)

    def test_broadcasting(self, rng):
        queries = random_bits((4, 128), rng)
        prototypes = random_bits((2, 128), rng)
        packed_q = pack_bits(queries)
        packed_p = pack_bits(prototypes)
        dists = hamming_distance_packed(
            packed_q[:, None, :], packed_p[None, :, :]
        )
        assert dists.shape == (4, 2)
        for i in range(4):
            for j in range(2):
                assert dists[i, j] == hamming_distance(queries[i], prototypes[j])

    def test_dimension_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            hamming_distance(random_bits(10, rng), random_bits(11, rng))

    def test_packed_word_mismatch_raises(self):
        with pytest.raises(ValueError):
            hamming_distance_packed(
                np.zeros(2, dtype=np.uint64), np.zeros(3, dtype=np.uint64)
            )

    def test_random_vectors_concentrate_near_half(self, rng):
        dim = 10_000
        a = random_bits(dim, rng)
        b = random_bits(dim, rng)
        assert abs(hamming_distance(a, b) / dim - 0.5) < 0.03
