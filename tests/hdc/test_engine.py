"""Tests for repro.hdc.engine (the compute-engine registry)."""

import numpy as np
import pytest

import repro.hdc.engine as engine_module
from repro.core.config import BACKENDS, LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.hdc.backend import pack_bits, packed_words, random_bits
from repro.hdc.engine import (
    AUTO_ENGINE,
    ComputeEngine,
    PackedEngine,
    PackedFusedEngine,
    UnpackedEngine,
    backend_choices,
    build_engine,
    engine_capabilities,
    engine_names,
    register_engine,
    resolve_engine_name,
)
from repro.hdc.item_memory import ItemMemory
from repro.signal.windows import WindowSpec

SPEC = WindowSpec.from_seconds(1.0, 0.5, 32.0)


def _engine(name: str, dim: int = 100):
    return build_engine(
        name, ItemMemory(8, dim, seed=1), ItemMemory(4, dim, seed=2), SPEC
    )


class TestRegistry:
    def test_registered_names(self):
        assert engine_names() == (
            "unpacked", "packed", "packed-fused", "packed-native",
        )

    def test_backend_choices_append_auto(self):
        assert backend_choices() == (*engine_names(), AUTO_ENGINE)
        assert BACKENDS == backend_choices()

    def test_auto_resolves_to_fastest_eligible(self):
        # packed-native leads the preference order but only when real
        # numba backs it; otherwise auto lands on packed-fused.
        from repro.hdc.native import numba_available

        expected = "packed-native" if numba_available() else "packed-fused"
        assert resolve_engine_name(AUTO_ENGINE) == expected

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="packed-fused"):
            resolve_engine_name("gpu")
        with pytest.raises(ValueError, match="valid choices"):
            build_engine(
                "gpu", ItemMemory(8, 64, 1), ItemMemory(4, 64, 2), SPEC
            )

    def test_register_engine_extends_registry(self):
        @register_engine
        class _Dummy(UnpackedEngine):
            name = "dummy-test-engine"
            summary = "registered by the test suite"

        try:
            assert "dummy-test-engine" in engine_names()
            built = _engine("dummy-test-engine")
            assert built.name == "dummy-test-engine"
            assert LaelapsConfig(backend="dummy-test-engine")
        finally:
            del engine_module._REGISTRY["dummy-test-engine"]
        assert "dummy-test-engine" not in engine_names()

    def test_instances_satisfy_protocol(self, monkeypatch):
        from repro.hdc.native import NATIVE_PURE_PYTHON_ENV

        monkeypatch.setenv(NATIVE_PURE_PYTHON_ENV, "1")
        for name in engine_names():
            assert isinstance(_engine(name), ComputeEngine)

    def test_mismatched_item_memories_rejected(self):
        with pytest.raises(ValueError, match="share a dimension"):
            build_engine(
                "packed", ItemMemory(8, 64, 1), ItemMemory(4, 65, 2), SPEC
            )


class TestCapabilities:
    def test_rows_cover_every_engine(self):
        rows = engine_capabilities(dim=10_000)
        assert [row["name"] for row in rows] == list(engine_names())
        for row in rows:
            assert set(row) == {
                "name", "window_form", "width_at_dim", "fused",
                "available", "unavailable_reason", "summary",
            }
            assert row["available"] == (row["unavailable_reason"] is None)

    def test_word_layout_widths(self):
        by_name = {row["name"]: row for row in engine_capabilities(130)}
        assert by_name["unpacked"]["width_at_dim"] == 130
        assert by_name["packed"]["width_at_dim"] == packed_words(130) == 3
        assert by_name["packed-fused"]["width_at_dim"] == 3

    def test_fused_engines_are_the_fused_family(self):
        fused = {
            row["name"] for row in engine_capabilities() if row["fused"]
        }
        assert fused == {"packed-fused", "packed-native"}


class TestWindowForms:
    def test_windows_2d_accepts_both_forms(self):
        engine = _engine("packed", dim=100)
        rng = np.random.default_rng(0)
        bits = random_bits((3, 100), rng)
        assert engine.windows_2d(bits).dtype == np.uint8
        assert engine.windows_2d(pack_bits(bits)).dtype == np.uint64

    def test_windows_2d_rejects_other_widths(self):
        engine = _engine("unpacked", dim=100)
        with pytest.raises(ValueError, match="100 .* or 2"):
            engine.windows_2d(np.zeros((3, 7), dtype=np.uint8))

    def test_pack_queries_round_trips(self):
        engine = _engine("packed-fused", dim=100)
        bits = random_bits((4, 100), np.random.default_rng(1))
        packed = engine.pack_queries(bits)
        np.testing.assert_array_equal(packed, pack_bits(bits))
        # Already-packed queries pass through unchanged.
        np.testing.assert_array_equal(engine.pack_queries(packed), packed)

    def test_native_encoders(self):
        assert _engine("unpacked").temporal_encoder().feed(
            np.zeros((0, 4), dtype=np.int64)
        ).dtype == np.uint8
        assert _engine("packed").temporal_encoder().feed(
            np.zeros((0, 4), dtype=np.int64)
        ).dtype == np.uint64


class TestDetectorIntegration:
    def test_auto_detector_reports_resolved_name(self):
        detector = LaelapsDetector(4, LaelapsConfig(dim=256, backend="auto"))
        assert detector.backend == resolve_engine_name(AUTO_ENGINE)
        assert detector.config.backend == "auto"
        assert isinstance(detector.engine, PackedFusedEngine)

    def test_named_engines_construct(self):
        for name, cls in (
            ("unpacked", UnpackedEngine),
            ("packed", PackedEngine),
            ("packed-fused", PackedFusedEngine),
        ):
            detector = LaelapsDetector(
                4, LaelapsConfig(dim=256, backend=name)
            )
            assert isinstance(detector.engine, cls)
            assert detector.backend == name
            assert detector.spatial is detector.engine.spatial

    def test_bad_backend_string_fails_at_config(self):
        with pytest.raises(ValueError, match="valid choices"):
            LaelapsConfig(backend="cuda")
