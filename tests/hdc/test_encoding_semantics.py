"""Semantic tests of the HD encoding: what H vectors *mean*.

These tests pin down the representational claims of Sec. III-B — the
properties the detector's accuracy rests on — rather than mechanical
input/output contracts.
"""

import numpy as np
import pytest

from repro.hdc.backend import hamming_distance
from repro.hdc.item_memory import ItemMemory
from repro.hdc.spatial import SpatialEncoder
from repro.hdc.temporal import encode_recording
from repro.signal.windows import WindowSpec

DIM = 2_048


@pytest.fixture(scope="module")
def encoder():
    return SpatialEncoder(
        ItemMemory(64, DIM, seed=11), ItemMemory(16, DIM, seed=12)
    )


def _random_codes(rng, n_samples):
    return rng.integers(0, 64, size=(n_samples, 16))


class TestHistogramSemantics:
    """H approximates the LBP-code histogram (Sec. III-B)."""

    def test_same_code_distribution_similar_h(self, encoder, rng):
        # Two windows with i.i.d. codes from the same distribution get
        # similar H vectors even though every sample differs.
        spec = WindowSpec(64, 64)
        h1 = encode_recording(_random_codes(rng, 64), encoder, spec)[0]
        h2 = encode_recording(_random_codes(rng, 64), encoder, spec)[0]
        assert hamming_distance(h1, h2) < 0.35 * DIM

    def test_dominant_code_shifts_h(self, encoder, rng):
        # A window dominated by one code is far from a uniform window
        # and close to another window dominated by the *same* code.
        spec = WindowSpec(64, 64)
        dominant = np.full((64, 16), 42)
        noise_a = _random_codes(rng, 64)
        noise_b = _random_codes(rng, 64)
        mixed_a = np.where(rng.random((64, 16)) < 0.8, dominant, noise_a)
        mixed_b = np.where(rng.random((64, 16)) < 0.8, dominant, noise_b)
        uniform = _random_codes(rng, 64)
        h_a = encode_recording(mixed_a, encoder, spec)[0]
        h_b = encode_recording(mixed_b, encoder, spec)[0]
        h_u = encode_recording(uniform, encoder, spec)[0]
        assert hamming_distance(h_a, h_b) < hamming_distance(h_a, h_u)

    def test_different_dominant_codes_differ(self, encoder):
        spec = WindowSpec(64, 64)
        h_42 = encode_recording(np.full((64, 16), 42), encoder, spec)[0]
        h_17 = encode_recording(np.full((64, 16), 17), encoder, spec)[0]
        assert hamming_distance(h_42, h_17) > 0.35 * DIM


class TestElectrodeBindingSemantics:
    """The spatial record keeps *which electrode* showed a code."""

    def test_focal_pattern_location_matters(self, encoder, rng):
        # The same dominant code on electrodes 0-7 vs 8-15 must produce
        # different records (binding makes the representation a record,
        # not a bag).
        base = _random_codes(rng, 1)[0]
        left = base.copy()
        left[:8] = 42
        right = base.copy()
        right[8:] = 42
        s_left = encoder.encode_sample(left)
        s_right = encoder.encode_sample(right)
        assert hamming_distance(s_left, s_right) > 0.2 * DIM

    def test_partial_overlap_graded_similarity(self, encoder, rng):
        # More shared (electrode, code) pairs -> closer records.
        base = _random_codes(rng, 1)[0]
        variant_1 = base.copy()
        variant_1[:2] = (variant_1[:2] + 1) % 64
        variant_8 = base.copy()
        variant_8[:8] = (variant_8[:8] + 1) % 64
        d1 = hamming_distance(encoder.encode_sample(base),
                              encoder.encode_sample(variant_1))
        d8 = hamming_distance(encoder.encode_sample(base),
                              encoder.encode_sample(variant_8))
        assert d1 < d8

    def test_im_seed_isolation(self):
        # Different master seeds give unrelated encodings — models do
        # not leak into one another.
        a = SpatialEncoder(ItemMemory(64, DIM, 1), ItemMemory(8, DIM, 2))
        b = SpatialEncoder(ItemMemory(64, DIM, 3), ItemMemory(8, DIM, 4))
        codes = np.arange(8) % 64
        d = hamming_distance(a.encode_sample(codes), b.encode_sample(codes))
        assert abs(d / DIM - 0.5) < 0.06
