"""Tests for repro.hdc.associative (prototype learning and queries)."""

import numpy as np
import pytest

from repro.hdc.associative import AssociativeMemory, PrototypeAccumulator
from repro.hdc.backend import hamming_distance, random_bits


class TestPrototypeAccumulator:
    def test_single_vector_prototype_is_vector(self, rng):
        v = random_bits(128, rng)
        acc = PrototypeAccumulator(128).add(v)
        np.testing.assert_array_equal(acc.finalize(), v)
        assert acc.n_vectors == 1

    def test_majority_of_noisy_copies_recovers_centre(self, rng):
        centre = random_bits(2048, rng)
        noisy = np.stack([centre.copy() for _ in range(7)])
        for row in noisy:
            flip = rng.choice(2048, size=200, replace=False)
            row[flip] ^= 1
        prototype = PrototypeAccumulator(2048).add(noisy).finalize()
        assert hamming_distance(prototype, centre) < 100


class TestAssociativeMemory:
    def test_store_and_query(self, rng):
        memory = AssociativeMemory(256)
        p0 = random_bits(256, rng)
        p1 = random_bits(256, rng)
        memory.store(0, p0)
        memory.store(1, p1)
        labels, dists = memory.classify(p1)
        assert labels == 1
        assert dists[1] == 0
        assert dists[0] == hamming_distance(p0, p1)

    def test_batch_classification(self, rng):
        memory = AssociativeMemory(512)
        p0, p1 = random_bits((2, 512), rng)
        memory.store(0, p0)
        memory.store(1, p1)
        queries = np.stack([p0, p1, p0])
        labels, dists = memory.classify(queries)
        np.testing.assert_array_equal(labels, [0, 1, 0])
        assert dists.shape == (3, 2)

    def test_train_bundles_batch(self, rng):
        from repro.hdc.ops import bundle

        memory = AssociativeMemory(128)
        h = random_bits((5, 128), rng)
        memory.train(3, h)
        np.testing.assert_array_equal(memory.prototype(3), bundle(h))

    def test_store_replaces_existing(self, rng):
        memory = AssociativeMemory(64)
        memory.store(0, random_bits(64, rng))
        replacement = random_bits(64, rng)
        memory.store(0, replacement)
        assert memory.n_classes == 1
        np.testing.assert_array_equal(memory.prototype(0), replacement)

    def test_tie_resolves_to_first_stored_class(self, rng):
        # Equidistant query must get the first-stored (interictal) label.
        memory = AssociativeMemory(64)
        p0 = np.zeros(64, dtype=np.uint8)
        p1 = np.ones(64, dtype=np.uint8)
        memory.store(0, p0)
        memory.store(1, p1)
        query = np.concatenate([np.zeros(32), np.ones(32)]).astype(np.uint8)
        labels, dists = memory.classify(query)
        assert dists[0] == dists[1] == 32
        assert labels == 0

    def test_noise_robust_recall(self, rng):
        # Hallmark of HD memories: heavy bit noise still recalls the
        # right prototype at d = 2048.
        memory = AssociativeMemory(2048)
        p0, p1 = random_bits((2, 2048), rng)
        memory.store(0, p0)
        memory.store(1, p1)
        noisy = p0.copy()
        flip = rng.choice(2048, size=600, replace=False)  # ~30 % noise
        noisy[flip] ^= 1
        labels, _ = memory.classify(noisy)
        assert labels == 0

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            AssociativeMemory(16).prototype(0)

    def test_query_without_prototypes_raises(self, rng):
        with pytest.raises(RuntimeError):
            AssociativeMemory(16).distances(random_bits(16, rng))

    def test_wrong_shape_prototype_raises(self, rng):
        with pytest.raises(ValueError):
            AssociativeMemory(16).store(0, random_bits(17, rng))

    def test_non_binary_prototype_raises(self):
        with pytest.raises(ValueError):
            AssociativeMemory(4).store(0, np.array([0, 1, 2, 1], dtype=np.uint8))
