"""Tests for repro.hdc.associative (prototype learning and queries)."""

import numpy as np
import pytest

from repro.hdc.associative import (
    AssociativeMemory,
    PackedPrototypeAccumulator,
    PrototypeAccumulator,
)
from repro.hdc.backend import (
    hamming_distance,
    pack_bits,
    random_bits,
    unpack_bits,
)


class TestPrototypeAccumulator:
    def test_single_vector_prototype_is_vector(self, rng):
        v = random_bits(128, rng)
        acc = PrototypeAccumulator(128).add(v)
        np.testing.assert_array_equal(acc.finalize(), v)
        assert acc.n_vectors == 1

    def test_majority_of_noisy_copies_recovers_centre(self, rng):
        centre = random_bits(2048, rng)
        noisy = np.stack([centre.copy() for _ in range(7)])
        for row in noisy:
            flip = rng.choice(2048, size=200, replace=False)
            row[flip] ^= 1
        prototype = PrototypeAccumulator(2048).add(noisy).finalize()
        assert hamming_distance(prototype, centre) < 100


class TestAssociativeMemory:
    def test_store_and_query(self, rng):
        memory = AssociativeMemory(256)
        p0 = random_bits(256, rng)
        p1 = random_bits(256, rng)
        memory.store(0, p0)
        memory.store(1, p1)
        labels, dists = memory.classify(p1)
        assert labels == 1
        assert dists[1] == 0
        assert dists[0] == hamming_distance(p0, p1)

    def test_batch_classification(self, rng):
        memory = AssociativeMemory(512)
        p0, p1 = random_bits((2, 512), rng)
        memory.store(0, p0)
        memory.store(1, p1)
        queries = np.stack([p0, p1, p0])
        labels, dists = memory.classify(queries)
        np.testing.assert_array_equal(labels, [0, 1, 0])
        assert dists.shape == (3, 2)

    def test_train_bundles_batch(self, rng):
        from repro.hdc.ops import bundle

        memory = AssociativeMemory(128)
        h = random_bits((5, 128), rng)
        memory.train(3, h)
        np.testing.assert_array_equal(memory.prototype(3), bundle(h))

    def test_store_replaces_existing(self, rng):
        memory = AssociativeMemory(64)
        memory.store(0, random_bits(64, rng))
        replacement = random_bits(64, rng)
        memory.store(0, replacement)
        assert memory.n_classes == 1
        np.testing.assert_array_equal(memory.prototype(0), replacement)

    def test_tie_resolves_to_first_stored_class(self, rng):
        # Equidistant query must get the first-stored (interictal) label.
        memory = AssociativeMemory(64)
        p0 = np.zeros(64, dtype=np.uint8)
        p1 = np.ones(64, dtype=np.uint8)
        memory.store(0, p0)
        memory.store(1, p1)
        query = np.concatenate([np.zeros(32), np.ones(32)]).astype(np.uint8)
        labels, dists = memory.classify(query)
        assert dists[0] == dists[1] == 32
        assert labels == 0

    def test_noise_robust_recall(self, rng):
        # Hallmark of HD memories: heavy bit noise still recalls the
        # right prototype at d = 2048.
        memory = AssociativeMemory(2048)
        p0, p1 = random_bits((2, 2048), rng)
        memory.store(0, p0)
        memory.store(1, p1)
        noisy = p0.copy()
        flip = rng.choice(2048, size=600, replace=False)  # ~30 % noise
        noisy[flip] ^= 1
        labels, _ = memory.classify(noisy)
        assert labels == 0

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            AssociativeMemory(16).prototype(0)

    def test_query_without_prototypes_raises(self, rng):
        with pytest.raises(RuntimeError):
            AssociativeMemory(16).distances(random_bits(16, rng))

    def test_wrong_shape_prototype_raises(self, rng):
        with pytest.raises(ValueError):
            AssociativeMemory(16).store(0, random_bits(17, rng))

    def test_non_binary_prototype_raises(self):
        with pytest.raises(ValueError):
            AssociativeMemory(4).store(0, np.array([0, 1, 2, 1], dtype=np.uint8))


class TestPackedApi:
    def test_single_packed_vector_prototype_is_vector(self, rng):
        v = pack_bits(random_bits(100, rng))
        acc = PackedPrototypeAccumulator(100).add(v)
        np.testing.assert_array_equal(acc.finalize(), v)
        assert acc.n_vectors == 1

    def test_store_packed_round_trips(self, rng):
        memory = AssociativeMemory(100)
        p = random_bits(100, rng)
        memory.store_packed(0, pack_bits(p))
        np.testing.assert_array_equal(memory.prototype(0), p)
        np.testing.assert_array_equal(memory.prototype_packed(0), pack_bits(p))

    def test_store_packed_rejects_dirty_padding(self):
        memory = AssociativeMemory(100)
        dirty = np.zeros(2, dtype=np.uint64)
        dirty[-1] = np.uint64(1) << np.uint64(63)  # bit 127 > dim 100
        with pytest.raises(ValueError):
            memory.store_packed(0, dirty)

    def test_store_packed_rejects_wrong_words(self):
        with pytest.raises(ValueError):
            AssociativeMemory(100).store_packed(0, np.zeros(3, dtype=np.uint64))

    def test_classify_packed_matches_unpacked(self, rng):
        memory = AssociativeMemory(300)
        p0, p1 = random_bits((2, 300), rng)
        memory.store(0, p0)
        memory.store(1, p1)
        queries = random_bits((17, 300), rng)
        labels_u, dists_u = memory.classify(queries)
        labels_p, dists_p = memory.classify_packed(pack_bits(queries))
        np.testing.assert_array_equal(labels_p, labels_u)
        np.testing.assert_array_equal(dists_p, dists_u)

    def test_train_packed_matches_train(self, rng):
        h = random_bits((9, 130), rng)
        unpacked_memory = AssociativeMemory(130)
        unpacked_memory.train(0, h)
        packed_memory = AssociativeMemory(130)
        packed_memory.train_packed(0, pack_bits(h))
        np.testing.assert_array_equal(
            packed_memory.prototype(0), unpacked_memory.prototype(0)
        )

    def test_packed_query_without_prototypes_raises(self, rng):
        with pytest.raises(RuntimeError):
            AssociativeMemory(64).distances_packed(
                pack_bits(random_bits(64, rng))
            )

    def test_packed_query_wrong_words_raises(self):
        memory = AssociativeMemory(64)
        memory.store(0, np.zeros(64, dtype=np.uint8))
        with pytest.raises(ValueError):
            memory.distances_packed(np.zeros((2, 3), dtype=np.uint64))

    def test_accumulator_streaming_batches(self, rng):
        vectors = random_bits((10, 77), rng)
        packed = pack_bits(vectors)
        acc = PackedPrototypeAccumulator(77)
        acc.add(packed[:4]).add(packed[4:])
        expected = PrototypeAccumulator(77).add(vectors).finalize()
        np.testing.assert_array_equal(
            unpack_bits(acc.finalize(), 77), expected
        )

    def test_empty_accumulator_raises(self):
        with pytest.raises(ValueError):
            PackedPrototypeAccumulator(32).finalize()
