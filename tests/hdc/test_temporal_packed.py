"""Tests for repro.hdc.temporal_packed (packed window bundler)."""

import numpy as np
import pytest

from repro.hdc.backend import unpack_bits
from repro.hdc.item_memory import ItemMemory
from repro.hdc.spatial import SpatialEncoder
from repro.hdc.spatial_packed import PackedSpatialEncoder
from repro.hdc.temporal import encode_recording
from repro.hdc.temporal_packed import (
    PackedTemporalEncoder,
    encode_recording_packed,
)
from repro.signal.windows import WindowSpec

DIM = 200
N_ELECTRODES = 5
FS = 32.0


@pytest.fixture(scope="module")
def memories():
    return ItemMemory(16, DIM, seed=1), ItemMemory(N_ELECTRODES, DIM, seed=2)


@pytest.fixture(scope="module")
def spec():
    return WindowSpec.from_seconds(1.0, 0.5, FS)


@pytest.fixture()
def codes(rng):
    return rng.integers(0, 16, (500, N_ELECTRODES))


class TestConstruction:
    def test_rejects_non_tiling_window(self, memories):
        spatial = PackedSpatialEncoder(*memories)
        with pytest.raises(ValueError):
            PackedTemporalEncoder(
                spatial, WindowSpec(window_samples=30, step_samples=13)
            )

    def test_rejects_wrong_channel_count(self, memories, spec):
        encoder = PackedTemporalEncoder(PackedSpatialEncoder(*memories), spec)
        with pytest.raises(ValueError):
            encoder.feed(np.zeros((10, N_ELECTRODES + 1), dtype=np.int64))


class TestEquivalence:
    def test_matches_unpacked_recording(self, memories, spec, codes):
        h_unpacked = encode_recording(
            codes, SpatialEncoder(*memories), spec
        )
        h_packed = encode_recording_packed(
            codes, PackedSpatialEncoder(*memories), spec
        )
        assert h_packed.dtype == np.uint64
        np.testing.assert_array_equal(unpack_bits(h_packed, DIM), h_unpacked)

    @pytest.mark.parametrize("chunk", [1, 7, 16, 33, 250])
    def test_chunked_feed_equals_one_shot(self, memories, spec, codes, chunk):
        spatial = PackedSpatialEncoder(*memories)
        one_shot = encode_recording_packed(codes, spatial, spec)
        encoder = PackedTemporalEncoder(spatial, spec)
        pieces = [
            encoder.feed(codes[start : start + chunk])
            for start in range(0, codes.shape[0], chunk)
        ]
        np.testing.assert_array_equal(np.concatenate(pieces), one_shot)

    def test_reset_restarts_stream(self, memories, spec, codes):
        spatial = PackedSpatialEncoder(*memories)
        encoder = PackedTemporalEncoder(spatial, spec)
        encoder.feed(codes[:100])
        encoder.reset()
        np.testing.assert_array_equal(
            encoder.feed(codes), encode_recording_packed(codes, spatial, spec)
        )


class TestShapes:
    def test_empty_feed(self, memories, spec):
        encoder = PackedTemporalEncoder(PackedSpatialEncoder(*memories), spec)
        out = encoder.feed(np.zeros((0, N_ELECTRODES), dtype=np.int64))
        assert out.shape == (0, encoder.words)

    def test_window_count(self, memories, spec, codes):
        h = encode_recording_packed(
            codes, PackedSpatialEncoder(*memories), spec
        )
        step = spec.step_samples
        expected = codes.shape[0] // step - (spec.window_samples // step) + 1
        assert h.shape[0] == expected
