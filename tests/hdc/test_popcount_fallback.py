"""The numpy<2 popcount fallback stays bit-exact with the fast path.

``repro.hdc.backend`` selects ``numpy.bitwise_count`` when it exists
and a byte-lookup table otherwise.  CI runs numpy >= 2, so the fallback
would never execute — this suite monkeypatches the selected ``_popcount``
to the lookup implementation and drives the packed-parity checks
(distances, associative queries, the full detector pipeline on every
packed engine) through it.
"""

import numpy as np
import pytest

import repro.hdc.backend as backend_module
from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.hdc.associative import AssociativeMemory
from repro.hdc.backend import (
    _popcount_lookup,
    hamming_distance,
    hamming_distance_packed,
    pack_bits,
    popcount_words,
    random_bits,
)


@pytest.fixture()
def lookup_popcount(monkeypatch):
    """Force every popcount in the packed stack onto the lookup table."""
    monkeypatch.setattr(backend_module, "_popcount", _popcount_lookup)


def test_probe_selects_bitwise_count_on_modern_numpy():
    if not hasattr(np, "bitwise_count"):
        pytest.skip("numpy < 2.0: the fallback is the selected path")
    assert backend_module._popcount is np.bitwise_count


class TestLookupCorrectness:
    def test_matches_python_bin_count(self, lookup_popcount):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**64, size=(5, 7), dtype=np.uint64)
        expected = np.vectorize(lambda w: bin(int(w)).count("1"))(words)
        np.testing.assert_array_equal(popcount_words(words), expected)

    def test_edge_words(self, lookup_popcount):
        words = np.array([0, 1, 2**63, 2**64 - 1], dtype=np.uint64)
        np.testing.assert_array_equal(
            popcount_words(words), np.array([0, 1, 1, 64])
        )


class TestPackedParityThroughLookup:
    """The packed-parity suite's core checks, on the lookup path."""

    @pytest.mark.parametrize("dim", [1, 63, 64, 65, 129, 200])
    def test_hamming_distance_parity(self, lookup_popcount, dim):
        rng = np.random.default_rng(dim)
        a = random_bits((6, dim), rng)
        b = random_bits((6, dim), rng)
        np.testing.assert_array_equal(
            hamming_distance_packed(pack_bits(a), pack_bits(b)),
            hamming_distance(a, b),
        )

    @pytest.mark.parametrize("dim", [63, 65, 200])
    def test_associative_queries_parity(self, lookup_popcount, dim):
        rng = np.random.default_rng(dim + 1)
        memory = AssociativeMemory(dim)
        memory.train(0, random_bits((4, dim), rng))
        memory.train(1, random_bits((4, dim), rng))
        queries = random_bits((9, dim), rng)
        labels_u, dists_u = memory.classify(queries)
        labels_p, dists_p = memory.classify_packed(pack_bits(queries))
        np.testing.assert_array_equal(labels_p, labels_u)
        np.testing.assert_array_equal(dists_p, dists_u)

    @pytest.mark.parametrize("engine", ["packed", "packed-fused"])
    def test_full_pipeline_parity(self, lookup_popcount, engine):
        """Both word-domain engines equal the unpacked reference."""
        rng = np.random.default_rng(11)
        signal = rng.standard_normal((4 * 128, 4))
        predictions = {}
        for backend in ("unpacked", engine):
            detector = LaelapsDetector(
                4, LaelapsConfig(dim=129, fs=128.0, seed=5, backend=backend)
            )
            detector.fit_from_windows(
                random_bits((3, 129), np.random.default_rng(1)),
                random_bits((3, 129), np.random.default_rng(2)),
            )
            predictions[backend] = detector.predict(signal)
        np.testing.assert_array_equal(
            predictions[engine].labels, predictions["unpacked"].labels
        )
        np.testing.assert_array_equal(
            predictions[engine].distances,
            predictions["unpacked"].distances,
        )
        assert len(predictions[engine]) > 0
