"""Tests for the bit-sliced counter and the packed spatial encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdc.backend import pack_bits, random_bits, unpack_bits
from repro.hdc.bitsliced import BitslicedCounter
from repro.hdc.item_memory import ItemMemory
from repro.hdc.spatial import SpatialEncoder
from repro.hdc.spatial_packed import PackedSpatialEncoder


class TestBitslicedCounter:
    def test_counts_match_plain_sum(self, rng):
        dim, n = 200, 13
        masks = random_bits((n, dim), rng)
        counter = BitslicedCounter(dim, n)
        for mask in masks:
            counter.add(pack_bits(mask))
        np.testing.assert_array_equal(
            counter.counts(), masks.sum(axis=0, dtype=np.int64)
        )

    def test_greater_than_matches_integer_compare(self, rng):
        dim, n = 130, 9
        masks = random_bits((n, dim), rng)
        counter = BitslicedCounter(dim, n)
        for mask in masks:
            counter.add(pack_bits(mask))
        counts = masks.sum(axis=0, dtype=np.int64)
        for threshold in range(-1, n + 2):
            expected = (counts > threshold).astype(np.uint8)
            got = unpack_bits(counter.greater_than(threshold), dim)
            np.testing.assert_array_equal(got, expected, err_msg=f"t={threshold}")

    def test_capacity_enforced(self, rng):
        counter = BitslicedCounter(64, 2)
        mask = pack_bits(random_bits(64, rng))
        counter.add(mask).add(mask)
        with pytest.raises(ValueError):
            counter.add(mask)

    def test_reset(self, rng):
        counter = BitslicedCounter(64, 4)
        counter.add(pack_bits(random_bits(64, rng)))
        counter.reset()
        assert counter.n_added == 0
        np.testing.assert_array_equal(counter.counts(), 0)

    def test_wrong_mask_shape_raises(self):
        counter = BitslicedCounter(64, 4)
        with pytest.raises(ValueError):
            counter.add(np.zeros(5, dtype=np.uint64))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 64), st.integers(1, 20), st.data())
    def test_property_counts(self, dim, n, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        masks = rng.integers(0, 2, size=(n, dim), dtype=np.uint8)
        counter = BitslicedCounter(dim, n)
        for mask in masks:
            counter.add(pack_bits(mask))
        np.testing.assert_array_equal(
            counter.counts(), masks.sum(axis=0, dtype=np.int64)
        )
        majority = unpack_bits(counter.greater_than(n // 2), dim)
        np.testing.assert_array_equal(
            majority, (masks.sum(axis=0) > n // 2).astype(np.uint8)
        )


class TestPackedSpatialEncoder:
    @pytest.fixture(scope="class")
    def encoders(self):
        codes = ItemMemory(64, 300, seed=1)
        electrodes = ItemMemory(7, 300, seed=2)
        return (
            SpatialEncoder(codes, electrodes),
            PackedSpatialEncoder(codes, electrodes),
        )

    def test_word_exact_equivalence(self, encoders, rng):
        default, packed = encoders
        codes = rng.integers(0, 64, size=(25, 7))
        np.testing.assert_array_equal(
            packed.encode(codes), default.encode(codes)
        )

    def test_single_sample(self, encoders, rng):
        default, packed = encoders
        codes = rng.integers(0, 64, size=7)
        np.testing.assert_array_equal(
            unpack_bits(packed.encode_sample_packed(codes), 300),
            default.encode_sample(codes),
        )

    def test_even_electrode_tie_convention(self, rng):
        # With an even electrode count the tie-to-zero rule must match.
        codes_im = ItemMemory(16, 256, seed=3)
        elec_im = ItemMemory(8, 256, seed=4)
        default = SpatialEncoder(codes_im, elec_im)
        packed = PackedSpatialEncoder(codes_im, elec_im)
        codes = rng.integers(0, 16, size=(40, 8))
        np.testing.assert_array_equal(
            packed.encode(codes), default.encode(codes)
        )

    def test_rejects_bad_codes(self, encoders):
        _, packed = encoders
        with pytest.raises(ValueError):
            packed.encode_sample_packed(np.full(7, 64))

    def test_rejects_dim_mismatch(self):
        with pytest.raises(ValueError):
            PackedSpatialEncoder(ItemMemory(4, 64, 1), ItemMemory(4, 128, 2))
