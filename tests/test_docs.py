"""Documentation health: intra-repo links resolve, paper map is total.

Run by the CI docs job (and tier-1). Two guarantees:

* every relative markdown link in the repository's ``.md`` files points
  at a file or directory that exists (external links and GitHub-side
  paths that escape the repo, like the CI badge, are out of scope);
* ``docs/paper_map.md`` names every module under ``src/repro/`` — a new
  module without a paper anchor (or an explicit infrastructure note)
  fails here, which is what keeps the map complete.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
_EXCLUDED_DIR_NAMES = {".git", "__pycache__", ".hypothesis", "node_modules"}
#: Generated reference material (paper abstracts, retrieved exemplar
#: code) — not authored here, may cite figures that were never fetched.
_GENERATED = {"PAPER.md", "PAPERS.md", "SNIPPETS.md"}

MARKDOWN_FILES = sorted(
    p
    for p in REPO_ROOT.rglob("*.md")
    if p.name not in _GENERATED
    and not (_EXCLUDED_DIR_NAMES & set(part.name for part in p.parents))
)

#: Inline markdown links: [text](target), target without spaces.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _relative_links(markdown: Path):
    for target in _LINK_RE.findall(markdown.read_text()):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):  # same-file heading anchor
            continue
        yield target


def test_markdown_files_found():
    names = {p.name for p in MARKDOWN_FILES}
    assert {"README.md", "architecture.md", "paper_map.md"} <= names


@pytest.mark.parametrize(
    "markdown", MARKDOWN_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_intra_repo_links_resolve(markdown):
    broken = []
    for target in _relative_links(markdown):
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (markdown.parent / path).resolve()
        if not resolved.is_relative_to(REPO_ROOT):
            continue  # GitHub-side path (e.g. the CI badge), not a file
        if not resolved.exists():
            broken.append(target)
    assert not broken, (
        f"{markdown.relative_to(REPO_ROOT)} has broken links: {broken}"
    )


class TestReadmeSnippets:
    def test_python_snippets_run(self):
        """Every ```python block in the README executes as written.

        Free variables the snippets reference for brevity (a signal,
        training segments) are provided by a small preamble; the
        snippet text itself runs unmodified, so API drift in README
        examples fails CI.
        """
        readme = (REPO_ROOT / "README.md").read_text()
        snippets = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert snippets, "README has no python snippets?"
        import numpy as np

        from repro.core.training import TrainingSegments
        from repro.data.synthetic import (
            SeizurePlan,
            SynthesisParams,
            SyntheticIEEGGenerator,
        )

        generator = SyntheticIEEGGenerator(
            32, SynthesisParams(fs=256.0), seed=5
        )
        recording = generator.generate(80.0, [SeizurePlan(35.0, 20.0)])
        namespace = {
            "np": np,
            "signal": recording.data,
            "segments": TrainingSegments(
                ictal=((35.0, 55.0),), interictal=(2.0, 32.0)
            ),
        }
        for snippet in snippets:
            exec(compile(snippet, "README.md", "exec"), namespace)
        # The quickstart snippet must actually have produced a result.
        assert namespace["result"].flags.shape[0] > 0


class TestPaperMap:
    def test_every_module_is_mapped(self):
        paper_map = (REPO_ROOT / "docs" / "paper_map.md").read_text()
        src = REPO_ROOT / "src" / "repro"
        missing = []
        for module in sorted(src.rglob("*.py")):
            if "__pycache__" in module.parts:
                continue
            rel = module.relative_to(src).as_posix()
            token = rel if "/" in rel else f"repro/{rel}"
            if f"`{token}`" not in paper_map:
                missing.append(token)
        assert not missing, (
            "docs/paper_map.md is missing modules (add a paper anchor or "
            f"an 'infrastructure, no paper section' note): {missing}"
        )

    def test_mapped_tests_exist(self):
        # The 'reproduced/verified by' column must not rot either.
        paper_map = (REPO_ROOT / "docs" / "paper_map.md").read_text()
        referenced = set(
            re.findall(r"`((?:tests|benchmarks)/[^`]+)`", paper_map)
        )
        assert referenced, "paper map lists no tests at all?"
        missing = sorted(
            ref for ref in referenced if not (REPO_ROOT / ref).exists()
        )
        assert not missing, f"paper map references missing tests: {missing}"
