"""Project-specific static analysis: the ``repro lint`` rule engine.

An AST-based lint pass (stdlib ``ast`` only — no new dependencies)
that machine-checks the contracts this repository's correctness
arguments rest on: determinism of core paths, engine-name ownership by
the ``repro.hdc.engine`` registry, fork-safety of the serving layer,
checkpoint-schema hygiene, and packed-domain dtype pinning.

Entry points:

* CLI — ``repro lint [PATHS...] [--baseline FILE] [--format text|json]``
* API — :func:`lint_paths` over files/dirs, :func:`lint_source` for
  in-memory snippets (the fixture-test hook).

See ``docs/static_analysis.md`` for the rule catalogue, the
``repro: noqa[RPR0xx]`` suppression syntax and the baseline
workflow.
"""

from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import (
    JSON_FORMAT_VERSION,
    META_CODE,
    FileContext,
    Finding,
    LintResult,
    Rule,
    check_file,
    iter_python_files,
    lint_paths,
    lint_source,
    parse_suppressions,
    register_rule,
    registered_rules,
    result_from_json,
    rule_codes,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "FileContext",
    "Finding",
    "JSON_FORMAT_VERSION",
    "LintResult",
    "META_CODE",
    "Rule",
    "check_file",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "parse_suppressions",
    "register_rule",
    "registered_rules",
    "result_from_json",
    "rule_codes",
    "write_baseline",
]
