"""Checkpoint-schema hygiene for the two persistence formats.

``core/persistence.py`` (model/session/fleet checkpoints) and
``evaluation/benchrec.py`` (the benchmark-record envelope) each define
an on-disk schema guarded by a version constant.  Two failure modes
recur in such code:

* a writer gains a payload key no reader ever looks at (or a reader
  typo makes a written key unreachable) — drift the round-trip tests
  only catch for the code paths they exercise;
* the key set changes but the schema version does not, so old readers
  "successfully" load new files into nonsense.

RPR007 checks write/read symmetry statically.  RPR008 emits a stable
fingerprint of the key set + version constants as an always-on finding
that the committed baseline must acknowledge: change the keys and the
fingerprint changes, CI fails, and the only way to green is to bump
the version constant and consciously re-baseline — the version bump is
enforced by review of that diff, machine-prompted every time.
"""

from __future__ import annotations

import ast
import hashlib
import re
from typing import Iterator

from repro.analysis.astutil import (
    constant_str,
    dotted_name,
    functions_with_qualname,
    module_level_statements,
)
from repro.analysis.engine import FileContext, Finding, Rule, register_rule

_SCHEMA_FILES = (
    "src/repro/core/persistence.py",
    "src/repro/evaluation/benchrec.py",
    "src/repro/data/outofcore.py",
)

_WRITER_RE = re.compile(r"(^|_)(save|write|dump|emit)")
_READER_RE = re.compile(r"(^|_)(load|read|parse|validate|rebuild|build)")
_VERSION_RE = re.compile(r"^_?[A-Z0-9_]*VERSION$")
#: Module-level dict constants that *are* the schema (e.g. ``_FIELDS``).
_SCHEMA_DICT_RE = re.compile(r"^_?[A-Z0-9_]*(FIELDS|SCHEMA|KEYS)[A-Z0-9_]*$")


def _is_writer(name: str) -> bool:
    short = name.rsplit(".", 1)[-1]
    if _WRITER_RE.search(short):
        return True
    if short.endswith(("_meta", "_spec")):
        return True
    return short.endswith("_payload") and "from" not in short


def _is_reader(name: str) -> bool:
    short = name.rsplit(".", 1)[-1]
    return bool(_READER_RE.search(short)) or "from_payload" in short


def _dict_literal_keys(node: ast.AST) -> Iterator[tuple[str, ast.AST]]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Dict):
            for key in sub.keys:
                value = constant_str(key) if key is not None else None
                if value is not None:
                    yield value, key


def _written_keys(fn: ast.AST) -> Iterator[tuple[str, ast.AST]]:
    """Constant keys a writer function emits."""
    yield from _dict_literal_keys(fn)
    for sub in ast.walk(fn):
        # d["key"] = ... stores
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                if isinstance(target, ast.Subscript):
                    value = constant_str(target.slice)
                    if value is not None:
                        yield value, target
        # np.savez*(path, key=array, ...) keyword names
        elif isinstance(sub, ast.Call):
            dotted = dotted_name(sub.func) or ""
            if "savez" in dotted:
                for kw in sub.keywords:
                    if kw.arg is not None:
                        yield kw.arg, sub


def _read_keys(tree: ast.AST) -> set[str]:
    """Every constant key the module could read back."""
    keys: set[str] = set()
    for sub in ast.walk(tree):
        if isinstance(sub, ast.Subscript):
            value = constant_str(sub.slice)
            if value is not None:
                keys.add(value)
        elif (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "get"
            and sub.args
        ):
            value = constant_str(sub.args[0])
            if value is not None:
                keys.add(value)
    return keys


def _reader_strings(tree: ast.Module) -> set[str]:
    """All string constants inside reader functions (membership loops,
    tuple iterations and comparisons all count as 'read side knows the
    key')."""
    out: set[str] = set()
    for qualname, fn, _cls in functions_with_qualname(tree):
        if _is_reader(qualname):
            for sub in ast.walk(fn):
                value = constant_str(sub)
                if value is not None:
                    out.add(value)
    return out


def _version_constants(tree: ast.Module) -> list[tuple[str, object, int]]:
    out = []
    for stmt in module_level_statements(tree):
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if (
                isinstance(target, ast.Name)
                and _VERSION_RE.match(target.id)
                and isinstance(stmt.value, ast.Constant)
            ):
                out.append((target.id, stmt.value.value, stmt.lineno))
    return out


def _schema_dict_keys(tree: ast.Module) -> set[str]:
    keys: set[str] = set()
    for stmt in module_level_statements(tree):
        targets = []
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and _SCHEMA_DICT_RE.match(target.id)
            ):
                keys.update(k for k, _node in _dict_literal_keys(value))
    return keys


@register_rule
class SchemaSymmetryRule(Rule):
    """RPR007 — every written checkpoint key must be readable back."""

    code = "RPR007"
    name = "schema-write-read-symmetry"
    rationale = (
        "A payload key written by save_*/write_*/*_payload code that no "
        "reader ever subscripts is either dead weight in every "
        "checkpoint or — worse — a reader-side typo; both are schema "
        "drift the round-trip tests only catch on the paths they "
        "exercise.  Write it and read it, or delete it and bump the "
        "schema version."
    )
    include = _SCHEMA_FILES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        readable = _read_keys(ctx.tree) | _reader_strings(ctx.tree)
        reported: set[str] = set()
        for qualname, fn, _cls in functions_with_qualname(ctx.tree):
            if not _is_writer(qualname) or _is_reader(qualname):
                continue
            for key, node in _written_keys(fn):
                if key in readable or key in reported:
                    continue
                reported.add(key)
                yield ctx.finding(
                    self.code, node,
                    f"checkpoint key {key!r} (written by `{qualname}`) is "
                    "never read back anywhere in this module; remove it "
                    "or read it symmetrically, and bump the schema "
                    "version either way",
                )


@register_rule
class SchemaFingerprintRule(Rule):
    """RPR008 — key-set changes must bump the schema version constant."""

    code = "RPR008"
    name = "schema-fingerprint"
    rationale = (
        "The schema files' key sets are fingerprinted into an always-on "
        "finding that the committed baseline acknowledges.  Adding, "
        "renaming or removing a key changes the fingerprint, which "
        "fails CI until the baseline entry is updated — and the entry's "
        "message embeds the version constants, so the diff that "
        "re-baselines without bumping a version is visibly wrong in "
        "review.  This is how 'bump the version when the key set "
        "changes' became machine-prompted instead of folklore."
    )
    include = _SCHEMA_FILES

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        versions = _version_constants(ctx.tree)
        if not versions:
            yield ctx.finding(
                self.code, 1,
                "checkpoint-schema module defines no *_VERSION constant; "
                "every on-disk format needs a version gate",
            )
            return
        keys: set[str] = set(_schema_dict_keys(ctx.tree))
        for qualname, fn, _cls in functions_with_qualname(ctx.tree):
            if _is_writer(qualname):
                keys.update(k for k, _node in _written_keys(fn))
            if _is_reader(qualname):
                keys.update(_read_keys(fn))
        digest = hashlib.sha256(
            repr((sorted(keys), sorted((n, v) for n, v, _l in versions)))
            .encode("utf-8")
        ).hexdigest()[:12]
        version_text = ", ".join(f"{n}={v!r}" for n, v, _l in sorted(
            (n, v, line) for n, v, line in versions
        ))
        yield ctx.finding(
            self.code, versions[0][2],
            f"schema fingerprint {digest} ({len(keys)} keys under "
            f"{version_text}); if this changed, bump the matching "
            "version constant and update the baseline entry in the "
            "same commit",
        )
