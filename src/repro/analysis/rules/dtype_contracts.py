"""Packed-domain dtype contracts for the bit-sliced kernels.

The packed engine's bit-sliced operations (`repro.hdc.bitsliced`,
`repro.hdc.associative`) are only correct on the dtypes they were
written for: popcounts over ``uint64`` lanes, bundling over ``uint8``
component vectors.  NumPy will happily broadcast an ``int64`` or
``bool`` array through the same expressions and produce *plausible*
garbage — wrong distances, not crashes — so the public entry points
must pin the dtype themselves with ``np.asarray(x, dtype=...)`` (a
no-copy view when the caller already complied).

A parameter also counts as validated when it is *forwarded* to a
sibling method or same-module function that validates its own inputs
(``classify`` → ``self.distances`` is the canonical case); the rule
computes that closure as a fixpoint, so only genuinely unguarded
entry points are flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import (
    functions_with_qualname,
    import_aliases,
    positional_params,
    resolve_call_name,
    walk_calls,
)
from repro.analysis.engine import FileContext, Finding, Rule, register_rule

#: Parameter names that, in the packed-domain modules, carry arrays
#: with a hard dtype contract.  Scoped to two files on purpose — these
#: short names are unambiguous *there* and nowhere else.
_ARRAY_PARAMS = frozenset({
    "mask", "masks", "planes", "a", "b", "h",
    "query", "queries", "h_vectors", "prototype", "prototype_stack",
})

_COERCERS = frozenset({
    "numpy.asarray", "numpy.ascontiguousarray",
    "numpy.asanyarray", "numpy.array",
})


def _has_dtype(call: ast.Call) -> bool:
    if len(call.args) >= 2:
        return True
    return any(kw.arg == "dtype" for kw in call.keywords)


def _directly_validated(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    aliases: dict[str, str],
) -> set[str]:
    """Params coerced in-body via ``np.asarray(p, dtype=...)``/``p.astype``."""
    validated: set[str] = set()
    for call in walk_calls(fn):
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "astype"
            and isinstance(func.value, ast.Name)
        ):
            validated.add(func.value.id)
            continue
        dotted = resolve_call_name(func, aliases)
        if (
            dotted in _COERCERS
            and _has_dtype(call)
            and call.args
            and isinstance(call.args[0], ast.Name)
        ):
            validated.add(call.args[0].id)
    return validated


def _forward_targets(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, set[tuple[str | None, str]]]:
    """For each param name, the sibling/module callees it is passed to.

    Keys of the returned sets are ``(class_name_marker, callee_name)``
    where the marker is ``"self"`` for ``self.method(...)`` calls and
    ``None`` for bare-name module calls.
    """
    out: dict[str, set[tuple[str | None, str]]] = {}
    for call in walk_calls(fn):
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            key: tuple[str | None, str] = ("self", func.attr)
        elif isinstance(func, ast.Name):
            key = (None, func.id)
        else:
            continue
        passed = [a for a in call.args if isinstance(a, ast.Name)]
        passed += [
            kw.value for kw in call.keywords
            if isinstance(kw.value, ast.Name)
        ]
        for name_node in passed:
            out.setdefault(name_node.id, set()).add(key)
    return out


@register_rule
class DtypeContractRule(Rule):
    """RPR009 — packed-domain entry points must pin their array dtypes."""

    code = "RPR009"
    name = "packed-dtype-contract"
    rationale = (
        "Bit-sliced popcounts and bundling are dtype-punning code: fed "
        "an int64 or bool array they broadcast without error and return "
        "plausible wrong distances.  Every public function in "
        "hdc/bitsliced.py and hdc/associative.py therefore coerces its "
        "array parameters with np.asarray(x, dtype=...) (free when the "
        "caller complied) or forwards them to a sibling that does."
    )
    include = (
        "src/repro/hdc/bitsliced.py",
        "src/repro/hdc/associative.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = import_aliases(ctx.tree)
        records = []
        by_key: dict[tuple[str | None, str], int] = {}
        for qualname, fn, class_name in functions_with_qualname(ctx.tree):
            params = [
                p for p in positional_params(fn) if p in _ARRAY_PARAMS
            ]
            rec = {
                "qualname": qualname,
                "fn": fn,
                "class": class_name,
                "params": params,
                "validated": _directly_validated(fn, aliases) & set(params),
                "forwards": _forward_targets(fn),
            }
            by_key[(class_name, fn.name)] = len(records)
            records.append(rec)

        def satisfied(rec) -> bool:
            return set(rec["params"]) <= rec["validated"]

        # Fixpoint: a param forwarded to a fully-satisfied callee is
        # itself satisfied (the callee coerces on entry).
        changed = True
        while changed:
            changed = False
            for rec in records:
                for param in rec["params"]:
                    if param in rec["validated"]:
                        continue
                    for marker, callee in rec["forwards"].get(param, ()):
                        cls = rec["class"] if marker == "self" else None
                        idx = by_key.get((cls, callee))
                        if idx is not None and satisfied(records[idx]):
                            rec["validated"].add(param)
                            changed = True
                            break

        for rec in records:
            name = rec["fn"].name
            if name.startswith("_") and name != "__init__":
                continue  # private helpers may assume coerced inputs
            if rec["class"] is not None and rec["class"].startswith("_"):
                continue
            for param in rec["params"]:
                if param not in rec["validated"]:
                    yield ctx.finding(
                        self.code, rec["fn"],
                        f"packed-domain parameter `{param}` of "
                        f"`{rec['qualname']}` is used without a dtype "
                        "pin; coerce with np.asarray(..., dtype=...) at "
                        "entry or forward it to a validating sibling",
                    )
