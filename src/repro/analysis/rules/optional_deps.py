"""Optional-dependency isolation: accelerators import in one place only.

The ``packed-native`` engine (PR 8) made numba an *optional*
accelerator: every tier-1 CI job runs without it, and the engine
registry degrades gracefully when the import fails.  That guarantee
only holds while exactly one module — ``src/repro/hdc/native.py`` —
touches the import, inside its ``try``/``except ImportError``
availability guard.  A bare ``import numba`` anywhere else (or an
unguarded one in native.py itself) turns a missing optional dependency
into an ImportError at module-import time, breaking the numba-free
fallback path the test matrix depends on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Finding, Rule, register_rule

#: Module roots that are optional accelerators: importable only from
#: the native module's availability guard.  Extend this set when a new
#: optional backend (e.g. cupy) grows its own guarded module.
_OPTIONAL_ACCELERATORS = frozenset({"numba", "cupy"})

#: The one file allowed to import them — behind its guard.
_GUARDED_MODULE = "src/repro/hdc/native.py"


def _imported_roots(node: ast.AST) -> set[str]:
    """Top-level module names an import statement binds."""
    if isinstance(node, ast.Import):
        return {alias.name.split(".")[0] for alias in node.names}
    if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
        return {node.module.split(".")[0]}
    return set()


def _guarded_imports(tree: ast.Module) -> set[int]:
    """ids of import nodes inside a ``try`` with an ImportError handler."""
    guarded: set[int] = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, ast.Try):
            continue
        catches_import_error = False
        for handler in outer.handlers:
            names: list[ast.expr] = []
            if handler.type is None:
                catches_import_error = True
            elif isinstance(handler.type, ast.Tuple):
                names = list(handler.type.elts)
            else:
                names = [handler.type]
            for name in names:
                if isinstance(name, ast.Name) and name.id in (
                    "ImportError", "ModuleNotFoundError", "Exception",
                ):
                    catches_import_error = True
        if not catches_import_error:
            continue
        for inner in outer.body:
            for node in ast.walk(inner):
                if isinstance(node, (ast.Import, ast.ImportFrom)):
                    guarded.add(id(node))
    return guarded


@register_rule
class OptionalDependencyRule(Rule):
    """RPR010 — optional accelerators import only in the guarded module."""

    code = "RPR010"
    name = "optional-dep-isolation"
    rationale = (
        "numba (and any future optional accelerator) is deliberately "
        "absent from the tier-1 CI environments: the engine registry "
        "must keep working, listing packed-native as unavailable.  That "
        "requires the import to exist in exactly one place — "
        "src/repro/hdc/native.py, inside its try/except ImportError "
        "availability guard.  An import anywhere else (or an unguarded "
        "one there) crashes numba-free hosts at import time instead of "
        "degrading."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        in_guarded_module = ctx.path.replace("\\", "/").endswith(
            _GUARDED_MODULE
        )
        guarded = _guarded_imports(ctx.tree) if in_guarded_module else set()
        for node in ast.walk(ctx.tree):
            roots = _imported_roots(node) & _OPTIONAL_ACCELERATORS
            if not roots:
                continue
            name = sorted(roots)[0]
            if not in_guarded_module:
                yield ctx.finding(
                    self.code, node,
                    f"optional accelerator `{name}` imported outside "
                    f"{_GUARDED_MODULE}; go through repro.hdc.native's "
                    "availability API instead",
                )
            elif id(node) not in guarded:
                yield ctx.finding(
                    self.code, node,
                    f"optional accelerator `{name}` imported without the "
                    "try/except ImportError availability guard",
                )
