"""Out-of-core discipline: the streamed path must never materialise.

The whole point of :mod:`repro.data.outofcore` and the streamed driver
path in :mod:`repro.evaluation.runner` is a RAM bound that does not
scale with recording length or channel count — 1024-channel members are
*views* into memmapped files, touched one chunk at a time.  One careless
``np.asarray(recording.data)`` (or ``.copy()`` / ``.tolist()`` on the
mapped buffer) silently pulls the entire recording into RAM, and every
memory assertion downstream still passes on small CI fixtures while
production-scale cohorts OOM.  This rule makes that class of regression
a lint failure instead of a pager.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import import_aliases, resolve_call_name, walk_calls
from repro.analysis.engine import FileContext, Finding, Rule, register_rule

#: numpy constructors that copy their argument into a fresh in-RAM
#: array (``np.asarray`` only copies for dtype changes, but on a
#: memmapped float32 recording the out-of-core path never needs it —
#: slicing and arithmetic already yield plain ndarrays chunk-wise).
_MATERIALIZERS = frozenset({
    "numpy.array", "numpy.asarray", "numpy.ascontiguousarray",
    "numpy.asfortranarray", "numpy.copy",
})

#: Methods that duplicate the receiver's whole buffer.
_COPY_METHODS = frozenset({"copy", "tolist"})


def _touches_recording_data(node: ast.AST) -> bool:
    """Whether the subtree reaches a ``<obj>.data`` attribute.

    ``.data`` is the recording-payload convention across the codebase
    (:class:`~repro.data.model.Recording` and the memmap views the
    out-of-core loaders hand out), so any materialising call fed from
    one is whole-recording sized by construction.
    """
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == "data"
        for sub in ast.walk(node)
    )


@register_rule
class OutOfCoreMaterializationRule(Rule):
    """RPR011 — no whole-recording materialisation off the memmap path."""

    code = "RPR011"
    name = "no-recording-materialization"
    rationale = (
        "The out-of-core contract is O(chunk) evaluation memory at any "
        "channel count: disk-backed members are opened as memmap views "
        "and consumed chunk-by-chunk.  np.array/np.asarray/"
        "np.ascontiguousarray (or .copy()/.tolist()) applied to a "
        "recording's .data buffer drags the whole mapped file into RAM "
        "in one allocation — invisible on small test fixtures, fatal at "
        "1024 channels x 30 minutes.  Slice the view (slice_time, "
        "chunked ranges) and let the chunk loop make the only copies."
    )
    include = (
        "src/repro/data/outofcore.py",
        "src/repro/evaluation/runner.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = import_aliases(ctx.tree)
        for call in walk_calls(ctx.tree):
            dotted = resolve_call_name(call.func, aliases)
            if dotted in _MATERIALIZERS:
                if any(_touches_recording_data(arg) for arg in call.args):
                    yield ctx.finding(
                        self.code, call,
                        f"`{dotted}()` on a recording's `.data` buffer "
                        "materialises the whole memmapped recording in "
                        "RAM; keep it a view and copy per chunk",
                    )
            elif (isinstance(call.func, ast.Attribute)
                    and call.func.attr in _COPY_METHODS
                    and _touches_recording_data(call.func.value)):
                yield ctx.finding(
                    self.code, call,
                    f"`.{call.func.attr}()` on a recording's `.data` "
                    "buffer duplicates the whole mapped file in RAM; "
                    "slice the view and copy per chunk instead",
                )
