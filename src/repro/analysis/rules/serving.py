"""Serving fork-safety rules for :mod:`repro.serve`.

Shard workers are forked child processes driven through pipes in a
strict dispatch/collect lockstep.  Three classes of bug wedge or skew
a fleet without any test noticing until it runs multi-process:

* module-level mutable state — silently *duplicated* by fork, so the
  parent and every worker mutate divergent copies;
* stray stdout writes or sleeps in the tick path — a ``print`` inside
  a worker loop interleaves across processes and stalls the lockstep
  round a gateway tick is built on;
* raw exception objects sent over a pipe — exceptions pickle
  unreliably (and unpickle worse), so the gateway hangs on ``recv``
  instead of reporting the worker's failure.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import (
    import_aliases,
    module_level_statements,
    resolve_call_name,
    walk_calls,
)
from repro.analysis.engine import FileContext, Finding, Rule, register_rule

_MUTABLE_BUILTINS = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.deque",
    "collections.OrderedDict", "collections.Counter",
})

#: Process-shared primitives that must never be created at import time
#: (fork order would decide which processes actually share them).
_PROCESS_PRIMITIVES = ("multiprocessing.", "threading.")

_IMMUTABLE_WRAPPERS = frozenset({
    "types.MappingProxyType", "frozenset", "tuple",
})

_STDOUT_CALLS = frozenset({
    "sys.stdout.write", "sys.stderr.write", "sys.stdout.flush",
})

#: Files forming the per-tick worker path, where even a sleep is a
#: lockstep stall (the load generator legitimately sleeps to pace).
_TICK_PATH_FILES = (
    "src/repro/serve/worker.py",
    "src/repro/serve/gateway.py",
)

#: Files running inside an asyncio event loop, where a blocking sleep
#: freezes *every* connection the loop is serving, not just its own
#: caller — ``await asyncio.sleep(...)`` is the sanctioned form.
_ASYNC_FILES = (
    "src/repro/serve/service.py",
)


def _mutable_value(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Describe why a module-level value is mutable, or ``None``."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return "a mutable container literal"
    if isinstance(node, ast.Call):
        dotted = resolve_call_name(node.func, aliases)
        if dotted is None:
            return None
        if dotted in _IMMUTABLE_WRAPPERS:
            return None
        if dotted in _MUTABLE_BUILTINS:
            return f"a `{dotted}()` container"
        if dotted.startswith(_PROCESS_PRIMITIVES):
            return f"an import-time `{dotted}()` primitive"
    return None


@register_rule
class ServeModuleStateRule(Rule):
    """RPR004 — no module-level mutable state in ``repro.serve``."""

    code = "RPR004"
    name = "serve-module-state"
    rationale = (
        "repro.serve modules are imported once and then forked into "
        "shard workers.  Module-level mutable containers become "
        "divergent per-process copies (state the gateway thinks is "
        "shared, but is not), and multiprocessing/threading primitives "
        "built at import time bind to whichever start method imported "
        "them first.  Keep state on the worker/gateway objects; wrap "
        "module-level tables in MappingProxyType or tuples."
    )
    include = ("src/repro/serve/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = import_aliases(ctx.tree)
        for stmt in module_level_statements(ctx.tree):
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            names = [
                t.id for t in targets
                if isinstance(t, ast.Name)
                and not (t.id.startswith("__") and t.id.endswith("__"))
            ]
            if not names:
                continue
            why = _mutable_value(value, aliases)
            if why is not None:
                yield ctx.finding(
                    self.code, stmt,
                    f"module-level `{names[0]}` is {why}; fork duplicates "
                    "it per worker — make it immutable "
                    "(tuple/frozenset/MappingProxyType) or move it onto "
                    "the worker object",
                )


@register_rule
class ServeBlockingIoRule(Rule):
    """RPR005 — no prints/stdout writes/sleeps in the serve tick path."""

    code = "RPR005"
    name = "serve-blocking-io"
    rationale = (
        "Gateway ticks are a lockstep dispatch/collect round across all "
        "shard workers: one worker printing (stdout is line-buffered and "
        "interleaves across processes) or sleeping stalls every session "
        "on that tick.  Results travel as returned values and TickStats, "
        "never as stdout; pacing sleeps belong to the load generator.  "
        "The asyncio service layer is stricter still: a blocking "
        "time.sleep() on the event-loop thread freezes every connection "
        "the service holds, including /healthz — await asyncio.sleep() "
        "instead."
    )
    include = ("src/repro/serve/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = import_aliases(ctx.tree)
        in_tick_path = ctx.path in _TICK_PATH_FILES
        for call in walk_calls(ctx.tree):
            dotted = resolve_call_name(call.func, aliases)
            if dotted is None:
                continue
            if dotted in ("print", "input", "breakpoint"):
                yield ctx.finding(
                    self.code, call,
                    f"`{dotted}()` in repro.serve; worker/gateway output "
                    "must flow through returned events and TickStats, "
                    "not stdout",
                )
            elif dotted in _STDOUT_CALLS:
                yield ctx.finding(
                    self.code, call,
                    f"direct `{dotted}()` in repro.serve; shard processes "
                    "must not write to the shared stdout/stderr streams",
                )
            elif dotted == "time.sleep" and in_tick_path:
                yield ctx.finding(
                    self.code, call,
                    "`time.sleep()` in the worker/gateway tick path "
                    "stalls the lockstep tick round for every session; "
                    "pacing belongs to serve/loadgen.py",
                )
            elif dotted == "time.sleep" and ctx.path in _ASYNC_FILES:
                yield ctx.finding(
                    self.code, call,
                    "blocking `time.sleep()` on the service event loop "
                    "freezes every connection (including /healthz); "
                    "use `await asyncio.sleep()`",
                )


@register_rule
class PipeExceptionRule(Rule):
    """RPR006 — structured errors only across pipe transports."""

    code = "RPR006"
    name = "pipe-structured-errors"
    rationale = (
        "A caught exception object sent through a multiprocessing pipe "
        "must pickle on one side and unpickle on the other; third-party "
        "and numpy-carrying exceptions routinely fail one of the two, "
        "which surfaces as the gateway hanging in recv() instead of the "
        "worker's actual error.  Relay `(status, formatted_message)` "
        "tuples (type, message, traceback.format_exc()) as "
        "_shard_worker_main does."
    )
    include = ("src/repro/serve/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler) or node.name is None:
                continue
            exc_name = node.name
            for call in walk_calls(node):
                func = call.func
                if not (isinstance(func, ast.Attribute)
                        and func.attr == "send"):
                    continue
                if any(self._carries(arg, exc_name) for arg in call.args):
                    yield ctx.finding(
                        self.code, call,
                        f"caught exception `{exc_name}` sent raw across a "
                        "pipe transport; format it to a string (type, "
                        "message, traceback.format_exc()) so the gateway "
                        "can always unpickle the reply",
                    )

    @classmethod
    def _carries(cls, node: ast.AST, exc_name: str) -> bool:
        """Whether the send argument *is* (or directly contains) the
        bare exception object.

        Only the exception name itself, possibly nested in container
        literals, counts — `str(exc)`, `f"{exc}"` and `exc.args`
        derive picklable values and are exactly the sanctioned fix.
        """
        if isinstance(node, ast.Name):
            return node.id == exc_name
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(cls._carries(e, exc_name) for e in node.elts)
        if isinstance(node, ast.Dict):
            parts = [k for k in node.keys if k is not None] + node.values
            return any(cls._carries(p, exc_name) for p in parts)
        return False
