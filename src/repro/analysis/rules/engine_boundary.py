"""Engine-boundary purity: backend names live in the registry, period.

PR 5 collapsed every hand-rolled packed-vs-unpacked fork into the
:mod:`repro.hdc.engine` registry.  The refactor only stays collapsed if
no layer above ``hdc/`` re-introduces a backend string of its own — a
``"packed"`` literal in the detector, CLI or persistence code is a new
dispatch fork waiting to drift from the registry.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FileContext, Finding, Rule, register_rule

#: The registered engine names (mirrored here as data on purpose: this
#: module must lint files without importing them, and the rule should
#: flag the *strings*, wherever the registry goes next).
_ENGINE_LITERALS = frozenset(
    {"packed", "unpacked", "packed-fused",  # repro: noqa[RPR003]
     "packed-native"}  # repro: noqa[RPR003]
)


@register_rule
class EngineLiteralRule(Rule):
    """RPR003 — no backend string literals outside ``repro.hdc``."""

    code = "RPR003"
    name = "engine-literal-outside-hdc"
    rationale = (
        "Backend names are registry keys owned by `repro.hdc.engine`.  A "
        "literal `\"packed\"`/`\"unpacked\"`/`\"packed-fused\"`/"
        "`\"packed-native\"` anywhere above hdc/ re-forks the dispatch "
        "PR 5 collapsed and silently decouples from `engine_names()` "
        "when engines are added or renamed.  Import UNPACKED_ENGINE/"
        "PACKED_ENGINE/PACKED_FUSED_ENGINE/PACKED_NATIVE_ENGINE (or "
        "iterate the registry) instead."
    )
    include = ("src/repro/",)
    exclude = ("src/repro/hdc/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        docstrings = ctx.docstring_nodes()
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in _ENGINE_LITERALS
                and id(node) not in docstrings
            ):
                yield ctx.finding(
                    self.code, node,
                    f"backend literal {node.value!r} outside repro.hdc; "
                    "import the name from repro.hdc.engine or resolve it "
                    "through the registry",
                )
