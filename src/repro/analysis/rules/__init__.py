"""Builtin contract rules — importing this package registers them all.

Each module covers one contract family; each rule carries a stable
``RPR0xx`` code used by suppressions and the baseline:

========  ============================  ==================================
Code      Name                          Module
========  ============================  ==================================
RPR000    lint-hygiene (meta)           emitted by the engine itself
RPR001    no-global-rng                 :mod:`.determinism`
RPR002    no-wall-clock                 :mod:`.determinism`
RPR003    engine-literal-outside-hdc    :mod:`.engine_boundary`
RPR004    serve-module-state            :mod:`.serving`
RPR005    serve-blocking-io             :mod:`.serving`
RPR006    pipe-structured-errors        :mod:`.serving`
RPR007    schema-write-read-symmetry    :mod:`.schema`
RPR008    schema-fingerprint            :mod:`.schema`
RPR009    packed-dtype-contract         :mod:`.dtype_contracts`
RPR010    optional-dep-isolation        :mod:`.optional_deps`
RPR011    no-recording-materialization  :mod:`.outofcore`
========  ============================  ==================================
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import (
    META_CODE,
    FileContext,
    Finding,
    Rule,
    register_rule,
)
from repro.analysis.rules import (  # noqa: F401  (import = register)
    determinism,
    dtype_contracts,
    engine_boundary,
    optional_deps,
    outofcore,
    schema,
    serving,
)


@register_rule
class LintHygieneRule(Rule):
    """RPR000 — the engine's own hygiene findings (meta rule).

    Registered so the code appears in :func:`repro.analysis.rule_codes`
    and the docs catalogue, but :meth:`check` never runs: the engine
    emits RPR000 findings itself (syntax errors, malformed/unknown/
    unused suppressions, stale baseline entries) and refuses to let
    them be suppressed.
    """

    code = META_CODE
    name = "lint-hygiene"
    rationale = (
        "Findings about the lint run itself: files that do not parse, "
        "suppression comments that are blanket/malformed/unused or name "
        "unknown codes, and baseline entries that no longer match "
        "anything.  Unsuppressible by construction — a lint gate whose "
        "own bookkeeping can be silenced is no gate."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())
