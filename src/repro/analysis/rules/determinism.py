"""Determinism rules: no hidden RNG state, no wall clocks in core code.

Every bit-exactness claim in this repository (cross-engine equivalence,
chunking invariance, checkpoint round-trips) presumes that randomness
flows as explicit, seeded :class:`numpy.random.Generator` objects and
that results never depend on the wall clock.  One stray
``np.random.seed()`` poisons global state for everything imported
afterwards; one ``time.time()`` in a compute path makes a property
test unreproducible.  These rules make the convention machine-checked.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.astutil import (
    import_aliases,
    resolve_imported_call,
    walk_calls,
)
from repro.analysis.engine import FileContext, Finding, Rule, register_rule

#: Legacy global-state entry points of ``numpy.random``.  The modern
#: Generator API (``default_rng``/``Generator``/``SeedSequence``/bit
#: generators) is the sanctioned replacement and is not listed.
_NUMPY_LEGACY = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "random_integers", "ranf", "sample", "choice", "shuffle",
    "permutation", "normal", "uniform", "standard_normal", "poisson",
    "binomial", "beta", "gamma", "exponential", "bytes", "get_state",
    "set_state", "RandomState",
})

#: Wall-clock calls (value depends on when the code runs).  Monotonic
#: interval clocks (``time.perf_counter``/``time.monotonic``) are fine:
#: they measure durations, they do not leak absolute time into results.
_WALL_CLOCKS = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


@register_rule
class GlobalRandomRule(Rule):
    """RPR001 — RNG must flow as explicit ``np.random.Generator`` args."""

    code = "RPR001"
    name = "no-global-rng"
    rationale = (
        "Legacy `np.random.*` calls and the stdlib `random` module draw "
        "from hidden global state, so results depend on import order and "
        "on every other caller — which silently breaks the bit-exactness "
        "property suites.  Construct `np.random.default_rng(seed)` at the "
        "boundary and pass the Generator down explicitly."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = import_aliases(ctx.tree)
        for call in walk_calls(ctx.tree):
            dotted = resolve_imported_call(call.func, aliases)
            if dotted is None:
                continue
            if dotted.startswith("numpy.random."):
                tail = dotted[len("numpy.random."):]
                if tail in _NUMPY_LEGACY:
                    yield ctx.finding(
                        self.code, call,
                        f"global-state RNG call `{dotted}` is forbidden; "
                        "pass an explicit np.random.Generator "
                        "(np.random.default_rng(seed)) instead",
                    )
            elif dotted == "random" or dotted.startswith("random."):
                yield ctx.finding(
                    self.code, call,
                    f"stdlib `random` call `{dotted}` is forbidden "
                    "(hidden global state); use a seeded "
                    "np.random.Generator threaded through the call path",
                )


@register_rule
class WallClockRule(Rule):
    """RPR002 — wall clocks only in the load generator and benchmarks."""

    code = "RPR002"
    name = "no-wall-clock"
    rationale = (
        "Core paths must be replayable: a `time.time()` or "
        "`datetime.now()` embedded in results makes two identical runs "
        "differ.  Interval timing belongs to `time.perf_counter()`; "
        "absolute time is the business of `serve/loadgen.py` (tick "
        "pacing) and the benchmarks, nowhere else."
    )
    include = ("src/repro/", "examples/")
    exclude = ("src/repro/serve/loadgen.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = import_aliases(ctx.tree)
        for call in walk_calls(ctx.tree):
            dotted = resolve_imported_call(call.func, aliases)
            if dotted in _WALL_CLOCKS:
                yield ctx.finding(
                    self.code, call,
                    f"wall-clock call `{dotted}` outside "
                    "serve/loadgen.py and benchmarks/; use "
                    "time.perf_counter() for durations or accept a "
                    "timestamp parameter",
                )
