"""The ``repro lint`` rule engine: findings, suppressions, the runner.

This module is deliberately dependency-free (stdlib ``ast`` only) so
the lint gate never needs more than the interpreter CI already has.
It provides the machinery; the project's actual contracts live in
:mod:`repro.analysis.rules` (one module per contract family, each rule
registered under a stable ``RPR0xx`` code).

Three layers of "this finding is fine" exist, and they are not
interchangeable:

* ``repro: noqa[RPR0xx]`` in a trailing comment on the flagged line —
  an *inline* suppression, for the rare spot where a rule is wrong by
  design.  Blanket ``noqa`` without codes is itself a finding
  (:data:`META_CODE`), as are suppressions naming unknown codes or
  suppressing nothing.
* the committed baseline (:mod:`repro.analysis.baseline`) — sanctioned
  pre-existing violations, each carrying a written reason.  Baselined
  findings are still reported (JSON output marks them) but do not fail
  the run; a baseline entry that stops matching anything becomes a
  finding, so the file can only shrink deliberately.
* fixing the code — the default.

``RPR000`` is the engine's own hygiene code (syntax errors, malformed
or unused suppressions, stale baseline entries); it cannot be
suppressed, by construction.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Code reserved for the engine's own findings (parse errors,
#: suppression and baseline hygiene).  Not suppressible.
META_CODE = "RPR000"

#: Version of the ``--format json`` output envelope.
JSON_FORMAT_VERSION = 1

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*noqa\b(\[(?P<codes>[^\]]*)\])?")
_CODE_RE = re.compile(r"^RPR\d{3}$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a file location.

    ``baselined`` findings are sanctioned by the committed baseline:
    reported, but not counted against the exit code.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    baselined: bool = False

    def render(self) -> str:
        mark = "  [baselined]" if self.baselined else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} {self.message}{mark}"
        )


class FileContext:
    """Everything a rule may inspect about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()

    def finding(self, code: str, node: ast.AST | int, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node`` (or a 1-based line)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.path, line=line, col=col, code=code, message=message
        )

    def docstring_nodes(self) -> set[int]:
        """``id``s of every Constant node that is a docstring."""
        out: set[int] = set()
        for scope in ast.walk(self.tree):
            if not isinstance(
                scope,
                (ast.Module, ast.ClassDef, ast.FunctionDef,
                 ast.AsyncFunctionDef),
            ):
                continue
            body = scope.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                out.add(id(body[0].value))
        return out


class Rule:
    """Base class of every registered contract rule.

    Subclasses set :attr:`code` (stable ``RPR0xx`` identifier),
    :attr:`name` (short slug used in docs), :attr:`rationale` (one
    paragraph of *why* — surfaced by the rule catalogue), and the path
    scope, then implement :meth:`check`.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    #: Path prefixes (or exact relative paths) the rule applies to;
    #: empty means every linted file.
    include: tuple[str, ...] = ()
    #: Path prefixes carved back out of :attr:`include`.
    exclude: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if any(path.startswith(prefix) for prefix in self.exclude):
            return False
        if not self.include:
            return True
        return any(path.startswith(prefix) for prefix in self.include)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


_RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule instance to the registry.

    Codes must be unique and well-formed; registration order is the
    reporting order for same-location findings.
    """
    rule = cls()
    if not _CODE_RE.match(rule.code):
        raise ValueError(f"malformed rule code {rule.code!r} on {cls.__name__}")
    if rule.code in _RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    _RULES[rule.code] = rule
    return cls


def _ensure_builtin_rules() -> None:
    # Importing the rules package registers every builtin rule; done
    # lazily so `engine` has no import cycle with its own rule modules.
    import repro.analysis.rules  # noqa: F401


def registered_rules() -> tuple[Rule, ...]:
    """Every registered rule, code-ordered (includes builtin rules)."""
    _ensure_builtin_rules()
    return tuple(_RULES[code] for code in sorted(_RULES))


def rule_codes() -> tuple[str, ...]:
    """The sorted codes of every registered rule (``RPR000`` included)."""
    return tuple(rule.code for rule in registered_rules())


@dataclass(frozen=True)
class Suppression:
    """One parsed ``repro: noqa`` comment occurrence."""

    line: int
    codes: tuple[str, ...]


def parse_suppressions(
    lines: Sequence[str],
) -> tuple[list[Suppression], list[tuple[int, str]]]:
    """Scan source lines for inline suppressions.

    Returns ``(suppressions, malformed)`` where ``malformed`` holds
    ``(line, message)`` pairs for comments that look like suppressions
    but do not parse: blanket ``noqa`` without codes, empty brackets,
    or codes not shaped ``RPR0xx``.  Matching is line-based, so the
    comment must sit on the flagged line itself.
    """
    suppressions: list[Suppression] = []
    malformed: list[tuple[int, str]] = []
    for i, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        raw = match.group("codes")
        if raw is None:
            malformed.append(
                (i, "blanket `repro: noqa` comments are not allowed; "
                    "name the suppressed codes, e.g. `repro: "
                    "noqa[RPR001]`")
            )
            continue
        codes = tuple(c.strip().upper() for c in raw.split(",") if c.strip())
        bad = [c for c in codes if not _CODE_RE.match(c)]
        if not codes or bad:
            what = f"malformed code(s) {bad}" if bad else "no codes"
            malformed.append(
                (i, f"unparseable suppression ({what}); expected "
                    "`repro: noqa[RPR0xx]` or a comma-separated list "
                    "of codes")
            )
            continue
        suppressions.append(Suppression(line=i, codes=codes))
    return suppressions, malformed


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding]
    files: int

    @property
    def new_findings(self) -> list[Finding]:
        """Findings not sanctioned by the baseline (these fail the run)."""
        return [f for f in self.findings if not f.baselined]

    @property
    def exit_code(self) -> int:
        return 1 if self.new_findings else 0

    def to_json(self) -> dict:
        """The ``--format json`` envelope (schema-versioned)."""
        return {
            "version": JSON_FORMAT_VERSION,
            "summary": {
                "files": self.files,
                "findings": len(self.findings),
                "new": len(self.new_findings),
                "baselined": len(self.findings) - len(self.new_findings),
            },
            "findings": [
                {
                    "code": f.code,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                    "baselined": f.baselined,
                }
                for f in self.findings
            ],
        }

    def render_text(self) -> str:
        new = self.new_findings
        lines = [f.render() for f in new]
        lines.append(
            f"{len(new)} finding(s) in {self.files} file(s) "
            f"({len(self.findings) - len(new)} baselined)"
        )
        return "\n".join(lines)


def result_from_json(payload: dict) -> LintResult:
    """Rebuild a :class:`LintResult` from :meth:`LintResult.to_json`.

    Raises:
        ValueError: On an unknown envelope version or malformed payload.
    """
    if payload.get("version") != JSON_FORMAT_VERSION:
        raise ValueError(
            f"unsupported lint JSON version {payload.get('version')!r}"
        )
    findings = [
        Finding(
            path=item["path"],
            line=int(item["line"]),
            col=int(item["col"]),
            code=item["code"],
            message=item["message"],
            baselined=bool(item["baselined"]),
        )
        for item in payload["findings"]
    ]
    return LintResult(findings=findings, files=int(payload["summary"]["files"]))


def check_file(path: str, source: str) -> list[Finding]:
    """Run every applicable rule over one file's source.

    Applies inline suppressions (and reports their hygiene under
    ``RPR000``) but knows nothing about the baseline — the caller
    layers that on.  ``path`` is the repo-relative posix path the
    rules' scoping matches against.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path, line=exc.lineno or 1, col=exc.offset or 0,
                code=META_CODE, message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = FileContext(path, source, tree)
    suppressions, malformed = parse_suppressions(ctx.lines)
    findings: list[Finding] = [
        ctx.finding(META_CODE, line, message) for line, message in malformed
    ]

    raw: list[Finding] = []
    for rule in registered_rules():
        if rule.code == META_CODE or not rule.applies_to(path):
            continue
        raw.extend(rule.check(ctx))

    known = set(rule_codes())
    suppressed_at: dict[int, set[str]] = {}
    for sup in suppressions:
        suppressed_at.setdefault(sup.line, set()).update(sup.codes)

    used: dict[int, set[str]] = {}
    for finding in raw:
        codes_here = suppressed_at.get(finding.line, set())
        if finding.code in codes_here:
            used.setdefault(finding.line, set()).add(finding.code)
            continue
        findings.append(finding)

    for sup in suppressions:
        for code in sup.codes:
            if code == META_CODE:
                findings.append(
                    ctx.finding(
                        META_CODE, sup.line,
                        f"{META_CODE} (lint hygiene) cannot be suppressed",
                    )
                )
            elif code not in known:
                findings.append(
                    ctx.finding(
                        META_CODE, sup.line,
                        f"suppression names unknown rule code {code}",
                    )
                )
            elif code not in used.get(sup.line, set()):
                findings.append(
                    ctx.finding(
                        META_CODE, sup.line,
                        f"unused suppression: no {code} finding on this line",
                    )
                )
    findings.sort()
    return findings


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to lint."""
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            yield from sorted(
                f
                for f in p.rglob("*.py")
                if not any(part.startswith(".") or part == "__pycache__"
                           for part in f.parts)
            )
        elif p.suffix == ".py":
            yield p


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[str | Path],
    baseline=None,
    root: str | Path | None = None,
) -> LintResult:
    """Lint files/directories and apply the baseline.

    Args:
        paths: Files or directories (e.g. ``["src", "tests"]``).
        baseline: A loaded :class:`repro.analysis.baseline.Baseline`,
            or ``None`` for no sanctioned findings.
        root: Directory rule scoping and baseline paths are relative
            to (defaults to the current working directory).

    Returns:
        A :class:`LintResult`; stale baseline entries surface as
        ``RPR000`` findings against the baseline file itself.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    findings: list[Finding] = []
    files = 0
    for file_path in iter_python_files(paths):
        files += 1
        rel = _relative(file_path, root_path)
        findings.extend(
            check_file(rel, file_path.read_text(encoding="utf-8"))
        )
    if baseline is not None:
        findings = [
            replace(f, baselined=True) if baseline.sanctions(f) else f
            for f in findings
        ]
        for entry in baseline.stale_entries(findings):
            findings.append(
                Finding(
                    path=baseline.path, line=1, col=0, code=META_CODE,
                    message=(
                        f"stale baseline entry ({entry.code} at "
                        f"{entry.path}) matches no current finding; "
                        "remove it"
                    ),
                )
            )
    findings.sort()
    return LintResult(findings=findings, files=files)


def lint_source(source: str, path: str) -> list[Finding]:
    """Lint one in-memory snippet as if it lived at ``path``.

    The fixture-test entry point: rule scoping sees ``path`` exactly
    as given (use repo-style relative posix paths such as
    ``src/repro/serve/example.py``).  No baseline is applied.
    """
    return check_file(path, source)
