"""Small AST helpers shared by the rule modules.

The heart is canonical-name resolution: a rule never wants to know
whether the file wrote ``np.random.seed``, ``numpy.random.seed`` or
``from numpy import random; random.seed`` — it wants the canonical
dotted name ``numpy.random.seed``.  :func:`import_aliases` builds the
local-name → canonical-prefix map from the file's import statements
and :func:`resolve_call_name` applies it to a call's function
expression.
"""

from __future__ import annotations

import ast
from typing import Iterator


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical dotted prefix they refer to.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy import
    random as r`` maps ``r -> numpy.random``; ``from time import
    time`` maps ``time -> time.time``.  Only top-level and nested
    ``import`` statements are considered (wherever they appear — the
    codebase imports lazily inside functions).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                canonical = alias.name if alias.asname else local
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never shadow stdlib/numpy
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_call_name(
    func: ast.AST, aliases: dict[str, str]
) -> str | None:
    """Canonical dotted name of a call's function expression.

    The leading segment is rewritten through ``aliases`` so the result
    is import-style agnostic; unresolvable shapes (lambdas, subscript
    calls, locals that are not imports) return ``None``.
    """
    dotted = dotted_name(func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    canonical_head = aliases.get(head, head)
    return f"{canonical_head}.{rest}" if rest else canonical_head


def resolve_imported_call(
    func: ast.AST, aliases: dict[str, str]
) -> str | None:
    """Like :func:`resolve_call_name`, but only for imported heads.

    Returns ``None`` unless the leading segment is a name bound by an
    import statement in this file — a local variable that happens to be
    called ``random`` or ``time`` never resolves, so the determinism
    rules cannot false-positive on it.
    """
    dotted = dotted_name(func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head not in aliases:
        return None
    canonical = aliases[head]
    return f"{canonical}.{rest}" if rest else canonical


def walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    """Every ``ast.Call`` in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def module_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Top-level statements, descending into top-level ``if`` blocks.

    ``if TYPE_CHECKING:``-style guards are treated as module level, so
    state hidden behind an import-time conditional is still seen.
    """
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop(0)
        if isinstance(stmt, ast.If):
            stack = stmt.body + stmt.orelse + stack
            continue
        yield stmt


def functions_with_qualname(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
    """Yield ``(qualname, node, class_name)`` for every function.

    ``class_name`` is ``None`` for module-level functions; nesting
    deeper than one class level is reported under the innermost class.
    """
    def visit(body, class_name: str | None, prefix: str):
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield f"{prefix}{stmt.name}", stmt, class_name
            elif isinstance(stmt, ast.ClassDef):
                yield from visit(
                    stmt.body, stmt.name, f"{prefix}{stmt.name}."
                )

    yield from visit(tree.body, None, "")


def positional_params(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    """Declared parameter names (positional + keyword-only), sans self."""
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def constant_str(node: ast.AST) -> str | None:
    """The value of a string Constant node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
