"""The committed lint baseline: sanctioned, documented violations.

A baseline entry pins one *pre-existing* finding by ``(code, path,
message)`` — line numbers are deliberately not part of the match, so
unrelated edits to a file do not invalidate its entries.  Every entry
must carry a non-empty ``reason``: the baseline doubles as the ledger
of why each sanctioned violation is allowed to exist (the
engine-literal fallback for pre-registry checkpoints, the schema
fingerprints that must be consciously re-acknowledged on change).

The file can only shrink honestly: an entry that stops matching any
current finding is reported as a stale-entry finding by the engine, so
fixing a sanctioned violation forces the entry's removal in the same
change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.analysis.engine import Finding

#: Schema version of the baseline file.
BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file is malformed (schema, versions, reasons)."""


@dataclass(frozen=True)
class BaselineEntry:
    """One sanctioned finding: what it is, where, and why it may stay."""

    code: str
    path: str
    match: str
    reason: str

    def sanctions(self, finding: Finding) -> bool:
        return (
            finding.code == self.code
            and finding.path == self.path
            and finding.message == self.match
        )


class Baseline:
    """A loaded set of baseline entries, with stale-entry tracking."""

    def __init__(self, entries: Iterable[BaselineEntry], path: str) -> None:
        self.entries = tuple(entries)
        self.path = path

    def sanctions(self, finding: Finding) -> bool:
        """Whether any entry sanctions ``finding``."""
        return any(entry.sanctions(finding) for entry in self.entries)

    def stale_entries(
        self, findings: Iterable[Finding]
    ) -> tuple[BaselineEntry, ...]:
        """Entries that sanction none of ``findings`` (must be removed)."""
        found = list(findings)
        return tuple(
            entry
            for entry in self.entries
            if not any(entry.sanctions(f) for f in found)
        )


def load_baseline(path: str | Path) -> Baseline:
    """Read and validate a baseline file.

    Raises:
        BaselineError: On unreadable JSON, an unknown version, missing
            fields, or an entry without a documented reason.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"{path}: cannot read baseline: {exc}") from exc
    if payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"{path}: unsupported baseline version {payload.get('version')!r}"
        )
    entries = []
    for i, item in enumerate(payload.get("entries", [])):
        missing = {"code", "path", "match", "reason"} - set(item)
        if missing:
            raise BaselineError(
                f"{path}: entry {i} is missing fields {sorted(missing)}"
            )
        if not str(item["reason"]).strip():
            raise BaselineError(
                f"{path}: entry {i} ({item['code']} at {item['path']}) has "
                "no reason; every baselined violation must be documented"
            )
        entries.append(
            BaselineEntry(
                code=item["code"], path=item["path"],
                match=item["match"], reason=item["reason"],
            )
        )
    return Baseline(entries, path=path.as_posix())


def write_baseline(
    path: str | Path, entries: Iterable[BaselineEntry]
) -> Path:
    """Serialise entries to a baseline file (sorted, stable layout)."""
    path = Path(path)
    payload = {
        "version": BASELINE_VERSION,
        "entries": [
            {
                "code": e.code, "path": e.path,
                "match": e.match, "reason": e.reason,
            }
            for e in sorted(entries, key=lambda e: (e.path, e.code, e.match))
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
