"""Laelaps core: the paper's primary contribution.

Combines the LBP symbolisation (``repro.lbp``) with the HD encoders and
associative memory (``repro.hdc``) into a patient-specific detector that
is trained from one or two seizures plus 30 s of interictal signal, emits
a label and a confidence score every 0.5 s, and converts those into alarms
with the t_c / t_r voting postprocessor of Sec. III-C.

Around the detector sit the serving primitives: ``repro.core.streaming``
(incremental single-stream inference, chunking-invariant),
``repro.core.sessions`` (N concurrent streams, one grouped sweep per
tick) and ``repro.core.persistence`` (bit-exact model, session and fleet
checkpoints).  The sharded multi-process layer lives one package up in
``repro.serve``.
"""

from repro.core.config import ICTAL, INTERICTAL, LaelapsConfig
from repro.core.detector import LaelapsDetector, WindowPredictions
from repro.core.persistence import (
    load_model,
    load_sessions,
    save_model,
    save_sessions,
)
from repro.core.postprocess import (
    AlarmStateMachine,
    PostprocessConfig,
    Postprocessor,
    alarm_flags,
    delta_scores,
    flags_to_onsets,
    tune_tr,
)
from repro.core.sessions import StreamSessionManager
from repro.core.streaming import StreamEvent, StreamingLaelaps
from repro.core.symbolizers import HVGSymbolizer, LBPSymbolizer
from repro.core.training import (
    FitReport,
    TrainingSegments,
    segment_slice,
    window_decision_times,
    windows_in_segments,
)
from repro.core.tuning import DimensionTuningResult, tune_dimension

__all__ = [
    "INTERICTAL",
    "ICTAL",
    "LaelapsConfig",
    "LaelapsDetector",
    "WindowPredictions",
    "AlarmStateMachine",
    "PostprocessConfig",
    "Postprocessor",
    "alarm_flags",
    "delta_scores",
    "flags_to_onsets",
    "tune_tr",
    "save_model",
    "load_model",
    "save_sessions",
    "load_sessions",
    "LBPSymbolizer",
    "HVGSymbolizer",
    "StreamEvent",
    "StreamingLaelaps",
    "StreamSessionManager",
    "FitReport",
    "TrainingSegments",
    "segment_slice",
    "window_decision_times",
    "windows_in_segments",
    "DimensionTuningResult",
    "tune_dimension",
]
