"""Persistence of trained patient models and live stream sessions.

A deployed Laelaps model is tiny — the item memories regenerate from
the config seed, so only the two prototypes, the tuned t_r and the
configuration need storing (a few kilobytes, matching the paper's
point that the whole model fits comfortably in on-chip memory).
``save_model``/``load_model`` round-trip a fitted detector through a
single ``.npz`` file; the reloaded detector is bit-exact.

The compute engine travels as an explicit ``engine`` tag next to the
persisted config: the tag holds the *resolved* engine name (a detector
configured with ``backend="auto"`` saves the concrete engine it ran
on), so a model reopens on the engine that wrote it regardless of what
``auto`` would pick on the loading host.  Prototypes are serialised in
the unpacked inspection form either way — the word forms are re-derived
on load, and all engines are bit-exact, so archives move freely between
engines.  Payloads from before the engine registry carry no tag and
fall back to the config's legacy backend field.

``save_sessions``/``load_sessions`` extend the same idea to a live
:class:`~repro.core.sessions.StreamSessionManager`: one ``.npz`` holds
every session's model *plus* its mid-stream state (raw symboliser
tail, temporal-encoder buffers, alarm state machine, counters), so a
serving process can checkpoint N concurrent patient streams and resume
them elsewhere with bit-identical subsequent events.

Two further layers support the sharded serving gateway
(:mod:`repro.serve`): ``detector_payload``/``detector_from_payload``
turn a fitted detector into a picklable dict (the unit shipped to shard
workers and moved between shards on rebalance), and
``write_fleet_manifest``/``read_fleet_manifest`` record how a fleet
checkpoint is split across per-worker ``save_sessions`` shard files.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.config import ICTAL, INTERICTAL, LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.core.symbolizers import HVGSymbolizer, LBPSymbolizer

_FORMAT_VERSION = 1
_SESSIONS_FORMAT_VERSION = 1
_FLEET_FORMAT_VERSION = 1


def _symbolizer_spec(symbolizer) -> dict:
    if isinstance(symbolizer, LBPSymbolizer):
        return {"kind": "lbp", "length": symbolizer.length}
    if isinstance(symbolizer, HVGSymbolizer):
        return {"kind": "hvg", "degree_cap": symbolizer.degree_cap}
    raise ValueError(
        f"cannot persist unknown symboliser {type(symbolizer).__name__}"
    )


def _build_symbolizer(spec: dict):
    if spec["kind"] == "lbp":
        return LBPSymbolizer(spec["length"])
    if spec["kind"] == "hvg":
        return HVGSymbolizer(spec["degree_cap"])
    raise ValueError(f"unknown symboliser kind {spec['kind']!r}")


def _npz_path(path: str | Path) -> Path:
    """The path ``np.savez`` will actually write to.

    numpy appends ``.npz`` when the suffix is missing, so normalise up
    front — the returned ``Path`` must always name the real file.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def _model_meta(detector: LaelapsDetector) -> dict:
    """The JSON-serialisable model description shared by both formats."""
    return {
        "n_electrodes": detector.n_electrodes,
        "config": asdict(detector.config),
        # The resolved engine name (never "auto"): reload is pinned to
        # the engine that actually ran, on any host.
        "engine": detector.engine.name,
        "tr": detector.tr,
        "symbolizer": _symbolizer_spec(detector.symbolizer),
    }


def _rebuild_detector(
    spec: dict, interictal: np.ndarray, ictal: np.ndarray
) -> LaelapsDetector:
    """Reconstruct a fitted detector from :func:`_model_meta` + prototypes."""
    config_spec = dict(spec["config"])
    # Compat loader: payloads written before the engine registry have no
    # "engine" tag — their config's backend field (e.g. "packed") still
    # names a registered engine, so it keeps loading unchanged.  Older
    # still (pre-backend archives), the config has no backend key either
    # and loads onto the engine that era ran on, the unpacked reference.
    engine = spec.get("engine")
    if engine is None:
        engine = config_spec.get("backend", "unpacked")
    config_spec["backend"] = engine
    detector = LaelapsDetector(
        spec["n_electrodes"],
        LaelapsConfig(**config_spec),
        symbolizer=_build_symbolizer(spec["symbolizer"]),
    )
    detector.memory.store(
        INTERICTAL, np.asarray(interictal).astype(np.uint8)
    )
    detector.memory.store(ICTAL, np.asarray(ictal).astype(np.uint8))
    detector.tr = float(spec["tr"])
    return detector


def detector_payload(detector: LaelapsDetector) -> dict:
    """A fitted detector as one picklable, file-free dict.

    The in-memory twin of :func:`save_model`: the JSON-compatible model
    description plus the two prototype arrays, with nothing written to
    disk.  This is the unit the sharded serving layer ships to worker
    processes on :meth:`~repro.serve.ShardedStreamGateway.open` and
    moves between shards when the fleet rebalances.

    Raises:
        ValueError: If the detector has not been fitted.
    """
    if not detector.is_fitted:
        raise ValueError("only fitted detectors can be exported")
    return {
        **_model_meta(detector),
        "interictal": detector.memory.prototype(INTERICTAL),
        "ictal": detector.memory.prototype(ICTAL),
    }


def detector_from_payload(payload: dict) -> LaelapsDetector:
    """Rebuild a fitted detector from :func:`detector_payload`.

    Item memories regenerate from the payload's config seed, so the
    rebuilt detector predicts bit-identically to the exported one.
    """
    return _rebuild_detector(
        payload, payload["interictal"], payload["ictal"]
    )


def save_model(detector: LaelapsDetector, path: str | Path) -> Path:
    """Serialise a fitted detector to ``path`` (``.npz``).

    Returns:
        The path actually written (``.npz`` appended when missing).

    Raises:
        ValueError: If the detector has not been fitted.
    """
    if not detector.is_fitted:
        raise ValueError("only fitted detectors can be saved")
    path = _npz_path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {"version": _FORMAT_VERSION, **_model_meta(detector)}
    np.savez_compressed(
        path,
        interictal=detector.memory.prototype(INTERICTAL),
        ictal=detector.memory.prototype(ICTAL),
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )
    return path


def load_model(path: str | Path) -> LaelapsDetector:
    """Reconstruct a fitted detector saved by :func:`save_model`.

    The item memories are regenerated from the stored config seed, so
    the reloaded detector produces bit-identical predictions.
    """
    path = Path(path)
    with np.load(path) as archive:
        interictal = archive["interictal"]
        ictal = archive["ictal"]
        meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
    if meta.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported model format version {meta.get('version')!r}"
        )
    return _rebuild_detector(meta, interictal, ictal)


def save_sessions(manager, path: str | Path) -> Path:
    """Checkpoint a live :class:`StreamSessionManager` to one ``.npz``.

    Stores, per open session, the model (prototypes + config + t_r +
    symboliser, exactly as :func:`save_model`) and the complete live
    stream state, so :func:`load_sessions` resumes every stream
    bit-exactly.  Sessions sharing one detector object are serialised
    as independent models and resume as independent detectors.

    Raises:
        ValueError: If the manager has no open sessions.
    """
    session_ids = manager.session_ids
    if not session_ids:
        raise ValueError("cannot checkpoint a manager with no open sessions")
    path = _npz_path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    sessions_meta = []
    arrays: dict[str, np.ndarray] = {}
    for i, session_id in enumerate(session_ids):
        stream = manager.session(session_id)
        detector = stream.detector
        state = stream.state_dict()
        post = state["post"]
        encoder = state["encoder"]
        sessions_meta.append(
            {
                "id": session_id,
                **_model_meta(detector),
                "samples_seen": state["samples_seen"],
                "windows_emitted": state["windows_emitted"],
                "post_seen": post["seen"],
                "post_active": post["active"],
                "n_blocks": len(encoder["blocks"]),
            }
        )
        arrays[f"s{i}__interictal"] = detector.memory.prototype(INTERICTAL)
        arrays[f"s{i}__ictal"] = detector.memory.prototype(ICTAL)
        arrays[f"s{i}__raw_tail"] = state["raw_tail"]
        arrays[f"s{i}__pending"] = encoder["pending"]
        arrays[f"s{i}__post_labels"] = post["tail_labels"]
        arrays[f"s{i}__post_deltas"] = post["tail_deltas"]
        for j, block in enumerate(encoder["blocks"]):
            arrays[f"s{i}__block{j}"] = block
    meta = {"version": _SESSIONS_FORMAT_VERSION, "sessions": sessions_meta}
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        **arrays,
    )
    return path


def load_sessions(path: str | Path):
    """Resume a :func:`save_sessions` checkpoint.

    Returns:
        A fresh :class:`~repro.core.sessions.StreamSessionManager` with
        every session reopened mid-stream: models are rebuilt as in
        :func:`load_model`, and the raw tails, encoder buffers and
        alarm machines pick up exactly where the checkpoint left off.
    """
    from repro.core.sessions import StreamSessionManager

    path = Path(path)
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
        if meta.get("version") != _SESSIONS_FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported sessions format version "
                f"{meta.get('version')!r}"
            )
        manager = StreamSessionManager()
        for i, spec in enumerate(meta["sessions"]):
            detector = _rebuild_detector(
                spec, archive[f"s{i}__interictal"], archive[f"s{i}__ictal"]
            )
            stream = manager.open(spec["id"], detector)
            stream.restore_state(
                {
                    "raw_tail": archive[f"s{i}__raw_tail"],
                    "samples_seen": spec["samples_seen"],
                    "windows_emitted": spec["windows_emitted"],
                    "encoder": {
                        "pending": archive[f"s{i}__pending"],
                        "blocks": [
                            archive[f"s{i}__block{j}"]
                            for j in range(spec["n_blocks"])
                        ],
                    },
                    "post": {
                        "tail_labels": archive[f"s{i}__post_labels"],
                        "tail_deltas": archive[f"s{i}__post_deltas"],
                        "seen": spec["post_seen"],
                        "active": spec["post_active"],
                    },
                }
            )
    return manager


def write_fleet_manifest(
    path: str | Path,
    *,
    shards: dict[str, str],
    routes: dict[str, str],
    dim: int,
) -> Path:
    """Write the JSON manifest of a sharded fleet checkpoint.

    A fleet checkpoint is a directory of per-worker
    :func:`save_sessions` shard files plus this manifest tying them
    together; :meth:`repro.serve.ShardedStreamGateway.restore` reads it
    back (possibly onto a different worker count).

    Args:
        path: Manifest file to write (conventionally ``fleet.json``).
        shards: Mapping of worker id to its shard file name, relative
            to the manifest's directory.
        routes: Mapping of session id to the worker id that held it at
            checkpoint time (informational — restore recomputes routing
            from its own ring).
        dim: The fleet's shared hypervector dimension.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    manifest = {
        "version": _FLEET_FORMAT_VERSION,
        "shards": dict(shards),
        "routes": dict(routes),
        "dim": int(dim),
    }
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return path


def read_fleet_manifest(path: str | Path) -> dict:
    """Read and validate a :func:`write_fleet_manifest` manifest."""
    path = Path(path)
    manifest = json.loads(path.read_text())
    if manifest.get("version") != _FLEET_FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported fleet format version "
            f"{manifest.get('version')!r}"
        )
    for key in ("shards", "routes", "dim"):
        if key not in manifest:
            raise ValueError(f"{path}: fleet manifest missing {key!r}")
    return manifest
