"""Persistence of trained patient models.

A deployed Laelaps model is tiny — the item memories regenerate from
the config seed, so only the two prototypes, the tuned t_r and the
configuration need storing (a few kilobytes, matching the paper's
point that the whole model fits comfortably in on-chip memory).
``save_model``/``load_model`` round-trip a fitted detector through a
single ``.npz`` file; the reloaded detector is bit-exact.

The inference backend travels inside the persisted config: a model
saved from a ``backend="packed"`` detector reloads as a packed
detector (prototypes are serialised in the unpacked inspection form
either way — the packed words are re-derived on load, and the two
backends are bit-exact, so older unpacked archives load unchanged).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.config import ICTAL, INTERICTAL, LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.core.symbolizers import HVGSymbolizer, LBPSymbolizer

_FORMAT_VERSION = 1


def _symbolizer_spec(symbolizer) -> dict:
    if isinstance(symbolizer, LBPSymbolizer):
        return {"kind": "lbp", "length": symbolizer.length}
    if isinstance(symbolizer, HVGSymbolizer):
        return {"kind": "hvg", "degree_cap": symbolizer.degree_cap}
    raise ValueError(
        f"cannot persist unknown symboliser {type(symbolizer).__name__}"
    )


def _build_symbolizer(spec: dict):
    if spec["kind"] == "lbp":
        return LBPSymbolizer(spec["length"])
    if spec["kind"] == "hvg":
        return HVGSymbolizer(spec["degree_cap"])
    raise ValueError(f"unknown symboliser kind {spec['kind']!r}")


def save_model(detector: LaelapsDetector, path: str | Path) -> Path:
    """Serialise a fitted detector to ``path`` (``.npz``).

    Raises:
        ValueError: If the detector has not been fitted.
    """
    if not detector.is_fitted:
        raise ValueError("only fitted detectors can be saved")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "version": _FORMAT_VERSION,
        "n_electrodes": detector.n_electrodes,
        "config": asdict(detector.config),
        "tr": detector.tr,
        "symbolizer": _symbolizer_spec(detector.symbolizer),
    }
    np.savez_compressed(
        path,
        interictal=detector.memory.prototype(INTERICTAL),
        ictal=detector.memory.prototype(ICTAL),
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )
    return path


def load_model(path: str | Path) -> LaelapsDetector:
    """Reconstruct a fitted detector saved by :func:`save_model`.

    The item memories are regenerated from the stored config seed, so
    the reloaded detector produces bit-identical predictions.
    """
    path = Path(path)
    with np.load(path) as archive:
        interictal = archive["interictal"]
        ictal = archive["ictal"]
        meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
    if meta.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported model format version {meta.get('version')!r}"
        )
    config = LaelapsConfig(**meta["config"])
    detector = LaelapsDetector(
        meta["n_electrodes"],
        config,
        symbolizer=_build_symbolizer(meta["symbolizer"]),
    )
    detector.memory.store(INTERICTAL, interictal.astype(np.uint8))
    detector.memory.store(ICTAL, ictal.astype(np.uint8))
    detector.tr = float(meta["tr"])
    return detector
