"""Per-patient hypervector-dimension tuning (Sec. IV-B, Table I "d").

The paper first evaluates every patient with the d = 10 kbit golden model
and then shrinks d as long as the golden performance is maintained,
reaching 1 kbit for several patients (mean 4.3 kbit).  The procedure here
is the same greedy descent: candidates are tried in decreasing order and
the scan stops at the first dimension that loses performance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

#: The candidate dimensions used by the Table I reproduction, mirroring
#: the 1-10 kbit range reported in the paper.
DEFAULT_CANDIDATES: tuple[int, ...] = (
    10_000, 9_000, 8_000, 7_000, 6_000, 5_000, 4_000, 3_000, 2_000, 1_000
)

#: Performance tuple ``(sensitivity, negated FDR)`` — both
#: higher-is-better so tuples compare directly.
Performance = tuple[float, float]

#: Callback evaluating a model at dimension d on the patient's data.
Evaluator = Callable[[int], Performance]


@dataclass
class DimensionTuningResult:
    """Outcome of the golden-model dimension descent.

    Attributes:
        chosen_dim: Smallest dimension that maintained golden performance.
        golden_dim: Dimension of the golden model (first candidate).
        golden_performance: Performance of the golden model.
        history: Every evaluated ``(dim, performance)`` pair in scan order.
    """

    chosen_dim: int
    golden_dim: int
    golden_performance: Performance
    history: list[tuple[int, Performance]] = field(default_factory=list)

    @property
    def reduction_factor(self) -> float:
        """How much smaller the chosen model is than the golden one."""
        return self.golden_dim / self.chosen_dim


def _maintains(candidate: Performance, golden: Performance) -> bool:
    """Whether a candidate performance is at least as good as the golden."""
    sensitivity, neg_fdr = candidate
    golden_sensitivity, golden_neg_fdr = golden
    return sensitivity >= golden_sensitivity and neg_fdr >= golden_neg_fdr


def tune_dimension(
    evaluate: Evaluator,
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
    stop_at_first_loss: bool = True,
) -> DimensionTuningResult:
    """Shrink d from the golden model while performance is maintained.

    Args:
        evaluate: Called with a dimension, returns ``(sensitivity,
            -fdr)`` measured on the patient.  The first (largest)
            candidate defines the golden performance.
        candidates: Dimensions to try; sorted internally in decreasing
            order, the first being the golden model.
        stop_at_first_loss: Stop scanning at the first candidate that
            loses performance (the paper's greedy rule).  When False, the
            whole list is scanned and the smallest maintaining dimension
            wins (useful when performance is not monotone in d).

    Returns:
        A :class:`DimensionTuningResult`.
    """
    dims = sorted(set(int(d) for d in candidates), reverse=True)
    if len(dims) < 1:
        raise ValueError("need at least one candidate dimension")
    golden_dim = dims[0]
    golden = evaluate(golden_dim)
    history: list[tuple[int, Performance]] = [(golden_dim, golden)]
    chosen = golden_dim
    for dim in dims[1:]:
        performance = evaluate(dim)
        history.append((dim, performance))
        if _maintains(performance, golden):
            chosen = dim
        elif stop_at_first_loss:
            break
    return DimensionTuningResult(
        chosen_dim=chosen,
        golden_dim=golden_dim,
        golden_performance=golden,
        history=history,
    )
