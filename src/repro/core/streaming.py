"""Online (streaming) inference for a fitted Laelaps detector.

The GPU implementation of Sec. V processes one 0.5 s step at a time; this
module provides the same incremental dataflow in pure Python: raw samples
are pushed in arbitrary chunks, LBP codes continue seamlessly across
chunk boundaries, the temporal encoder emits an H vector per completed
0.5 s block, and the shared :class:`~repro.core.postprocess.AlarmStateMachine`
votes over a rolling window of the last ten labels.  Memory use is O(d)
regardless of stream length.

Because the postprocessor *is* the batch one (same class, resumable),
``run()`` raises alarms at exactly the window indices where
``LaelapsDetector.detect()`` does, for every ``t_c <= postprocess_len``
and any chunking — including the warm-up contract that no alarm can fire
before ``postprocess_len`` labels exist.

Multi-patient serving is layered on top of this class by
:class:`repro.core.sessions.StreamSessionManager`, which drives many
streams through the two-phase split :meth:`StreamingLaelaps.encode_chunk`
/ :meth:`StreamingLaelaps.emit_events` so classification can be batched
across sessions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.detector import LaelapsDetector
from repro.core.postprocess import AlarmStateMachine, PostprocessConfig


@dataclass(frozen=True)
class StreamEvent:
    """One classified analysis window from the stream.

    Attributes:
        time_s: Decision time of the window (stream time).
        label: INTERICTAL/ICTAL classifier label.
        delta: Confidence score |d0 - d1|.
        alarm: True when this window *newly* satisfies the alarm
            condition (rising edge of the t_c / t_r vote).
    """

    time_s: float
    label: int
    delta: float
    alarm: bool


class StreamingLaelaps:
    """Incremental wrapper around a fitted :class:`LaelapsDetector`.

    Args:
        detector: A fitted detector (prototypes stored, t_r set).

    Push raw sample chunks with :meth:`push`; each call returns the
    stream events whose windows completed inside that chunk.  The
    stream runs on whichever compute engine the detector was built
    with — on the word-domain engines the H vectors never leave the
    packed form between the encoder and the associative memory, and the
    fused engine answers the per-tick single-window query through its
    preallocated scratch path.

    Code continuation and decision times follow the detector's
    *symbolizer* (not the config's default LBP length), so a detector
    built with a custom-length :class:`~repro.core.symbolizers.LBPSymbolizer`
    streams with the same codes and clock as its batch path.
    """

    def __init__(self, detector: LaelapsDetector) -> None:
        from repro.core.symbolizers import LBPSymbolizer

        if not detector.is_fitted:
            raise ValueError("detector must be fitted before streaming")
        if not isinstance(detector.symbolizer, LBPSymbolizer):
            raise ValueError(
                "streaming supports the LBP symboliser only (its margin "
                "semantics drive the chunk-boundary continuation)"
            )
        self.detector = detector
        cfg = detector.config
        self._symbolizer = detector.symbolizer
        self._encoder = detector.temporal_encoder()
        self._raw_tail = np.zeros((0, detector.n_electrodes), dtype=np.float64)
        self._post = AlarmStateMachine(
            PostprocessConfig(
                postprocess_len=cfg.postprocess_len, tc=cfg.tc, tr=detector.tr
            )
        )
        self._samples_seen = 0
        self._windows_emitted = 0

    @property
    def samples_seen(self) -> int:
        """Raw samples consumed so far."""
        return self._samples_seen

    @property
    def windows_emitted(self) -> int:
        """Analysis windows classified so far."""
        return self._windows_emitted

    @property
    def postprocessor_state(self) -> AlarmStateMachine:
        """The live alarm state machine (shared batch/stream semantics)."""
        return self._post

    def encode_chunk(self, chunk: np.ndarray) -> np.ndarray:
        """Phase 1 of :meth:`push`: raw samples to completed H vectors.

        Buffers the symboliser tail across calls and advances the
        temporal encoder; returns the H vectors of the windows completed
        by this chunk (possibly zero) in the backend's representation.
        Classification is *not* performed — callers either classify
        immediately (:meth:`push`) or batch across many sessions
        (:class:`repro.core.sessions.StreamSessionManager`).
        """
        arr = np.asarray(chunk, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.detector.n_electrodes:
            raise ValueError(
                f"expected (n, {self.detector.n_electrodes}), got {arr.shape}"
            )
        self._samples_seen += arr.shape[0]
        joined = np.concatenate([self._raw_tail, arr], axis=0)
        length = self._symbolizer.length
        if joined.shape[0] <= length:
            self._raw_tail = joined
            return self._encoder.feed(
                np.zeros((0, self.detector.n_electrodes), dtype=np.int64)
            )
        codes = self._symbolizer.codes(joined)
        # Keep the raw samples whose codes are not yet computable.
        self._raw_tail = joined[-length:].copy()
        return self._encoder.feed(codes)

    def emit_events(
        self, labels: np.ndarray, deltas: np.ndarray
    ) -> list[StreamEvent]:
        """Phase 2 of :meth:`push`: classified windows to stream events.

        Feeds the shared alarm state machine and stamps each window with
        the stream clock (global window index, symboliser margin), so
        decision times are correct for mid-stream chunks.
        """
        labels_arr = np.asarray(labels, dtype=np.int64)
        deltas_arr = np.asarray(deltas, dtype=np.float64)
        n = labels_arr.shape[0]
        if n == 0:
            return []
        cfg = self.detector.config
        # t_r lives on the detector and may be (re)tuned after this
        # stream was opened; track it so alarms keep matching detect().
        if self.detector.tr != self._post.config.tr:
            self._post.config = PostprocessConfig(
                postprocess_len=cfg.postprocess_len,
                tc=cfg.tc,
                tr=self.detector.tr,
            )
        spec = cfg.window_spec
        index = self._windows_emitted + np.arange(n)
        times = (
            index * spec.step_samples
            + spec.window_samples
            + self._symbolizer.margin
        ) / cfg.fs
        _, rising = self._post.update(labels_arr, deltas_arr)
        self._windows_emitted += n
        return [
            StreamEvent(
                time_s=float(times[k]),
                label=int(labels_arr[k]),
                delta=float(deltas_arr[k]),
                alarm=bool(rising[k]),
            )
            for k in range(n)
        ]

    def push(self, chunk: np.ndarray) -> list[StreamEvent]:
        """Consume a chunk of raw samples; return completed windows.

        Args:
            chunk: Array ``(n_samples, n_electrodes)`` continuing the
                stream (any chunk size, including smaller than a block).
        """
        h_vectors = self.encode_chunk(chunk)
        if h_vectors.shape[0] == 0:
            return []
        labels, _, deltas = self.detector.classify_from_windows(h_vectors)
        return self.emit_events(labels, deltas)

    def run(self, signal: np.ndarray, chunk_samples: int) -> list[StreamEvent]:
        """Convenience: stream a whole recording in fixed-size chunks."""
        events: list[StreamEvent] = []
        for start in range(0, signal.shape[0], chunk_samples):
            events.extend(self.push(signal[start : start + chunk_samples]))
        return events

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of the live stream state (model excluded).

        Everything needed to resume the stream bit-exactly on a detector
        reloaded from :func:`repro.core.persistence.load_model`: the raw
        symboliser tail, the temporal-encoder buffers and the alarm
        state machine, plus the sample/window counters.
        """
        return {
            "raw_tail": self._raw_tail.copy(),
            "samples_seen": int(self._samples_seen),
            "windows_emitted": int(self._windows_emitted),
            "encoder": self._encoder.state_dict(),
            "post": self._post.state_dict(),
        }

    def restore_state(self, state: dict) -> "StreamingLaelaps":
        """Resume from a :meth:`state_dict` snapshot (bit-exact)."""
        raw_tail = np.asarray(state["raw_tail"], dtype=np.float64)
        if raw_tail.ndim != 2 or raw_tail.shape[1] != self.detector.n_electrodes:
            raise ValueError(
                f"raw tail must be (n, {self.detector.n_electrodes}), "
                f"got {raw_tail.shape}"
            )
        self._raw_tail = raw_tail.copy()
        self._samples_seen = int(state["samples_seen"])
        self._windows_emitted = int(state["windows_emitted"])
        self._encoder.restore_state(state["encoder"])
        self._post.restore_state(state["post"])
        return self
