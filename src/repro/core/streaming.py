"""Online (streaming) inference for a fitted Laelaps detector.

The GPU implementation of Sec. V processes one 0.5 s step at a time; this
module provides the same incremental dataflow in pure Python: raw samples
are pushed in arbitrary chunks, LBP codes continue seamlessly across
chunk boundaries, the temporal encoder emits an H vector per completed
0.5 s block, and the postprocessor votes over a rolling window of the
last ten labels.  Memory use is O(d) regardless of stream length.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.config import ICTAL
from repro.core.detector import LaelapsDetector
from repro.lbp.codes import lbp_codes_multichannel


@dataclass(frozen=True)
class StreamEvent:
    """One classified analysis window from the stream.

    Attributes:
        time_s: Decision time of the window (stream time).
        label: INTERICTAL/ICTAL classifier label.
        delta: Confidence score |d0 - d1|.
        alarm: True when this window *newly* satisfies the alarm
            condition (rising edge of the t_c / t_r vote).
    """

    time_s: float
    label: int
    delta: float
    alarm: bool


class StreamingLaelaps:
    """Incremental wrapper around a fitted :class:`LaelapsDetector`.

    Args:
        detector: A fitted detector (prototypes stored, t_r set).

    Push raw sample chunks with :meth:`push`; each call returns the
    stream events whose windows completed inside that chunk.  The
    stream runs on whichever backend the detector was configured with —
    on ``"packed"`` the H vectors never leave the word domain between
    the encoder and the associative memory.
    """

    def __init__(self, detector: LaelapsDetector) -> None:
        from repro.core.symbolizers import LBPSymbolizer

        if not detector.is_fitted:
            raise ValueError("detector must be fitted before streaming")
        if not isinstance(detector.symbolizer, LBPSymbolizer):
            raise ValueError(
                "streaming supports the LBP symboliser only (its margin "
                "semantics drive the chunk-boundary continuation)"
            )
        self.detector = detector
        cfg = detector.config
        self._encoder = detector.temporal_encoder()
        self._raw_tail = np.zeros((0, detector.n_electrodes), dtype=np.float64)
        self._labels: deque[int] = deque(maxlen=cfg.postprocess_len)
        self._deltas: deque[float] = deque(maxlen=cfg.postprocess_len)
        self._samples_seen = 0
        self._windows_emitted = 0
        self._alarm_active = False

    @property
    def samples_seen(self) -> int:
        """Raw samples consumed so far."""
        return self._samples_seen

    @property
    def windows_emitted(self) -> int:
        """Analysis windows classified so far."""
        return self._windows_emitted

    def _alarm_condition(self) -> bool:
        cfg = self.detector.config
        if len(self._labels) < cfg.postprocess_len:
            return False
        ictal = [i for i, lab in enumerate(self._labels) if lab == ICTAL]
        if len(ictal) < cfg.tc:
            return False
        mean_delta = float(np.mean([self._deltas[i] for i in ictal]))
        return mean_delta > self.detector.tr

    def push(self, chunk: np.ndarray) -> list[StreamEvent]:
        """Consume a chunk of raw samples; return completed windows.

        Args:
            chunk: Array ``(n_samples, n_electrodes)`` continuing the
                stream (any chunk size, including smaller than a block).
        """
        arr = np.asarray(chunk, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != self.detector.n_electrodes:
            raise ValueError(
                f"expected (n, {self.detector.n_electrodes}), got {arr.shape}"
            )
        cfg = self.detector.config
        self._samples_seen += arr.shape[0]
        joined = np.concatenate([self._raw_tail, arr], axis=0)
        length = cfg.lbp_length
        if joined.shape[0] <= length:
            self._raw_tail = joined
            return []
        codes = lbp_codes_multichannel(joined, length)
        # Keep the raw samples whose codes are not yet computable.
        self._raw_tail = joined[-length:].copy()
        h_vectors = self._encoder.feed(codes)
        events: list[StreamEvent] = []
        if h_vectors.shape[0] == 0:
            return events
        preds = self.detector.predict_from_windows(h_vectors)
        for k in range(h_vectors.shape[0]):
            self._labels.append(int(preds.labels[k]))
            self._deltas.append(float(preds.deltas[k]))
            index = self._windows_emitted
            self._windows_emitted += 1
            time_s = (
                index * cfg.window_spec.step_samples
                + cfg.window_spec.window_samples
                + length
            ) / cfg.fs
            condition = self._alarm_condition()
            rising = condition and not self._alarm_active
            self._alarm_active = condition
            events.append(
                StreamEvent(
                    time_s=time_s,
                    label=int(preds.labels[k]),
                    delta=float(preds.deltas[k]),
                    alarm=rising,
                )
            )
        return events

    def run(self, signal: np.ndarray, chunk_samples: int) -> list[StreamEvent]:
        """Convenience: stream a whole recording in fixed-size chunks."""
        events: list[StreamEvent] = []
        for start in range(0, signal.shape[0], chunk_samples):
            events.extend(self.push(signal[start : start + chunk_samples]))
        return events
