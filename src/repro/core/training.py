"""Selection of training segments and window bookkeeping.

The paper trains each patient-specific model from one or two ictal states
(10-30 s each) and a single 30 s interictal state chosen 10 min before the
first seizure onset (Sec. IV-B).  This module holds the segment containers
and the time <-> window-index arithmetic shared by training, t_r tuning
and evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.signal.windows import WindowSpec


@dataclass(frozen=True)
class TrainingSegments:
    """Time segments (in seconds) used to train the prototypes.

    Attributes:
        ictal: One or two ``(start_s, end_s)`` seizure segments.
        interictal: A single ``(start_s, end_s)`` interictal segment.
    """

    ictal: tuple[tuple[float, float], ...]
    interictal: tuple[float, float]

    def __post_init__(self) -> None:
        if not self.ictal:
            raise ValueError("at least one ictal training segment is required")
        for start, end in list(self.ictal) + [self.interictal]:
            if end <= start:
                raise ValueError(f"segment ({start}, {end}) is empty or reversed")


def segment_slice(
    segment: tuple[float, float], fs: float, n_samples: int, margin: int = 0
) -> slice:
    """Sample slice of a time segment, clipped to the recording.

    Args:
        segment: ``(start_s, end_s)`` in seconds.
        fs: Sampling rate in Hz.
        n_samples: Length of the recording in samples.
        margin: Extra trailing samples to include (e.g. the LBP length so
            the last codes of the segment can be computed).
    """
    start_s, end_s = segment
    start = max(0, int(round(start_s * fs)))
    end = min(n_samples, int(round(end_s * fs)) + margin)
    if end <= start:
        raise ValueError(
            f"segment ({start_s}, {end_s}) s lies outside the recording"
        )
    return slice(start, end)


def window_decision_times(
    n_windows: int, spec: WindowSpec, fs: float, lbp_length: int
) -> np.ndarray:
    """Decision time (s) of each analysis window.

    Window ``i`` covers code samples ``[i * step, i * step + window)``;
    code ``t`` requires raw samples up to ``t + lbp_length``, so the label
    of window ``i`` becomes available at
    ``(i * step + window + lbp_length) / fs`` seconds.
    """
    starts = np.arange(n_windows) * spec.step_samples
    return (starts + spec.window_samples + lbp_length) / fs


def windows_in_segments(
    times: np.ndarray,
    segments: list[tuple[float, float]],
    window_s: float,
) -> np.ndarray:
    """Boolean mask of windows lying fully inside any of the segments.

    Args:
        times: Decision times of the windows (seconds).
        segments: ``(start_s, end_s)`` intervals.
        window_s: Window length in seconds (a window at decision time t
            spans ``[t - window_s, t]``).

    Returns:
        Boolean array aligned with ``times``.
    """
    times_arr = np.asarray(times, dtype=np.float64)
    mask = np.zeros(times_arr.shape, dtype=bool)
    for start_s, end_s in segments:
        mask |= (times_arr - window_s >= start_s) & (times_arr <= end_s)
    return mask


@dataclass
class FitReport:
    """Diagnostics recorded while fitting a detector.

    Attributes:
        n_ictal_windows: H vectors bundled into the ictal prototype.
        n_interictal_windows: H vectors bundled into the interictal one.
        prototype_distance: Hamming distance between the two prototypes —
            a small value warns that the two states are poorly separated.
        mean_trained_ictal_delta: Mean delta score of the training ictal
            windows against the final prototypes (feeds the alpha term of
            the t_r tuning rule).
    """

    n_ictal_windows: int = 0
    n_interictal_windows: int = 0
    prototype_distance: int = 0
    mean_trained_ictal_delta: float = field(default=0.0)
