"""Pluggable symbolisers for the HD pipeline.

Laelaps symbolises with LBP codes, but the encoder itself only needs
*some* finite symbol stream per electrode (Sec. II-A discusses
alternatives).  A symboliser maps a raw multichannel signal to integer
codes; the detector sizes its code item memory from the symboliser's
alphabet.  :class:`LBPSymbolizer` is the paper's choice;
:class:`HVGSymbolizer` is the directed-horizontal-graph comparator the
paper dismisses as less efficient — implemented so the claim is
testable (``benchmarks/bench_symbolization.py``).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.lbp.codes import lbp_codes_multichannel
from repro.lbp.visibility import hvg_alphabet_size, hvg_codes_multichannel


class Symbolizer(Protocol):
    """Interface the detector consumes."""

    @property
    def alphabet_size(self) -> int:
        """Number of distinct symbols."""

    @property
    def margin(self) -> int:
        """Trailing raw samples a code depends on (label-time skew)."""

    def codes(self, signal: np.ndarray) -> np.ndarray:
        """Symbol streams, ``(n_codes, n_channels)`` integers."""


class LBPSymbolizer:
    """Local binary patterns (the paper's symboliser)."""

    def __init__(self, length: int = 6) -> None:
        self.length = length

    @property
    def alphabet_size(self) -> int:
        """``2 ** length`` codes."""
        return 1 << self.length

    @property
    def margin(self) -> int:
        """A code at t consumes samples up to ``t + length``."""
        return self.length

    def codes(self, signal: np.ndarray) -> np.ndarray:
        """Per-electrode LBP code streams."""
        return lbp_codes_multichannel(signal, self.length)


class HVGSymbolizer:
    """Directed horizontal-visibility-graph degrees (comparator).

    Note: HVG symbols are not strictly causal (a point's out-degree
    depends on future samples until a higher one arrives); for the
    offline comparison this skew is ignored, which if anything favours
    HVG.
    """

    def __init__(self, degree_cap: int = 7) -> None:
        self.degree_cap = degree_cap

    @property
    def alphabet_size(self) -> int:
        """``(cap + 1) ** 2`` in/out degree pairs."""
        return hvg_alphabet_size(self.degree_cap)

    @property
    def margin(self) -> int:
        """Treated as zero (see class note)."""
        return 0

    def codes(self, signal: np.ndarray) -> np.ndarray:
        """Per-electrode HVG degree-pair streams."""
        return hvg_codes_multichannel(signal, self.degree_cap)
