"""The Laelaps detector: end-to-end pipeline of Fig. 1.

``LaelapsDetector`` owns the two item memories, a named compute engine
(:mod:`repro.hdc.engine` — the single dispatch point for the encoder and
associative-memory representations), the two-prototype associative
memory and the postprocessor.  It is trained from explicit time segments
(one or two seizures plus 30 s of interictal signal) and then classifies
arbitrarily long recordings at the 0.5 s label rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import ICTAL, INTERICTAL, LaelapsConfig
from repro.core.postprocess import (
    PostprocessConfig,
    Postprocessor,
    delta_scores,
    flags_to_onsets,
    tune_tr,
)
from repro.core.training import (
    FitReport,
    TrainingSegments,
    segment_slice,
    window_decision_times,
    windows_in_segments,
)
from repro.hdc.associative import AssociativeMemory
from repro.hdc.backend import hamming_distance
from repro.hdc.engine import build_engine
from repro.hdc.item_memory import ItemMemory
from repro.hdc.temporal import WindowBundler


@dataclass(frozen=True)
class WindowPredictions:
    """Per-window classifier output of a recording.

    Attributes:
        labels: int64 array ``(n_windows,)`` of INTERICTAL/ICTAL labels.
        distances: int64 array ``(n_windows, 2)``, Hamming distances to
            the interictal (column 0) and ictal (column 1) prototypes.
        deltas: float64 array of confidence scores |d0 - d1|.
        times: float64 array of decision times in seconds.
    """

    labels: np.ndarray
    distances: np.ndarray
    deltas: np.ndarray
    times: np.ndarray

    def __len__(self) -> int:
        return len(self.labels)


@dataclass(frozen=True)
class DetectionResult:
    """Alarms produced on a recording.

    Attributes:
        alarm_times: Seconds at which the alarm condition newly fired.
        flags: Per-window boolean alarm condition.
        predictions: The underlying per-window classifier output.
    """

    alarm_times: np.ndarray
    flags: np.ndarray
    predictions: WindowPredictions


class LaelapsDetector:
    """Patient-specific seizure detector (LBP + HD computing).

    Args:
        n_electrodes: Number of iEEG electrodes of the patient (24-128 in
            the paper's cohort).
        config: Pipeline configuration; defaults to the paper's settings
            with the 10 kbit golden-model dimension.
        symbolizer: Symbol extractor; defaults to the paper's LBP codes
            at ``config.lbp_length``.  See
            :mod:`repro.core.symbolizers` for the HVG comparator.

    The detector is deterministic given ``(n_electrodes, config)``: item
    memories derive their seeds from ``config.seed``.
    """

    def __init__(
        self,
        n_electrodes: int,
        config: LaelapsConfig | None = None,
        symbolizer=None,
    ) -> None:
        if n_electrodes < 1:
            raise ValueError(f"n_electrodes must be >= 1, got {n_electrodes}")
        self.config = config or LaelapsConfig()
        cfg = self.config
        self.n_electrodes = n_electrodes
        if symbolizer is None:
            from repro.core.symbolizers import LBPSymbolizer

            symbolizer = LBPSymbolizer(cfg.lbp_length)
        self.symbolizer = symbolizer
        self.code_memory = ItemMemory(
            symbolizer.alphabet_size, cfg.dim, cfg.code_memory_seed
        )
        self.electrode_memory = ItemMemory(
            n_electrodes, cfg.dim, cfg.electrode_memory_seed
        )
        #: The compute engine running every encode/train/classify path.
        #: ``config.backend`` may name it indirectly (``auto``);
        #: :attr:`backend` always holds the resolved engine name.
        self.engine = build_engine(
            cfg.backend, self.code_memory, self.electrode_memory,
            cfg.window_spec,
        )
        self.backend = self.engine.name
        self.spatial = self.engine.spatial
        self.memory = AssociativeMemory(cfg.dim)
        self.tr = cfg.tr
        self.fit_report: FitReport | None = None

    @property
    def window_s(self) -> float:
        """Analysis-window length in seconds (detector interface)."""
        return self.config.window_s

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def _validate_signal(self, signal: np.ndarray) -> np.ndarray:
        arr = np.asarray(signal)
        if arr.ndim != 2 or arr.shape[1] != self.n_electrodes:
            raise ValueError(
                f"expected (n_samples, {self.n_electrodes}) signal, "
                f"got shape {arr.shape}"
            )
        return arr

    def temporal_encoder(self) -> WindowBundler:
        """A fresh streaming window encoder in the engine's domain."""
        return self.engine.temporal_encoder()

    def encode(self, signal: np.ndarray) -> np.ndarray:
        """Encode a recording into engine-native H vectors.

        The output shape and dtype are the engine's native window form
        (see ``repro backends``); every form is accepted by
        :meth:`predict_from_windows`, whichever engine produced it.
        """
        arr = self._validate_signal(signal)
        codes = self.symbolizer.codes(arr)
        return self.temporal_encoder().encode_all(codes)

    def window_times(self, n_windows: int) -> np.ndarray:
        """Decision times (s) for ``n_windows`` windows of a recording."""
        return window_decision_times(
            n_windows,
            self.config.window_spec,
            self.config.fs,
            self.symbolizer.margin,
        )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether both prototypes have been stored."""
        return self.memory.n_classes == 2

    def fit_from_windows(
        self, ictal_h: np.ndarray, interictal_h: np.ndarray
    ) -> "LaelapsDetector":
        """Train the associative memory from already-encoded H vectors.

        Accepts windows in any engine's window form (unpacked uint8
        ``(k, d)`` or word-packed uint64 ``(k, words)``), matching
        whatever :meth:`encode` produced.
        """
        ictal_arr = self.engine.windows_2d(ictal_h)
        inter_arr = self.engine.windows_2d(interictal_h)
        if ictal_arr.shape[0] == 0 or inter_arr.shape[0] == 0:
            raise ValueError("both classes need at least one H vector")
        self.engine.train(self.memory, INTERICTAL, inter_arr)
        self.engine.train(self.memory, ICTAL, ictal_arr)
        _, distances = self.engine.classify_windows(self.memory, ictal_arr)
        report = FitReport(
            n_ictal_windows=ictal_arr.shape[0],
            n_interictal_windows=inter_arr.shape[0],
            prototype_distance=int(
                hamming_distance(
                    self.memory.prototype(INTERICTAL),
                    self.memory.prototype(ICTAL),
                )
            ),
            mean_trained_ictal_delta=float(
                np.mean(delta_scores(distances))
            ),
        )
        self.fit_report = report
        return self

    def fit(
        self, signal: np.ndarray, segments: TrainingSegments
    ) -> "LaelapsDetector":
        """Train from a recording and explicit training segments.

        Each segment is sliced out of the signal (with the LBP margin so
        its trailing codes exist) and encoded independently; every H
        window of an ictal segment feeds the ictal prototype, and likewise
        for the interictal segment.

        Args:
            signal: Recording ``(n_samples, n_electrodes)``.
            segments: Ictal segment(s) (10-30 s each) and one ~30 s
                interictal segment.
        """
        arr = self._validate_signal(signal)
        margin = self.symbolizer.margin
        engine = self.engine
        ictal_acc = engine.accumulator()
        for segment in segments.ictal:
            sl = segment_slice(segment, self.config.fs, arr.shape[0], margin)
            h = self.encode(arr[sl])
            if h.shape[0] == 0:
                raise ValueError(
                    f"ictal segment {segment} too short for one analysis window"
                )
            ictal_acc.add(h)
        inter_sl = segment_slice(
            segments.interictal, self.config.fs, arr.shape[0], margin
        )
        inter_h = self.encode(arr[inter_sl])
        if inter_h.shape[0] == 0:
            raise ValueError("interictal segment too short for one window")
        engine.store(
            self.memory,
            INTERICTAL,
            engine.accumulator().add(inter_h).finalize(),
        )
        engine.store(self.memory, ICTAL, ictal_acc.finalize())
        # Re-derive the fit report against the final prototypes.
        ictal_h = [
            self.encode(arr[segment_slice(s, self.config.fs, arr.shape[0], margin)])
            for s in segments.ictal
        ]
        all_ictal = np.concatenate(ictal_h, axis=0)
        _, distances = self.engine.classify_windows(self.memory, all_ictal)
        self.fit_report = FitReport(
            n_ictal_windows=int(all_ictal.shape[0]),
            n_interictal_windows=int(inter_h.shape[0]),
            prototype_distance=int(
                hamming_distance(
                    self.memory.prototype(INTERICTAL),
                    self.memory.prototype(ICTAL),
                )
            ),
            mean_trained_ictal_delta=float(
                np.mean(delta_scores(distances))
            ),
        )
        return self

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def predict(self, signal: np.ndarray) -> WindowPredictions:
        """Classify every analysis window of a recording.

        Runs the engine's :meth:`~repro.hdc.engine.ComputeEngine.encode_classify`
        sweep — on a fused engine, windows are classified as their blocks
        complete and the full ``(n_windows, ...)`` H array is never
        materialised.
        """
        if not self.is_fitted:
            raise RuntimeError("detector must be fitted before predicting")
        arr = self._validate_signal(signal)
        codes = self.symbolizer.codes(arr)
        labels, distances = self.engine.encode_classify(self.memory, codes)
        return WindowPredictions(
            labels=labels,
            distances=distances,
            deltas=delta_scores(distances),
            times=self.window_times(labels.shape[0]),
        )

    def classify_from_windows(
        self, h: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Classify encoded H vectors without assigning decision times.

        The times-free core of :meth:`predict_from_windows`: streaming
        callers classify mid-stream chunks whose wall-clock position is
        owned by the stream, so recomputing ``window_times`` from window
        zero would be wrong for every chunk but the first.

        Returns:
            ``(labels, distances, deltas)`` — int64 ``(n,)``, int64
            ``(n, 2)`` and float64 ``(n,)`` arrays.
        """
        if not self.is_fitted:
            raise RuntimeError("detector must be fitted before predicting")
        h_arr = np.atleast_2d(np.asarray(h))
        if h_arr.shape[0] == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros((0, 2), dtype=np.int64),
                np.zeros(0),
            )
        labels, distances = self.engine.classify_windows(self.memory, h_arr)
        return labels, distances, delta_scores(distances)

    def predict_from_windows(self, h: np.ndarray) -> WindowPredictions:
        """Classify already-encoded H vectors in one batched sweep.

        Accepts any engine's window form (unpacked ``(n, d)`` uint8 or
        word-packed ``(n, words)`` uint64); the whole batch is scored
        against both prototypes in a single vectorized Hamming query,
        never one window at a time.  Decision times are those of a
        recording starting at window zero — mid-stream chunks must use
        :meth:`classify_from_windows` and their own clock.
        """
        labels, distances, deltas = self.classify_from_windows(h)
        return WindowPredictions(
            labels=labels,
            distances=distances,
            deltas=deltas,
            times=self.window_times(labels.shape[0]),
        )

    def postprocessor(self) -> Postprocessor:
        """The postprocessor at the detector's current t_r."""
        cfg = self.config
        return Postprocessor(
            PostprocessConfig(
                postprocess_len=cfg.postprocess_len, tc=cfg.tc, tr=self.tr
            )
        )

    def detect(self, signal: np.ndarray) -> DetectionResult:
        """Run the full pipeline and return alarms on a recording."""
        preds = self.predict(signal)
        post = self.postprocessor()
        flags = post.flags(preds.labels, preds.deltas)
        onsets = flags_to_onsets(flags)
        return DetectionResult(
            alarm_times=preds.times[onsets] if len(preds) else np.zeros(0),
            flags=flags,
            predictions=preds,
        )

    # ------------------------------------------------------------------
    # t_r tuning
    # ------------------------------------------------------------------

    def tune_tr(
        self,
        signal: np.ndarray,
        seizure_segments: list[tuple[float, float]],
        alpha: float = 0.0,
    ) -> float:
        """Tune and set t_r on a training-tail recording (Sec. III-C).

        Args:
            signal: The training-set recording (or its tail after the
                prototype segments).
            seizure_segments: Ground-truth ``(onset_s, offset_s)`` of every
                seizure inside ``signal``.
            alpha: Cohort-level confidence compensation term.

        Returns:
            The tuned t_r, which is also stored on the detector.
        """
        preds = self.predict(signal)
        truth = windows_in_segments(
            preds.times, seizure_segments, self.config.window_s
        )
        self.tr = tune_tr(
            preds.labels,
            preds.deltas,
            truth,
            alpha=alpha,
            postprocess_len=self.config.postprocess_len,
            tc=self.config.tc,
        )
        return self.tr

    def memory_footprint_bits(self) -> int:
        """Model size in bits: IM1 + IM2 + the two prototypes (Sec. V-B)."""
        return (
            self.code_memory.storage_bits()
            + self.electrode_memory.storage_bits()
            + 2 * self.config.dim
        )
