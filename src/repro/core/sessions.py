"""Multi-patient stream serving: many concurrent sessions, one sweep.

The serving-scale layer above :class:`~repro.core.streaming.StreamingLaelaps`:
a :class:`StreamSessionManager` multiplexes many live patient streams,
each with its own fitted detector, ring-buffered raw tail and alarm
state machine.  Per tick, raw chunks for any subset of sessions go in
through :meth:`StreamSessionManager.push_many`; the per-session
encoders advance independently, but the resulting H vectors of *all*
sessions are classified by one cross-session batched XOR + popcount
sweep (:func:`repro.hdc.associative.grouped_classify_packed`) instead
of one small query per stream.  Events coming back are bit-identical
to driving each stream alone — the batching is a pure transport
optimisation.

Sessions may serve different patients (different electrode counts,
prototypes and t_r) and may mix compute engines freely — each
session's H vectors enter the sweep through its own engine's
``pack_queries`` bridge; only the hypervector dimension must be
shared, so the query block lines up word for word.

Live state (every session's symboliser tail, encoder buffers, alarm
machine and counters, plus each model) checkpoints to one ``.npz``
through :func:`repro.core.persistence.save_sessions` and resumes
bit-exactly with :func:`repro.core.persistence.load_sessions`.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.detector import LaelapsDetector
from repro.core.postprocess import delta_scores
from repro.core.streaming import StreamEvent, StreamingLaelaps
from repro.hdc.associative import grouped_classify_packed


def validate_chunk(
    session_id: str, chunk, n_electrodes: int
) -> np.ndarray:
    """Coerce one session's raw chunk to float64 and check its shape.

    The single chunk-shape contract of the serving layers — the manager
    and the sharded gateway both validate through here, so they can
    never drift into accepting different inputs.

    Args:
        session_id: Session key, for the error message.
        chunk: Raw samples, must be ``(n, n_electrodes)``.
        n_electrodes: The session's electrode count.

    Returns:
        float64 array ``(n, n_electrodes)``.
    """
    arr = np.asarray(chunk, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != n_electrodes:
        raise ValueError(
            f"session {session_id!r} expects (n, {n_electrodes}) "
            f"chunks, got {arr.shape}"
        )
    return arr


def lockstep_ticks(signals: Mapping[str, np.ndarray], chunk_samples: int):
    """Yield per-tick chunk dicts walking many recordings in lockstep.

    Tick ``t`` delivers samples ``[t * chunk_samples, (t + 1) *
    chunk_samples)`` of every signal that still has data (exhausted
    signals drop out of later ticks).  Shared by
    :meth:`StreamSessionManager.run` and
    :meth:`repro.serve.ShardedStreamGateway.run` so the two layers
    cannot diverge in tick semantics.
    """
    arrays = {
        session_id: np.asarray(signal)
        for session_id, signal in signals.items()
    }
    longest = max((a.shape[0] for a in arrays.values()), default=0)
    for start in range(0, longest, chunk_samples):
        yield {
            session_id: arr[start : start + chunk_samples]
            for session_id, arr in arrays.items()
            if arr.shape[0] > start
        }


class StreamSessionManager:
    """Registry and batched driver of concurrent patient streams.

    Sessions are opened against fitted detectors and pushed either one
    at a time (:meth:`push`) or as a batch (:meth:`push_many`); both
    return per-session :class:`~repro.core.streaming.StreamEvent` lists
    with the same warm-up/alarm semantics as the batch pipeline.
    """

    def __init__(self) -> None:
        self._sessions: dict[str, StreamingLaelaps] = {}
        self._dim: int | None = None

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    @property
    def session_ids(self) -> list[str]:
        """Open session ids in insertion order."""
        return list(self._sessions)

    @property
    def dim(self) -> int | None:
        """Shared hypervector dimension (None while no session is open)."""
        return self._dim

    def session(self, session_id: str) -> StreamingLaelaps:
        """The live stream engine of a session."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(f"no open session {session_id!r}") from None

    def open(
        self, session_id: str, detector: LaelapsDetector
    ) -> StreamingLaelaps:
        """Open a new stream session for a fitted detector.

        Args:
            session_id: Unique session key (e.g. a patient/device id).
            detector: A fitted detector; its hypervector dimension must
                match every other open session (the cross-session sweep
                shares one packed word layout), electrode counts and
                backends may differ freely.
        """
        if session_id in self._sessions:
            raise ValueError(f"session {session_id!r} is already open")
        if self._dim is not None and detector.config.dim != self._dim:
            raise ValueError(
                f"session dimension {detector.config.dim} does not match "
                f"the manager's shared dimension {self._dim}"
            )
        stream = StreamingLaelaps(detector)
        self._sessions[session_id] = stream
        self._dim = detector.config.dim
        return stream

    def close(self, session_id: str) -> None:
        """Drop a session and its live state."""
        self.session(session_id)
        del self._sessions[session_id]
        if not self._sessions:
            self._dim = None

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------

    def push(self, session_id: str, chunk: np.ndarray) -> list[StreamEvent]:
        """Push one chunk into one session (see :meth:`push_many`)."""
        return self.push_many({session_id: chunk})[session_id]

    def push_many(
        self, chunks: Mapping[str, np.ndarray]
    ) -> dict[str, list[StreamEvent]]:
        """Advance many sessions at once, classifying in one sweep.

        Each session's encoder consumes its chunk independently (code
        continuation and window bundling are inherently per-stream);
        the completed H vectors of every session are then packed into a
        single query block and classified against a stack of all
        involved prototypes by one vectorized XOR + popcount sweep.
        Results are bit-identical to pushing each session alone.

        Args:
            chunks: Mapping of session id to raw chunk
                ``(n_samples, n_electrodes_of_that_session)``; chunk
                sizes may differ per session.

        Returns:
            Per-session lists of completed-window events (empty where a
            chunk finished no window).
        """
        # Validate every session id and chunk shape before touching any
        # stream state: a bad entry must not leave earlier sessions with
        # half-consumed ticks (their windows would vanish unclassified).
        order = list(chunks)
        arrays: dict[str, np.ndarray] = {}
        for session_id in order:
            stream = self.session(session_id)
            arrays[session_id] = validate_chunk(
                session_id, chunks[session_id], stream.detector.n_electrodes
            )
        h_blocks: list[tuple[str, np.ndarray]] = []
        events: dict[str, list[StreamEvent]] = {}
        for session_id in order:
            stream = self._sessions[session_id]
            h_vectors = stream.encode_chunk(arrays[session_id])
            events[session_id] = []
            if h_vectors.shape[0]:
                h_blocks.append((session_id, h_vectors))
        if not h_blocks:
            return events
        queries = []
        owners = []
        protos = []
        labels_table = []
        kernels = set()
        for owner, (session_id, h_vectors) in enumerate(h_blocks):
            stream = self._sessions[session_id]
            packed = stream.detector.engine.pack_queries(h_vectors)
            queries.append(packed)
            owners.append(np.full(packed.shape[0], owner, dtype=np.intp))
            block, block_labels = stream.detector.memory.packed_block()
            protos.append(block)
            labels_table.append(block_labels)
            kernels.add(stream.detector.engine.grouped_kernel)
        # When every involved session runs the same engine, its grouped
        # kernel carries the tick (the packed-native engine's nogil
        # sweep, typically); mixed fleets fall back to the shared numpy
        # sweep — all implementations are bit-exact, so this only picks
        # a speed, never a result.
        sweep = kernels.pop() if len(kernels) == 1 else grouped_classify_packed
        labels, distances = sweep(
            np.concatenate(queries, axis=0),
            np.stack(protos),
            np.concatenate(owners),
            np.stack(labels_table),
        )
        deltas = delta_scores(distances)
        offset = 0
        for session_id, h_vectors in h_blocks:
            n = h_vectors.shape[0]
            events[session_id] = self._sessions[session_id].emit_events(
                labels[offset : offset + n], deltas[offset : offset + n]
            )
            offset += n
        return events

    def run(
        self,
        signals: Mapping[str, np.ndarray],
        chunk_samples: int,
    ) -> dict[str, list[StreamEvent]]:
        """Stream whole recordings through many sessions in lockstep.

        Convenience mirror of :meth:`StreamingLaelaps.run`: every tick
        delivers the next ``chunk_samples`` of each signal (sessions
        whose signal is exhausted simply stop receiving), so all
        classification traffic flows through the batched sweep.
        """
        for session_id in signals:
            self.session(session_id)
        events: dict[str, list[StreamEvent]] = {
            session_id: [] for session_id in signals
        }
        for tick in lockstep_ticks(signals, chunk_samples):
            for session_id, new_events in self.push_many(tick).items():
                events[session_id].extend(new_events)
        return events

    # ------------------------------------------------------------------
    # Checkpointing and shard migration
    # ------------------------------------------------------------------

    def export_session(self, session_id: str) -> dict:
        """One session as a portable payload (model + live stream state).

        The shard-migration unit of the serving layer: the returned dict
        is picklable (plain dicts and numpy arrays), contains the full
        model (:func:`repro.core.persistence.detector_payload`) and the
        complete mid-stream state (:meth:`StreamingLaelaps.state_dict`),
        and round-trips bit-exactly through :meth:`import_session` on
        any other manager — in another process or on another host.  The
        session stays open; use :meth:`pop_session` to move it out.
        """
        from repro.core.persistence import detector_payload

        stream = self.session(session_id)
        return {
            "model": detector_payload(stream.detector),
            "state": stream.state_dict(),
        }

    def import_session(self, session_id: str, payload: dict) -> StreamingLaelaps:
        """Open a session from an :meth:`export_session` payload.

        Rebuilds the detector from the payload's model description and
        resumes the stream mid-flight; subsequent events are
        bit-identical to the exporting manager's.
        """
        from repro.core.persistence import detector_from_payload

        stream = self.open(session_id, detector_from_payload(payload["model"]))
        stream.restore_state(payload["state"])
        return stream

    def pop_session(self, session_id: str) -> dict:
        """Close a session and return its :meth:`export_session` payload."""
        payload = self.export_session(session_id)
        self.close(session_id)
        return payload

    def state_dict(self) -> dict:
        """Per-session live stream state (models excluded).

        See :func:`repro.core.persistence.save_sessions` for the
        model-inclusive checkpoint.
        """
        return {
            session_id: stream.state_dict()
            for session_id, stream in self._sessions.items()
        }
