"""Label postprocessing: delta scores, t_c / t_r voting, t_r tuning.

Sec. III-C of the paper: every 0.5 s the classifier emits a label and the
score ``delta = |eta(H, P1) - eta(H, P2)|`` (the gap between the two
prototype distances, a confidence proxy).  A postprocessing window slides
over the last 10 labels; an alarm is flagged only when

* at least ``t_c`` of those labels are ictal (the paper uses t_c = 10,
  i.e. ten consecutive ictal labels), and
* the mean delta of those ictal labels exceeds ``t_r``.

``t_c`` is global; ``t_r`` is tuned per patient on the training tail with
the rule implemented in :func:`tune_tr`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import ICTAL


def delta_scores(distances: np.ndarray) -> np.ndarray:
    """Confidence score per window: |eta(H, P1) - eta(H, P2)|.

    Args:
        distances: int array ``(n_windows, 2)`` of Hamming distances to
            the interictal and ictal prototypes.

    Returns:
        float64 array ``(n_windows,)``.
    """
    arr = np.asarray(distances)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected (n_windows, 2) distances, got {arr.shape}")
    return np.abs(arr[:, 0].astype(np.float64) - arr[:, 1].astype(np.float64))


def _sliding_sum(values: np.ndarray, width: int) -> np.ndarray:
    """Sum of each trailing window of ``width`` values; shape preserved.

    Entry ``i`` sums ``values[max(0, i - width + 1) : i + 1]`` — windows at
    the start are truncated, which matters only for the first
    ``width - 1`` labels of a recording.
    """
    csum = np.concatenate([[0.0], np.cumsum(values, dtype=np.float64)])
    idx = np.arange(len(values)) + 1
    lo = np.maximum(idx - width, 0)
    return csum[idx] - csum[lo]


def alarm_flags(
    labels: np.ndarray,
    deltas: np.ndarray,
    postprocess_len: int = 10,
    tc: int = 10,
    tr: float = 0.0,
) -> np.ndarray:
    """Per-window alarm condition of Sec. III-C.

    Args:
        labels: int array ``(n_windows,)`` of classifier labels.
        deltas: float array ``(n_windows,)`` of delta scores.
        postprocess_len: Voting-window length in labels.
        tc: Minimum ictal-label count inside the voting window.
        tr: Threshold the mean delta of the ictal labels must *exceed*.

    Returns:
        bool array ``(n_windows,)``: True where the alarm condition holds.
    """
    labels_arr = np.asarray(labels)
    deltas_arr = np.asarray(deltas, dtype=np.float64)
    if labels_arr.shape != deltas_arr.shape or labels_arr.ndim != 1:
        raise ValueError(
            f"labels {labels_arr.shape} and deltas {deltas_arr.shape} "
            "must be equal-length 1-D arrays"
        )
    if not 1 <= tc <= postprocess_len:
        raise ValueError(f"need 1 <= tc <= postprocess_len, got tc={tc}")
    ictal = (labels_arr == ICTAL).astype(np.float64)
    ictal_counts = _sliding_sum(ictal, postprocess_len)
    ictal_delta_sums = _sliding_sum(ictal * deltas_arr, postprocess_len)
    with np.errstate(invalid="ignore", divide="ignore"):
        mean_delta = np.where(
            ictal_counts > 0, ictal_delta_sums / ictal_counts, 0.0
        )
    return (ictal_counts >= tc) & (mean_delta > tr)


def flags_to_onsets(flags: np.ndarray) -> np.ndarray:
    """Indices where the alarm condition newly becomes true (rising edges)."""
    arr = np.asarray(flags, dtype=bool)
    if arr.size == 0:
        return np.zeros(0, dtype=np.int64)
    rising = np.flatnonzero(arr & ~np.concatenate([[False], arr[:-1]]))
    return rising.astype(np.int64)


@dataclass(frozen=True)
class PostprocessConfig:
    """Postprocessor parameters (see :func:`alarm_flags`)."""

    postprocess_len: int = 10
    tc: int = 10
    tr: float = 0.0

    def __post_init__(self) -> None:
        if not 1 <= self.tc <= self.postprocess_len:
            raise ValueError(
                f"need 1 <= tc <= postprocess_len, got tc={self.tc}, "
                f"len={self.postprocess_len}"
            )
        if self.tr < 0:
            raise ValueError(f"tr must be >= 0, got {self.tr}")


class Postprocessor:
    """Stateful wrapper turning label/delta streams into alarm onsets."""

    def __init__(self, config: PostprocessConfig | None = None) -> None:
        self.config = config or PostprocessConfig()

    def flags(self, labels: np.ndarray, deltas: np.ndarray) -> np.ndarray:
        """Alarm condition per window (see :func:`alarm_flags`)."""
        cfg = self.config
        return alarm_flags(
            labels, deltas, cfg.postprocess_len, cfg.tc, cfg.tr
        )

    def onsets(self, labels: np.ndarray, deltas: np.ndarray) -> np.ndarray:
        """Window indices of alarm onsets (rising edges of the condition)."""
        return flags_to_onsets(self.flags(labels, deltas))


def tune_tr(
    labels: np.ndarray,
    deltas: np.ndarray,
    ictal_truth: np.ndarray,
    alpha: float = 0.0,
    postprocess_len: int = 10,
    tc: int = 10,
) -> float:
    """Patient-specific t_r tuning rule of Sec. III-C.

    Run on the *training* tail (everything up to the end of the training
    set that was not used to build the prototypes is fair game):

    * If the hard t_c filter alone produces no false alarm on the
      interictal part, set ``t_r = min(delta_ictal)`` — maximally robust
      without touching sensitivity.
    * Otherwise set ``t_r`` to the highest integer multiple of
      ``max(delta_interictal)`` that stays below
      ``max(delta_ictal) - alpha``, where ``alpha`` compensates for the
      classifier's higher confidence on the samples it was trained on.

    Degenerate cases (documented choices, not in the paper):

    * no ictal windows in the tuning data -> return 0 (nothing to tune);
    * no valid multiple exists -> return ``max(delta_interictal)``,
      prioritising the paper's headline goal of zero false alarms.

    Args:
        labels: Classifier labels over the tuning stream.
        deltas: Delta scores over the tuning stream.
        ictal_truth: Boolean ground-truth mask (True inside seizures).
        alpha: The confidence-compensation term; computed across patients
            by :func:`alpha_from_cohort`.
        postprocess_len: Voting window length.
        tc: Hard label-count threshold.

    Returns:
        The tuned ``t_r`` value (float, >= 0).
    """
    labels_arr = np.asarray(labels)
    deltas_arr = np.asarray(deltas, dtype=np.float64)
    truth = np.asarray(ictal_truth, dtype=bool)
    if not labels_arr.shape == deltas_arr.shape == truth.shape:
        raise ValueError("labels, deltas and ictal_truth must align")
    ictal_deltas = deltas_arr[truth]
    if ictal_deltas.size == 0:
        return 0.0
    flags = alarm_flags(labels_arr, deltas_arr, postprocess_len, tc, tr=0.0)
    false_alarm = bool(np.any(flags & ~truth))
    if not false_alarm:
        return float(ictal_deltas.min())
    interictal_deltas = deltas_arr[~truth]
    max_inter = float(interictal_deltas.max()) if interictal_deltas.size else 0.0
    if max_inter <= 0.0:
        return float(ictal_deltas.min())
    bound = float(ictal_deltas.max()) - alpha
    multiples = int(np.ceil(bound / max_inter)) - 1  # highest k with k*m < bound
    if multiples < 1:
        return max_inter
    return multiples * max_inter


def alpha_from_cohort(
    trained_vs_heldout: list[tuple[float, float]]
) -> float:
    """Compute the alpha compensation term across patients.

    Args:
        trained_vs_heldout: Per-patient pairs ``(mean delta_ictal on the
            windows used to train the prototypes, mean delta_ictal on the
            remaining training-set ictal windows)``.

    Returns:
        The mean difference across patients (clipped at 0: a classifier
        cannot be *less* confident on its own training samples in a way
        that should loosen the threshold).
    """
    if not trained_vs_heldout:
        return 0.0
    diffs = [trained - heldout for trained, heldout in trained_vs_heldout]
    return max(0.0, float(np.mean(diffs)))
