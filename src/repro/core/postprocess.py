"""Label postprocessing: delta scores, t_c / t_r voting, t_r tuning.

Sec. III-C of the paper: every 0.5 s the classifier emits a label and the
score ``delta = |eta(H, P1) - eta(H, P2)|`` (the gap between the two
prototype distances, a confidence proxy).  A postprocessing window slides
over the last 10 labels; an alarm is flagged only when

* at least ``t_c`` of those labels are ictal (the paper uses t_c = 10,
  i.e. ten consecutive ictal labels), and
* the mean delta of those ictal labels exceeds ``t_r``.

``t_c`` is global; ``t_r`` is tuned per patient on the training tail with
the rule implemented in :func:`tune_tr`.

Warm-up / alarm-latency contract
--------------------------------

The voting window is only evaluated once it is *full*: no alarm can be
raised before ``postprocess_len`` labels exist, so the earliest possible
alarm sits at window index ``postprocess_len - 1`` of a recording (or
stream).  Batch (:func:`alarm_flags`, :meth:`Postprocessor.flags`,
:func:`tune_tr`) and incremental (:class:`AlarmStateMachine`, and through
it ``StreamingLaelaps`` and the stream sessions) paths share one
implementation — :class:`AlarmStateMachine` — and therefore produce
bit-identical alarm onsets for every ``t_c <= postprocess_len`` and any
chunking of the label stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import ICTAL


def delta_scores(distances: np.ndarray) -> np.ndarray:
    """Confidence score per window: |eta(H, P1) - eta(H, P2)|.

    Args:
        distances: int array ``(n_windows, 2)`` of Hamming distances to
            the interictal and ictal prototypes.

    Returns:
        float64 array ``(n_windows,)``.
    """
    arr = np.asarray(distances)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected (n_windows, 2) distances, got {arr.shape}")
    return np.abs(arr[:, 0].astype(np.float64) - arr[:, 1].astype(np.float64))


def _windowed_sum(values: np.ndarray, width: int) -> np.ndarray:
    """Sum of each trailing window of ``width`` values; shape preserved.

    Entry ``i`` sums ``values[max(0, i - width + 1) : i + 1]`` (leading
    windows are zero-padded; the alarm machine masks them out under the
    warm-up contract anyway).  Each window is reduced explicitly rather
    than as a difference of running cumsums: a full window's sum then
    depends *only* on the window's contents, never on the stream prefix,
    which is what keeps the state machine bit-identical under arbitrary
    chunking even for adversarially scaled float deltas (a cumsum
    difference can absorb a tiny delta into a large prefix total).
    """
    if len(values) == 0:
        return np.zeros(0, dtype=np.float64)
    padded = np.concatenate(
        [np.zeros(width - 1, dtype=np.float64), values]
    )
    return np.lib.stride_tricks.sliding_window_view(padded, width).sum(
        axis=-1
    )


def alarm_flags(
    labels: np.ndarray,
    deltas: np.ndarray,
    postprocess_len: int = 10,
    tc: int = 10,
    tr: float = 0.0,
) -> np.ndarray:
    """Per-window alarm condition of Sec. III-C (one-shot batch form).

    Thin wrapper over :class:`AlarmStateMachine` fed the whole stream in
    one chunk, so batch and streaming postprocessing cannot diverge.  No
    window can flag before the voting window is full: the earliest
    possible True is at index ``postprocess_len - 1``.

    Args:
        labels: int array ``(n_windows,)`` of classifier labels.
        deltas: float array ``(n_windows,)`` of delta scores.
        postprocess_len: Voting-window length in labels.
        tc: Minimum ictal-label count inside the voting window.
        tr: Threshold the mean delta of the ictal labels must *exceed*.

    Returns:
        bool array ``(n_windows,)``: True where the alarm condition holds.
    """
    machine = AlarmStateMachine(
        PostprocessConfig(postprocess_len=postprocess_len, tc=tc, tr=tr)
    )
    flags, _ = machine.update(labels, deltas)
    return flags


def flags_to_onsets(flags: np.ndarray) -> np.ndarray:
    """Indices where the alarm condition newly becomes true (rising edges).

    Args:
        flags: Boolean array ``(n_windows,)`` (as returned by
            :func:`alarm_flags`).

    Returns:
        int64 array of window indices where ``flags`` goes False->True
        (index 0 counts when ``flags[0]`` is True) — the alarm onsets.
    """
    arr = np.asarray(flags, dtype=bool)
    if arr.size == 0:
        return np.zeros(0, dtype=np.int64)
    rising = np.flatnonzero(arr & ~np.concatenate([[False], arr[:-1]]))
    return rising.astype(np.int64)


@dataclass(frozen=True)
class PostprocessConfig:
    """Postprocessor parameters (see :func:`alarm_flags`)."""

    postprocess_len: int = 10
    tc: int = 10
    tr: float = 0.0

    def __post_init__(self) -> None:
        if not 1 <= self.tc <= self.postprocess_len:
            raise ValueError(
                f"need 1 <= tc <= postprocess_len, got tc={self.tc}, "
                f"len={self.postprocess_len}"
            )
        if self.tr < 0:
            raise ValueError(f"tr must be >= 0, got {self.tr}")


class AlarmStateMachine:
    """The canonical Sec. III-C postprocessor: vectorized *and* resumable.

    One instance consumes a label/delta stream in arbitrary chunks (a
    whole recording at once, one label at a time, or anything between)
    and evaluates the t_c / t_r vote over the trailing
    ``postprocess_len`` labels.  Chunking never changes the output:
    feeding chunks ``a`` then ``b`` produces exactly the flags of
    feeding ``a + b`` in one call.  Both the batch pipeline
    (:func:`alarm_flags`, :meth:`Postprocessor.flags`, :func:`tune_tr`)
    and the streaming/session engines run through this class, which is
    what guarantees bit-identical alarms between ``detect()`` and
    incremental ``push()``.

    Warm-up contract: the vote is only taken once the window is full,
    so no flag can be raised for a global window index smaller than
    ``postprocess_len - 1`` — the detector's intrinsic alarm latency.

    The full live state is exposed through :meth:`state_dict` /
    :meth:`restore_state` (used by the stream-session checkpointing),
    and is O(postprocess_len) regardless of stream length.
    """

    def __init__(self, config: PostprocessConfig | None = None) -> None:
        self.config = config or PostprocessConfig()
        self._tail_labels = np.zeros(0, dtype=np.int64)
        self._tail_deltas = np.zeros(0, dtype=np.float64)
        self._seen = 0
        self._active = False

    @property
    def labels_seen(self) -> int:
        """Total labels consumed so far."""
        return self._seen

    @property
    def alarm_active(self) -> bool:
        """Whether the alarm condition held at the last consumed label."""
        return self._active

    def reset(self) -> None:
        """Forget all stream state (start of a new recording)."""
        self._tail_labels = np.zeros(0, dtype=np.int64)
        self._tail_deltas = np.zeros(0, dtype=np.float64)
        self._seen = 0
        self._active = False

    def update(
        self, labels: np.ndarray, deltas: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Consume a chunk of labels/deltas, continuing the stream.

        Args:
            labels: int array ``(n,)`` of classifier labels.
            deltas: float array ``(n,)`` of delta scores.

        Returns:
            ``(flags, rising)`` bool arrays ``(n,)``: the per-label alarm
            condition and its rising edges (True exactly where an alarm
            *onset* occurs, carried correctly across chunk boundaries).
        """
        cfg = self.config
        labels_arr = np.asarray(labels, dtype=np.int64)
        deltas_arr = np.asarray(deltas, dtype=np.float64)
        if labels_arr.shape != deltas_arr.shape or labels_arr.ndim != 1:
            raise ValueError(
                f"labels {labels_arr.shape} and deltas {deltas_arr.shape} "
                "must be equal-length 1-D arrays"
            )
        n = labels_arr.shape[0]
        if n == 0:
            empty = np.zeros(0, dtype=bool)
            return empty, empty.copy()
        width = cfg.postprocess_len
        joined_labels = np.concatenate([self._tail_labels, labels_arr])
        joined_deltas = np.concatenate([self._tail_deltas, deltas_arr])
        carry = self._tail_labels.shape[0]
        ictal = (joined_labels == ICTAL).astype(np.float64)
        ictal_counts = _windowed_sum(ictal, width)[carry:]
        ictal_delta_sums = _windowed_sum(ictal * joined_deltas, width)[carry:]
        with np.errstate(invalid="ignore", divide="ignore"):
            mean_delta = np.where(
                ictal_counts > 0, ictal_delta_sums / ictal_counts, 0.0
            )
        flags = (ictal_counts >= cfg.tc) & (mean_delta > cfg.tr)
        # Warm-up: a window only votes once `width` labels exist.
        global_index = self._seen + np.arange(n)
        flags &= global_index >= width - 1
        previous = np.concatenate([[self._active], flags[:-1]])
        rising = flags & ~previous
        self._seen += n
        keep = min(width - 1, joined_labels.shape[0])
        self._tail_labels = joined_labels[joined_labels.shape[0] - keep :].copy()
        self._tail_deltas = joined_deltas[joined_deltas.shape[0] - keep :].copy()
        self._active = bool(flags[-1])
        return flags, rising

    def state_dict(self) -> dict:
        """Snapshot of the live stream state (checkpointable)."""
        return {
            "tail_labels": self._tail_labels.copy(),
            "tail_deltas": self._tail_deltas.copy(),
            "seen": int(self._seen),
            "active": bool(self._active),
        }

    def restore_state(self, state: dict) -> "AlarmStateMachine":
        """Resume from a :meth:`state_dict` snapshot (bit-exact)."""
        tail_labels = np.asarray(state["tail_labels"], dtype=np.int64)
        tail_deltas = np.asarray(state["tail_deltas"], dtype=np.float64)
        if tail_labels.shape != tail_deltas.shape or tail_labels.ndim != 1:
            raise ValueError("state tails must be equal-length 1-D arrays")
        if tail_labels.shape[0] > self.config.postprocess_len - 1:
            raise ValueError(
                f"state tail of {tail_labels.shape[0]} labels exceeds "
                f"postprocess_len - 1 = {self.config.postprocess_len - 1}"
            )
        self._tail_labels = tail_labels.copy()
        self._tail_deltas = tail_deltas.copy()
        self._seen = int(state["seen"])
        self._active = bool(state["active"])
        return self


class Postprocessor:
    """Stateless batch wrapper turning label/delta streams into onsets.

    Each call runs a fresh :class:`AlarmStateMachine` over the whole
    stream, so results match the incremental engines exactly.
    """

    def __init__(self, config: PostprocessConfig | None = None) -> None:
        self.config = config or PostprocessConfig()

    def machine(self) -> AlarmStateMachine:
        """A fresh resumable state machine at this configuration."""
        return AlarmStateMachine(self.config)

    def flags(self, labels: np.ndarray, deltas: np.ndarray) -> np.ndarray:
        """Alarm condition per window (see :func:`alarm_flags`)."""
        flags, _ = self.machine().update(labels, deltas)
        return flags

    def onsets(self, labels: np.ndarray, deltas: np.ndarray) -> np.ndarray:
        """Window indices of alarm onsets (rising edges of the condition)."""
        return flags_to_onsets(self.flags(labels, deltas))


def tune_tr(
    labels: np.ndarray,
    deltas: np.ndarray,
    ictal_truth: np.ndarray,
    alpha: float = 0.0,
    postprocess_len: int = 10,
    tc: int = 10,
) -> float:
    """Patient-specific t_r tuning rule of Sec. III-C.

    Run on the *training* tail (everything up to the end of the training
    set that was not used to build the prototypes is fair game):

    * If the hard t_c filter alone produces no false alarm on the
      interictal part, set ``t_r = min(delta_ictal)`` — maximally robust
      without touching sensitivity.
    * Otherwise set ``t_r`` to the highest integer multiple of
      ``max(delta_interictal)`` that stays below
      ``max(delta_ictal) - alpha``, where ``alpha`` compensates for the
      classifier's higher confidence on the samples it was trained on.

    Degenerate cases (documented choices, not in the paper):

    * no ictal windows in the tuning data -> return 0 (nothing to tune);
    * no valid multiple exists -> return ``max(delta_interictal)``,
      prioritising the paper's headline goal of zero false alarms.

    Args:
        labels: Classifier labels over the tuning stream.
        deltas: Delta scores over the tuning stream.
        ictal_truth: Boolean ground-truth mask (True inside seizures).
        alpha: The confidence-compensation term; computed across patients
            by :func:`alpha_from_cohort`.
        postprocess_len: Voting window length.
        tc: Hard label-count threshold.

    Returns:
        The tuned ``t_r`` value (float, >= 0).
    """
    labels_arr = np.asarray(labels)
    deltas_arr = np.asarray(deltas, dtype=np.float64)
    truth = np.asarray(ictal_truth, dtype=bool)
    if not labels_arr.shape == deltas_arr.shape == truth.shape:
        raise ValueError("labels, deltas and ictal_truth must align")
    ictal_deltas = deltas_arr[truth]
    if ictal_deltas.size == 0:
        return 0.0
    flags = alarm_flags(labels_arr, deltas_arr, postprocess_len, tc, tr=0.0)
    false_alarm = bool(np.any(flags & ~truth))
    if not false_alarm:
        return float(ictal_deltas.min())
    interictal_deltas = deltas_arr[~truth]
    max_inter = float(interictal_deltas.max()) if interictal_deltas.size else 0.0
    if max_inter <= 0.0:
        return float(ictal_deltas.min())
    bound = float(ictal_deltas.max()) - alpha
    multiples = int(np.ceil(bound / max_inter)) - 1  # highest k with k*m < bound
    if multiples < 1:
        return max_inter
    return multiples * max_inter


def alpha_from_cohort(
    trained_vs_heldout: list[tuple[float, float]]
) -> float:
    """Compute the alpha compensation term across patients.

    Args:
        trained_vs_heldout: Per-patient pairs ``(mean delta_ictal on the
            windows used to train the prototypes, mean delta_ictal on the
            remaining training-set ictal windows)``.

    Returns:
        The mean difference across patients (clipped at 0: a classifier
        cannot be *less* confident on its own training samples in a way
        that should loosen the threshold).
    """
    if not trained_vs_heldout:
        return 0.0
    diffs = [trained - heldout for trained, heldout in trained_vs_heldout]
    return max(0.0, float(np.mean(diffs)))
