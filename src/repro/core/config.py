"""Configuration of the Laelaps detector."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hdc.engine import (
    UNPACKED_ENGINE,
    backend_choices,
    resolve_engine_name,
)
from repro.lbp.codes import LBPConfig
from repro.signal.windows import WindowSpec

#: Class label of the between-seizure brain state.
INTERICTAL = 0
#: Class label of the seizure brain state.
ICTAL = 1

#: Paper ceiling for the hypervector dimension (the "golden model").
GOLDEN_DIM = 10_000
#: Paper floor for the hypervector dimension.
MIN_DIM = 1_000

#: Valid ``backend`` values at import time: the engines registered in
#: :mod:`repro.hdc.engine` plus the ``auto`` selector.  Validation
#: follows the *live* registry (an engine registered later is accepted
#: even though this snapshot omits it); ``repro backends`` or
#: :func:`repro.hdc.engine.backend_choices` always reflect the current
#: set.  All engines are bit-exact against each other; they differ only
#: in representation and speed.
BACKENDS = backend_choices()


@dataclass(frozen=True)
class LaelapsConfig:
    """All knobs of the Laelaps pipeline with the paper's defaults.

    Attributes:
        dim: Hypervector dimension d in bits.  The paper builds a golden
            model at 10 kbit and shrinks per patient down to 1 kbit
            (mean 4.3 kbit) without performance loss.
        lbp_length: LBP code length l; the paper fixes 6 (codes 4..8
            perform similarly, larger codes increase the minimum window).
        fs: Sampling rate of the preprocessed signal in Hz.
        window_s: Analysis-window length in seconds (1 s).
        step_s: Window hop in seconds (0.5 s) — also the label period.
        postprocess_len: Number of most recent labels the postprocessor
            votes over (10).
        tc: Minimum count of ictal labels inside the postprocessing window
            to flag an alarm (10, i.e. all of them).
        tr: Confidence threshold on the mean delta score of the ictal
            labels; 0 disables it.  Tuned per patient by
            :func:`repro.core.postprocess.tune_tr`.
        seed: Master seed; item-memory seeds are derived from it, so a
            config fully determines the model.
        backend: Name of the compute engine running the pipeline — any
            name registered in :mod:`repro.hdc.engine` (``unpacked``,
            the word-domain ``packed``, the fused ``packed-fused``) or
            ``auto`` to pick the fastest at detector construction.
            Every engine produces bit-identical labels and confidence
            scores; see :data:`BACKENDS` and the ``repro backends``
            command.
    """

    dim: int = GOLDEN_DIM
    lbp_length: int = 6
    fs: float = 512.0
    window_s: float = 1.0
    step_s: float = 0.5
    postprocess_len: int = 10
    tc: int = 10
    tr: float = 0.0
    seed: int = 0x1AE1A95
    backend: str = UNPACKED_ENGINE

    def __post_init__(self) -> None:
        if self.dim < 2:
            raise ValueError(f"dim must be >= 2, got {self.dim}")
        resolve_engine_name(self.backend)  # validate against the registry
        LBPConfig(length=self.lbp_length)  # validate
        if self.fs <= 0:
            raise ValueError(f"fs must be positive, got {self.fs}")
        if self.window_s <= 0 or self.step_s <= 0:
            raise ValueError("window_s and step_s must be positive")
        if self.tc < 1 or self.postprocess_len < 1:
            raise ValueError("tc and postprocess_len must be >= 1")
        if self.tc > self.postprocess_len:
            raise ValueError(
                f"tc={self.tc} cannot exceed postprocess_len="
                f"{self.postprocess_len}"
            )
        if self.tr < 0:
            raise ValueError(f"tr must be >= 0, got {self.tr}")
        window = self.window_spec.window_samples
        if window <= (1 << self.lbp_length):
            raise ValueError(
                "analysis window must contain more samples than the LBP "
                f"alphabet size: {window} <= {1 << self.lbp_length} "
                "(Sec. III-A requires every symbol to be able to occur)"
            )

    @property
    def window_spec(self) -> WindowSpec:
        """Window geometry in samples at :attr:`fs`."""
        return WindowSpec.from_seconds(self.window_s, self.step_s, self.fs)

    @property
    def alphabet_size(self) -> int:
        """Number of LBP symbols, ``2 ** lbp_length``."""
        return 1 << self.lbp_length

    @property
    def code_memory_seed(self) -> int:
        """Seed of IM1 (LBP-code vectors)."""
        return self.seed * 2 + 1

    @property
    def electrode_memory_seed(self) -> int:
        """Seed of IM2 (electrode-name vectors)."""
        return self.seed * 2 + 2

    def with_dim(self, dim: int) -> "LaelapsConfig":
        """Copy of this config at another hypervector dimension."""
        return replace(self, dim=dim)

    def with_tr(self, tr: float) -> "LaelapsConfig":
        """Copy of this config with another confidence threshold."""
        return replace(self, tr=tr)

    def with_backend(self, backend: str) -> "LaelapsConfig":
        """Copy of this config on another inference backend."""
        return replace(self, backend=backend)
