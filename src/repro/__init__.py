"""Reproduction of *Laelaps* (Burrello et al., DATE 2019).

Laelaps is an energy-efficient epileptic-seizure detector for long-term
intracranial EEG (iEEG).  It symbolises each electrode's signal into 6-bit
local binary patterns (LBP), fuses the per-sample symbols of all electrodes
into a single d-bit hypervector with hyperdimensional (HD) computing,
classifies every half second against two prototype hypervectors held in an
associative memory, and turns the label/confidence stream into alarms with a
small voting postprocessor.

The package is organised as independent substrates (see
``docs/architecture.md`` for the layer diagram and ``docs/paper_map.md``
for the per-module paper anchors):

``repro.signal``
    Filtering, decimation and windowing of raw iEEG.
``repro.lbp``
    Local-binary-pattern symbolisation and symbol statistics.
``repro.hdc``
    Binary hypervector backends, item memories, HD arithmetic, the
    spatial/temporal encoders and the associative memory.
``repro.core``
    The Laelaps detector itself: training, inference, postprocessing,
    per-patient dimension tuning, streaming/multi-session serving and
    model/session persistence.
``repro.serve``
    Sharded serving of session fleets across worker processes: routing,
    backpressure, rebalancing, fleet checkpoints.
``repro.data``
    Synthetic long-term iEEG generation and the 18-patient evaluation
    cohort mirroring Table I of the paper.
``repro.nn``
    A small from-scratch neural-network framework (needed for the CNN and
    LSTM baselines).
``repro.baselines``
    The three state-of-the-art comparators: LBP+SVM, STFT+CNN and LSTM.
``repro.evaluation``
    Metrics (sensitivity, false-detection rate, onset delay), the
    chronological train/test protocol and the Table I harness.
``repro.hw``
    An analytic Tegra X2 performance/energy model reproducing Table II and
    Fig. 3.
"""

from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.data.cohort import build_cohort, cohort_patient_specs
from repro.data.model import Cohort, Patient, Recording, SeizureEvent
from repro.data.synthetic import SyntheticIEEGGenerator
from repro.evaluation.metrics import DetectionMetrics
from repro.evaluation.runner import evaluate_detector

__version__ = "1.0.0"

__all__ = [
    "LaelapsConfig",
    "LaelapsDetector",
    "SyntheticIEEGGenerator",
    "Cohort",
    "Patient",
    "Recording",
    "SeizureEvent",
    "DetectionMetrics",
    "build_cohort",
    "cohort_patient_specs",
    "evaluate_detector",
    "__version__",
]
