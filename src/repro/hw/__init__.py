"""Tegra X2 performance/energy model (Sec. V of the paper).

The paper measures execution time and energy per 0.5 s classification
event on an Nvidia Jetson TX2 in the Max-Q power mode.  No TX2 is
available here, so this package provides an analytic substitute (see
``docs/paper_map.md`` for the substitution rationale):

* :mod:`repro.hw.platform` — the TX2 resource description (SMs, clocks,
  shared memory, DRAM bandwidth, Max-Q power envelope);
* :mod:`repro.hw.kernels` — a kernel-grid cost model (wave scheduling,
  launch overhead, compute vs memory boundedness) plus the three Laelaps
  kernels of Fig. 2 with instruction counts derived from this repo's own
  implementation;
* :mod:`repro.hw.methods` — operation/byte counts of all four methods as
  a function of electrode count;
* :mod:`repro.hw.calibration` — the paper's Table II anchor measurements
  and the fitting of per-method throughput/power constants to them;
* :mod:`repro.hw.energy` — the user-facing estimator regenerating
  Table II, Fig. 3 and the electrode-scaling claims.
"""

from repro.hw.calibration import TABLE2_ANCHORS, CalibratedMethod, calibrate
from repro.hw.energy import (
    CostEstimate,
    MethodCostModel,
    electrode_scaling,
    fig3_points,
    table2,
)
from repro.hw.kernels import (
    KernelCost,
    KernelSpec,
    laelaps_kernels,
    simulate_kernel,
    simulate_kernels,
)
from repro.hw.methods import method_op_counts
from repro.hw.platform import MAXQ, TX2Platform

__all__ = [
    "TX2Platform",
    "MAXQ",
    "KernelSpec",
    "KernelCost",
    "simulate_kernel",
    "simulate_kernels",
    "laelaps_kernels",
    "method_op_counts",
    "TABLE2_ANCHORS",
    "CalibratedMethod",
    "calibrate",
    "MethodCostModel",
    "CostEstimate",
    "table2",
    "fig3_points",
    "electrode_scaling",
]
