"""User-facing TX2 cost estimation: Table II, Fig. 3, scaling sweeps."""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.calibration import TABLE2_ANCHORS, CalibratedMethod, calibrate
from repro.hw.kernels import laelaps_kernels, simulate_kernels
from repro.hw.platform import MAXQ, TX2Platform

#: Mean FDR of each method in the paper (Table I), used as the Fig. 3
#: y-axis when no measured cohort FDRs are supplied.
PAPER_MEAN_FDR: dict[str, float] = {
    "laelaps": 0.0,
    "svm": 0.31,
    "cnn": 0.36,
    "lstm": 0.54,
}


@dataclass(frozen=True)
class CostEstimate:
    """Modelled cost of one 0.5 s classification event."""

    method: str
    n_electrodes: int
    time_ms: float
    energy_mj: float
    resource: str

    def speedup_vs(self, other: "CostEstimate") -> float:
        """How much slower ``other`` is (other.time / self.time)."""
        return other.time_ms / self.time_ms

    def energy_saving_vs(self, other: "CostEstimate") -> float:
        """How much more energy ``other`` uses."""
        return other.energy_mj / self.energy_mj


class MethodCostModel:
    """Calibrated cost model over the four Table II methods.

    Args:
        platform: TX2 description (used for the kernel-level checks and
            shared-memory validation; Max-Q by default).
        anchors: Calibration measurements; the paper's Table II by
            default.
    """

    def __init__(
        self,
        platform: TX2Platform = MAXQ,
        anchors: dict[str, dict[int, tuple[float, float]]] | None = None,
    ) -> None:
        self.platform = platform
        self.methods: dict[str, CalibratedMethod] = calibrate(
            anchors or TABLE2_ANCHORS
        )

    def estimate(self, method: str, n_electrodes: int) -> CostEstimate:
        """Cost of one classification event."""
        if method not in self.methods:
            raise KeyError(
                f"unknown method {method!r}; choose from {sorted(self.methods)}"
            )
        if n_electrodes < 1:
            raise ValueError("n_electrodes must be >= 1")
        cal = self.methods[method]
        return CostEstimate(
            method=method,
            n_electrodes=n_electrodes,
            time_ms=cal.time_ms(n_electrodes),
            energy_mj=cal.energy_mj(n_electrodes),
            resource=cal.resource,
        )

    def laelaps_kernel_breakdown(
        self, n_electrodes: int, dim: int = 1_000
    ) -> tuple[float, list]:
        """Kernel-level view of the Laelaps event (Fig. 2 structure)."""
        specs = laelaps_kernels(n_electrodes, dim)
        for spec in specs:
            if not self.platform.shared_mem_fits(spec.shared_mem_bytes):
                raise ValueError(
                    f"kernel {spec.name}: shared memory "
                    f"{spec.shared_mem_bytes} B exceeds the SM budget"
                )
        return simulate_kernels(specs, self.platform)


def table2(
    model: MethodCostModel | None = None,
    electrode_counts: tuple[int, ...] = (128, 24),
) -> list[dict[str, object]]:
    """Regenerate Table II: per-method time/energy with Laelaps ratios.

    Returns one dict per (electrode count, method) in the paper's order,
    with ``time_ratio`` / ``energy_ratio`` relative to Laelaps.
    """
    model = model or MethodCostModel()
    rows: list[dict[str, object]] = []
    for n in electrode_counts:
        base = model.estimate("laelaps", n)
        for method in ("laelaps", "svm", "cnn", "lstm"):
            est = model.estimate(method, n)
            rows.append(
                {
                    "electrodes": n,
                    "method": method,
                    "resource": est.resource,
                    "time_ms": est.time_ms,
                    "energy_mj": est.energy_mj,
                    "time_ratio": est.time_ms / base.time_ms,
                    "energy_ratio": est.energy_mj / base.energy_mj,
                }
            )
    return rows


def fig3_points(
    fdr_by_method: dict[str, float] | None = None,
    n_electrodes: int = 64,
    model: MethodCostModel | None = None,
) -> list[dict[str, float | str]]:
    """Regenerate Fig. 3: mean FDR vs energy per classification.

    Args:
        fdr_by_method: Measured cohort FDRs (e.g. from a Table I run);
            defaults to the paper's means.
        n_electrodes: 64 — the cohort's median electrode count.
        model: Cost model (default: calibrated Max-Q).
    """
    model = model or MethodCostModel()
    fdrs = fdr_by_method or PAPER_MEAN_FDR
    points: list[dict[str, float | str]] = []
    for method, fdr in fdrs.items():
        est = model.estimate(method, n_electrodes)
        points.append(
            {
                "method": method,
                "resource": est.resource,
                "energy_mj": est.energy_mj,
                "fdr_per_hour": float(fdr),
            }
        )
    return points


def electrode_scaling(
    electrode_counts: tuple[int, ...] = (24, 32, 48, 64, 96, 128),
    model: MethodCostModel | None = None,
) -> dict[str, list[CostEstimate]]:
    """Sec. V-C scaling sweep: cost vs electrode count per method."""
    model = model or MethodCostModel()
    return {
        method: [model.estimate(method, n) for n in electrode_counts]
        for method in model.methods
    }
