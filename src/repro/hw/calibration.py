"""Calibration of the cost model against the paper's Table II anchors.

The paper reports measured time and energy per classification event at
the two extreme electrode counts of the cohort (24 = P14's montage,
128 = P5's).  The model's *scaling* comes from the op counts in
:mod:`repro.hw.methods`; calibration only fixes, per method, the two
degrees of freedom op counts cannot supply — the fixed dispatch overhead
(driver, framework, data staging) and the effective time per operation of
the method's implementation (cuDNN kernels, scikit-learn SVM, our
kernels) — plus the mean board power implied by the anchor energy/time
pairs (2-2.9 W in Max-Q across all methods, a strong consistency check).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.methods import method_op_counts

#: Table II measurements: method -> electrode count -> (time ms, energy mJ).
#: 24-electrode Laelaps/SVM values use the more precise Sec. V-C text
#: numbers (12.5 ms / 20.8 ms and 32.0 mJ / 44.8 mJ).
TABLE2_ANCHORS: dict[str, dict[int, tuple[float, float]]] = {
    "laelaps": {24: (12.5, 32.0), 128: (13.0, 35.0)},
    "svm": {24: (20.8, 44.8), 128: (51.0, 103.0)},
    "cnn": {24: (53.0, 131.0), 128: (213.0, 556.0)},
    "lstm": {24: (1416.0, 3980.0), 128: (6333.0, 16224.0)},
}

#: Implementation resource of each method in the paper's best
#: configuration (Table II legend: Laelaps and CNN ran on the GPU, the
#: SVM and the LSTM were fastest on the CPU).
METHOD_RESOURCE: dict[str, str] = {
    "laelaps": "gpu",
    "svm": "cpu",
    "cnn": "gpu",
    "lstm": "cpu",
}


@dataclass(frozen=True)
class CalibratedMethod:
    """Per-method calibrated constants.

    Attributes:
        name: Method name.
        overhead_ms: Fixed per-event cost (launches, staging, framework).
        ns_per_op: Effective nanoseconds per modelled operation.
        power_w: Mean board power while running this method.
        resource: ``"gpu"`` or ``"cpu"`` (Table II legend).
    """

    name: str
    overhead_ms: float
    ns_per_op: float
    power_w: float
    resource: str

    def time_ms(self, n_electrodes: int) -> float:
        """Modelled execution time for one classification event."""
        ops = method_op_counts(self.name, n_electrodes).flops
        return self.overhead_ms + ops * self.ns_per_op * 1e-6

    def energy_mj(self, n_electrodes: int) -> float:
        """Modelled energy for one classification event."""
        return self.time_ms(n_electrodes) * self.power_w  # ms * W = uJ*1e3 = mJ


def calibrate(
    anchors: dict[str, dict[int, tuple[float, float]]] | None = None,
) -> dict[str, CalibratedMethod]:
    """Fit ``(overhead, ns/op, power)`` per method from two anchors.

    With op counts linear in the electrode count and two (n, time)
    anchors, the two time constants are determined exactly; power is the
    mean of the two implied ``energy / time`` ratios.
    """
    anchors = anchors or TABLE2_ANCHORS
    calibrated: dict[str, CalibratedMethod] = {}
    for method, points in anchors.items():
        if len(points) < 2:
            raise ValueError(f"{method}: need two anchor points")
        (n_lo, (t_lo, e_lo)), (n_hi, (t_hi, e_hi)) = sorted(points.items())
        ops_lo = method_op_counts(method, n_lo).flops
        ops_hi = method_op_counts(method, n_hi).flops
        if ops_hi <= ops_lo:
            raise ValueError(f"{method}: op counts must grow with electrodes")
        ns_per_op = (t_hi - t_lo) * 1e6 / (ops_hi - ops_lo)
        ns_per_op = max(0.0, ns_per_op)
        overhead_ms = max(0.0, t_lo - ops_lo * ns_per_op * 1e-6)
        power_w = 0.5 * (e_lo / t_lo + e_hi / t_hi)
        calibrated[method] = CalibratedMethod(
            name=method,
            overhead_ms=overhead_ms,
            ns_per_op=ns_per_op,
            power_w=power_w,
            resource=METHOD_RESOURCE.get(method, "gpu"),
        )
    return calibrated
