"""Operation/byte counts of every method per 0.5 s classification event.

These counts are derived from the implementations in this repository
(which mirror the papers' architectures) and drive the *scaling* of the
cost model: Laelaps's work is almost independent of the electrode count
(the encoding kernel folds 32 electrodes per popcount and everything
else is fixed-size), while the SVM, CNN and LSTM all process
per-electrode features and therefore scale linearly — the structural
claim behind Table II and Sec. V-C.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OpCounts:
    """Work per classification event.

    Attributes:
        flops: Floating-point (or integer ALU) operations.
        dram_bytes: Global-memory traffic in bytes.
        kernel_launches: Number of device-kernel / library-call
            dispatches (each paying fixed launch overhead).
    """

    flops: float
    dram_bytes: float
    kernel_launches: int


def laelaps_op_counts(
    n_electrodes: int,
    dim: int = 1_000,
    samples_per_step: int = 256,
    lbp_length: int = 6,
) -> OpCounts:
    """LBP + HD encoding + AM query (all binary ops)."""
    lbp_ops = n_electrodes * samples_per_step * (4 + 2 * lbp_length)
    # Per time step and per 32-bit vector chunk: XOR, ballot transpose,
    # one popcount per group of 32 electrodes, accumulate.
    groups = -(-n_electrodes // 32)
    words = dim // 32
    encode_ops = samples_per_step * words * (4 + 2 * groups)
    classify_ops = 3 * 2 * words + 64
    dram = (
        n_electrodes * samples_per_step * 4  # raw samples in
        + (64 + n_electrodes) * dim / 8  # item memories (once, cached)
        + 3 * dim / 8  # H + two prototypes
    )
    return OpCounts(
        flops=float(lbp_ops + encode_ops + classify_ops),
        dram_bytes=float(dram),
        kernel_launches=3,
    )


def svm_op_counts(
    n_electrodes: int,
    samples_per_step: int = 256,
    lbp_length: int = 6,
    alphabet: int = 64,
) -> OpCounts:
    """LBP histogram features + linear decision function."""
    feature_dim = n_electrodes * alphabet
    lbp_ops = n_electrodes * samples_per_step * (4 + 2 * lbp_length)
    histogram_ops = n_electrodes * samples_per_step * 2
    dot_ops = 2 * feature_dim
    dram = n_electrodes * samples_per_step * 4 + feature_dim * 8 * 2
    return OpCounts(
        flops=float(lbp_ops + histogram_ops + dot_ops),
        dram_bytes=float(dram),
        kernel_launches=2,
    )


def cnn_op_counts(
    n_electrodes: int,
    samples_per_step: int = 256,
    image_hw: int = 16,
    channels: tuple[int, int] = (8, 16),
) -> OpCounts:
    """Per-electrode STFT + convolutional network.

    Truong et al. compute one spectrogram per electrode and convolve over
    the stacked image, so both the STFT and the first convolution scale
    with the electrode count.
    """
    fft_ops = n_electrodes * 16 * (5 * 30 * 5)  # 16 frames of ~30-pt rFFT
    c1, c2 = channels
    conv1 = 2 * n_electrodes * c1 * 9 * image_hw * image_hw
    conv2 = 2 * c1 * c2 * 9 * (image_hw // 2) ** 2
    head = 2 * c2 * (image_hw // 4) ** 2 * 32 + 2 * 32 * 2
    dram = n_electrodes * (samples_per_step * 4 + image_hw * image_hw * 4)
    return OpCounts(
        flops=float(fft_ops + conv1 + conv2 + head),
        dram_bytes=float(dram),
        kernel_launches=8,
    )


def lstm_op_counts(
    n_electrodes: int,
    samples_per_step: int = 256,
    hidden: int = 100,
) -> OpCounts:
    """Per-electrode recurrent network (Hussein et al. feed raw EEG).

    An LSTM step costs ``8 * h * (h + x)`` MACs; with one sequence per
    electrode the work — and, worse, the weight traffic per step, which
    is what makes the LSTM memory bound (Sec. V-C) — scales linearly
    with the electrode count.
    """
    steps = samples_per_step
    macs_per_step = 4 * hidden * (hidden + 1) * 2
    flops = n_electrodes * steps * macs_per_step
    weight_bytes = 4 * hidden * (hidden + 1) * 4
    dram = n_electrodes * steps * weight_bytes  # weights re-streamed
    return OpCounts(
        flops=float(flops),
        dram_bytes=float(dram),
        kernel_launches=steps // 8,
    )


def method_op_counts(method: str, n_electrodes: int, **kwargs) -> OpCounts:
    """Dispatch table over the four Table II methods."""
    table = {
        "laelaps": laelaps_op_counts,
        "svm": svm_op_counts,
        "cnn": cnn_op_counts,
        "lstm": lstm_op_counts,
    }
    if method not in table:
        raise KeyError(f"unknown method {method!r}; choose from {sorted(table)}")
    return table[method](n_electrodes, **kwargs)
