"""GPU kernel-grid cost model and the three Laelaps kernels of Fig. 2.

The timing model is deliberately simple but structurally faithful:

* thread blocks are scheduled onto SMs in waves;
* a kernel's compute time is ``waves * cycles_per_block / clock``;
* its memory time is ``dram_bytes / bandwidth``;
* the kernel takes ``launch_overhead + max(compute, memory)`` —
  whichever resource bounds it (the paper notes the LSTM is memory
  bound while the CNN is compute bound);
* per-block cycle counts come from instruction counts of the actual
  dataflow (XOR / ballot-transpose / popcount for the encoding kernel,
  etc.) divided by the SM's issue width.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.platform import TX2Platform

#: Instructions an SM can retire per cycle (128 cores, warp-issue
#: limited; a conservative effective value for integer-heavy kernels).
_ISSUE_WIDTH = 64.0


@dataclass(frozen=True)
class KernelSpec:
    """A GPU kernel's resource footprint.

    Attributes:
        name: Kernel label (for reports).
        blocks: Grid size in thread blocks.
        threads_per_block: Block size.
        instructions_per_thread: Dynamic instruction count per thread.
        shared_mem_bytes: Shared memory per block.
        dram_bytes: Global-memory traffic of the whole kernel.
    """

    name: str
    blocks: int
    threads_per_block: int
    instructions_per_thread: float
    shared_mem_bytes: int = 0
    dram_bytes: int = 0

    def __post_init__(self) -> None:
        if self.blocks < 1 or self.threads_per_block < 1:
            raise ValueError(f"{self.name}: empty kernel grid")
        if self.instructions_per_thread < 0 or self.dram_bytes < 0:
            raise ValueError(f"{self.name}: negative cost")


@dataclass(frozen=True)
class KernelCost:
    """Modelled execution cost of one kernel."""

    name: str
    time_ms: float
    compute_ms: float
    memory_ms: float
    launch_ms: float

    @property
    def bound(self) -> str:
        """Which resource limits the kernel."""
        return "compute" if self.compute_ms >= self.memory_ms else "memory"


def simulate_kernel(spec: KernelSpec, platform: TX2Platform) -> KernelCost:
    """Model one kernel's execution time on the platform."""
    # Wave scheduling: how many blocks run concurrently per SM is limited
    # by the thread budget (shared memory is checked, not modelled as a
    # second limiter — the Laelaps kernels are sized to fit, Sec. V-B).
    blocks_per_sm = max(1, platform.max_threads_per_sm // spec.threads_per_block)
    concurrent = blocks_per_sm * platform.gpu_sms
    waves = -(-spec.blocks // concurrent)  # ceil division
    cycles_per_block = (
        spec.instructions_per_thread * spec.threads_per_block / _ISSUE_WIDTH
    )
    compute_s = waves * cycles_per_block / (platform.gpu_clock_ghz * 1e9)
    memory_s = spec.dram_bytes / (platform.dram_bandwidth_gbs * 1e9)
    launch_s = platform.kernel_launch_overhead_us * 1e-6
    total_s = launch_s + max(compute_s, memory_s)
    return KernelCost(
        name=spec.name,
        time_ms=total_s * 1e3,
        compute_ms=compute_s * 1e3,
        memory_ms=memory_s * 1e3,
        launch_ms=launch_s * 1e3,
    )


def simulate_kernels(
    specs: list[KernelSpec], platform: TX2Platform
) -> tuple[float, list[KernelCost]]:
    """Model a kernel sequence; returns total time (ms) and per-kernel costs."""
    costs = [simulate_kernel(spec, platform) for spec in specs]
    return sum(c.time_ms for c in costs), costs


def laelaps_kernels(
    n_electrodes: int,
    dim: int = 1_000,
    samples_per_step: int = 256,
    lbp_length: int = 6,
) -> list[KernelSpec]:
    """The three kernels of Fig. 2 for one 0.5 s classification event.

    * **LBP kernel** — one block per electrode, one thread per sample of
      the 0.5 s step; each thread compares adjacent samples and
      assembles an ``lbp_length``-bit code.
    * **Encoding kernel** — 32 blocks (one per 32-bit chunk of the
      d-bit vector) of 32 threads; per time step each thread loads two
      IM words, XORs them, joins a 32 x 32 bit transpose (ballot) and a
      popcount per electrode group of 32.
    * **Classification kernel** — one block of 32 threads computing two
      Hamming distances over d bits plus the postprocessing.
    """
    if n_electrodes < 1 or dim < 32:
        raise ValueError("need >= 1 electrode and dim >= 32")
    words = dim // 32
    electrode_groups = -(-n_electrodes // 32)

    lbp = KernelSpec(
        name="lbp",
        blocks=n_electrodes,
        threads_per_block=samples_per_step,
        # load sample, diff/sign, shift-or over lbp_length bits, store
        instructions_per_thread=4.0 + 2.0 * lbp_length,
        shared_mem_bytes=samples_per_step * 4,
        dram_bytes=n_electrodes * samples_per_step * 4 * 2,
    )
    encoding = KernelSpec(
        name="encoding",
        blocks=32,
        threads_per_block=32,
        # per time step: 2 shared loads + XOR, 32-wide ballot transpose
        # (~32 ops amortised to 1/thread per row), popcount + add per
        # electrode group, then binarise + accumulate for H.
        instructions_per_thread=samples_per_step
        * (4.0 + 2.0 * electrode_groups)
        + 2.0 * words,
        shared_mem_bytes=(64 + n_electrodes) * (dim // 8),
        dram_bytes=(64 + n_electrodes) * (dim // 8) + dim // 8,
    )
    classification = KernelSpec(
        name="classification",
        blocks=1,
        threads_per_block=32,
        # two prototypes: XOR + popcount per word, tree reduction, voting
        instructions_per_thread=2.0 * 3.0 * (words / 32.0) + 16.0,
        shared_mem_bytes=2 * (dim // 8),
        dram_bytes=3 * (dim // 8),
    )
    return [lbp, encoding, classification]
