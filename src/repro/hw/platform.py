"""Tegra X2 resource description.

Numbers from Sec. V-A of the paper and the public TX2 datasheet: a
256-core Pascal GPU (2 SMs), a dual-core Denver2 plus quad-core
Cortex-A57 CPU complex, 58.4 GB/s of LPDDR4 bandwidth, and roughly 15 W
peak.  The Max-Q power mode — used for all the paper's measurements —
runs the ARM cluster at 1.2 GHz and the GPU at 0.85 GHz for maximum
energy efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TX2Platform:
    """Static platform model of the Jetson TX2.

    Attributes:
        name: Configuration label.
        gpu_sms: Number of streaming multiprocessors.
        gpu_cores: Total CUDA cores.
        gpu_clock_ghz: GPU clock in the selected power mode.
        cpu_cores: Usable CPU cores.
        cpu_clock_ghz: CPU clock in the selected power mode.
        dram_bandwidth_gbs: Peak DRAM bandwidth, GB/s.
        shared_mem_per_sm_kb: GPU shared memory per SM (Sec. V-B sizes
            the item memories against this).
        max_threads_per_sm: Resident-thread ceiling per SM.
        kernel_launch_overhead_us: Fixed host-side cost per kernel launch
            (driver + dispatch); dominates tiny kernels.
        active_power_w: Mean board power while classifying (the paper's
            energy/time anchor pairs imply 2-3 W in Max-Q).
    """

    name: str = "jetson-tx2-maxq"
    gpu_sms: int = 2
    gpu_cores: int = 256
    gpu_clock_ghz: float = 0.85
    cpu_cores: int = 6
    cpu_clock_ghz: float = 1.2
    dram_bandwidth_gbs: float = 58.4
    shared_mem_per_sm_kb: float = 64.0
    max_threads_per_sm: int = 2048
    kernel_launch_overhead_us: float = 10.0
    active_power_w: float = 2.5

    @property
    def cores_per_sm(self) -> int:
        """CUDA cores per SM."""
        return self.gpu_cores // self.gpu_sms

    @property
    def gpu_flops_per_s(self) -> float:
        """Peak single-precision FLOP/s (one FMA = 2 FLOPs per core)."""
        return self.gpu_cores * self.gpu_clock_ghz * 1e9 * 2.0

    def shared_mem_fits(self, bytes_needed: int) -> bool:
        """Whether a kernel's shared-memory footprint fits one SM."""
        return bytes_needed <= self.shared_mem_per_sm_kb * 1024


#: The power mode used for every measurement in the paper.
MAXQ = TX2Platform()
