"""Data model for recordings, seizures, patients and cohorts."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

#: Seizure with clear electrographic rhythmicity — detectable in principle.
CLINICAL = "clinical"
#: Electrographically subtle seizure — background-like morphology, used to
#: model the seizures that every method in Table I misses (e.g. P14).
SUBTLE = "subtle"

_SEIZURE_TYPES = (CLINICAL, SUBTLE)


@dataclass(frozen=True)
class SeizureEvent:
    """An expert-marked seizure.

    Attributes:
        onset_s: Electrographic onset in seconds from recording start.
        offset_s: Seizure end in seconds.
        seizure_type: ``"clinical"`` or ``"subtle"`` (see module docs).
    """

    onset_s: float
    offset_s: float
    seizure_type: str = CLINICAL

    def __post_init__(self) -> None:
        if self.offset_s <= self.onset_s:
            raise ValueError(
                f"seizure offset {self.offset_s} must follow onset {self.onset_s}"
            )
        if self.seizure_type not in _SEIZURE_TYPES:
            raise ValueError(
                f"seizure_type must be one of {_SEIZURE_TYPES}, "
                f"got {self.seizure_type!r}"
            )

    @property
    def duration_s(self) -> float:
        """Seizure duration in seconds."""
        return self.offset_s - self.onset_s

    def shifted(self, offset: float) -> "SeizureEvent":
        """The same event relative to a new time origin."""
        return replace(
            self, onset_s=self.onset_s - offset, offset_s=self.offset_s - offset
        )


@dataclass(frozen=True)
class Recording:
    """A continuous multichannel iEEG recording with annotations.

    Attributes:
        data: Signal array ``(n_samples, n_electrodes)`` (float32).
        fs: Sampling rate in Hz.
        seizures: Expert-marked seizures, in chronological order.
        patient_id: Identifier such as ``"P7"``.
    """

    data: np.ndarray
    fs: float
    seizures: tuple[SeizureEvent, ...] = ()
    patient_id: str = ""

    def __post_init__(self) -> None:
        arr = np.asarray(self.data)
        if arr.ndim != 2:
            raise ValueError(f"data must be (n_samples, n_electrodes), got {arr.shape}")
        if self.fs <= 0:
            raise ValueError(f"fs must be positive, got {self.fs}")
        onsets = [s.onset_s for s in self.seizures]
        if onsets != sorted(onsets):
            raise ValueError("seizures must be in chronological order")
        for seizure in self.seizures:
            if seizure.offset_s > self.duration_s + 1e-9:
                raise ValueError(
                    f"seizure {seizure} extends past the recording end "
                    f"({self.duration_s:.1f} s)"
                )

    @property
    def n_samples(self) -> int:
        """Number of samples."""
        return self.data.shape[0]

    @property
    def n_electrodes(self) -> int:
        """Number of electrodes."""
        return self.data.shape[1]

    @property
    def duration_s(self) -> float:
        """Recording length in seconds."""
        return self.n_samples / self.fs

    def seizure_segments(self) -> list[tuple[float, float]]:
        """Seizures as ``(onset_s, offset_s)`` tuples."""
        return [(s.onset_s, s.offset_s) for s in self.seizures]

    def interictal_seconds(self) -> float:
        """Total non-seizure time in seconds."""
        ictal = sum(s.duration_s for s in self.seizures)
        return self.duration_s - ictal

    def slice_time(self, start_s: float, end_s: float) -> "Recording":
        """Sub-recording over ``[start_s, end_s)`` with re-based seizures.

        Seizures are kept if they overlap the slice and are clipped to it.
        """
        if not 0 <= start_s < end_s:
            raise ValueError(f"invalid slice [{start_s}, {end_s})")
        start = int(round(start_s * self.fs))
        end = min(self.n_samples, int(round(end_s * self.fs)))
        kept = []
        span_end = end / self.fs
        for seizure in self.seizures:
            if seizure.offset_s <= start_s or seizure.onset_s >= span_end:
                continue
            clipped = SeizureEvent(
                onset_s=max(seizure.onset_s, start_s) - start_s,
                offset_s=min(seizure.offset_s, span_end) - start_s,
                seizure_type=seizure.seizure_type,
            )
            kept.append(clipped)
        return Recording(
            data=self.data[start:end],
            fs=self.fs,
            seizures=tuple(kept),
            patient_id=self.patient_id,
        )


@dataclass(frozen=True)
class Patient:
    """A patient: identifier, recording, and the training-seizure count."""

    patient_id: str
    recording: Recording
    train_seizures: int = 1

    def __post_init__(self) -> None:
        if self.train_seizures < 1:
            raise ValueError("at least one training seizure is required")
        if len(self.recording.seizures) < self.train_seizures + 1:
            raise ValueError(
                f"{self.patient_id}: need more seizures than the "
                f"{self.train_seizures} reserved for training"
            )

    @property
    def n_electrodes(self) -> int:
        """Electrode count of the patient's implantation."""
        return self.recording.n_electrodes

    @property
    def n_test_seizures(self) -> int:
        """Seizures available for evaluation."""
        return len(self.recording.seizures) - self.train_seizures


@dataclass(frozen=True)
class Cohort:
    """An ordered collection of patients."""

    patients: tuple[Patient, ...]
    name: str = "synthetic-swec-ethz"
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.patients)

    def __iter__(self):
        return iter(self.patients)

    def total_hours(self) -> float:
        """Total recording duration across patients, in hours."""
        return sum(p.recording.duration_s for p in self.patients) / 3600.0

    def total_seizures(self) -> int:
        """Total number of annotated seizures."""
        return sum(len(p.recording.seizures) for p in self.patients)

    def total_test_seizures(self) -> int:
        """Seizures not used for training, across patients."""
        return sum(p.n_test_seizures for p in self.patients)
