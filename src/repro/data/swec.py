"""Loader for the public SWEC-ETHZ iEEG dataset (http://ieeg-swez.ethz.ch).

The paper's recordings are distributed as MATLAB files in two flavours:

* **short-term** — one file per seizure (``IDxx_Szy.mat``) holding a
  3 min segment sampled at 512 Hz, the seizure in the middle minute;
* **long-term** — hourly files (``IDxx_yh.mat``) holding one hour of
  recording each, plus a per-patient ``IDxx_info.mat`` with the sampling
  rate and the seizure onset/offset times relative to the start of the
  whole recording.

This environment has no network access, so the test-suite exercises the
loader against synthetic ``.mat`` files with the same structure
(written via :func:`scipy.io.savemat`); pointing the functions at a real
download directory yields :class:`~repro.data.model.Recording` objects
ready for the rest of the pipeline.

The loader is deliberately tolerant about the matrix key (``EEG`` in
the distribution; any single 2-D array is accepted as a fallback) and
about orientation (the longer axis is taken as time — hour-long
recordings always have far more samples than electrodes).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
from scipy import io as sio

from repro.data.model import Recording, SeizureEvent

#: Sampling rate of the distribution (both flavours).
SWEC_FS = 512.0


def _extract_matrix(payload: dict, path: Path) -> np.ndarray:
    """Pull the single 2-D signal matrix out of a loadmat payload."""
    candidates = {
        key: value
        for key, value in payload.items()
        if not key.startswith("__") and isinstance(value, np.ndarray)
    }
    for key in ("EEG", "eeg", "data"):
        if key in candidates and candidates[key].ndim == 2:
            return candidates[key]
    two_d = [v for v in candidates.values() if v.ndim == 2]
    if len(two_d) == 1:
        return two_d[0]
    raise ValueError(
        f"{path}: expected one 2-D signal matrix, found keys "
        f"{sorted(candidates)}"
    )


def _time_major(matrix: np.ndarray) -> np.ndarray:
    """Orient a signal matrix as ``(n_samples, n_electrodes)``."""
    if matrix.shape[0] >= matrix.shape[1]:
        return matrix
    return matrix.T


def load_short_term(
    path: str | Path,
    seizure_onset_s: float = 60.0,
    seizure_offset_s: float = 120.0,
    fs: float = SWEC_FS,
    patient_id: str = "",
) -> Recording:
    """Load one short-term segment (seizure in the middle minute).

    Args:
        path: ``IDxx_Szy.mat`` file.
        seizure_onset_s: Onset within the segment (the distribution
            places the seizure between minutes 1 and 2).
        seizure_offset_s: Offset within the segment.
        fs: Sampling rate (512 Hz in the distribution).
        patient_id: Optional identifier stored on the recording.
    """
    path = Path(path)
    payload = sio.loadmat(path)
    data = _time_major(_extract_matrix(payload, path)).astype(np.float32)
    duration = data.shape[0] / fs
    offset = min(seizure_offset_s, duration)
    seizures: tuple[SeizureEvent, ...] = ()
    if seizure_onset_s < offset:
        seizures = (SeizureEvent(seizure_onset_s, offset),)
    return Recording(
        data=data, fs=fs, seizures=seizures,
        patient_id=patient_id or path.stem.split("_")[0],
    )


def load_info(path: str | Path) -> tuple[float, list[tuple[float, float]]]:
    """Load a long-term ``IDxx_info.mat``: ``(fs, [(onset, offset), ...])``.

    Expects the distribution's variables ``fs``, ``seizure_begin`` and
    ``seizure_end`` (seconds from the start of the patient's recording).
    """
    path = Path(path)
    payload = sio.loadmat(path)
    try:
        fs = float(np.asarray(payload["fs"]).ravel()[0])
        begins = np.asarray(payload["seizure_begin"], dtype=float).ravel()
        ends = np.asarray(payload["seizure_end"], dtype=float).ravel()
    except KeyError as error:
        raise ValueError(f"{path}: missing info variable {error}") from error
    if begins.shape != ends.shape:
        raise ValueError(f"{path}: seizure begin/end lengths differ")
    events = sorted(zip(begins.tolist(), ends.tolist()))
    return fs, [(b, e) for b, e in events]


def load_long_term_hours(
    hour_paths: list[str | Path],
    info_path: str | Path,
    patient_id: str = "",
) -> Recording:
    """Concatenate hourly files into one annotated recording.

    Args:
        hour_paths: The patient's ``IDxx_yh.mat`` files *in
            chronological order* (the caller sorts; hour indices in the
            distribution are 1-based).
        info_path: The patient's ``IDxx_info.mat``.

    Returns:
        One continuous :class:`Recording`; seizures whose annotated
        times fall outside the concatenated span are dropped (the
        distribution annotates the full recording, so loading a subset
        of hours keeps only the seizures inside it).
    """
    if not hour_paths:
        raise ValueError("need at least one hourly file")
    fs, seizure_times = load_info(info_path)
    chunks = []
    for path in hour_paths:
        path = Path(path)
        payload = sio.loadmat(path)
        chunks.append(_time_major(_extract_matrix(payload, path)))
    n_electrodes = chunks[0].shape[1]
    for path, chunk in zip(hour_paths, chunks):
        if chunk.shape[1] != n_electrodes:
            raise ValueError(
                f"{path}: electrode count {chunk.shape[1]} differs from "
                f"first file ({n_electrodes})"
            )
    data = np.concatenate(chunks, axis=0).astype(np.float32)
    duration = data.shape[0] / fs
    events = tuple(
        SeizureEvent(onset, min(offset, duration))
        for onset, offset in seizure_times
        if onset < duration and offset > 0
    )
    return Recording(
        data=data, fs=fs, seizures=events,
        patient_id=patient_id or Path(info_path).stem.split("_")[0],
    )
