"""Out-of-core synthetic cohorts: disk-backed generation, memmap access.

The batch generator (:class:`repro.data.synthetic.SyntheticIEEGGenerator`)
materialises a float64 ``(n_samples, n_electrodes)`` array — at modern
BCI channel counts (256-2048 electrodes) a 30-minute recording no longer
fits a sane RAM budget.  This module synthesises the same signal family
*chunk by chunk* straight into ``np.memmap`` files, with a sidecar JSON
manifest, so a 1024-channel member opens in O(1) memory and streams
through the evaluation harness block by block
(:func:`repro.evaluation.runner.predict_windows_streamed`).

Two properties are load-bearing and property-tested:

* **Determinism** — a :class:`CohortSpec` names its realisation
  completely; regenerating with the same spec reproduces the files
  byte for byte.
* **Chunk invariance** — the generation chunk size is a *performance*
  knob, not a semantic one: any chunking produces bit-identical files.
  Background noise is drawn strictly per-sample from one generator
  (row-major, so consecutive chunks consume consecutive draws) with the
  pink-filter state carried across chunks and the fixed
  :data:`repro.data.morphology.PINK_STEADY_STD` gain (per-recording
  normalisation would couple every sample to every other); all event
  parameters are drawn up front from a second generator; and every
  event waveform is a pure function of the absolute sample index, so a
  chunk overlapping an event renders exactly the samples it covers.

Waveform morphology is shared with both in-RAM generators through
:mod:`repro.data.morphology` — a seizure on disk carries the same
electrographic signature as a seizure from ``generate()``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.data import morphology
from repro.data.model import (
    CLINICAL,
    SUBTLE,
    Patient,
    Recording,
    SeizureEvent,
)
from repro.data.synthetic import SeizurePlan, SynthesisParams

#: Version gate of the on-disk manifest format.  Bump whenever the key
#: set below changes (enforced by lint rule RPR008).
_MANIFEST_VERSION = 1

#: Sidecar file naming the cohort's every byte.
MANIFEST_NAME = "manifest.json"

#: Raw sample files are little-endian float32, C-order (time, channel).
_MEMBER_DTYPE = np.dtype("<f4")

#: Float budget of one generation chunk (white + pink + mixed buffers
#: are each this big at most); the default chunk size derives from it
#: so peak generation memory stays flat in the channel count.
_CHUNK_FLOAT_BUDGET = 4_000_000


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MemberSpec:
    """One cohort member: a single recording to synthesise.

    Attributes:
        member_id: Unique name; also the stem of the data file.
        n_electrodes: Channel count.
        duration_s: Recording length in seconds.
        seizures: Seizure plans, chronological and non-overlapping.
        seed: Member-level seed, combined with the cohort seed.
    """

    member_id: str
    n_electrodes: int
    duration_s: float
    seizures: tuple[SeizurePlan, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.member_id or "/" in self.member_id:
            raise ValueError(f"invalid member_id {self.member_id!r}")
        if self.n_electrodes < 1:
            raise ValueError(
                f"n_electrodes must be >= 1, got {self.n_electrodes}"
            )
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        onsets = [plan.onset_s for plan in self.seizures]
        if onsets != sorted(onsets):
            raise ValueError("seizure plans must be chronological")
        for plan in self.seizures:
            if plan.offset_s > self.duration_s:
                raise ValueError(
                    f"seizure at {plan.onset_s} s exceeds the "
                    f"{self.duration_s} s recording"
                )


@dataclass(frozen=True)
class CohortSpec:
    """A complete, regenerable description of a disk-backed cohort.

    Attributes:
        name: Cohort name, recorded in the manifest.
        members: Member recordings to synthesise.
        params: Signal properties (fs, confounder rates, morphology
            amplitudes) shared by every member.
        seed: Cohort-level seed; combined with each member's seed, so
            two cohorts with different seeds are independent
            realisations of the same members.
    """

    name: str
    members: tuple[MemberSpec, ...]
    params: SynthesisParams = field(default_factory=SynthesisParams)
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a cohort needs at least one member")
        ids = [m.member_id for m in self.members]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate member ids in {ids}")

    @property
    def fs(self) -> float:
        """Sampling rate in Hz (shared by every member)."""
        return self.params.fs


def default_member_plans(
    duration_s: float, n_seizures: int, seizure_s: float = 20.0
) -> tuple[SeizurePlan, ...]:
    """Evenly-spaced clinical seizure plans for a generated member.

    Onsets sit at ``duration * i / (n + 1)`` so the chronological split
    always finds room for the interictal training segment before the
    first onset and at least one test seizure after the training span.
    """
    if n_seizures < 1:
        raise ValueError(f"n_seizures must be >= 1, got {n_seizures}")
    onsets = [duration_s * (i + 1) / (n_seizures + 1)
              for i in range(n_seizures)]
    if onsets[0] < 45.0:
        raise ValueError(
            f"{duration_s} s is too short for {n_seizures} seizures: the "
            f"first onset ({onsets[0]:.0f} s) leaves no room for the "
            "interictal training segment"
        )
    if onsets[-1] + seizure_s > duration_s:
        raise ValueError("seizures do not fit the recording")
    return tuple(SeizurePlan(onset, seizure_s) for onset in onsets)


# ----------------------------------------------------------------------
# Planned events (pure functions of the absolute sample index)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _SpikeEvent:
    start: int
    wave: np.ndarray  # amplitude-scaled kernel
    electrodes: np.ndarray

    @property
    def end(self) -> int:
        return self.start + self.wave.size

    def apply(self, chunk: np.ndarray, chunk_start: int) -> None:
        lo = max(self.start, chunk_start)
        hi = min(self.end, chunk_start + chunk.shape[0])
        sl = slice(lo - self.start, hi - self.start)
        rows = slice(lo - chunk_start, hi - chunk_start)
        chunk[rows, self.electrodes] += self.wave[sl, None]


@dataclass(frozen=True)
class _RhythmEvent:
    """A windowed rhythmic oscillation (burst/drift/PLD/clinical rhythm).

    ``apply`` re-derives the event's full phase and envelope (pure
    functions of the event length) and slices the overlap, so rendering
    is independent of how the recording is chunked.
    """

    start: int
    n: int
    fs: float
    freq_hz: float
    chirp_to_hz: float | None
    amplitude: float
    asymmetry: float
    ramp_samples: int
    suppression: float
    electrodes: np.ndarray
    per_electrode: np.ndarray
    phase_offsets: np.ndarray

    @property
    def end(self) -> int:
        return self.start + self.n

    def apply(self, chunk: np.ndarray, chunk_start: int) -> None:
        lo = max(self.start, chunk_start)
        hi = min(self.end, chunk_start + chunk.shape[0])
        sl = slice(lo - self.start, hi - self.start)
        rows = slice(lo - chunk_start, hi - chunk_start)
        phase = morphology.chirp_phase(
            self.n, self.fs, self.freq_hz, self.chirp_to_hz
        )
        envelope = morphology.rhythm_envelope(self.n, self.ramp_samples)
        attenuation = (
            1.0 - self.suppression * envelope[sl]
            if self.suppression > 0 else None
        )
        for k, electrode in enumerate(self.electrodes):
            wave = morphology.asymmetric_wave(
                phase[sl] + self.phase_offsets[k], self.asymmetry
            )
            if attenuation is not None:
                chunk[rows, electrode] *= attenuation
            chunk[rows, electrode] += (
                self.amplitude * self.per_electrode[k] * envelope[sl] * wave
            )


@dataclass(frozen=True)
class _SubtleEvent:
    """Background-amplitude band-passed noise event (marked, invisible).

    The event's noise comes from its *own* seeded generator, re-created
    on every ``apply`` — the event is bounded (seconds), so re-deriving
    its full waveform per overlapping chunk costs little and keeps the
    rendering chunk-invariant.
    """

    start: int
    n: int
    fs: float
    scale: float
    ramp: int
    electrodes: np.ndarray
    noise_seed: tuple[int, ...]

    @property
    def end(self) -> int:
        return self.start + self.n

    def apply(self, chunk: np.ndarray, chunk_start: int) -> None:
        lo = max(self.start, chunk_start)
        hi = min(self.end, chunk_start + chunk.shape[0])
        sl = slice(lo - self.start, hi - self.start)
        rows = slice(lo - chunk_start, hi - chunk_start)
        rng = np.random.default_rng(list(self.noise_seed))
        white = rng.standard_normal((self.n, self.electrodes.size))
        shaped = morphology.bandpassed_noise(white, self.fs) * self.scale
        envelope = morphology.taper_envelope(self.n, self.ramp)
        chunk[rows, self.electrodes] += (
            0.6 * shaped[sl] * envelope[sl, None]
        )


class _MemberSynthesizer:
    """Sequential chunk renderer of one member (noise state + events)."""

    def __init__(
        self, member: MemberSpec, params: SynthesisParams, cohort_seed: int
    ) -> None:
        self.member = member
        self.params = params
        self.n_samples = int(round(member.duration_s * params.fs))
        # Same split-generator discipline as ClockedEEGSource: noise is
        # drawn strictly per-sample, event parameters strictly per-event,
        # so the two sequences can never interleave.
        self._noise_rng = np.random.default_rng(
            [cohort_seed, member.seed, 0x5EED]
        )
        event_rng = np.random.default_rng([cohort_seed, member.seed, 0xE4E7])
        # One extra filtered column: the shared spatial-mixing source.
        self._zi = morphology.pink_filter_state(member.n_electrodes + 1)
        self._events = _plan_events(
            member, params, event_rng, self.n_samples
        )
        self._next = 0

    def render(self, start: int, n: int) -> np.ndarray:
        """Render float64 samples ``[start, start + n)`` (sequential)."""
        if start != self._next:
            raise ValueError(
                f"chunks must be rendered sequentially: expected sample "
                f"{self._next}, got {start}"
            )
        p = self.params
        white = self._noise_rng.standard_normal(
            (n, self.member.n_electrodes + 1)
        )
        pink, self._zi = morphology.pink_noise_stream(white, self._zi)
        pink /= morphology.PINK_STEADY_STD
        mix = p.spatial_mixing
        data = np.sqrt(1.0 - mix**2) * pink[:, :-1] + mix * pink[:, -1:]
        data *= p.background_std
        hi = start + n
        for event in self._events:
            if event.start < hi and event.end > start:
                event.apply(data, start)
        self._next = hi
        return data


def _block_subset(
    rng: np.random.Generator, n_electrodes: int, fraction: float
) -> np.ndarray:
    """A contiguous random block of electrodes (focal anatomy)."""
    count = max(1, min(n_electrodes, int(round(fraction * n_electrodes))))
    start = int(rng.integers(0, n_electrodes - count + 1))
    return np.arange(start, start + count)


def _event_times(
    rng: np.random.Generator,
    rate_per_hour: float,
    duration_s: float,
    keepout: list[tuple[float, float]],
) -> list[float]:
    """Poisson event times avoiding the seizure keep-out zones."""
    expected = rate_per_hour * duration_s / 3600.0
    count = int(rng.poisson(expected))
    times = []
    for _ in range(count):
        t = float(rng.uniform(0.0, duration_s))
        if any(lo <= t <= hi for lo, hi in keepout):
            continue
        times.append(t)
    return sorted(times)


def _rhythm(
    rng: np.random.Generator,
    fs: float,
    start: int,
    duration: int,
    n_samples: int,
    *,
    freq_hz: float,
    amplitude: float,
    electrodes: np.ndarray,
    asymmetry: float = 0.5,
    chirp_to_hz: float | None = None,
    ramp_s: float = 0.5,
    suppression: float = 0.0,
) -> _RhythmEvent | None:
    n = min(start + duration, n_samples) - start
    if n <= 1:
        return None
    return _RhythmEvent(
        start=start,
        n=n,
        fs=fs,
        freq_hz=freq_hz,
        chirp_to_hz=chirp_to_hz,
        amplitude=amplitude,
        asymmetry=asymmetry,
        ramp_samples=max(1, int(ramp_s * fs)),
        suppression=suppression,
        electrodes=electrodes,
        per_electrode=rng.uniform(0.8, 1.2, size=electrodes.size),
        phase_offsets=rng.uniform(0, 2 * np.pi, size=electrodes.size),
    )


def _plan_events(
    member: MemberSpec,
    p: SynthesisParams,
    rng: np.random.Generator,
    n_samples: int,
) -> list:
    """Draw every event of a member up front, in one fixed order.

    Mirrors the batch generator's event families and parameter ranges
    (:class:`repro.data.synthetic.SyntheticIEEGGenerator`), but as
    placed events rather than in-place mutations of a full array.
    """
    events: list = []
    duration_s = member.duration_s
    fs = p.fs
    onset_zone = _block_subset(rng, member.n_electrodes, p.ictal_focal_fraction)
    margin = p.confounder_margin_s
    keepout = [
        (plan.onset_s - margin, plan.offset_s + margin)
        for plan in member.seizures
    ]

    kernel = morphology.spike_kernel(fs)
    for t in _event_times(rng, p.spike_rate_per_hour, duration_s, keepout):
        at = int(t * fs)
        if kernel is None or at + kernel.size >= n_samples:
            continue
        amplitude = p.background_std * rng.uniform(3.0, 6.0)
        events.append(_SpikeEvent(
            start=at,
            wave=amplitude * kernel,
            electrodes=_block_subset(rng, member.n_electrodes, 0.25),
        ))

    for t in _event_times(rng, p.burst_rate_per_hour, duration_s, keepout):
        events.append(_rhythm(
            rng, fs, int(t * fs), int(rng.uniform(1.0, 4.0) * fs), n_samples,
            freq_hz=rng.uniform(8.0, 13.0),
            amplitude=p.background_std * rng.uniform(1.2, 2.2),
            electrodes=_block_subset(rng, member.n_electrodes, 0.25),
        ))

    for t in _event_times(rng, p.drift_rate_per_hour, duration_s, keepout):
        events.append(_rhythm(
            rng, fs, int(t * fs), int(rng.uniform(10.0, 40.0) * fs), n_samples,
            freq_hz=rng.uniform(1.5, 3.5),
            amplitude=p.background_std * p.drift_amplitude
            * rng.uniform(0.8, 1.2),
            electrodes=_block_subset(rng, member.n_electrodes, 0.6),
            asymmetry=0.7,
            ramp_s=2.0,
            suppression=p.drift_suppression,
        ))

    for t in _event_times(rng, p.pld_rate_per_hour, duration_s, keepout):
        take = max(1, int(0.6 * onset_zone.size))
        lo = int(rng.integers(0, onset_zone.size - take + 1))
        events.append(_rhythm(
            rng, fs, int(t * fs), int(rng.uniform(8.0, 20.0) * fs), n_samples,
            freq_hz=p.ictal_freq_hz * rng.uniform(0.5, 0.8),
            amplitude=p.background_std * p.ictal_amplitude * p.pld_intensity
            * rng.uniform(0.85, 1.15),
            electrodes=onset_zone[lo:lo + take],
            asymmetry=0.8,
            ramp_s=1.5,
            suppression=p.ictal_suppression * p.pld_intensity * 1.5,
        ))

    for idx, plan in enumerate(member.seizures):
        onset = int(plan.onset_s * fs)
        total = int(plan.duration_s * fs)
        if plan.subtle:
            end = min(onset + total, n_samples)
            if end - onset <= 10:
                continue
            events.append(_SubtleEvent(
                start=onset,
                n=end - onset,
                fs=fs,
                scale=p.background_std * p.subtle_amplitude,
                ramp=min((end - onset) // 4, int(2.0 * fs)),
                electrodes=_block_subset(rng, member.n_electrodes, 0.2),
                noise_seed=(member.seed, 0x5B71E, idx),
            ))
            continue
        electrodes = onset_zone
        if electrodes.size > 2 and rng.random() < 0.5:
            electrodes = electrodes[:-1]
        delays = np.sort(rng.uniform(0.0, p.ictal_ramp_s, size=electrodes.size))
        freq = p.ictal_freq_hz * rng.uniform(0.95, 1.05)
        for electrode, delay in zip(electrodes, delays):
            events.append(_rhythm(
                rng, fs, onset + int(delay * fs), total - int(delay * fs),
                n_samples,
                freq_hz=freq + 1.5,
                chirp_to_hz=max(1.0, freq - 1.5),
                amplitude=p.background_std * p.ictal_amplitude,
                electrodes=np.array([electrode]),
                asymmetry=0.85,
                ramp_s=min(p.ictal_ramp_s, plan.duration_s / 3),
                suppression=p.ictal_suppression,
            ))

    return [e for e in events if e is not None]


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------


def _default_chunk(n_electrodes: int) -> int:
    return max(1024, min(65536, _CHUNK_FLOAT_BUDGET // (n_electrodes + 1)))


def generate_cohort(
    spec: CohortSpec,
    root: str | Path,
    chunk_samples: int | None = None,
) -> "DiskCohort":
    """Synthesise every member of ``spec`` to disk under ``root``.

    Args:
        spec: The cohort to realise.
        root: Target directory (created if missing).  One ``.f32``
            memmap file per member plus :data:`MANIFEST_NAME`.
        chunk_samples: Generation chunk size; purely a memory/speed
            knob — the files are bit-identical for every value.
            Defaults to a channel-scaled size keeping peak generation
            memory flat.

    Returns:
        The :class:`DiskCohort` loaded back through
        :func:`load_cohort`, so every generated file has already passed
        manifest validation.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    members_meta = []
    for member in spec.members:
        synth = _MemberSynthesizer(member, spec.params, spec.seed)
        n_samples = synth.n_samples
        step = chunk_samples or _default_chunk(member.n_electrodes)
        if step < 1:
            raise ValueError(f"chunk_samples must be >= 1, got {step}")
        data_file = f"{member.member_id}.f32"
        mm = np.memmap(
            root / data_file,
            dtype=_MEMBER_DTYPE,
            mode="w+",
            shape=(n_samples, member.n_electrodes),
        )
        for start in range(0, n_samples, step):
            n = min(step, n_samples - start)
            mm[start:start + n] = synth.render(start, n)
        mm.flush()
        del mm
        members_meta.append((member, n_samples, data_file))
    write_manifest(root / MANIFEST_NAME, spec, members_meta)
    return load_cohort(root)


def write_manifest(
    path: Path,
    spec: CohortSpec,
    members_meta: list[tuple[MemberSpec, int, str]],
) -> None:
    """Write the sidecar manifest naming every byte of the cohort."""
    payload = {
        "schema_version": _MANIFEST_VERSION,
        "name": spec.name,
        "seed": spec.seed,
        "fs": spec.params.fs,
        "params": asdict(spec.params),
        "members": [
            {
                "member_id": member.member_id,
                "n_electrodes": member.n_electrodes,
                "n_samples": n_samples,
                "duration_s": member.duration_s,
                "seed": member.seed,
                "data_file": data_file,
                "dtype": _MEMBER_DTYPE.str,
                "seizures": [
                    {
                        "onset_s": plan.onset_s,
                        "duration_s": plan.duration_s,
                        "subtle": plan.subtle,
                    }
                    for plan in member.seizures
                ],
            }
            for member, n_samples, data_file in members_meta
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DiskMember:
    """A validated handle on one on-disk member (no data loaded)."""

    member_id: str
    path: Path
    n_electrodes: int
    n_samples: int
    fs: float
    seed: int
    seizures: tuple[SeizureEvent, ...]

    @property
    def duration_s(self) -> float:
        """Recording length in seconds."""
        return self.n_samples / self.fs

    def open(self) -> Recording:
        """Open the member as a memmap-backed :class:`Recording`.

        O(1) memory: the returned recording's ``data`` is a read-only
        ``np.memmap``; slicing (``slice_time``) yields lazy views, and
        pages are only faulted in as the evaluation actually reads them.
        """
        data = np.memmap(
            self.path,
            dtype=_MEMBER_DTYPE,
            mode="r",
            shape=(self.n_samples, self.n_electrodes),
        )
        return Recording(
            data=data,
            fs=self.fs,
            seizures=self.seizures,
            patient_id=self.member_id,
        )

    def patient(self, train_seizures: int = 1) -> Patient:
        """Wrap the member as an evaluation :class:`Patient`."""
        return Patient(
            patient_id=self.member_id,
            recording=self.open(),
            train_seizures=train_seizures,
        )


@dataclass(frozen=True)
class DiskCohort:
    """A loaded cohort manifest: member handles, no sample data."""

    root: Path
    name: str
    fs: float
    seed: int
    params: dict
    members: tuple[DiskMember, ...]

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    def member(self, member_id: str) -> DiskMember:
        """Look up a member by id."""
        for member in self.members:
            if member.member_id == member_id:
                return member
        raise KeyError(
            f"no member {member_id!r} in cohort {self.name!r} "
            f"(have {[m.member_id for m in self.members]})"
        )


def load_cohort(root: str | Path) -> DiskCohort:
    """Load and validate a cohort manifest written by ``generate_cohort``.

    Raises:
        ValueError: On a missing/garbled manifest, a schema-version
            mismatch, a missing data file, or a data file whose size
            disagrees with the manifest's shape.
    """
    root = Path(root)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ValueError(f"no cohort manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    for key in ("schema_version", "name", "seed", "fs", "params", "members"):
        if key not in manifest:
            raise ValueError(f"manifest {manifest_path} lacks key {key!r}")
    if manifest["schema_version"] != _MANIFEST_VERSION:
        raise ValueError(
            f"manifest schema v{manifest['schema_version']} != "
            f"supported v{_MANIFEST_VERSION}"
        )
    members = []
    for meta in manifest["members"]:
        for key in ("member_id", "n_electrodes", "n_samples", "duration_s",
                    "seed", "data_file", "dtype", "seizures"):
            if key not in meta:
                raise ValueError(
                    f"member entry {meta.get('member_id', '?')!r} lacks "
                    f"key {key!r}"
                )
        if np.dtype(meta["dtype"]) != _MEMBER_DTYPE:
            raise ValueError(
                f"member {meta['member_id']!r}: unsupported dtype "
                f"{meta['dtype']!r}"
            )
        path = root / meta["data_file"]
        if not path.is_file():
            raise ValueError(f"member data file {path} is missing")
        expected = (meta["n_samples"] * meta["n_electrodes"]
                    * _MEMBER_DTYPE.itemsize)
        actual = path.stat().st_size
        if actual != expected:
            raise ValueError(
                f"member data file {path} is {actual} bytes, manifest "
                f"says {expected} ({meta['n_samples']} x "
                f"{meta['n_electrodes']} float32)"
            )
        seizures = tuple(
            SeizureEvent(
                onset_s=s["onset_s"],
                offset_s=s["onset_s"] + s["duration_s"],
                seizure_type=SUBTLE if s["subtle"] else CLINICAL,
            )
            for s in meta["seizures"]
        )
        members.append(DiskMember(
            member_id=meta["member_id"],
            path=path,
            n_electrodes=meta["n_electrodes"],
            n_samples=meta["n_samples"],
            fs=manifest["fs"],
            seed=meta["seed"],
            seizures=seizures,
        ))
    return DiskCohort(
        root=root,
        name=manifest["name"],
        fs=manifest["fs"],
        seed=manifest["seed"],
        params=manifest["params"],
        members=tuple(members),
    )


def open_member(root: str | Path, member_id: str) -> Recording:
    """Open one member of a cohort directory as a memmap Recording."""
    return load_cohort(root).member(member_id).open()
