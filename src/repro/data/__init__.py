"""Data substrate: synthetic long-term iEEG and the evaluation cohort.

The paper evaluates on the SWEC-ETHZ dataset (18 drug-resistant epilepsy
patients, 24-128 intracranial electrodes, 2656 h, 116 seizures).  That
dataset is not available in this offline environment, so this package
provides the closest synthetic equivalent:

* :mod:`repro.data.synthetic` generates multichannel iEEG with the two
  documented regimes — interictal broadband 1/f background with a
  flattened LBP-code histogram, and ictal slower/larger/asymmetric
  rhythmic oscillations that concentrate the histogram — plus the
  interictal confounders (spikes, rhythmic bursts, sustained background
  drifts) that make false alarms possible;
* :mod:`repro.data.cohort` mirrors Table I patient by patient (electrode
  counts, seizure counts, training-seizure counts) at a configurable
  duration scale;
* :mod:`repro.data.splits` implements the chronological train/test
  protocol of Sec. IV-B;
* :mod:`repro.data.morphology` is the shared waveform vocabulary (pink
  noise, ictal chirps, spikes) every synthesizer draws from, so batch,
  clocked and disk-backed generation emit the same signals;
* :mod:`repro.data.outofcore` synthesises disk-backed high-channel
  cohorts chunk-by-chunk into memmap files with a versioned manifest —
  generation is bit-identical for every chunk size, and members open as
  O(1)-memory memmap views (``repro synth`` on the CLI).
"""

from repro.data.cohort import (
    PatientSpec,
    build_cohort,
    cohort_patient_specs,
    synthesize_patient,
)
from repro.data.failures import (
    inject_artifact_bursts,
    kill_electrodes,
    saturate_electrodes,
)
from repro.data.io import load_recording, save_recording
from repro.data.model import Cohort, Patient, Recording, SeizureEvent
from repro.data.outofcore import (
    CohortSpec,
    DiskCohort,
    DiskMember,
    MemberSpec,
    default_member_plans,
    generate_cohort,
    load_cohort,
    open_member,
)
from repro.data.splits import ChronologicalSplit, make_chronological_split
from repro.data.swec import load_long_term_hours, load_short_term
from repro.data.synthetic import (
    SeizurePlan,
    SynthesisParams,
    SyntheticIEEGGenerator,
)

__all__ = [
    "SeizureEvent",
    "Recording",
    "Patient",
    "Cohort",
    "SeizurePlan",
    "SynthesisParams",
    "SyntheticIEEGGenerator",
    "PatientSpec",
    "cohort_patient_specs",
    "build_cohort",
    "synthesize_patient",
    "ChronologicalSplit",
    "make_chronological_split",
    "save_recording",
    "load_recording",
    "kill_electrodes",
    "saturate_electrodes",
    "inject_artifact_bursts",
    "load_short_term",
    "load_long_term_hours",
    "CohortSpec",
    "MemberSpec",
    "DiskCohort",
    "DiskMember",
    "default_member_plans",
    "generate_cohort",
    "load_cohort",
    "open_member",
]
