"""Persistence of recordings (npz with embedded annotations).

The SWEC-ETHZ distribution ships one file per hour of recording; for the
synthetic cohort a single compressed npz per recording is simpler and
keeps annotations attached to the data they describe.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.data.model import Recording, SeizureEvent

_FORMAT_VERSION = 1


def save_recording(recording: Recording, path: str | Path) -> Path:
    """Serialise a recording to ``path`` (``.npz``).

    The seizure annotations and metadata travel inside the archive as a
    JSON payload so a recording file is self-describing.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "version": _FORMAT_VERSION,
        "fs": recording.fs,
        "patient_id": recording.patient_id,
        "seizures": [
            {
                "onset_s": s.onset_s,
                "offset_s": s.offset_s,
                "seizure_type": s.seizure_type,
            }
            for s in recording.seizures
        ],
    }
    np.savez_compressed(
        path,
        data=recording.data.astype(np.float32),
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )
    return path


def load_recording(path: str | Path) -> Recording:
    """Load a recording written by :func:`save_recording`."""
    path = Path(path)
    with np.load(path) as archive:
        data = archive["data"]
        meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
    version = meta.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported recording format version {version!r}"
        )
    seizures = tuple(
        SeizureEvent(
            onset_s=s["onset_s"],
            offset_s=s["offset_s"],
            seizure_type=s["seizure_type"],
        )
        for s in meta["seizures"]
    )
    return Recording(
        data=data,
        fs=float(meta["fs"]),
        seizures=seizures,
        patient_id=meta.get("patient_id", ""),
    )
