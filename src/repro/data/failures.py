"""Recording-level failure injection for robustness studies.

Long-term implanted recordings suffer hardware faults that a deployed
detector must tolerate: electrodes go flat (contact loss), saturate
against the ADC rails, or pick up intermittent high-amplitude artefact
bursts.  These transforms inject such faults into an existing
:class:`~repro.data.model.Recording` *after* synthesis, so the same
underlying physiology can be evaluated clean and degraded — used by the
robustness example and the failure-injection tests.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.data.model import Recording


def _copy_data(recording: Recording) -> np.ndarray:
    return np.array(recording.data, dtype=np.float32, copy=True)


def kill_electrodes(
    recording: Recording,
    electrodes: list[int] | np.ndarray,
    from_s: float = 0.0,
) -> Recording:
    """Flatline the given electrodes from ``from_s`` onwards.

    A dead contact reads a constant (here 0), so its sign-of-difference
    bits are all ties — a constant LBP code 0 that the HD bundle must
    absorb.
    """
    data = _copy_data(recording)
    start = int(from_s * recording.fs)
    idx = np.asarray(electrodes, dtype=np.int64)
    if idx.size and (idx.min() < 0 or idx.max() >= recording.n_electrodes):
        raise ValueError("electrode index out of range")
    data[start:, idx] = 0.0
    return replace(recording, data=data)


def saturate_electrodes(
    recording: Recording,
    electrodes: list[int] | np.ndarray,
    limit: float,
) -> Recording:
    """Clip the given electrodes to ``[-limit, +limit]`` (ADC rails)."""
    if limit <= 0:
        raise ValueError(f"saturation limit must be positive, got {limit}")
    data = _copy_data(recording)
    idx = np.asarray(electrodes, dtype=np.int64)
    if idx.size and (idx.min() < 0 or idx.max() >= recording.n_electrodes):
        raise ValueError("electrode index out of range")
    # Fancy indexing yields a copy, so clip-and-assign rather than
    # clipping through an ``out=`` view.
    data[:, idx] = np.clip(data[:, idx], -limit, limit)
    return replace(recording, data=data)


def inject_artifact_bursts(
    recording: Recording,
    rate_per_hour: float,
    amplitude: float,
    seed: int = 0,
    duration_s: tuple[float, float] = (0.5, 3.0),
) -> Recording:
    """Add broadband high-amplitude artefact bursts on random channels.

    Models cable movement / chewing artefacts: white noise at
    ``amplitude`` on a random quarter of the montage for 0.5-3 s.
    """
    if rate_per_hour < 0 or amplitude < 0:
        raise ValueError("rate and amplitude must be non-negative")
    data = _copy_data(recording)
    rng = np.random.default_rng(seed)
    n_events = int(rng.poisson(rate_per_hour * recording.duration_s / 3600.0))
    fs = recording.fs
    for _ in range(n_events):
        start = int(rng.uniform(0, recording.duration_s) * fs)
        length = int(rng.uniform(*duration_s) * fs)
        end = min(start + length, recording.n_samples)
        if end <= start:
            continue
        count = max(1, recording.n_electrodes // 4)
        channels = rng.choice(recording.n_electrodes, count, replace=False)
        burst = rng.standard_normal((end - start, count)) * amplitude
        data[start:end, channels] += burst.astype(np.float32)
    return replace(recording, data=data)
