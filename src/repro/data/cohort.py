"""The 18-patient evaluation cohort of Table I, synthesised.

Each :class:`PatientSpec` carries the patient-level facts of Table I —
electrode count, seizure count, full-scale recording hours, number of
training seizures — plus the synthesis parameters that model the
patient's seizure phenotype (rhythm frequency, amplitude) and the number
of *subtle* (undetectable-by-design) test seizures derived from the
paper's per-patient sensitivities (the substitution that keeps the
synthetic Table I comparable to the published one).

Recording durations are scaled by ``hours_scale`` (default 1/720, i.e.
one paper-hour becomes five synthetic seconds) but never below what the
patient's seizure count physically requires; electrode and seizure
counts are kept at full scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.data.model import Cohort, Patient
from repro.data.synthetic import (
    SeizurePlan,
    SynthesisParams,
    SyntheticIEEGGenerator,
)

#: Default duration scale: one paper-hour -> 5 s of synthetic signal.
DEFAULT_HOURS_SCALE = 1.0 / 720.0
#: Default sampling rate of the synthetic cohort.  The paper's recordings
#: run at 512 Hz; 256 Hz preserves every pipeline property (the 1 s
#: analysis window still holds 4x the LBP alphabet) at half the compute.
DEFAULT_FS = 256.0
#: Interictal training segment is taken this long before the first
#: seizure onset (stands in for the paper's 10 min at full scale).
DEFAULT_INTERICTAL_LEAD_S = 60.0


@dataclass(frozen=True)
class PatientSpec:
    """Static description of one cohort patient.

    Attributes:
        patient_id: ``"P1"`` .. ``"P18"``.
        n_electrodes: Implanted electrode count (Table I, "Elect.").
        n_seizures: Total seizure count (Table I, "Seiz.").
        recording_hours: Full-scale recording duration (Table I, "Rec.").
        train_seizures: Seizures used for training (Table I, "TrS").
        n_subtle_test: Test seizures synthesised as subtle/undetectable
            (derived from the paper's per-patient sensitivity).
        train_subtle: Whether even the training seizures are subtle
            (P14: every method scores 0 % sensitivity).
        ictal_freq_hz: Patient-specific dominant seizure rhythm.
        ictal_amplitude: Seizure amplitude relative to background std.
        seed: Per-patient synthesis seed.
    """

    patient_id: str
    n_electrodes: int
    n_seizures: int
    recording_hours: float
    train_seizures: int
    n_subtle_test: int = 0
    train_subtle: bool = False
    ictal_freq_hz: float = 6.0
    ictal_amplitude: float = 4.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.train_seizures >= self.n_seizures:
            raise ValueError(
                f"{self.patient_id}: all {self.n_seizures} seizures "
                "reserved for training"
            )
        if self.n_subtle_test > self.n_test_seizures:
            raise ValueError(
                f"{self.patient_id}: more subtle seizures than test seizures"
            )

    @property
    def n_test_seizures(self) -> int:
        """Seizures left for evaluation."""
        return self.n_seizures - self.train_seizures


def cohort_patient_specs() -> tuple[PatientSpec, ...]:
    """The canonical 18-patient cohort mirroring Table I.

    Electrode counts, seizure counts, recording hours and training-seizure
    counts are the paper's; subtle-seizure counts are derived from the
    paper's per-patient Laelaps sensitivities (e.g. P4: 66.7 % of 12 test
    seizures -> 4 subtle); rhythm frequency/amplitude vary per patient to
    model heterogeneity.
    """
    rows = [
        #    id    elec seiz hours  trs subtle train_subtle freq  amp
        ("P1", 88, 2, 293.0, 1, 0, False, 6.5, 4.8),
        ("P2", 66, 2, 235.0, 1, 0, False, 5.0, 4.2),
        ("P3", 64, 4, 158.0, 1, 0, False, 7.0, 5.0),
        ("P4", 32, 14, 41.0, 2, 4, False, 4.5, 3.8),
        ("P5", 128, 4, 110.0, 1, 0, False, 8.0, 5.2),
        ("P6", 32, 8, 146.0, 1, 1, False, 5.5, 4.0),
        ("P7", 75, 4, 69.0, 2, 1, False, 4.0, 3.6),
        ("P8", 61, 4, 144.0, 2, 0, False, 6.0, 4.6),
        ("P9", 48, 23, 41.0, 2, 4, False, 5.0, 3.9),
        ("P10", 32, 17, 42.0, 1, 0, False, 6.5, 4.4),
        ("P11", 32, 2, 212.0, 1, 0, False, 7.5, 5.0),
        ("P12", 56, 9, 191.0, 2, 0, False, 5.5, 4.5),
        ("P13", 64, 7, 104.0, 2, 1, False, 6.0, 4.3),
        ("P14", 24, 2, 161.0, 1, 1, True, 5.0, 1.0),
        ("P15", 98, 2, 196.0, 1, 0, False, 7.0, 4.9),
        ("P16", 34, 5, 177.0, 1, 0, False, 6.0, 4.6),
        ("P17", 60, 2, 130.0, 1, 0, False, 5.5, 4.7),
        ("P18", 42, 5, 205.0, 1, 1, False, 4.5, 4.1),
    ]
    return tuple(
        PatientSpec(
            patient_id=pid,
            n_electrodes=elec,
            n_seizures=seiz,
            recording_hours=hours,
            train_seizures=trs,
            n_subtle_test=subtle,
            train_subtle=train_subtle,
            ictal_freq_hz=freq,
            ictal_amplitude=amp,
            seed=1000 + idx,
        )
        for idx, (pid, elec, seiz, hours, trs, subtle, train_subtle, freq, amp)
        in enumerate(rows)
    )


@dataclass(frozen=True)
class CohortLayout:
    """Timing parameters of the synthetic recordings.

    Attributes:
        interictal_lead_s: Gap between the interictal training segment
            and the first seizure onset.
        train_seizure_gap_s: Interictal gap between training seizures.
        test_seizure_gap_s: Minimum interictal gap between test seizures.
        train_seizure_duration_s: ``(min, max)`` training seizure length.
        test_seizure_duration_s: ``(min, max)`` test seizure length.
        tail_s: Interictal time kept after the last seizure.
    """

    interictal_lead_s: float = DEFAULT_INTERICTAL_LEAD_S
    train_seizure_gap_s: float = 60.0
    test_seizure_gap_s: float = 45.0
    train_seizure_duration_s: tuple[float, float] = (15.0, 30.0)
    test_seizure_duration_s: tuple[float, float] = (15.0, 40.0)
    tail_s: float = 30.0


def _plan_seizures(
    spec: PatientSpec,
    duration_hint_s: float,
    layout: CohortLayout,
    rng: np.random.Generator,
) -> tuple[list[SeizurePlan], float]:
    """Lay out all seizures chronologically; return plans and duration."""
    lead_in = layout.interictal_lead_s + 40.0
    plans: list[SeizurePlan] = []
    cursor = lead_in
    for _ in range(spec.train_seizures):
        duration = float(rng.uniform(*layout.train_seizure_duration_s))
        plans.append(
            SeizurePlan(cursor, duration, subtle=spec.train_subtle)
        )
        cursor += duration + layout.train_seizure_gap_s
    n_test = spec.n_test_seizures
    subtle_idx = set(
        rng.choice(n_test, size=spec.n_subtle_test, replace=False).tolist()
        if spec.n_subtle_test
        else []
    )
    test_durations = [
        float(rng.uniform(*layout.test_seizure_duration_s))
        for _ in range(n_test)
    ]
    # Budget for the per-seizure onset jitter (up to 0.25 gap each).
    jitter_budget = n_test * 0.25 * layout.test_seizure_gap_s
    minimum_span = sum(test_durations) + n_test * layout.test_seizure_gap_s
    test_start = cursor + layout.test_seizure_gap_s
    needed = test_start + minimum_span + jitter_budget + layout.tail_s
    duration_s = max(duration_hint_s, needed)
    # Spread the slack evenly so seizures cover the whole test span.
    slack = duration_s - needed
    extra_gap = slack / max(1, n_test)
    cursor = test_start
    for i in range(n_test):
        jitter = float(rng.uniform(0.0, 0.25 * layout.test_seizure_gap_s))
        onset = cursor + jitter
        plans.append(
            SeizurePlan(
                onset,
                test_durations[i],
                subtle=spec.train_subtle or (i in subtle_idx),
            )
        )
        cursor = onset + test_durations[i] + layout.test_seizure_gap_s + extra_gap
    return plans, duration_s


def synthesize_patient(
    spec: PatientSpec,
    hours_scale: float = DEFAULT_HOURS_SCALE,
    fs: float = DEFAULT_FS,
    layout: CohortLayout | None = None,
    params: SynthesisParams | None = None,
    base_seed: int = 0,
) -> Patient:
    """Generate one patient's full recording from its spec.

    Args:
        spec: Patient description (see :func:`cohort_patient_specs`).
        hours_scale: Duration scale; the recording is
            ``recording_hours * 3600 * hours_scale`` seconds long (or the
            minimum the seizure layout needs, if larger).
        fs: Sampling rate of the synthetic signal.
        layout: Timing parameters; defaults to :class:`CohortLayout`.
        params: Base synthesis parameters; patient-specific fields
            (rhythm, amplitude, fs) are overridden from the spec.
        base_seed: Added to the spec seed, letting callers draw an
            entirely different cohort realisation.
    """
    layout = layout or CohortLayout()
    base = params or SynthesisParams()
    patient_params = replace(
        base,
        fs=fs,
        ictal_freq_hz=spec.ictal_freq_hz,
        ictal_amplitude=spec.ictal_amplitude,
    )
    rng = np.random.default_rng(spec.seed + base_seed)
    duration_hint = spec.recording_hours * 3600.0 * hours_scale
    plans, duration_s = _plan_seizures(spec, duration_hint, layout, rng)
    generator = SyntheticIEEGGenerator(
        spec.n_electrodes, patient_params, seed=spec.seed + base_seed + 17
    )
    recording = generator.generate(duration_s, plans)
    recording = replace(recording, patient_id=spec.patient_id)
    return Patient(
        patient_id=spec.patient_id,
        recording=recording,
        train_seizures=spec.train_seizures,
    )


def build_cohort(
    hours_scale: float = DEFAULT_HOURS_SCALE,
    fs: float = DEFAULT_FS,
    specs: tuple[PatientSpec, ...] | None = None,
    layout: CohortLayout | None = None,
    params: SynthesisParams | None = None,
    base_seed: int = 0,
) -> Cohort:
    """Synthesise the whole cohort eagerly.

    Prefer :func:`synthesize_patient` in a loop when memory matters (the
    Table I harness does); this convenience function suits tests and
    examples on small scales.
    """
    specs = specs or cohort_patient_specs()
    patients = tuple(
        synthesize_patient(spec, hours_scale, fs, layout, params, base_seed)
        for spec in specs
    )
    return Cohort(
        patients=patients,
        metadata={
            "hours_scale": hours_scale,
            "fs": fs,
            "base_seed": base_seed,
        },
    )
