"""Chronological train/test protocol of Sec. IV-B.

The dataset is partitioned in chronological order: the training set runs
from the start of the recording until the end of the first (or second)
seizure, the test set is everything after.  Prototypes are trained from
the training seizures (10-30 s each) and one 30 s interictal segment
taken a fixed lead before the first onset; the *rest* of the training set
(which still contains the training seizures, ground truth known) tunes
the patient-specific t_r.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.training import TrainingSegments
from repro.data.model import Patient, Recording, SeizureEvent


@dataclass(frozen=True)
class ChronologicalSplit:
    """Everything the harness needs to train and evaluate one patient.

    Attributes:
        training_segments: Prototype-training segments (ictal +
            interictal), in recording time.
        train_span_s: ``(0, train_end_s)`` — the training portion.
        test_span_s: ``(train_end_s, duration_s)`` — the test portion.
        train_seizures: Seizures inside the training span.
        test_seizures: Seizures inside the test span (the evaluation
            targets).
    """

    training_segments: TrainingSegments
    train_span_s: tuple[float, float]
    test_span_s: tuple[float, float]
    train_seizures: tuple[SeizureEvent, ...]
    test_seizures: tuple[SeizureEvent, ...]

    @property
    def train_fraction(self) -> float:
        """Fraction of the recording used for training."""
        total = self.test_span_s[1]
        return self.train_span_s[1] / total if total else 0.0


def make_chronological_split(
    recording: Recording,
    train_seizures: int = 1,
    interictal_lead_s: float = 60.0,
    interictal_duration_s: float = 30.0,
    ictal_max_s: float = 30.0,
    post_seizure_margin_s: float = 10.0,
) -> ChronologicalSplit:
    """Build the chronological split for one recording.

    Args:
        recording: The patient's full recording.
        train_seizures: Number of leading seizures used for training
            (Table I "TrS": 1 or 2).
        interictal_lead_s: How long before the first onset the interictal
            training segment *ends* (10 min in the paper; scaled cohorts
            use proportionally less).
        interictal_duration_s: Interictal training-segment length (30 s).
        ictal_max_s: Cap on each ictal training segment (the paper uses
            10-30 s depending on seizure duration).
        post_seizure_margin_s: Training set extends this far past the
            last training seizure's offset.

    Returns:
        A :class:`ChronologicalSplit`.

    Raises:
        ValueError: If the recording has too few seizures, or no room for
            the interictal segment before the first onset.
    """
    seizures = recording.seizures
    if len(seizures) <= train_seizures:
        raise ValueError(
            f"recording has {len(seizures)} seizures, cannot reserve "
            f"{train_seizures} for training and still evaluate"
        )
    leading = seizures[:train_seizures]
    first_onset = leading[0].onset_s

    inter_end = first_onset - interictal_lead_s
    if inter_end < interictal_duration_s:
        # Not enough lead on a scaled recording: slide the segment as
        # early as possible while keeping a safety gap before the onset.
        inter_end = min(first_onset - 10.0, interictal_duration_s)
    inter_start = inter_end - interictal_duration_s
    if inter_start < 0:
        raise ValueError(
            "no room for the interictal training segment before the "
            f"first seizure at {first_onset:.1f} s"
        )

    ictal_segments = tuple(
        (s.onset_s, min(s.offset_s, s.onset_s + ictal_max_s)) for s in leading
    )
    train_end = leading[-1].offset_s + post_seizure_margin_s
    duration = recording.duration_s
    if train_end >= duration:
        raise ValueError("training span swallows the whole recording")

    return ChronologicalSplit(
        training_segments=TrainingSegments(
            ictal=ictal_segments, interictal=(inter_start, inter_end)
        ),
        train_span_s=(0.0, train_end),
        test_span_s=(train_end, duration),
        train_seizures=tuple(leading),
        test_seizures=tuple(
            s for s in seizures if s.onset_s >= train_end
        ),
    )


def split_patient(
    patient: Patient, **kwargs: float
) -> ChronologicalSplit:
    """Split a patient using its own training-seizure count."""
    return make_chronological_split(
        patient.recording, train_seizures=patient.train_seizures, **kwargs
    )
