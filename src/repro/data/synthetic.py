"""Synthetic long-term iEEG generator.

Stands in for the SWEC-ETHZ recordings (see ``docs/paper_map.md``
for the substitution rationale).  The generator reproduces the signal properties the paper's
pipeline actually consumes:

* **Interictal background** — spatially-correlated 1/f ("pink") noise.
  Its sign-of-difference symbols spread over most LBP codes, giving the
  flattened histogram described in Sec. II-A.
* **Ictal activity** — slower, larger, *asymmetric* rhythmic oscillations
  (a down-chirping sawtooth on a focal electrode subset with a spreading
  onset), which concentrate the LBP histogram on few codes.
* **Interictal confounders** — epileptiform spikes, short rhythmic
  bursts and sustained background drifts (sleep-like slow activity).
  These are what give detectors the *opportunity* to raise false alarms;
  their rates are elevated relative to clinical recordings so that
  false-alarm statistics are measurable on duration-scaled recordings.
* **Subtle seizures** — expert-marked events whose morphology stays at
  background amplitude, modelling the seizures that every method in
  Table I misses (P14 and the missed fraction of P4/P6/P7/P9/P13/P18).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data import morphology
from repro.data.model import CLINICAL, SUBTLE, Recording, SeizureEvent

# Waveform shapes live in :mod:`repro.data.morphology`, shared with the
# streaming source below and the disk-backed cohorts of
# :mod:`repro.data.outofcore`.  The historic private aliases stay so
# downstream pins of the filter constants keep resolving.
_PINK_B = morphology.PINK_B
_PINK_A = morphology.PINK_A
_PINK_STEADY_STD = morphology.PINK_STEADY_STD


@dataclass(frozen=True)
class SeizurePlan:
    """Where and what kind of seizure to synthesise.

    Attributes:
        onset_s: Electrographic onset in seconds.
        duration_s: Seizure duration in seconds.
        subtle: Generate a background-like (undetectable) event.
    """

    onset_s: float
    duration_s: float
    subtle: bool = False

    def __post_init__(self) -> None:
        if self.onset_s < 0 or self.duration_s <= 0:
            raise ValueError(
                f"invalid seizure plan onset={self.onset_s}, "
                f"duration={self.duration_s}"
            )

    @property
    def offset_s(self) -> float:
        """Seizure end in seconds."""
        return self.onset_s + self.duration_s


@dataclass(frozen=True)
class SynthesisParams:
    """Tunable properties of the synthetic iEEG.

    Attributes:
        fs: Sampling rate in Hz.
        background_std: Standard deviation of the interictal background
            (arbitrary amplitude units; everything else is relative).
        spatial_mixing: Fraction of each electrode's background shared
            with a common source (0 = independent channels).
        spike_rate_per_hour: Interictal epileptiform spikes per hour.
        burst_rate_per_hour: Short rhythmic (alpha/spindle-like) bursts
            per hour; 1-4 s long, too short to pass the t_c filter.
        drift_rate_per_hour: Sustained slow-activity drifts per hour;
            10-40 s long — the events that can fool a weak classifier for
            many consecutive windows.
        drift_amplitude: Drift oscillation amplitude relative to the
            background std.
        drift_suppression: Background attenuation under a drift (partial
            — drifts sit *near* the ictal/interictal boundary).
        pld_rate_per_hour: Periodic ictal-like discharges (PLD-like
            epochs) per hour: 8-20 s of rhythmic asymmetric activity
            *inside the patient's seizure-onset zone* at sub-seizure
            intensity.  These are the hardest interictal confounders —
            electrographically "almost a seizure" — and the main source
            of baseline false alarms.
        pld_intensity: PLD amplitude/suppression as a fraction of the
            full ictal values.
        ictal_freq_hz: Dominant seizure rhythm at onset (chirps down).
        ictal_amplitude: Ictal oscillation amplitude relative to the
            background std.
        ictal_focal_fraction: Fraction of electrodes recruited.
        ictal_ramp_s: Amplitude ramp-in time (also the spread time).
        ictal_suppression: Background attenuation under the seizure
            rhythm on recruited electrodes (organised discharges replace
            the broadband background — the property that makes a single
            LBP code predominant, Sec. II-A).
        subtle_amplitude: Amplitude of subtle seizures relative to the
            background std (kept near 1 so they stay invisible).
        confounder_margin_s: Keep-out zone around seizures where no
            confounder is placed.
    """

    fs: float = 512.0
    background_std: float = 1.0
    spatial_mixing: float = 0.35
    spike_rate_per_hour: float = 120.0
    burst_rate_per_hour: float = 40.0
    drift_rate_per_hour: float = 30.0
    drift_amplitude: float = 2.5
    drift_suppression: float = 0.55
    pld_rate_per_hour: float = 30.0
    pld_intensity: float = 0.4
    ictal_freq_hz: float = 6.0
    ictal_amplitude: float = 4.5
    ictal_focal_fraction: float = 0.5
    ictal_ramp_s: float = 3.0
    ictal_suppression: float = 0.85
    subtle_amplitude: float = 1.05
    confounder_margin_s: float = 12.0

    def __post_init__(self) -> None:
        if self.fs <= 0:
            raise ValueError(f"fs must be positive, got {self.fs}")
        if not 0 <= self.spatial_mixing < 1:
            raise ValueError("spatial_mixing must be in [0, 1)")
        if self.ictal_focal_fraction <= 0 or self.ictal_focal_fraction > 1:
            raise ValueError("ictal_focal_fraction must be in (0, 1]")


class SyntheticIEEGGenerator:
    """Deterministic multichannel iEEG synthesiser.

    Args:
        n_electrodes: Number of channels to generate.
        params: Signal properties; defaults follow the module docstring.
        seed: Seed of the private random generator — a given
            ``(n_electrodes, params, seed)`` triple always produces the
            same recording.
    """

    def __init__(
        self,
        n_electrodes: int,
        params: SynthesisParams | None = None,
        seed: int = 0,
    ) -> None:
        if n_electrodes < 1:
            raise ValueError(f"n_electrodes must be >= 1, got {n_electrodes}")
        self.n_electrodes = n_electrodes
        self.params = params or SynthesisParams()
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        # The seizure-onset zone is a fixed property of the patient's
        # epileptogenic anatomy: every clinical seizure recruits (nearly)
        # the same electrodes.  This stereotypy is what lets a model
        # trained on one or two seizures generalise to unseen ones.
        self._onset_zone = self._electrode_subset(
            self.params.ictal_focal_fraction
        )
        self._ictal_freq = self.params.ictal_freq_hz

    # ------------------------------------------------------------------
    # Background
    # ------------------------------------------------------------------

    def _pink_noise(self, n_samples: int, n_channels: int) -> np.ndarray:
        """Unit-variance pink noise, shape ``(n_samples, n_channels)``."""
        white = self._rng.standard_normal((n_samples, n_channels))
        return morphology.pink_noise_batch(white)

    def background(self, n_samples: int) -> np.ndarray:
        """Interictal background: spatially-mixed pink noise."""
        p = self.params
        own = self._pink_noise(n_samples, self.n_electrodes)
        shared = self._pink_noise(n_samples, 1)
        mix = p.spatial_mixing
        data = np.sqrt(1.0 - mix**2) * own + mix * shared
        return (p.background_std * data).astype(np.float64)

    # ------------------------------------------------------------------
    # Interictal confounders
    # ------------------------------------------------------------------

    def _electrode_subset(self, fraction: float) -> np.ndarray:
        """A contiguous random block of electrodes (focal anatomy)."""
        count = max(1, int(round(fraction * self.n_electrodes)))
        count = min(count, self.n_electrodes)
        start = int(self._rng.integers(0, self.n_electrodes - count + 1))
        return np.arange(start, start + count)

    def _add_spike(self, data: np.ndarray, at_sample: int) -> None:
        """Biphasic epileptiform transient (~70 ms) on a small subset."""
        p = self.params
        kernel = morphology.spike_kernel(p.fs)
        if kernel is None:
            return
        width = kernel.size
        if at_sample + width >= data.shape[0]:
            return
        amplitude = p.background_std * self._rng.uniform(3.0, 6.0)
        electrodes = self._electrode_subset(0.25)
        data[at_sample : at_sample + width, electrodes] += (
            amplitude * kernel[:, None]
        )

    def _add_rhythm(
        self,
        data: np.ndarray,
        start: int,
        duration: int,
        freq_hz: float,
        amplitude: float,
        electrodes: np.ndarray,
        asymmetry: float = 0.5,
        chirp_to_hz: float | None = None,
        ramp_s: float = 0.5,
        suppression: float = 0.0,
    ) -> None:
        """Add a windowed rhythmic oscillation in place.

        ``asymmetry`` is the sawtooth width parameter: 0.5 is a symmetric
        triangle, values toward 1 skew the rise/fall times (the ictal
        signature that produces runs of identical LBP sign bits).

        ``suppression`` attenuates the pre-existing background under the
        oscillation envelope (0 = none, 1 = full).  Organised ictal
        rhythms replace the background activity on recruited electrodes;
        without this the broadband background noise would keep flipping
        the sign-of-difference bits and no LBP code could dominate.
        """
        p = self.params
        end = min(start + duration, data.shape[0])
        n = end - start
        if n <= 1:
            return
        phase = morphology.chirp_phase(n, p.fs, freq_hz, chirp_to_hz)
        envelope = morphology.rhythm_envelope(n, int(ramp_s * p.fs))
        per_electrode = self._rng.uniform(0.8, 1.2, size=electrodes.size)
        phase_offsets = self._rng.uniform(0, 2 * np.pi, size=electrodes.size)
        attenuation = 1.0 - suppression * envelope if suppression > 0 else None
        for k, electrode in enumerate(electrodes):
            wave = morphology.asymmetric_wave(
                phase + phase_offsets[k], asymmetry
            )
            if attenuation is not None:
                data[start:end, electrode] *= attenuation
            data[start:end, electrode] += (
                amplitude * per_electrode[k] * envelope * wave
            )

    def _add_burst(self, data: np.ndarray, start: int) -> None:
        """1-4 s alpha/spindle-like burst on a small electrode subset."""
        p = self.params
        duration = int(self._rng.uniform(1.0, 4.0) * p.fs)
        self._add_rhythm(
            data,
            start,
            duration,
            freq_hz=self._rng.uniform(8.0, 13.0),
            amplitude=p.background_std * self._rng.uniform(1.2, 2.2),
            electrodes=self._electrode_subset(0.25),
            asymmetry=0.5,
        )

    def _add_drift(self, data: np.ndarray, start: int) -> None:
        """10-40 s sustained slow-activity (sleep-like) drift."""
        p = self.params
        duration = int(self._rng.uniform(10.0, 40.0) * p.fs)
        self._add_rhythm(
            data,
            start,
            duration,
            freq_hz=self._rng.uniform(1.5, 3.5),
            amplitude=p.background_std * p.drift_amplitude
            * self._rng.uniform(0.8, 1.2),
            electrodes=self._electrode_subset(0.6),
            asymmetry=0.7,
            ramp_s=2.0,
            suppression=p.drift_suppression,
        )

    def _add_pld(self, data: np.ndarray, start: int) -> None:
        """8-20 s periodic ictal-like discharge in the onset zone.

        Same rhythm family and electrodes as a real seizure of this
        patient, but at a fraction of the amplitude and background
        suppression — the classic near-boundary interictal pattern that
        tempts a detector into a false alarm.
        """
        p = self.params
        duration = int(self._rng.uniform(8.0, 20.0) * p.fs)
        zone = self._onset_zone
        take = max(1, int(0.6 * zone.size))
        lo = int(self._rng.integers(0, zone.size - take + 1))
        electrodes = zone[lo : lo + take]
        freq = self._ictal_freq * self._rng.uniform(0.5, 0.8)
        self._add_rhythm(
            data,
            start,
            duration,
            freq_hz=freq,
            amplitude=p.background_std * p.ictal_amplitude * p.pld_intensity
            * self._rng.uniform(0.85, 1.15),
            electrodes=electrodes,
            asymmetry=0.8,
            ramp_s=1.5,
            suppression=p.ictal_suppression * p.pld_intensity * 1.5,
        )

    def _confounder_times(
        self,
        rate_per_hour: float,
        duration_s: float,
        keepout: list[tuple[float, float]],
    ) -> list[float]:
        """Poisson event times avoiding the seizure keep-out zones."""
        expected = rate_per_hour * duration_s / 3600.0
        count = int(self._rng.poisson(expected))
        times: list[float] = []
        for _ in range(count):
            t = float(self._rng.uniform(0.0, duration_s))
            if any(lo <= t <= hi for lo, hi in keepout):
                continue
            times.append(t)
        return sorted(times)

    # ------------------------------------------------------------------
    # Seizures
    # ------------------------------------------------------------------

    def _add_clinical_seizure(
        self, data: np.ndarray, plan: SeizurePlan
    ) -> None:
        """Rhythmic asymmetric ictal discharge with focal onset + spread."""
        p = self.params
        # The patient's onset zone, minus occasionally one electrode at
        # the margin (seizure-to-seizure variability is small, not zero).
        electrodes = self._onset_zone
        if electrodes.size > 2 and self._rng.random() < 0.5:
            electrodes = electrodes[:-1]
        onset = int(plan.onset_s * p.fs)
        total = int(plan.duration_s * p.fs)
        # Recruit electrodes progressively over the ramp time.
        delays = np.sort(
            self._rng.uniform(0.0, p.ictal_ramp_s, size=electrodes.size)
        )
        freq = self._ictal_freq * self._rng.uniform(0.95, 1.05)
        for electrode, delay in zip(electrodes, delays):
            start = onset + int(delay * p.fs)
            duration = total - int(delay * p.fs)
            self._add_rhythm(
                data,
                start,
                duration,
                freq_hz=freq + 1.5,
                chirp_to_hz=max(1.0, freq - 1.5),
                amplitude=p.background_std * p.ictal_amplitude,
                electrodes=np.array([electrode]),
                asymmetry=0.85,
                ramp_s=min(p.ictal_ramp_s, plan.duration_s / 3),
                suppression=p.ictal_suppression,
            )

    def _add_subtle_seizure(self, data: np.ndarray, plan: SeizurePlan) -> None:
        """Background-amplitude, noise-like event: marked but invisible."""
        p = self.params
        onset = int(plan.onset_s * p.fs)
        total = int(plan.duration_s * p.fs)
        end = min(onset + total, data.shape[0])
        n = end - onset
        if n <= 10:
            return
        electrodes = self._electrode_subset(0.2)
        noise = self._rng.standard_normal((n, electrodes.size))
        shaped = (
            morphology.bandpassed_noise(noise, p.fs)
            * p.background_std * p.subtle_amplitude
        )
        ramp = min(n // 4, int(2.0 * p.fs))
        envelope = morphology.taper_envelope(n, ramp)
        data[onset:end, electrodes] += 0.6 * shaped * envelope[:, None]

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def generate(
        self, duration_s: float, seizures: list[SeizurePlan] | None = None
    ) -> Recording:
        """Synthesise a recording.

        Args:
            duration_s: Recording length in seconds.
            seizures: Seizure plans; must fit inside the recording and be
                in chronological order.

        Returns:
            A :class:`repro.data.model.Recording` (float32 data) whose
            annotations mirror the plans.
        """
        p = self.params
        plans = list(seizures or [])
        for plan in plans:
            if plan.offset_s > duration_s:
                raise ValueError(
                    f"seizure at {plan.onset_s} s (duration "
                    f"{plan.duration_s} s) exceeds the recording "
                    f"({duration_s} s)"
                )
        n_samples = int(round(duration_s * p.fs))
        data = self.background(n_samples)

        margin = p.confounder_margin_s
        keepout = [
            (plan.onset_s - margin, plan.offset_s + margin) for plan in plans
        ]
        for t in self._confounder_times(p.spike_rate_per_hour, duration_s, keepout):
            self._add_spike(data, int(t * p.fs))
        for t in self._confounder_times(p.burst_rate_per_hour, duration_s, keepout):
            self._add_burst(data, int(t * p.fs))
        for t in self._confounder_times(p.drift_rate_per_hour, duration_s, keepout):
            self._add_drift(data, int(t * p.fs))
        for t in self._confounder_times(p.pld_rate_per_hour, duration_s, keepout):
            self._add_pld(data, int(t * p.fs))

        events = []
        for plan in plans:
            if plan.subtle:
                self._add_subtle_seizure(data, plan)
                kind = SUBTLE
            else:
                self._add_clinical_seizure(data, plan)
                kind = CLINICAL
            events.append(
                SeizureEvent(
                    onset_s=plan.onset_s,
                    offset_s=plan.offset_s,
                    seizure_type=kind,
                )
            )
        return Recording(
            data=data.astype(np.float32),
            fs=p.fs,
            seizures=tuple(sorted(events, key=lambda e: e.onset_s)),
        )


class ClockedEEGSource:
    """Sample-rate-driven live iEEG source with stochastic seizures.

    The serving-side counterpart of :class:`SyntheticIEEGGenerator`:
    instead of materialising a whole recording up front it produces the
    stream chunk by chunk, holding filter and seizure state across
    calls, so a load generator can drive thousands of concurrent
    sessions without ever allocating a full recording.  Seizure onsets
    arrive as a Poisson process (exponential inter-arrival times, one
    refractory seizure at a time), each a focal asymmetric sawtooth
    rhythm in the source's fixed onset zone — the same ictal signature
    the batch generator plants.

    Determinism is total *and* chunking-invariant: a given
    ``(n_electrodes, fs, seed, ...)`` source emits the same sample
    stream whatever chunk sizes it is asked for, because background
    noise is drawn strictly per-sample from one private generator,
    event parameters strictly per-event from another, the pink filter
    carries its state between chunks, and seizure waveforms are
    functions of the absolute sample index.

    Args:
        n_electrodes: Channel count of every emitted chunk.
        fs: Sampling rate in Hz; ``next_chunk(n)`` advances the source
            clock by ``n / fs`` seconds.
        seed: Determines the whole stream.
        background_std: Background amplitude (everything is relative).
        seizure_rate_per_min: Mean injected-seizure rate.  0 disables
            injection (stationary background load).
        seizure_duration_s: Mean seizure length (jittered ±30 %).
        seizure_freq_hz: Dominant ictal rhythm frequency.
        seizure_amplitude: Ictal amplitude relative to the background.
        focal_fraction: Fraction of electrodes in the onset zone.
    """

    def __init__(
        self,
        n_electrodes: int,
        fs: float = 256.0,
        *,
        seed: int = 0,
        background_std: float = 1.0,
        seizure_rate_per_min: float = 1.0,
        seizure_duration_s: float = 8.0,
        seizure_freq_hz: float = 3.0,
        seizure_amplitude: float = 4.5,
        focal_fraction: float = 0.5,
    ) -> None:
        if n_electrodes < 1:
            raise ValueError(f"n_electrodes must be >= 1, got {n_electrodes}")
        if fs <= 0:
            raise ValueError(f"fs must be positive, got {fs}")
        if seizure_rate_per_min < 0:
            raise ValueError("seizure_rate_per_min must be >= 0")
        if not 0 < focal_fraction <= 1:
            raise ValueError("focal_fraction must be in (0, 1]")
        self.n_electrodes = n_electrodes
        self.fs = fs
        self.seed = seed
        self.background_std = background_std
        self.seizure_rate_per_min = seizure_rate_per_min
        self.seizure_duration_s = seizure_duration_s
        self.seizure_freq_hz = seizure_freq_hz
        self.seizure_amplitude = seizure_amplitude
        # Independent generators so the per-sample (noise) and per-event
        # (seizure parameter) draw sequences cannot interleave — the
        # property that makes the stream chunking-invariant.
        self._noise_rng = np.random.default_rng([seed, 0x5EED])
        self._event_rng = np.random.default_rng([seed, 0xE4E7])
        self._zi = morphology.pink_filter_state(n_electrodes)
        count = max(1, min(n_electrodes,
                           int(round(focal_fraction * n_electrodes))))
        start = int(self._event_rng.integers(0, n_electrodes - count + 1))
        self._onset_zone = np.arange(start, start + count)
        self._sample = 0
        self._seizure: tuple[int, int, float, float] | None = None
        self._next_onset = self._draw_next_onset(0)
        self._onsets: list[float] = []

    @property
    def t_s(self) -> float:
        """Stream time generated so far, in seconds."""
        return self._sample / self.fs

    @property
    def injected_onsets_s(self) -> tuple[float, ...]:
        """Onset times (s) of the seizures emitted so far."""
        return tuple(self._onsets)

    def _draw_next_onset(self, after_sample: int) -> int | None:
        if self.seizure_rate_per_min <= 0:
            return None
        gap_s = float(
            self._event_rng.exponential(60.0 / self.seizure_rate_per_min)
        )
        return after_sample + max(1, int(round(gap_s * self.fs)))

    def _activate_seizure(self, onset: int) -> None:
        duration_s = self.seizure_duration_s * float(
            self._event_rng.uniform(0.7, 1.3)
        )
        freq = self.seizure_freq_hz * float(self._event_rng.uniform(0.9, 1.1))
        amp = (self.background_std * self.seizure_amplitude
               * float(self._event_rng.uniform(0.85, 1.15)))
        end = onset + max(2, int(round(duration_s * self.fs)))
        self._seizure = (onset, end, freq, amp)
        self._onsets.append(onset / self.fs)
        # Refractory scheduling: the next onset can only follow this
        # seizure's end, so at most one seizure is active at a time.
        self._next_onset = self._draw_next_onset(end)

    def _seizure_wave(self, start: int, end: int) -> np.ndarray | None:
        """Ictal waveform for absolute samples ``[start, end)``, or None."""
        assert self._seizure is not None
        onset, sz_end, freq, amp = self._seizure
        lo = max(start, onset)
        hi = min(end, sz_end)
        if lo >= hi:
            return None
        t = np.arange(lo, hi, dtype=np.float64) - onset
        return morphology.ictal_stream_wave(
            t, sz_end - onset, self.fs, freq, amp
        )

    def next_chunk(self, n_samples: int) -> np.ndarray:
        """Emit the next ``n_samples`` of the live stream.

        Returns:
            float32 array ``(n_samples, n_electrodes)``.
        """
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        start = self._sample
        end = start + n_samples
        white = self._noise_rng.standard_normal(
            (n_samples, self.n_electrodes)
        )
        pink, self._zi = morphology.pink_noise_stream(white, self._zi)
        data = (self.background_std / _PINK_STEADY_STD) * pink
        # Activate every onset the chunk reaches, then add whatever part
        # of the active seizure overlaps this chunk.  The loop ends the
        # seizure as soon as the chunk passes it, so arbitrarily long
        # chunks may cover several seizures back to back.
        cursor = start
        while cursor < end:
            if self._seizure is None:
                if self._next_onset is None or self._next_onset >= end:
                    break
                self._activate_seizure(self._next_onset)
            onset, sz_end, _, _ = self._seizure
            wave = self._seizure_wave(cursor, end)
            if wave is not None:
                lo = max(cursor, onset) - start
                rows = slice(lo, lo + wave.size)
                data[rows, self._onset_zone] += wave[:, None]
            if sz_end <= end:
                self._seizure = None
                cursor = sz_end
            else:
                break
        self._sample = end
        return data.astype(np.float32)

    def tick(self, tick_s: float) -> np.ndarray:
        """One tick's worth of samples (``round(tick_s * fs)`` of them)."""
        return self.next_chunk(max(1, int(round(tick_s * self.fs))))
