"""Shared waveform morphology for every synthetic iEEG source.

One module owns the signal shapes: the pink-noise background filter
(batch-normalised and streaming forms), the asymmetric sawtooth rhythm
with its chirp phase and ramp/fade envelope, the biphasic spike kernel,
and the band-passed noise of subtle seizures.  Three synthesisers draw
from it —

* :class:`repro.data.synthetic.SyntheticIEEGGenerator` (batch, whole
  recording in RAM),
* :class:`repro.data.synthetic.ClockedEEGSource` (live chunked stream),
* :mod:`repro.data.outofcore` (disk-backed cohorts, chunked to memmap)

— so a seizure planted by any of them carries the same electrographic
signature, and a fix to a waveform fixes all three.

Two pink-noise forms exist on purpose.  The *batch* form normalises by
the realised per-recording standard deviation, which depends on every
sample and therefore cannot be computed chunk by chunk.  The *stream*
form carries the IIR filter state across chunks and applies the fixed
steady-state gain :data:`PINK_STEADY_STD` instead, which makes the
output an exact function of the white-noise draw sequence — the
property the chunking-invariance tests pin down.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sps

# Paul Kellet's economy pink-noise IIR approximation (1/f magnitude).
PINK_B = np.array([0.049922035, -0.095993537, 0.050612699, -0.004408786])
PINK_A = np.array([1.0, -2.494956002, 2.017265875, -0.522189400])
# Steady-state output std of the Kellet filter for unit white input —
# the fixed gain the *streaming* forms apply instead of per-chunk
# re-normalisation (which would make output depend on chunk boundaries).
PINK_STEADY_STD = 0.0861


# ----------------------------------------------------------------------
# Pink-noise background
# ----------------------------------------------------------------------


def pink_noise_batch(white: np.ndarray) -> np.ndarray:
    """Pink-filter white noise and normalise each column to unit std.

    Args:
        white: White-noise draw ``(n_samples, n_channels)``.

    Returns:
        Unit-variance pink noise of the same shape.  Normalisation uses
        the realised std of the whole array — batch-only semantics.
    """
    pink = sps.lfilter(PINK_B, PINK_A, white, axis=0)
    std = pink.std(axis=0)
    std[std == 0] = 1.0
    return pink / std


def pink_filter_state(n_channels: int) -> np.ndarray:
    """Initial (zero) IIR state for :func:`pink_noise_stream`."""
    order = max(PINK_A.size, PINK_B.size) - 1
    return np.zeros((order, n_channels))


def pink_noise_stream(
    white: np.ndarray, zi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Pink-filter one chunk of white noise, carrying the filter state.

    Returns:
        ``(pink, zi)`` — the *raw* filter output (callers apply the
        :data:`PINK_STEADY_STD` gain) and the state to pass to the next
        chunk.  Feeding the same white sequence in any chunking yields
        the same concatenated output.
    """
    return sps.lfilter(PINK_B, PINK_A, white, axis=0, zi=zi)


# ----------------------------------------------------------------------
# Rhythmic (ictal / confounder) oscillations
# ----------------------------------------------------------------------


def chirp_phase(
    n: int, fs: float, freq_hz: float, chirp_to_hz: float | None = None
) -> np.ndarray:
    """Phase (radians) of a linear chirp from ``freq_hz`` to ``chirp_to_hz``.

    ``chirp_to_hz=None`` gives a constant-frequency rhythm.  The phase
    is a pure function of the window length, so an event's waveform can
    be re-derived for any sub-slice of the event.
    """
    f_end = chirp_to_hz if chirp_to_hz is not None else freq_hz
    inst_freq = np.linspace(freq_hz, f_end, n)
    return 2 * np.pi * np.cumsum(inst_freq) / fs


def rhythm_envelope(n: int, ramp_samples: int) -> np.ndarray:
    """Amplitude envelope of a rhythmic event: linear ramp-in, 20 % fade.

    The envelope also scales the background *suppression* of organised
    discharges — see :func:`repro.data.synthetic.SyntheticIEEGGenerator`.
    """
    ramp = max(1, ramp_samples)
    envelope = np.ones(n)
    envelope[: min(ramp, n)] = np.linspace(0.0, 1.0, min(ramp, n))
    tail = min(max(1, int(0.2 * n)), n)
    envelope[-tail:] *= np.linspace(1.0, 0.2, tail)
    return envelope


def asymmetric_wave(phase: np.ndarray, asymmetry: float) -> np.ndarray:
    """Asymmetric sawtooth oscillation at the given phase.

    ``asymmetry`` is the sawtooth width parameter: 0.5 is a symmetric
    triangle, values toward 1 skew the rise/fall times (the ictal
    signature that produces runs of identical LBP sign bits).
    """
    return sps.sawtooth(phase, width=asymmetry)


def ictal_stream_wave(
    t: np.ndarray,
    total: int,
    fs: float,
    freq_hz: float,
    amplitude: float,
    asymmetry: float = 0.85,
) -> np.ndarray:
    """Ictal waveform of a streamed seizure at samples ``t`` past onset.

    A pure function of the absolute sample offset ``t`` (float64), the
    event length ``total`` and the event parameters — which is what
    makes the live stream chunking-invariant: any chunk overlapping the
    event evaluates exactly the samples it covers.
    """
    phase = 2 * np.pi * freq_hz * t / fs
    wave = asymmetric_wave(phase, asymmetry)
    ramp = max(1, min(int(2.0 * fs), total // 3))
    envelope = np.minimum(t / ramp, 1.0)
    tail = total - int(0.2 * total)
    fade = (total - t) / max(1, total - tail)
    envelope = np.minimum(envelope, np.clip(fade, 0.0, 1.0))
    return amplitude * envelope * wave


# ----------------------------------------------------------------------
# Transients and subtle events
# ----------------------------------------------------------------------


def spike_kernel(fs: float) -> np.ndarray | None:
    """Biphasic epileptiform transient (~70 ms), peak-normalised.

    Returns ``None`` when the sampling rate is too low to resolve the
    transient (fewer than 4 samples across it).
    """
    width = int(0.07 * fs)
    if width < 4:
        return None
    t = np.linspace(-2.5, 2.5, width)
    kernel = -t * np.exp(-(t**2))  # derivative-of-Gaussian shape
    return kernel / np.abs(kernel).max()


def bandpassed_noise(white: np.ndarray, fs: float) -> np.ndarray:
    """4-12 Hz band-passed noise, unit std per column (subtle seizures)."""
    low = 4.0 / (fs / 2.0)
    high = min(12.0 / (fs / 2.0), 0.99)
    b, a = sps.butter(2, [low, high], btype="bandpass")
    shaped = sps.lfilter(b, a, white, axis=0)
    std = shaped.std(axis=0)
    std[std == 0] = 1.0
    return shaped / std


def taper_envelope(n: int, ramp: int) -> np.ndarray:
    """Symmetric linear fade-in/fade-out envelope of a subtle event."""
    envelope = np.ones(n)
    if ramp > 0:
        envelope[:ramp] = np.linspace(0, 1, ramp)
        envelope[-ramp:] = np.linspace(1, 0, ramp)
    return envelope
