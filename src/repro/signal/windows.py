"""Sliding-window machinery shared by Laelaps and the baselines.

The paper uses 1 s analysis windows that move every 0.5 s.  Windows are
identified by the index of their first sample; the *decision time* of a
window is the time of its last sample, because a causal detector can only
emit a label once the whole window has been observed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class WindowSpec:
    """Sliding-window geometry.

    Attributes:
        window_samples: Window length in samples (512 for 1 s at 512 Hz).
        step_samples: Hop between successive windows (256 for 0.5 s).
    """

    window_samples: int
    step_samples: int

    def __post_init__(self) -> None:
        if self.window_samples < 1:
            raise ValueError(f"window_samples must be >= 1, got {self.window_samples}")
        if self.step_samples < 1:
            raise ValueError(f"step_samples must be >= 1, got {self.step_samples}")
        if self.step_samples > self.window_samples:
            raise ValueError(
                "step larger than window leaves gaps: "
                f"step={self.step_samples} > window={self.window_samples}"
            )

    @classmethod
    def from_seconds(
        cls, window_s: float, step_s: float, fs: float
    ) -> "WindowSpec":
        """Build a spec from durations in seconds at sampling rate ``fs``."""
        return cls(
            window_samples=int(round(window_s * fs)),
            step_samples=int(round(step_s * fs)),
        )

    def decision_times(self, n_samples: int, fs: float) -> np.ndarray:
        """Time (seconds) at which each window's label becomes available."""
        starts = window_start_indices(n_samples, self)
        return (starts + self.window_samples) / fs


def num_windows(n_samples: int, spec: WindowSpec) -> int:
    """Number of complete windows fitting in ``n_samples``."""
    if n_samples < spec.window_samples:
        return 0
    return 1 + (n_samples - spec.window_samples) // spec.step_samples


def window_start_indices(n_samples: int, spec: WindowSpec) -> np.ndarray:
    """Start index of each complete window, shape ``(num_windows,)``."""
    count = num_windows(n_samples, spec)
    return np.arange(count) * spec.step_samples


def iter_windows(data: np.ndarray, spec: WindowSpec) -> Iterator[np.ndarray]:
    """Yield each complete window of ``data`` (a view, not a copy).

    ``data`` is windowed along axis 0.
    """
    arr = np.asarray(data)
    for start in window_start_indices(arr.shape[0], spec):
        yield arr[start : start + spec.window_samples]


def window_view(data: np.ndarray, spec: WindowSpec) -> np.ndarray:
    """All windows as a strided view, shape ``(n_win, window, ...)``.

    Uses :func:`numpy.lib.stride_tricks.sliding_window_view`; the result is
    read-only.  Prefer this over :func:`iter_windows` for vectorised code.
    """
    arr = np.asarray(data)
    count = num_windows(arr.shape[0], spec)
    if count == 0:
        shape = (0, spec.window_samples) + arr.shape[1:]
        return np.empty(shape, dtype=arr.dtype)
    swv = np.lib.stride_tricks.sliding_window_view(
        arr, spec.window_samples, axis=0
    )
    # sliding_window_view puts the window axis last; bring it to axis 1.
    windows = np.moveaxis(swv, -1, 1)
    return windows[:: spec.step_samples][:count]
