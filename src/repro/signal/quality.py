"""Signal-quality assessment: find channels a detector should not trust.

Long-term recordings accumulate hardware faults (see
:mod:`repro.data.failures`).  Before training or inference, a deployment
screens the montage: flatlined contacts, rail-saturated channels,
abnormally quiet/loud channels and strong line-noise pickup.  The
report feeds channel masking — and the robustness tests use it to
verify that injected faults are actually detectable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ChannelQualityReport:
    """Per-channel quality flags and statistics.

    Attributes:
        std: Per-channel standard deviation.
        flatline_fraction: Fraction of samples inside zero-derivative
            runs (exact ties between consecutive samples).
        saturation_fraction: Fraction of samples at the channel's
            extreme values (|x| >= 99.9 % of the channel max).
        line_noise_ratio: Power near the mains frequency relative to
            total power.
        bad: Boolean mask of channels failing any criterion.
    """

    std: np.ndarray
    flatline_fraction: np.ndarray
    saturation_fraction: np.ndarray
    line_noise_ratio: np.ndarray
    bad: np.ndarray

    @property
    def n_bad(self) -> int:
        """Number of channels flagged bad."""
        return int(self.bad.sum())

    def good_channels(self) -> np.ndarray:
        """Indices of channels passing every criterion."""
        return np.flatnonzero(~self.bad)


def _line_noise_ratio(
    data: np.ndarray, fs: float, line_hz: float, bandwidth_hz: float = 1.0
) -> np.ndarray:
    """Fraction of spectral power within ``bandwidth_hz`` of ``line_hz``."""
    n = data.shape[0]
    spectrum = np.abs(np.fft.rfft(data, axis=0)) ** 2
    freqs = np.fft.rfftfreq(n, 1.0 / fs)
    band = np.abs(freqs - line_hz) <= bandwidth_hz
    total = spectrum.sum(axis=0)
    total[total == 0] = 1.0
    if not band.any():
        return np.zeros(data.shape[1])
    return spectrum[band].sum(axis=0) / total


def assess_channels(
    data: np.ndarray,
    fs: float,
    line_hz: float = 50.0,
    flatline_threshold: float = 0.3,
    saturation_threshold: float = 0.05,
    std_floor: float = 1e-6,
    std_outlier_factor: float = 20.0,
    line_noise_threshold: float = 0.5,
) -> ChannelQualityReport:
    """Screen a multichannel recording for untrustworthy channels.

    Args:
        data: Signal ``(n_samples, n_channels)``.
        fs: Sampling rate in Hz.
        line_hz: Mains frequency (50 Hz at the Inselspital).
        flatline_threshold: Flag when more than this fraction of
            consecutive-sample differences are exactly zero.
        saturation_threshold: Flag when more than this fraction of
            samples sit at the channel's extremes.
        std_floor: Flag channels with std below this (dead contact).
        std_outlier_factor: Flag channels whose std exceeds the montage
            median by this factor (broken reference / artefact channel).
        line_noise_threshold: Flag when more than this fraction of the
            channel power is mains pickup.

    Returns:
        A :class:`ChannelQualityReport`.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] < 4:
        raise ValueError(
            f"expected (n_samples >= 4, n_channels), got {arr.shape}"
        )
    std = arr.std(axis=0)
    diffs = np.diff(arr, axis=0)
    flatline = (diffs == 0).mean(axis=0)
    peak = np.abs(arr).max(axis=0)
    peak_floor = np.where(peak > 0, peak * 0.999, np.inf)
    saturation = (np.abs(arr) >= peak_floor).mean(axis=0)
    line_ratio = _line_noise_ratio(arr, fs, line_hz)

    median_std = float(np.median(std[std > std_floor])) if np.any(
        std > std_floor
    ) else 1.0
    bad = (
        (std <= std_floor)
        | (flatline >= flatline_threshold)
        | (saturation >= saturation_threshold)
        | (std >= std_outlier_factor * median_std)
        | (line_ratio >= line_noise_threshold)
    )
    return ChannelQualityReport(
        std=std,
        flatline_fraction=flatline,
        saturation_fraction=saturation,
        line_noise_ratio=line_ratio,
        bad=bad,
    )


def mask_bad_channels(
    data: np.ndarray, report: ChannelQualityReport, rng_seed: int = 0
) -> np.ndarray:
    """Replace bad channels with low-amplitude white noise.

    Dropping channels would change the montage the detector was built
    for; replacing them with featureless noise keeps shapes stable while
    removing the fault's influence (a flatlined channel would otherwise
    contribute a constant LBP code to every spatial record).
    """
    arr = np.array(data, dtype=np.float64, copy=True)
    bad = np.flatnonzero(report.bad)
    if bad.size == 0:
        return arr
    good = report.good_channels()
    scale = float(np.median(report.std[good])) if good.size else 1.0
    rng = np.random.default_rng(rng_seed)
    arr[:, bad] = rng.standard_normal((arr.shape[0], bad.size)) * scale * 0.1
    return arr
