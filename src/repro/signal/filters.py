"""IIR filtering and decimation for iEEG signals.

All filters operate on arrays shaped ``(n_samples,)`` or
``(n_samples, n_channels)`` and filter along the time axis (axis 0).
Zero-phase filtering (``filtfilt``) is used by default because seizure
onset timing matters: causal filters would shift the expert-marked onset
relative to the signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sps


@dataclass(frozen=True)
class FilterSpec:
    """Specification of a designed IIR filter in second-order sections.

    Attributes:
        sos: Second-order-section coefficient matrix, shape ``(n, 6)``.
        fs: Sampling frequency the filter was designed for, in Hz.
        description: Human-readable summary (used in reprs and logs).
    """

    sos: np.ndarray
    fs: float
    description: str

    def apply(self, data: np.ndarray, zero_phase: bool = True) -> np.ndarray:
        """Filter ``data`` along axis 0.

        Args:
            data: Signal array ``(n_samples,)`` or ``(n_samples, n_ch)``.
            zero_phase: Use forward-backward filtering (no group delay).

        Returns:
            Filtered array with the same shape and float64 dtype.
        """
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim not in (1, 2):
            raise ValueError(f"expected 1-D or 2-D signal, got shape {arr.shape}")
        if arr.shape[0] < 2:
            raise ValueError("signal too short to filter")
        if zero_phase:
            return sps.sosfiltfilt(self.sos, arr, axis=0)
        return sps.sosfilt(self.sos, arr, axis=0)


def design_bandpass(
    low_hz: float,
    high_hz: float,
    fs: float,
    order: int = 4,
) -> FilterSpec:
    """Design a Butterworth band-pass filter.

    Args:
        low_hz: Lower cut-off frequency in Hz (must be > 0).
        high_hz: Upper cut-off frequency in Hz (must be < ``fs / 2``).
        fs: Sampling frequency in Hz.
        order: Butterworth order (per pass; effective order doubles when
            applied zero-phase).

    Returns:
        A :class:`FilterSpec` holding the second-order sections.
    """
    nyquist = fs / 2.0
    if not 0.0 < low_hz < high_hz:
        raise ValueError(f"need 0 < low_hz < high_hz, got {low_hz}, {high_hz}")
    if high_hz >= nyquist:
        raise ValueError(f"high_hz={high_hz} must be below Nyquist ({nyquist})")
    sos = sps.butter(order, [low_hz, high_hz], btype="bandpass", fs=fs, output="sos")
    return FilterSpec(
        sos=sos,
        fs=fs,
        description=f"butterworth bandpass {low_hz}-{high_hz} Hz order {order} @ {fs} Hz",
    )


def design_notch(freq_hz: float, fs: float, quality: float = 30.0) -> FilterSpec:
    """Design a notch filter for power-line interference.

    Args:
        freq_hz: Notch centre frequency (50 Hz in the Inselspital data).
        fs: Sampling frequency in Hz.
        quality: Quality factor; higher means a narrower notch.
    """
    if not 0.0 < freq_hz < fs / 2.0:
        raise ValueError(f"notch frequency {freq_hz} out of range for fs={fs}")
    b, a = sps.iirnotch(freq_hz, quality, fs=fs)
    sos = sps.tf2sos(b, a)
    return FilterSpec(
        sos=sos,
        fs=fs,
        description=f"iir notch {freq_hz} Hz Q={quality} @ {fs} Hz",
    )


def bandpass_filter(
    data: np.ndarray,
    low_hz: float,
    high_hz: float,
    fs: float,
    order: int = 4,
    zero_phase: bool = True,
) -> np.ndarray:
    """Convenience wrapper: design and apply a Butterworth band-pass."""
    return design_bandpass(low_hz, high_hz, fs, order).apply(data, zero_phase)


def notch_filter(
    data: np.ndarray,
    freq_hz: float,
    fs: float,
    quality: float = 30.0,
    zero_phase: bool = True,
) -> np.ndarray:
    """Convenience wrapper: design and apply a power-line notch."""
    return design_notch(freq_hz, fs, quality).apply(data, zero_phase)


def decimate(data: np.ndarray, factor: int, fs: float) -> tuple[np.ndarray, float]:
    """Anti-alias filter and downsample along axis 0.

    Args:
        data: Signal array ``(n_samples,)`` or ``(n_samples, n_ch)``.
        factor: Integer decimation factor (>= 1).
        fs: Input sampling frequency in Hz.

    Returns:
        Tuple ``(decimated, new_fs)``.  ``factor == 1`` returns the input
        unchanged (no filtering).
    """
    if factor < 1:
        raise ValueError(f"decimation factor must be >= 1, got {factor}")
    arr = np.asarray(data, dtype=np.float64)
    if factor == 1:
        return arr, fs
    out = sps.decimate(arr, factor, axis=0, zero_phase=True)
    return out, fs / factor
