"""Signal-processing substrate: filters, decimation and windowing.

The SWEC-ETHZ iEEG recordings used by the paper are distributed already
band-pass filtered between 0.5 and 150 Hz and sampled at 512 Hz.  This
package provides the equivalent preprocessing chain for raw synthetic
signals plus the sliding-window machinery shared by Laelaps and the
baselines (1 s analysis windows moving every 0.5 s).
"""

from repro.signal.filters import (
    FilterSpec,
    bandpass_filter,
    decimate,
    design_bandpass,
    design_notch,
    notch_filter,
)
from repro.signal.preprocess import PreprocessConfig, Preprocessor
from repro.signal.quality import (
    ChannelQualityReport,
    assess_channels,
    mask_bad_channels,
)
from repro.signal.windows import (
    WindowSpec,
    iter_windows,
    num_windows,
    window_start_indices,
    window_view,
)

__all__ = [
    "FilterSpec",
    "design_bandpass",
    "design_notch",
    "bandpass_filter",
    "notch_filter",
    "decimate",
    "PreprocessConfig",
    "Preprocessor",
    "ChannelQualityReport",
    "assess_channels",
    "mask_bad_channels",
    "WindowSpec",
    "iter_windows",
    "num_windows",
    "window_start_indices",
    "window_view",
]
