"""The iEEG preprocessing chain used ahead of every detector.

Mirrors the SWEC-ETHZ distribution pipeline referenced by the paper: a
fourth-order Butterworth band-pass between 0.5 and 150 Hz, an optional
50 Hz notch, and decimation to the working rate.  Synthetic recordings in
this repository are generated at the working rate already, so the default
preprocessor is close to a no-op apart from the band-pass; the chain is
still exercised end-to-end so a user can plug in raw data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.signal.filters import decimate, design_bandpass, design_notch


@dataclass(frozen=True)
class PreprocessConfig:
    """Configuration of the preprocessing chain.

    Attributes:
        fs_in: Sampling rate of the raw signal in Hz.
        bandpass_low_hz: Lower band-pass edge (0.5 Hz in the dataset).
        bandpass_high_hz: Upper band-pass edge; clipped below Nyquist.
        bandpass_order: Butterworth order.
        notch_hz: Power-line notch frequency, or ``None`` to disable.
        decimation: Integer downsampling factor applied after filtering.
    """

    fs_in: float = 512.0
    bandpass_low_hz: float = 0.5
    bandpass_high_hz: float = 150.0
    bandpass_order: int = 4
    notch_hz: float | None = None
    decimation: int = 1

    @property
    def fs_out(self) -> float:
        """Sampling rate after decimation."""
        return self.fs_in / self.decimation


class Preprocessor:
    """Applies band-pass, optional notch, and decimation to raw iEEG.

    The filters are designed once at construction so repeated calls on
    streaming chunks do not pay the design cost.
    """

    def __init__(self, config: PreprocessConfig | None = None) -> None:
        self.config = config or PreprocessConfig()
        cfg = self.config
        nyquist = cfg.fs_in / 2.0
        high = min(cfg.bandpass_high_hz, 0.95 * nyquist)
        self._bandpass = design_bandpass(
            cfg.bandpass_low_hz, high, cfg.fs_in, cfg.bandpass_order
        )
        self._notch = (
            design_notch(cfg.notch_hz, cfg.fs_in) if cfg.notch_hz else None
        )

    def __call__(self, data: np.ndarray) -> np.ndarray:
        """Preprocess ``data`` shaped ``(n_samples, n_channels)``.

        Returns the filtered, decimated array (float64).
        """
        out = self._bandpass.apply(data)
        if self._notch is not None:
            out = self._notch.apply(out)
        out, _ = decimate(out, self.config.decimation, self.config.fs_in)
        return out

    @property
    def fs_out(self) -> float:
        """Sampling rate of the output signal."""
        return self.config.fs_out
