"""Window feature extractors shared by the baseline detectors.

All extractors use the same window geometry as Laelaps (1 s windows, 0.5 s
hop) so every method labels the same instants and the postprocessor/
metrics apply uniformly.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sps

from repro.lbp.codes import lbp_codes_multichannel
from repro.lbp.histogram import sliding_histograms
from repro.signal.windows import WindowSpec, window_view

#: STFT geometry: 30-sample segments with 50 % overlap on a 256-sample
#: window give a 16 x 16 log-magnitude image regardless of electrode count.
_STFT_NPERSEG = 30
_STFT_HOP = 15
_STFT_RESAMPLED = 256


def window_lbp_histograms(
    signal: np.ndarray,
    fs: float,
    window_s: float = 1.0,
    step_s: float = 0.5,
    lbp_length: int = 6,
) -> np.ndarray:
    """Per-window concatenated per-electrode LBP histograms.

    This is the feature vector of the LBP+SVM baseline: each analysis
    window becomes ``n_electrodes * 2**lbp_length`` normalised bin values.

    Returns:
        float64 array ``(n_windows, n_electrodes * alphabet)``.
    """
    arr = np.asarray(signal)
    codes = lbp_codes_multichannel(arr, lbp_length)
    spec = WindowSpec.from_seconds(window_s, step_s, fs)
    hists = sliding_histograms(
        codes, 1 << lbp_length, spec, normalise=True
    )
    return hists.reshape(hists.shape[0], -1)


def _hann(n: int) -> np.ndarray:
    return 0.5 - 0.5 * np.cos(2 * np.pi * np.arange(n) / n)


def _stft_image(window: np.ndarray) -> np.ndarray:
    """16 x 16 log-magnitude STFT of a 1-D window of 256 samples."""
    taper = _hann(_STFT_NPERSEG)
    frames = np.lib.stride_tricks.sliding_window_view(window, _STFT_NPERSEG)
    frames = frames[::_STFT_HOP][:16]
    spectrum = np.abs(np.fft.rfft(frames * taper, axis=1))  # (16, 16)
    return np.log1p(spectrum).T  # (freq, time)


def window_stft(
    signal: np.ndarray,
    fs: float,
    window_s: float = 1.0,
    step_s: float = 0.5,
) -> np.ndarray:
    """Per-window STFT images of the electrode-averaged signal.

    Each 1 s window is resampled to 256 samples (so the image geometry is
    sampling-rate independent) and transformed into a 16 x 16
    log-magnitude spectrogram, the input of the CNN baseline.

    Returns:
        float64 array ``(n_windows, 1, 16, 16)``.
    """
    arr = np.asarray(signal, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"expected (n_samples, n_electrodes), got {arr.shape}")
    mean_channel = arr.mean(axis=1)
    spec = WindowSpec.from_seconds(window_s, step_s, fs)
    windows = window_view(mean_channel, spec)  # (n_win, window)
    n_win = windows.shape[0]
    out = np.empty((n_win, 1, 16, 16))
    for i in range(n_win):
        w = windows[i]
        if w.shape[0] != _STFT_RESAMPLED:
            w = sps.resample(w, _STFT_RESAMPLED)
        out[i, 0] = _stft_image(w)
    return out


def window_sequences(
    signal: np.ndarray,
    fs: float,
    window_s: float = 1.0,
    step_s: float = 0.5,
    n_steps: int = 32,
) -> np.ndarray:
    """Per-window multivariate sequences for the LSTM baseline.

    Each window is split into ``n_steps`` equal blocks; every step carries
    three channel-aggregate features: mean of the channel-averaged signal,
    its within-block standard deviation, and the mean across channels of
    the per-channel block standard deviation (an amplitude/synchrony
    summary).

    Returns:
        float64 array ``(n_windows, n_steps, 3)``.
    """
    arr = np.asarray(signal, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"expected (n_samples, n_electrodes), got {arr.shape}")
    spec = WindowSpec.from_seconds(window_s, step_s, fs)
    windows = window_view(arr, spec)  # (n_win, window, n_elec)
    n_win, window_samples, _ = windows.shape
    if n_win == 0:
        return np.zeros((0, n_steps, 3))
    block = window_samples // n_steps
    if block < 1:
        raise ValueError(
            f"window of {window_samples} samples cannot be split into "
            f"{n_steps} steps"
        )
    trimmed = windows[:, : block * n_steps]
    blocks = trimmed.reshape(n_win, n_steps, block, -1)
    mean_channel = blocks.mean(axis=3)  # (n_win, steps, block)
    feat_mean = mean_channel.mean(axis=2)
    feat_std = mean_channel.std(axis=2)
    feat_spread = blocks.std(axis=2).mean(axis=2)
    return np.stack([feat_mean, feat_std, feat_spread], axis=2)
