"""LSTM baseline [Hussein et al. 2018].

A single-layer LSTM over per-window multivariate sequences (32 steps of
channel-aggregate statistics), followed by a linear read-out of the final
hidden state.  Trained with Adam on softmax cross-entropy, full batch
(the protocol provides only tens of training windows).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import WindowedDetector
from repro.baselines.features import window_sequences
from repro.nn import LSTM, Adam, Linear, softmax_cross_entropy


class LstmDetector(WindowedDetector):
    """The LSTM seizure detector of Table I.

    Args:
        n_electrodes: Electrode count.
        fs: Sampling rate.
        hidden_size: LSTM state width.
        n_steps: Sequence steps per window.
        epochs: Full-batch training epochs.
        lr: Adam learning rate.
        seed: Determinism seed.
    """

    def __init__(
        self,
        n_electrodes: int,
        fs: float,
        hidden_size: int = 24,
        n_steps: int = 32,
        epochs: int = 200,
        lr: float = 5e-3,
        seed: int = 0,
        window_s: float = 1.0,
        step_s: float = 0.5,
    ) -> None:
        super().__init__(n_electrodes, fs, window_s, step_s, seed)
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.hidden_size = hidden_size
        self.n_steps = n_steps
        self.epochs = epochs
        self.lr = lr
        self.lstm = LSTM(3, hidden_size, seed=seed + 21)
        self.head = Linear(hidden_size, 2, seed=seed + 22)
        self.training_losses: list[float] = []

    def _features(self, signal: np.ndarray) -> np.ndarray:
        return window_sequences(
            signal, self.fs, self.window_s, self.step_s, self.n_steps
        )

    def _forward(self, sequences: np.ndarray) -> np.ndarray:
        hidden = self.lstm.forward(sequences)
        return self.head.forward(hidden)

    def _backward(self, grad_logits: np.ndarray) -> None:
        grad_hidden = self.head.backward(grad_logits)
        self.lstm.backward(grad_hidden)

    def _train(self, features: np.ndarray, labels: np.ndarray) -> None:
        params = self.lstm.parameters() + self.head.parameters()
        optimizer = Adam(params, lr=self.lr)
        self.training_losses = []
        for _ in range(self.epochs):
            optimizer.zero_grad()
            logits = self._forward(features)
            loss, grad = softmax_cross_entropy(logits, labels)
            self._backward(grad)
            optimizer.step()
            self.training_losses.append(loss)

    def _scores(self, features: np.ndarray) -> np.ndarray:
        scores = np.empty(features.shape[0])
        batch = 2048
        for start in range(0, features.shape[0], batch):
            logits = self._forward(features[start : start + batch])
            scores[start : start + batch] = logits[:, 1] - logits[:, 0]
        return scores
