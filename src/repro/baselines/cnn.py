"""STFT + CNN baseline [Truong et al. 2018].

A small convolutional network on per-window 16 x 16 log-magnitude
spectrogram images of the electrode-averaged signal, trained with Adam on
softmax cross-entropy.  The architecture is a scaled-down version of the
original (whose 30 s prediction windows do not fit the 1 s detection
protocol of the paper's comparison).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import WindowedDetector
from repro.baselines.features import window_stft
from repro.nn import (
    Adam,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    softmax_cross_entropy,
)


def build_cnn(seed: int = 0) -> Sequential:
    """The 2-conv-block classifier: (1,16,16) -> 2 logits."""
    return Sequential(
        Conv2d(1, 8, 3, padding=1, seed=seed + 11),
        ReLU(),
        MaxPool2d(2),
        Conv2d(8, 16, 3, padding=1, seed=seed + 12),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(16 * 4 * 4, 32, seed=seed + 13),
        ReLU(),
        Linear(32, 2, seed=seed + 14),
    )


class StftCnnDetector(WindowedDetector):
    """The STFT + CNN seizure detector of Table I.

    Args:
        n_electrodes: Electrode count.
        fs: Sampling rate.
        epochs: Full-batch training epochs.
        lr: Adam learning rate.
        seed: Determinism seed (weights and batch order).
    """

    def __init__(
        self,
        n_electrodes: int,
        fs: float,
        epochs: int = 150,
        lr: float = 1e-3,
        seed: int = 0,
        window_s: float = 1.0,
        step_s: float = 0.5,
    ) -> None:
        super().__init__(n_electrodes, fs, window_s, step_s, seed)
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.epochs = epochs
        self.lr = lr
        self.model = build_cnn(seed)
        self.training_losses: list[float] = []

    def _features(self, signal: np.ndarray) -> np.ndarray:
        return window_stft(signal, self.fs, self.window_s, self.step_s)

    def _train(self, features: np.ndarray, labels: np.ndarray) -> None:
        self.model.train(True)
        optimizer = Adam(self.model.parameters(), lr=self.lr)
        self.training_losses = []
        for _ in range(self.epochs):
            optimizer.zero_grad()
            logits = self.model.forward(features)
            loss, grad = softmax_cross_entropy(logits, labels)
            self.model.backward(grad)
            optimizer.step()
            self.training_losses.append(loss)
        self.model.eval()

    def _scores(self, features: np.ndarray) -> np.ndarray:
        self.model.eval()
        # Batched inference bounds the im2col workspace on long recordings.
        scores = np.empty(features.shape[0])
        batch = 1024
        for start in range(0, features.shape[0], batch):
            logits = self.model.forward(features[start : start + batch])
            scores[start : start + batch] = logits[:, 1] - logits[:, 0]
        return scores
