"""LBP + linear SVM baseline [Jaiswal et al. 2017].

A linear support-vector machine trained by deterministic full-batch
subgradient descent on the L2-regularised hinge loss (with momentum).
The paper's protocol provides only tens of training windows, so full
batches are cheap and remove SGD noise entirely — the same seed and data
always give the same hyperplane.  Features are the per-window,
per-electrode LBP-code histograms of
:func:`repro.baselines.features.window_lbp_histograms`.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import WindowedDetector
from repro.baselines.features import window_lbp_histograms


class LinearSVM:
    """Binary linear SVM (primal hinge + L2, full-batch subgradient).

    Args:
        lam: L2 regularisation strength.
        epochs: Full-batch descent iterations.
        lr: Step size.
        momentum: Heavy-ball momentum coefficient.
        seed: Kept for interface stability (training is deterministic).
    """

    def __init__(
        self,
        lam: float = 1e-3,
        epochs: int = 300,
        lr: float = 0.1,
        momentum: float = 0.9,
        seed: int = 0,
    ) -> None:
        if lam <= 0:
            raise ValueError(f"lam must be positive, got {lam}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lam = lam
        self.epochs = epochs
        self.lr = lr
        self.momentum = momentum
        self.seed = seed
        self.weights: np.ndarray | None = None
        self.bias = 0.0
        self.training_losses: list[float] = []

    def _loss_and_grad(
        self, x: np.ndarray, y: np.ndarray, w: np.ndarray, b: float
    ) -> tuple[float, np.ndarray, float]:
        scores = x @ w + b
        margins = 1.0 - y * scores
        active = margins > 0
        n = x.shape[0]
        loss = float(
            np.where(active, margins, 0.0).mean()
            + 0.5 * self.lam * (w @ w)
        )
        coeff = np.where(active, -y, 0.0) / n
        grad_w = x.T @ coeff + self.lam * w
        grad_b = float(coeff.sum())
        return loss, grad_w, grad_b

    def fit(self, features: np.ndarray, labels01: np.ndarray) -> "LinearSVM":
        """Train on ``(n, d)`` features with 0/1 labels."""
        x = np.asarray(features, dtype=np.float64)
        y01 = np.asarray(labels01)
        if x.ndim != 2 or y01.shape != (x.shape[0],):
            raise ValueError("features must be (n, d) with aligned labels")
        if len(np.unique(y01)) < 2:
            raise ValueError("training data must contain both classes")
        y = np.where(y01 > 0, 1.0, -1.0)
        w = np.zeros(x.shape[1])
        b = 0.0
        vel_w = np.zeros_like(w)
        vel_b = 0.0
        self.training_losses = []
        for _ in range(self.epochs):
            loss, grad_w, grad_b = self._loss_and_grad(x, y, w, b)
            self.training_losses.append(loss)
            vel_w = self.momentum * vel_w - self.lr * grad_w
            vel_b = self.momentum * vel_b - self.lr * grad_b
            w = w + vel_w
            b = b + vel_b
        self.weights = w
        self.bias = b
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed margins ``x @ w + b``."""
        if self.weights is None:
            raise RuntimeError("SVM not fitted")
        return np.asarray(features, dtype=np.float64) @ self.weights + self.bias

    def predict(self, features: np.ndarray) -> np.ndarray:
        """0/1 labels from the margin sign."""
        return (self.decision_function(features) > 0).astype(np.int64)


class LbpSvmDetector(WindowedDetector):
    """The LBP + linear SVM seizure detector of Table I.

    Args:
        n_electrodes: Electrode count.
        fs: Sampling rate.
        lbp_length: LBP code length (6, matching Laelaps).
        lam: SVM regularisation strength.
        epochs: SVM training iterations.
        seed: Determinism seed.
    """

    def __init__(
        self,
        n_electrodes: int,
        fs: float,
        lbp_length: int = 6,
        lam: float = 1e-3,
        epochs: int = 300,
        seed: int = 0,
        window_s: float = 1.0,
        step_s: float = 0.5,
    ) -> None:
        super().__init__(n_electrodes, fs, window_s, step_s, seed)
        self.lbp_length = lbp_length
        self.model = LinearSVM(lam=lam, epochs=epochs, seed=seed)

    def _features(self, signal: np.ndarray) -> np.ndarray:
        return window_lbp_histograms(
            signal, self.fs, self.window_s, self.step_s, self.lbp_length
        )

    def _train(self, features: np.ndarray, labels: np.ndarray) -> None:
        self.model.fit(features, labels)

    def _scores(self, features: np.ndarray) -> np.ndarray:
        return self.model.decision_function(features)
