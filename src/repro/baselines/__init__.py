"""State-of-the-art comparator methods of Table I.

Three baselines, re-implemented from scratch (no sklearn/Keras in this
environment) and trained with exactly the same protocol as Laelaps
(1-2 seizures + 30 s interictal, t_c voting, t_r = 0):

* :class:`repro.baselines.svm.LbpSvmDetector` — per-electrode LBP-code
  histograms + linear SVM [Jaiswal et al. 2017];
* :class:`repro.baselines.cnn.StftCnnDetector` — short-time Fourier
  transform + small CNN [Truong et al. 2018];
* :class:`repro.baselines.lstm.LstmDetector` — recurrent network on raw
  window statistics [Hussein et al. 2018].
"""

from repro.baselines.base import WindowedDetector
from repro.baselines.cnn import StftCnnDetector
from repro.baselines.features import (
    window_lbp_histograms,
    window_sequences,
    window_stft,
)
from repro.baselines.lstm import LstmDetector
from repro.baselines.svm import LbpSvmDetector, LinearSVM

__all__ = [
    "WindowedDetector",
    "LbpSvmDetector",
    "LinearSVM",
    "StftCnnDetector",
    "LstmDetector",
    "window_lbp_histograms",
    "window_stft",
    "window_sequences",
]
