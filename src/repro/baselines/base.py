"""Shared scaffolding for the baseline detectors.

``WindowedDetector`` owns the protocol plumbing every baseline shares —
slicing training segments, extracting window features, standardising
them, and producing :class:`~repro.core.detector.WindowPredictions` whose
``deltas`` carry the classifier's score magnitude (so the same t_c / t_r
postprocessor applies; the baselines run at t_r = 0 as in the paper).
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import WindowPredictions
from repro.core.postprocess import alarm_flags, flags_to_onsets
from repro.core.training import TrainingSegments, segment_slice


class FeatureScaler:
    """Per-feature standardisation fitted on the training windows."""

    def __init__(self) -> None:
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "FeatureScaler":
        """Record mean/std along axis 0 (constant features get std 1)."""
        self.mean = features.mean(axis=0)
        std = features.std(axis=0)
        self.std = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Standardise; requires a prior :meth:`fit`."""
        if self.mean is None or self.std is None:
            raise RuntimeError("scaler not fitted")
        return (features - self.mean) / self.std


class WindowedDetector:
    """Base class: fit on segments, score every window of a recording.

    Subclasses implement:

    * ``_features(signal)`` — window features, shape ``(n_windows, ...)``;
    * ``_train(features, labels)`` — fit the classifier;
    * ``_scores(features)`` — real-valued scores, positive = ictal.

    Args:
        n_electrodes: Electrode count of the patient.
        fs: Sampling rate of the recordings.
        window_s: Analysis-window length (1 s, as Laelaps).
        step_s: Window hop (0.5 s).
        seed: Seed forwarded to the subclass model.
    """

    #: Minimum raw-sample margin appended to training segments so their
    #: trailing windows exist (LBP-based features consume a few samples).
    _segment_margin = 8

    def __init__(
        self,
        n_electrodes: int,
        fs: float,
        window_s: float = 1.0,
        step_s: float = 0.5,
        seed: int = 0,
    ) -> None:
        if n_electrodes < 1:
            raise ValueError(f"n_electrodes must be >= 1, got {n_electrodes}")
        self.n_electrodes = n_electrodes
        self.fs = fs
        self.window_s = window_s
        self.step_s = step_s
        self.seed = seed
        self.tr = 0.0
        self.scaler = FeatureScaler()
        self._fitted = False
        self.fit_report = None

    # -- subclass hooks --------------------------------------------------

    def _features(self, signal: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _train(self, features: np.ndarray, labels: np.ndarray) -> None:
        raise NotImplementedError

    def _scores(self, features: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- shared plumbing --------------------------------------------------

    def _validate(self, signal: np.ndarray) -> np.ndarray:
        arr = np.asarray(signal)
        if arr.ndim != 2 or arr.shape[1] != self.n_electrodes:
            raise ValueError(
                f"expected (n_samples, {self.n_electrodes}), got {arr.shape}"
            )
        return arr

    def _flat(self, features: np.ndarray) -> np.ndarray:
        return features.reshape(features.shape[0], -1)

    def fit(
        self, signal: np.ndarray, segments: TrainingSegments
    ) -> "WindowedDetector":
        """Train on the paper's protocol segments."""
        arr = self._validate(signal)
        margin = self._segment_margin
        chunks: list[np.ndarray] = []
        labels: list[np.ndarray] = []
        for segment in segments.ictal:
            sl = segment_slice(segment, self.fs, arr.shape[0], margin)
            feats = self._features(arr[sl])
            if feats.shape[0] == 0:
                raise ValueError(f"ictal segment {segment} yields no window")
            chunks.append(feats)
            labels.append(np.ones(feats.shape[0], dtype=np.int64))
        sl = segment_slice(segments.interictal, self.fs, arr.shape[0], margin)
        feats = self._features(arr[sl])
        if feats.shape[0] == 0:
            raise ValueError("interictal segment yields no window")
        chunks.append(feats)
        labels.append(np.zeros(feats.shape[0], dtype=np.int64))

        features = np.concatenate(chunks, axis=0)
        y = np.concatenate(labels)
        flat = self._flat(features)
        self.scaler.fit(flat)
        scaled = self.scaler.transform(flat).reshape(features.shape)
        self._train(scaled, y)
        self._fitted = True
        return self

    def predict(self, signal: np.ndarray) -> WindowPredictions:
        """Score every window; scores become labels and delta values."""
        if not self._fitted:
            raise RuntimeError("detector must be fitted before predicting")
        arr = self._validate(signal)
        features = self._features(arr)
        n_win = features.shape[0]
        if n_win == 0:
            empty = np.zeros(0)
            return WindowPredictions(
                labels=empty.astype(np.int64),
                distances=np.zeros((0, 2), dtype=np.int64),
                deltas=empty,
                times=empty,
            )
        flat = self.scaler.transform(self._flat(features))
        scores = self._scores(flat.reshape(features.shape))
        labels = (scores > 0).astype(np.int64)
        step = self.step_s
        times = (np.arange(n_win) * step) + self.window_s
        return WindowPredictions(
            labels=labels,
            distances=np.zeros((n_win, 2), dtype=np.int64),
            deltas=np.abs(scores).astype(np.float64),
            times=times,
        )

    def detect(self, signal: np.ndarray):
        """Alarms under the shared postprocessor (t_r = 0 by default)."""
        from repro.core.detector import DetectionResult

        preds = self.predict(signal)
        flags = alarm_flags(preds.labels, preds.deltas, 10, 10, self.tr)
        onsets = flags_to_onsets(flags)
        return DetectionResult(
            alarm_times=preds.times[onsets] if len(preds) else np.zeros(0),
            flags=flags,
            predictions=preds,
        )
