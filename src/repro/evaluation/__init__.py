"""Evaluation harness: metrics, protocol and the Table I orchestration.

The three paper metrics (Sec. IV-B):

* **sensitivity** — detected seizures / test seizures;
* **false detection rate (FDR)** — false alarms per interictal hour;
* **detection delay** — seconds between the expert-marked onset and the
  first alarm inside the seizure.
"""

from repro.evaluation.crossval import (
    CrossValidationResult,
    FoldResult,
    leave_one_seizure_out,
)
from repro.evaluation.events import (
    AlarmMatch,
    match_alarms,
    merge_alarms,
)
from repro.evaluation.metrics import DetectionMetrics, compute_metrics
from repro.evaluation.operating import (
    OperatingPoint,
    tr_operating_curve,
    zero_fdr_plateau,
)
from repro.evaluation.report import render_table
from repro.evaluation.runner import (
    PatientResult,
    PatientRun,
    evaluate_detector,
    finalize_run,
    predict_windows,
    run_patient,
)
from repro.evaluation.table1 import (
    MethodSpec,
    Table1Result,
    default_methods,
    run_table1,
)

__all__ = [
    "CrossValidationResult",
    "FoldResult",
    "leave_one_seizure_out",
    "AlarmMatch",
    "match_alarms",
    "merge_alarms",
    "DetectionMetrics",
    "compute_metrics",
    "OperatingPoint",
    "tr_operating_curve",
    "zero_fdr_plateau",
    "PatientRun",
    "PatientResult",
    "predict_windows",
    "run_patient",
    "finalize_run",
    "evaluate_detector",
    "MethodSpec",
    "Table1Result",
    "default_methods",
    "run_table1",
    "render_table",
]
