"""Per-patient evaluation driver.

``run_patient`` executes the expensive part once — training a detector
and classifying the train and test spans — and captures the raw
label/confidence streams in a :class:`PatientRun`.  Postprocessing
(t_c / t_r voting) is deferred to :func:`finalize_run`, so the t_r
ablation and the cohort-level alpha computation re-use the same
predictions instead of re-encoding hours of signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Protocol

import numpy as np

from repro.core.detector import WindowPredictions
from repro.core.postprocess import (
    PostprocessConfig,
    Postprocessor,
    delta_scores,
    tune_tr,
)
from repro.core.training import TrainingSegments, windows_in_segments
from repro.data.model import Patient, Recording, SeizureEvent
from repro.data.splits import ChronologicalSplit, split_patient
from repro.evaluation.metrics import DetectionMetrics, compute_metrics


class SupportsDetection(Protocol):
    """Minimal interface every detector (Laelaps and baselines) offers."""

    window_s: float

    def fit(self, signal: np.ndarray, segments: TrainingSegments) -> Any:
        """Train from a recording and explicit training segments."""

    def predict(self, signal: np.ndarray) -> WindowPredictions:
        """Per-window labels, confidence scores and decision times."""


#: Factory building a fresh detector for a patient:
#: ``factory(n_electrodes, fs) -> detector``.
DetectorFactory = Callable[[int, float], SupportsDetection]

#: Default raw-sample chunk of the streamed prediction path.  Sized so
#: the transient buffers (chunk + LBP codes + the engine's per-block
#: scratch) stay well under the out-of-core RAM budget even at 1024
#: channels, while each chunk still spans many analysis windows.
DEFAULT_CHUNK_SAMPLES = 4096


def predict_windows(
    detector: SupportsDetection, signal: np.ndarray
) -> WindowPredictions:
    """Score a whole recording in one batched sweep.

    Laelaps detectors route ``predict`` through their compute engine's
    ``encode_classify`` sweep (batched on every engine, fused on
    ``packed-fused`` — windows are classified as their blocks complete,
    with no per-window loop and no full H array); baselines run their
    own ``predict``.  Kept as the evaluation driver's single entry
    point so every method is scored through the same call.
    """
    return detector.predict(signal)


def predict_windows_streamed(
    detector: Any,
    signal: np.ndarray,
    chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
) -> WindowPredictions:
    """Score a recording block by block, bit-exact with ``predict``.

    The out-of-core path: ``signal`` may be (a view of) an
    ``np.memmap``-backed recording that must never be materialised.
    Chunks of raw samples feed the detector's streaming machinery — LBP
    codes continue across chunk boundaries through a carried symboliser
    tail (the :class:`~repro.core.streaming.StreamingLaelaps` contract),
    the temporal encoder buffers partial blocks, and each chunk's
    completed windows are classified immediately — so peak memory is
    O(chunk), independent of the recording length, and the label /
    distance / time streams equal the in-memory path's exactly (the
    sign-of-difference LBP codes and per-window Hamming queries are
    insensitive to how the sweep is blocked).

    Args:
        detector: A *fitted* Laelaps-style detector: needs the
            streaming surface (``symbolizer`` with LBP margin
            semantics, ``temporal_encoder``, ``classify_from_windows``,
            ``window_times``).  Baselines without it must use
            :func:`predict_windows`.
        signal: Recording ``(n_samples, n_electrodes)``; memmap views
            welcome.
        chunk_samples: Raw samples per block (memory/speed knob; the
            predictions are identical for every value).

    Raises:
        TypeError: If the detector lacks the streaming surface.
        ValueError: On a bad chunk size or signal shape.
    """
    from repro.core.symbolizers import LBPSymbolizer

    symbolizer = getattr(detector, "symbolizer", None)
    if not isinstance(symbolizer, LBPSymbolizer) or not hasattr(
        detector, "classify_from_windows"
    ):
        raise TypeError(
            "streamed prediction needs an LBP-symbolised detector with "
            "the streaming surface (temporal_encoder / "
            "classify_from_windows); got "
            f"{type(detector).__name__}"
        )
    if chunk_samples < 1:
        raise ValueError(f"chunk_samples must be >= 1, got {chunk_samples}")
    if signal.ndim != 2:
        raise ValueError(
            f"expected (n_samples, n_electrodes), got {signal.shape}"
        )
    encoder = detector.temporal_encoder()
    length = symbolizer.length
    n_samples = signal.shape[0]
    tail = signal[0:0]
    labels_parts: list[np.ndarray] = []
    distances_parts: list[np.ndarray] = []
    for start in range(0, n_samples, chunk_samples):
        chunk = signal[start:start + chunk_samples]
        joined = np.concatenate([tail, chunk], axis=0)
        if joined.shape[0] <= length:
            tail = joined
            continue
        codes = symbolizer.codes(joined)
        # Keep the raw samples whose codes are not yet computable.
        tail = joined[-length:]
        h = encoder.feed(codes)
        if h.shape[0] == 0:
            continue
        labels, distances, _ = detector.classify_from_windows(h)
        labels_parts.append(labels)
        distances_parts.append(distances)
    if labels_parts:
        all_labels = np.concatenate(labels_parts)
        all_distances = np.concatenate(distances_parts, axis=0)
    else:
        all_labels = np.zeros(0, dtype=np.int64)
        all_distances = np.zeros((0, 2), dtype=np.int64)
    return WindowPredictions(
        labels=all_labels,
        distances=all_distances,
        deltas=delta_scores(all_distances),
        times=detector.window_times(all_labels.shape[0]),
    )


@dataclass
class PatientRun:
    """Raw predictions of one detector on one patient.

    Attributes:
        patient_id: Cohort identifier.
        method: Method name (``"laelaps"``, ``"svm"``, ...).
        n_electrodes: Electrode count of the patient.
        train_preds: Predictions over the training span.
        train_truth: Ground-truth ictal mask aligned with ``train_preds``
            (True where the window overlaps a seizure).
        test_preds: Predictions over the test span (times relative to the
            start of the test span).
        test_seizures: Seizures inside the test span, re-based.
        test_duration_s: Length of the test span.
        trained_delta_mean: Mean delta of the windows used to build the
            prototypes (nan for methods without a fit report).
        heldout_delta_mean: Mean delta of training-span ictal windows
            *not* used to build the prototypes (nan when none exist).
    """

    patient_id: str
    method: str
    n_electrodes: int
    train_preds: WindowPredictions
    train_truth: np.ndarray
    test_preds: WindowPredictions
    test_seizures: tuple[SeizureEvent, ...]
    test_duration_s: float
    trained_delta_mean: float = float("nan")
    heldout_delta_mean: float = float("nan")


@dataclass(frozen=True)
class PatientResult:
    """Final per-patient scores after postprocessing.

    Attributes:
        patient_id: Cohort identifier.
        method: Method name.
        metrics: Detection metrics on the test span.
        tr: The t_r threshold used.
        alarm_times: Alarm times (s, relative to the test span).
    """

    patient_id: str
    method: str
    metrics: DetectionMetrics
    tr: float
    alarm_times: np.ndarray


def run_patient(
    factory: DetectorFactory,
    patient: Patient,
    split: ChronologicalSplit | None = None,
    method: str = "detector",
    chunk_samples: int | None = None,
    **split_kwargs: float,
) -> PatientRun:
    """Train a detector on a patient and capture raw predictions.

    Args:
        factory: Builds the detector given ``(n_electrodes, fs)``.
        patient: The patient (recording + training-seizure count).
        split: Pre-computed chronological split; derived from the patient
            when omitted.
        method: Name recorded in the run.
        chunk_samples: When set, score both spans through
            :func:`predict_windows_streamed` in blocks of this many raw
            samples — the out-of-core path for memmap-backed recordings
            (bit-exact with the default in-memory sweep).  Training
            still slices only the short prototype segments, so the full
            spans are never materialised.
        **split_kwargs: Forwarded to
            :func:`repro.data.splits.split_patient` when ``split`` is None.
    """
    recording = patient.recording
    if split is None:
        split = split_patient(patient, **split_kwargs)
    train_end = split.train_span_s[1]
    train_rec = recording.slice_time(0.0, train_end)
    test_rec = recording.slice_time(train_end, recording.duration_s)

    detector = factory(patient.n_electrodes, recording.fs)
    detector.fit(train_rec.data, split.training_segments)
    if chunk_samples is None:
        train_preds = predict_windows(detector, train_rec.data)
        test_preds = predict_windows(detector, test_rec.data)
    else:
        train_preds = predict_windows_streamed(
            detector, train_rec.data, chunk_samples
        )
        test_preds = predict_windows_streamed(
            detector, test_rec.data, chunk_samples
        )

    window_s = detector.window_s
    # A window with decision time t spans [t - window_s, t]; it overlaps a
    # seizure [on, off] iff on <= t <= off + window_s.
    train_truth = windows_in_segments(
        train_preds.times,
        [(s.onset_s, s.offset_s + window_s) for s in train_rec.seizures],
        window_s=0.0,
    )
    # Delta statistics for the alpha term of the t_r rule.
    trained_mean = float("nan")
    report = getattr(detector, "fit_report", None)
    if report is not None:
        trained_mean = report.mean_trained_ictal_delta
    trained_mask = windows_in_segments(
        train_preds.times, list(split.training_segments.ictal), window_s
    )
    ictal_mask = windows_in_segments(
        train_preds.times, train_rec.seizure_segments(), window_s
    )
    heldout = ictal_mask & ~trained_mask
    heldout_mean = (
        float(np.mean(train_preds.deltas[heldout]))
        if np.any(heldout)
        else float("nan")
    )
    return PatientRun(
        patient_id=patient.patient_id,
        method=method,
        n_electrodes=patient.n_electrodes,
        train_preds=train_preds,
        train_truth=train_truth,
        test_preds=test_preds,
        test_seizures=test_rec.seizures,
        test_duration_s=test_rec.duration_s,
        trained_delta_mean=trained_mean,
        heldout_delta_mean=heldout_mean,
    )


def tune_run_tr(run: PatientRun, alpha: float = 0.0,
                postprocess_len: int = 10, tc: int = 10) -> float:
    """Tune t_r from a run's training-span predictions (Sec. III-C)."""
    return tune_tr(
        run.train_preds.labels,
        run.train_preds.deltas,
        run.train_truth,
        alpha=alpha,
        postprocess_len=postprocess_len,
        tc=tc,
    )


def finalize_run(
    run: PatientRun,
    tr: float = 0.0,
    postprocess_len: int = 10,
    tc: int = 10,
    grace_s: float = 5.0,
    refractory_s: float = 30.0,
) -> PatientResult:
    """Apply postprocessing at a given t_r and score the test span.

    Runs the same shared state machine as ``detect()`` and the stream
    engines (so the warm-up contract applies: no alarm before window
    ``postprocess_len - 1``).
    """
    preds = run.test_preds
    post = Postprocessor(
        PostprocessConfig(postprocess_len=postprocess_len, tc=tc, tr=tr)
    )
    onsets = post.onsets(preds.labels, preds.deltas)
    alarm_times = preds.times[onsets] if len(preds) else np.zeros(0)
    metrics = compute_metrics(
        alarm_times,
        run.test_seizures,
        run.test_duration_s,
        grace_s=grace_s,
        refractory_s=refractory_s,
    )
    return PatientResult(
        patient_id=run.patient_id,
        method=run.method,
        metrics=metrics,
        tr=tr,
        alarm_times=alarm_times,
    )


def evaluate_detector(
    detector: Any,
    recording: Recording,
    tr: float | None = None,
    postprocess_len: int = 10,
    tc: int = 10,
    chunk_samples: int | None = None,
) -> DetectionMetrics:
    """Score a *fitted* detector on an annotated recording.

    Convenience wrapper used by the examples: predicts, postprocesses at
    the detector's (or an explicit) t_r, and computes metrics against the
    recording's own annotations.  ``chunk_samples`` switches to the
    streamed (out-of-core) prediction path, identical in output.
    """
    if chunk_samples is None:
        preds = predict_windows(detector, recording.data)
    else:
        preds = predict_windows_streamed(
            detector, recording.data, chunk_samples
        )
    threshold = tr if tr is not None else float(getattr(detector, "tr", 0.0))
    post = Postprocessor(
        PostprocessConfig(postprocess_len=postprocess_len, tc=tc, tr=threshold)
    )
    onsets = post.onsets(preds.labels, preds.deltas)
    alarm_times = preds.times[onsets] if len(preds) else np.zeros(0)
    return compute_metrics(
        alarm_times, recording.seizures, recording.duration_s
    )
