"""Operating-characteristic analysis: sensitivity vs FDR over t_r.

The paper reports a single operating point per patient (t_r from the
tuning rule).  This module traces the whole characteristic by
re-postprocessing stored :class:`~repro.evaluation.runner.PatientRun`
predictions over a grid of t_r values — showing the trade-off the rule
navigates, and how far the zero-false-alarm plateau extends before
sensitivity starts to drop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.evaluation.metrics import pool_metrics
from repro.evaluation.runner import PatientRun, finalize_run


@dataclass(frozen=True)
class OperatingPoint:
    """Pooled detection performance at one t_r.

    Attributes:
        tr: The threshold evaluated.
        sensitivity: Pooled detected / pooled test seizures.
        fdr_per_hour: Pooled false alarms per pooled interictal hour.
        n_detected: Pooled detection count.
        n_false_alarms: Pooled false-alarm count.
    """

    tr: float
    sensitivity: float
    fdr_per_hour: float
    n_detected: int
    n_false_alarms: int


def auto_tr_grid(
    runs: Iterable[PatientRun], n_points: int = 15
) -> np.ndarray:
    """A t_r grid from the pooled delta distribution's quantiles.

    Starts at 0 (the untuned operating point) and spans up to the
    maximum observed delta, so the curve always reaches the
    zero-alarms/zero-detections extreme.
    """
    deltas = np.concatenate([run.test_preds.deltas for run in runs])
    if deltas.size == 0:
        return np.array([0.0])
    quantiles = np.quantile(deltas, np.linspace(0.0, 1.0, n_points - 1))
    grid = np.unique(np.concatenate([[0.0], quantiles]))
    return grid


def tr_operating_curve(
    runs: Sequence[PatientRun],
    tr_values: Sequence[float] | None = None,
    postprocess_len: int = 10,
    tc: int = 10,
) -> list[OperatingPoint]:
    """Pooled sensitivity/FDR at each t_r (ascending).

    Args:
        runs: Stored per-patient runs of one method.
        tr_values: Thresholds to evaluate; an automatic quantile grid
            when omitted.
        postprocess_len: Voting-window length.
        tc: Hard label-count threshold.
    """
    runs = list(runs)
    if not runs:
        raise ValueError("need at least one run")
    grid = (
        np.asarray(sorted(tr_values), dtype=float)
        if tr_values is not None
        else auto_tr_grid(runs)
    )
    curve: list[OperatingPoint] = []
    for tr in grid:
        pooled = pool_metrics([
            finalize_run(
                run, tr=float(tr), postprocess_len=postprocess_len, tc=tc
            ).metrics
            for run in runs
        ])
        curve.append(
            OperatingPoint(
                tr=float(tr),
                sensitivity=pooled.sensitivity,
                fdr_per_hour=pooled.fdr_per_hour,
                n_detected=pooled.n_detected,
                n_false_alarms=pooled.n_false_alarms,
            )
        )
    return curve


def zero_fdr_plateau(curve: Sequence[OperatingPoint]) -> tuple[float, float]:
    """The t_r span with zero false alarms and maximal sensitivity.

    Returns ``(tr_low, tr_high)`` bounding the best zero-FDR region of
    the curve; raises when no evaluated point reaches zero FDR.
    """
    zero_points = [p for p in curve if p.n_false_alarms == 0]
    if not zero_points:
        raise ValueError("no zero-FDR operating point on the curve")
    best = max(p.sensitivity for p in zero_points)
    best_points = [p for p in zero_points if p.sensitivity == best]
    return (
        min(p.tr for p in best_points),
        max(p.tr for p in best_points),
    )
