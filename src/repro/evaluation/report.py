"""Plain-text table rendering for the benchmark harnesses."""

from __future__ import annotations

from typing import Sequence


def format_value(value: object, precision: int = 2) -> str:
    """Human formatting: floats rounded, nan shown as ``n.a.`` (Table I)."""
    if isinstance(value, float):
        if value != value:  # nan
            return "n.a."
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    precision: int = 2,
) -> str:
    """Render an aligned monospace table.

    Args:
        headers: Column names.
        rows: Row cells; floats are formatted with ``precision`` digits
            and nan renders as ``n.a.`` like the paper's tables.
        title: Optional line printed above the table.
        precision: Decimal digits for float cells.

    Returns:
        The table as a single string (no trailing newline).
    """
    formatted = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in formatted))
        if formatted
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in formatted:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
