"""Versioned benchmark records: the perf trajectory's file format.

Every committed ``BENCH_*.json`` artifact (and every fresh run that CI
compares against one) is a :class:`BenchRecord`: a schema-versioned
envelope holding the machine fingerprint the numbers were measured on,
the git SHA they were measured at, the compute-engine name, the
harness configuration, and a flat ``{metric: number}`` dict.  Keeping
the envelope strict (``validate_record`` rejects unknown schema
versions and malformed payloads) is what lets CI hard-fail on emit
errors while staying report-only on the numbers themselves — runner
shapes vary, schemas must not.

Reading a record re-validates it, so a stale or hand-edited baseline
fails loudly instead of producing nonsense deltas.  Comparison
(:func:`compare_records`) is per-metric: baseline value, fresh value,
absolute delta and ratio, with one-sided metrics flagged rather than
dropped.

Module CLI (used by the CI ``perf-trajectory`` job)::

    python -m repro.evaluation.benchrec validate BENCH_load_slo.json
    python -m repro.evaluation.benchrec compare BASELINE.json FRESH.json

``validate`` exits non-zero on any schema violation; ``compare`` prints
the per-metric delta table and exits non-zero only when either file
fails validation (deltas are report-only by design).
"""

from __future__ import annotations

import json
import numbers
import os
import platform
import sys
from dataclasses import asdict, dataclass, field
from pathlib import Path

#: Current schema version of the record envelope.  Bump on any
#: backwards-incompatible change to the field set; readers reject
#: records written under a different version.
SCHEMA_VERSION = 1

#: Required top-level fields and their types (the schema).
_FIELDS: dict[str, type] = {
    "schema_version": int,
    "name": str,
    "machine": dict,
    "git_sha": str,
    "engine": str,
    "config": dict,
    "metrics": dict,
}


class BenchRecordError(ValueError):
    """A benchmark record violates the benchrec schema."""


def machine_fingerprint() -> dict:
    """Fingerprint of the measuring host, stored inside every record.

    Enough to judge whether two records are comparable (core count,
    platform, interpreter and numpy versions) without identifying the
    machine beyond what CI logs already expose.
    """
    import numpy

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
    }


def current_git_sha(repo_root: str | Path | None = None) -> str:
    """The checked-out commit SHA, or ``"unknown"`` outside a checkout.

    Reads ``.git/HEAD`` directly (following one level of ref
    indirection) so no ``git`` executable is needed on the benchmark
    host or CI runner.
    """
    root = Path(repo_root) if repo_root is not None else _repo_root()
    head = root / ".git" / "HEAD"
    try:
        content = head.read_text().strip()
        if content.startswith("ref: "):
            ref = content[len("ref: "):]
            ref_file = root / ".git" / ref
            if ref_file.exists():
                return ref_file.read_text().strip()
            packed = root / ".git" / "packed-refs"
            for line in packed.read_text().splitlines():
                if line.endswith(" " + ref):
                    return line.split(" ", 1)[0]
            return "unknown"
        return content
    except OSError:
        return "unknown"


def _repo_root() -> Path:
    """Nearest ancestor of this module holding a ``.git`` directory."""
    path = Path(__file__).resolve()
    for parent in path.parents:
        if (parent / ".git").exists():
            return parent
    return Path.cwd()


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark run under the versioned envelope.

    Attributes:
        name: Harness identity (e.g. ``"load_slo"``) — comparisons
            across different names are refused.
        machine: :func:`machine_fingerprint` of the measuring host.
        git_sha: Commit the numbers were measured at.
        engine: Resolved compute-engine name the run executed on.
        config: Harness configuration (flat JSON-serialisable dict).
        metrics: Flat ``{metric: number}`` dict — the payload tracked
            across the perf trajectory.
        schema_version: Envelope version; see :data:`SCHEMA_VERSION`.
    """

    name: str
    machine: dict
    git_sha: str
    engine: str
    config: dict
    metrics: dict
    schema_version: int = field(default=SCHEMA_VERSION)

    def __post_init__(self) -> None:
        validate_record(asdict(self))


def validate_record(payload: object) -> dict:
    """Check one decoded JSON payload against the benchrec schema.

    Returns:
        The payload itself (typed as a dict) when valid.

    Raises:
        BenchRecordError: On any violation — wrong top-level type,
            missing/extra fields, field-type mismatches, non-numeric
            metric values, or a schema-version mismatch (reported with
            both versions so a migration is obvious).
    """
    if not isinstance(payload, dict):
        raise BenchRecordError(
            f"record must be a JSON object, got {type(payload).__name__}"
        )
    missing = sorted(_FIELDS.keys() - payload.keys())
    if missing:
        raise BenchRecordError(f"record is missing fields: {missing}")
    extra = sorted(payload.keys() - _FIELDS.keys())
    if extra:
        raise BenchRecordError(f"record has unknown fields: {extra}")
    for name, expected in _FIELDS.items():
        value = payload[name]
        # bool is an int subclass; it is never a valid field value here.
        if not isinstance(value, expected) or isinstance(value, bool):
            raise BenchRecordError(
                f"field {name!r} must be {expected.__name__}, got "
                f"{type(value).__name__}"
            )
    version = payload["schema_version"]
    if version != SCHEMA_VERSION:
        raise BenchRecordError(
            f"schema version mismatch: record is v{version}, this reader "
            f"understands v{SCHEMA_VERSION}"
        )
    if not payload["name"]:
        raise BenchRecordError("field 'name' must be non-empty")
    for key, value in payload["metrics"].items():
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            raise BenchRecordError(
                f"metric {key!r} must be a number, got "
                f"{type(value).__name__}"
            )
    return payload


def write_record(record: BenchRecord, path: str | Path) -> Path:
    """Serialise one validated record to ``path`` (pretty-printed JSON)."""
    path = Path(path)
    payload = validate_record(asdict(record))
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def read_record(path: str | Path) -> BenchRecord:
    """Load and re-validate a record written by :func:`write_record`.

    Raises:
        BenchRecordError: If the file is not valid JSON or violates the
            schema (including a schema-version mismatch).
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BenchRecordError(f"cannot read record {path}: {exc}") from exc
    validate_record(payload)
    return BenchRecord(**payload)


@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline-vs-fresh comparison row."""

    metric: str
    baseline: float | None
    fresh: float | None
    delta: float | None
    ratio: float | None

    @property
    def one_sided(self) -> bool:
        """The metric exists in only one of the two records."""
        return self.baseline is None or self.fresh is None


def compare_records(
    baseline: BenchRecord, fresh: BenchRecord
) -> list[MetricDelta]:
    """Per-metric deltas of a fresh run against a committed baseline.

    Metrics present in only one record produce a flagged
    :class:`MetricDelta` (``one_sided``) instead of being dropped —
    a metric silently vanishing from the trajectory is itself a signal.

    Raises:
        BenchRecordError: If the records name different harnesses.
    """
    if baseline.name != fresh.name:
        raise BenchRecordError(
            f"cannot compare records of different harnesses: "
            f"{baseline.name!r} vs {fresh.name!r}"
        )
    deltas = []
    for metric in sorted(baseline.metrics.keys() | fresh.metrics.keys()):
        base = baseline.metrics.get(metric)
        new = fresh.metrics.get(metric)
        if base is None or new is None:
            deltas.append(MetricDelta(metric, base, new, None, None))
            continue
        ratio = new / base if base else None
        deltas.append(MetricDelta(metric, base, new, new - base, ratio))
    return deltas


def render_comparison(
    baseline: BenchRecord, fresh: BenchRecord
) -> str:
    """Human-readable delta table (what the CI job prints)."""
    rows = [
        f"[benchrec] {fresh.name}: fresh {fresh.git_sha[:12]} vs "
        f"baseline {baseline.git_sha[:12]} "
        f"(baseline host: {baseline.machine.get('cpu_count', '?')} cores, "
        f"this host: {fresh.machine.get('cpu_count', '?')} cores)"
    ]
    width = max((len(d.metric) for d in compare_records(baseline, fresh)),
                default=0)
    for delta in compare_records(baseline, fresh):
        if delta.one_sided:
            side = "baseline" if delta.fresh is None else "fresh run"
            rows.append(
                f"  {delta.metric:<{width}}  only in {side}"
            )
            continue
        ratio = f"{delta.ratio:.2f}x" if delta.ratio is not None else "n/a"
        rows.append(
            f"  {delta.metric:<{width}}  {delta.baseline:>12.4f} -> "
            f"{delta.fresh:>12.4f}  ({delta.delta:+.4f}, {ratio})"
        )
    return "\n".join(rows)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.evaluation.benchrec`` — validate / compare.

    Exit status is about *schema health only*: ``validate`` fails on a
    malformed record, ``compare`` fails when either side fails to load.
    Metric regressions never change the exit code here — enforcement
    policy lives in the harnesses, not the file format.
    """
    args = list(sys.argv[1:] if argv is None else argv)
    usage = (
        "usage: python -m repro.evaluation.benchrec validate RECORD.json\n"
        "       python -m repro.evaluation.benchrec compare BASELINE.json "
        "FRESH.json"
    )
    if len(args) == 2 and args[0] == "validate":
        try:
            record = read_record(args[1])
        except BenchRecordError as exc:
            print(f"INVALID: {exc}")
            return 1
        print(
            f"OK: {args[1]} is a valid v{record.schema_version} "
            f"'{record.name}' record with {len(record.metrics)} metrics"
        )
        return 0
    if len(args) == 3 and args[0] == "compare":
        try:
            baseline = read_record(args[1])
            fresh = read_record(args[2])
            print(render_comparison(baseline, fresh))
        except BenchRecordError as exc:
            print(f"INVALID: {exc}")
            return 1
        return 0
    print(usage)
    return 2


if __name__ == "__main__":
    sys.exit(main())
