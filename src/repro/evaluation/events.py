"""Alarm/seizure event matching.

An alarm *detects* a seizure when it fires inside the seizure (up to a
small grace period after the offset, since the postprocessor needs ten
consecutive ictal labels and short seizures may end first).  Alarms that
match no seizure are false alarms.  Consecutive alarms within a
refractory period are merged into one event first, so a detector that
re-fires every window during a long event is not charged once per window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.model import SeizureEvent

#: Default refractory period for merging raw alarms into events, seconds.
DEFAULT_REFRACTORY_S = 30.0
#: Default grace period after a seizure offset, seconds.
DEFAULT_GRACE_S = 5.0


def merge_alarms(
    alarm_times: np.ndarray, refractory_s: float = DEFAULT_REFRACTORY_S
) -> np.ndarray:
    """Collapse alarms separated by less than ``refractory_s``.

    Returns the first alarm time of every merged group, sorted.
    """
    times = np.sort(np.asarray(alarm_times, dtype=np.float64))
    if times.size == 0:
        return times
    keep = [float(times[0])]
    for t in times[1:]:
        if t - keep[-1] >= refractory_s:
            keep.append(float(t))
    return np.asarray(keep)


@dataclass(frozen=True)
class AlarmMatch:
    """Outcome of matching alarm events against seizure annotations.

    Attributes:
        detected: Per-seizure flag, aligned with the input seizures.
        delays_s: Detection delay per *detected* seizure (first alarm
            minus expert onset), aligned with ``detected_indices``.
        detected_indices: Indices of detected seizures.
        false_alarm_times: Alarm events that matched no seizure.
    """

    detected: np.ndarray
    delays_s: np.ndarray
    detected_indices: np.ndarray
    false_alarm_times: np.ndarray

    @property
    def n_detected(self) -> int:
        """Number of detected seizures."""
        return int(self.detected.sum())

    @property
    def n_false_alarms(self) -> int:
        """Number of false alarm events."""
        return int(self.false_alarm_times.size)

    @property
    def mean_delay_s(self) -> float:
        """Mean detection delay over detected seizures (nan if none)."""
        return float(np.mean(self.delays_s)) if self.delays_s.size else float("nan")


def match_alarms(
    alarm_times: np.ndarray,
    seizures: list[SeizureEvent] | tuple[SeizureEvent, ...],
    grace_s: float = DEFAULT_GRACE_S,
    refractory_s: float = DEFAULT_REFRACTORY_S,
) -> AlarmMatch:
    """Match merged alarm events against seizures.

    Args:
        alarm_times: Raw alarm times in seconds (same time base as the
            seizures).
        seizures: Annotated seizures.
        grace_s: An alarm up to this long after a seizure offset still
            counts as detecting it.
        refractory_s: Merge window for raw alarms (see
            :func:`merge_alarms`).

    Returns:
        An :class:`AlarmMatch`.
    """
    events = merge_alarms(alarm_times, refractory_s)
    n = len(seizures)
    detected = np.zeros(n, dtype=bool)
    delays: list[float] = []
    detected_idx: list[int] = []
    consumed = np.zeros(events.size, dtype=bool)
    for i, seizure in enumerate(seizures):
        in_window = (
            (events >= seizure.onset_s)
            & (events <= seizure.offset_s + grace_s)
            & ~consumed
        )
        hits = np.flatnonzero(in_window)
        if hits.size:
            first = hits[0]
            consumed[in_window] = True
            detected[i] = True
            delays.append(float(events[first] - seizure.onset_s))
            detected_idx.append(i)
    return AlarmMatch(
        detected=detected,
        delays_s=np.asarray(delays, dtype=np.float64),
        detected_indices=np.asarray(detected_idx, dtype=np.int64),
        false_alarm_times=events[~consumed],
    )
