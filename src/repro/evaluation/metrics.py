"""Detection metrics: sensitivity, FDR, delay (Sec. IV-B)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.model import SeizureEvent
from repro.evaluation.events import (
    DEFAULT_GRACE_S,
    DEFAULT_REFRACTORY_S,
    match_alarms,
)


@dataclass(frozen=True)
class DetectionMetrics:
    """Per-patient (or aggregated) detection performance.

    Attributes:
        n_seizures: Test seizures evaluated.
        n_detected: Seizures with at least one matching alarm.
        n_false_alarms: Alarm events outside every seizure window.
        interictal_hours: Interictal test time the FDR is measured on.
        delays_s: Detection delay of every detected seizure.
    """

    n_seizures: int
    n_detected: int
    n_false_alarms: int
    interictal_hours: float
    delays_s: tuple[float, ...] = field(default_factory=tuple)

    @property
    def sensitivity(self) -> float:
        """Detected / evaluated; nan when there is nothing to detect."""
        if self.n_seizures == 0:
            return float("nan")
        return self.n_detected / self.n_seizures

    @property
    def fdr_per_hour(self) -> float:
        """False alarms per interictal hour."""
        if self.interictal_hours <= 0:
            return float("nan")
        return self.n_false_alarms / self.interictal_hours

    @property
    def mean_delay_s(self) -> float:
        """Mean detection delay; nan when nothing was detected."""
        if not self.delays_s:
            return float("nan")
        return float(np.mean(self.delays_s))

    def merged_with(self, other: "DetectionMetrics") -> "DetectionMetrics":
        """Pool two metric sets (counts add; delays concatenate)."""
        return DetectionMetrics(
            n_seizures=self.n_seizures + other.n_seizures,
            n_detected=self.n_detected + other.n_detected,
            n_false_alarms=self.n_false_alarms + other.n_false_alarms,
            interictal_hours=self.interictal_hours + other.interictal_hours,
            delays_s=self.delays_s + other.delays_s,
        )


def compute_metrics(
    alarm_times: np.ndarray,
    seizures: list[SeizureEvent] | tuple[SeizureEvent, ...],
    total_duration_s: float,
    grace_s: float = DEFAULT_GRACE_S,
    refractory_s: float = DEFAULT_REFRACTORY_S,
) -> DetectionMetrics:
    """Score alarms against annotations over a span of ``total_duration_s``.

    The FDR denominator is the *interictal* time: total duration minus the
    seizure time (plus grace periods, which are excluded from neither —
    the bias is negligible at realistic seizure densities and matches the
    paper's definition "false alarms that occurred during an hour").
    """
    match = match_alarms(alarm_times, seizures, grace_s, refractory_s)
    ictal_s = sum(s.duration_s for s in seizures)
    interictal_hours = max(0.0, total_duration_s - ictal_s) / 3600.0
    return DetectionMetrics(
        n_seizures=len(seizures),
        n_detected=match.n_detected,
        n_false_alarms=match.n_false_alarms,
        interictal_hours=interictal_hours,
        delays_s=tuple(match.delays_s.tolist()),
    )


def pool_metrics(per_patient: list[DetectionMetrics]) -> DetectionMetrics:
    """Pool patient metrics into cohort totals (counts and hours add)."""
    if not per_patient:
        raise ValueError("nothing to pool")
    total = per_patient[0]
    for metrics in per_patient[1:]:
        total = total.merged_with(metrics)
    return total


def mean_sensitivity(per_patient: list[DetectionMetrics]) -> float:
    """Unweighted mean of per-patient sensitivities (the paper's "mean").

    Patients with no test seizures (sensitivity nan) are skipped.
    """
    values = [m.sensitivity for m in per_patient if m.n_seizures > 0]
    return float(np.mean(values)) if values else float("nan")
