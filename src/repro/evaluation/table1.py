"""Table I orchestration: every method on every cohort patient.

The harness synthesises one patient at a time (recordings are the large
object; predictions are tiny), runs each method on it, and defers the
postprocessing so the alpha term and the t_r ablation re-use the stored
predictions.  t_r is tuned per patient for Laelaps and fixed to 0 for the
baselines, exactly as in Sec. IV-B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.postprocess import alpha_from_cohort
from repro.data.cohort import (
    DEFAULT_FS,
    DEFAULT_HOURS_SCALE,
    PatientSpec,
    cohort_patient_specs,
    synthesize_patient,
)
from repro.data.splits import split_patient
from repro.evaluation.metrics import (
    DetectionMetrics,
    mean_sensitivity,
    pool_metrics,
)
from repro.evaluation.report import render_table
from repro.evaluation.runner import (
    DetectorFactory,
    PatientResult,
    PatientRun,
    finalize_run,
    run_patient,
    tune_run_tr,
)
from repro.hdc.engine import UNPACKED_ENGINE

#: Name of the method whose t_r is tuned (all others run at t_r = 0).
LAELAPS = "laelaps"


@dataclass(frozen=True)
class MethodSpec:
    """A method entry of Table I.

    Attributes:
        name: Row-group name (``"laelaps"``, ``"svm"``, ``"cnn"``,
            ``"lstm"``).
        factory: Detector factory ``(n_electrodes, fs) -> detector``.
        tune_tr: Whether the patient-specific t_r rule applies.
    """

    name: str
    factory: DetectorFactory
    tune_tr: bool = False


def default_methods(
    dim: int = 1_000,
    seed: int = 0,
    include: Sequence[str] = (LAELAPS, "svm", "cnn", "lstm"),
    backend: str = UNPACKED_ENGINE,
) -> list[MethodSpec]:
    """The paper's four methods with sensible reproduction settings.

    Args:
        dim: Hypervector dimension for Laelaps (Table I's tuned models
            average 4.3 kbit; 1 kbit keeps the cohort bench tractable and
            is the paper's own minimum).
        seed: Master seed shared by all stochastic models.
        include: Subset of method names to build.
        backend: Laelaps compute-engine name (any value accepted by
            :class:`~repro.core.config.LaelapsConfig`, including
            ``auto``); the baselines are unaffected.  Every engine
            gives bit-identical Table I rows.
    """
    from repro.baselines.cnn import StftCnnDetector
    from repro.baselines.lstm import LstmDetector
    from repro.baselines.svm import LbpSvmDetector
    from repro.core.config import LaelapsConfig
    from repro.core.detector import LaelapsDetector

    def laelaps_factory(n_electrodes: int, fs: float):
        config = LaelapsConfig(dim=dim, fs=fs, seed=seed + 1, backend=backend)
        return LaelapsDetector(n_electrodes, config)

    def svm_factory(n_electrodes: int, fs: float):
        return LbpSvmDetector(n_electrodes, fs=fs, seed=seed + 2)

    def cnn_factory(n_electrodes: int, fs: float):
        return StftCnnDetector(n_electrodes, fs=fs, seed=seed + 3)

    def lstm_factory(n_electrodes: int, fs: float):
        return LstmDetector(n_electrodes, fs=fs, seed=seed + 4)

    registry = {
        LAELAPS: MethodSpec(LAELAPS, laelaps_factory, tune_tr=True),
        "svm": MethodSpec("svm", svm_factory),
        "cnn": MethodSpec("cnn", cnn_factory),
        "lstm": MethodSpec("lstm", lstm_factory),
    }
    unknown = set(include) - set(registry)
    if unknown:
        raise KeyError(f"unknown methods requested: {sorted(unknown)}")
    return [registry[name] for name in include]


@dataclass
class Table1Result:
    """All per-patient results plus cohort aggregates.

    Attributes:
        results: ``results[method][patient_id]`` -> :class:`PatientResult`.
        runs: Raw runs (kept so ablations can re-postprocess).
        alpha: The cohort alpha used for t_r tuning.
    """

    results: dict[str, dict[str, PatientResult]]
    runs: dict[str, dict[str, PatientRun]] = field(default_factory=dict)
    alpha: float = 0.0

    def methods(self) -> list[str]:
        """Method names in insertion order."""
        return list(self.results.keys())

    def patient_ids(self) -> list[str]:
        """Patient ids in cohort order (from the first method)."""
        first = next(iter(self.results.values()))
        return list(first.keys())

    def per_patient_metrics(self, method: str) -> list[DetectionMetrics]:
        """Metric list of one method over the cohort."""
        return [r.metrics for r in self.results[method].values()]

    def summary(self, method: str) -> dict[str, float]:
        """Cohort aggregates for one method (Table I's "mean" row)."""
        metrics = self.per_patient_metrics(method)
        pooled = pool_metrics(metrics)
        delays = [
            m.mean_delay_s for m in metrics if m.delays_s
        ]
        fdrs = [m.fdr_per_hour for m in metrics if m.interictal_hours > 0]
        return {
            "mean_delay_s": float(np.mean(delays)) if delays else float("nan"),
            "mean_fdr_per_hour": float(np.mean(fdrs)) if fdrs else float("nan"),
            "mean_sensitivity": mean_sensitivity(metrics),
            "detected": float(pooled.n_detected),
            "test_seizures": float(pooled.n_seizures),
            "false_alarms": float(pooled.n_false_alarms),
            "interictal_hours": pooled.interictal_hours,
        }

    def render(self) -> str:
        """Render the per-patient table in the layout of Table I."""
        headers = ["ID", "Elect", "TestSeiz"]
        for method in self.methods():
            headers += [f"{method}:delay", f"{method}:FDR/h", f"{method}:sens%"]
        first_method = self.methods()[0]
        electrodes = {
            pid: run.n_electrodes
            for pid, run in self.runs.get(first_method, {}).items()
        }
        rows = []
        for pid in self.patient_ids():
            any_result = self.results[first_method][pid]
            row: list[object] = [
                pid,
                electrodes.get(pid, "-"),
                any_result.metrics.n_seizures,
            ]
            for method in self.methods():
                m = self.results[method][pid].metrics
                row += [
                    m.mean_delay_s,
                    m.fdr_per_hour,
                    100.0 * m.sensitivity,
                ]
            rows.append(row)
        mean_row: list[object] = ["mean", "-", "-"]
        for method in self.methods():
            s = self.summary(method)
            mean_row += [
                s["mean_delay_s"],
                s["mean_fdr_per_hour"],
                100.0 * s["mean_sensitivity"],
            ]
        rows.append(mean_row)
        return render_table(headers, rows, title="Table I (reproduction)")


def run_table1(
    methods: list[MethodSpec] | None = None,
    specs: tuple[PatientSpec, ...] | None = None,
    hours_scale: float = DEFAULT_HOURS_SCALE,
    fs: float = DEFAULT_FS,
    interictal_lead_s: float = 60.0,
    keep_runs: bool = True,
    progress: Callable[[str], None] | None = None,
) -> Table1Result:
    """Run the full Table I experiment.

    Args:
        methods: Methods to evaluate (default: all four).
        specs: Patient specs (default: the 18-patient cohort).
        hours_scale: Duration scale of the synthetic recordings.
        fs: Sampling rate of the synthetic recordings.
        interictal_lead_s: Lead of the interictal training segment.
        keep_runs: Keep raw runs on the result (needed for ablations).
        progress: Optional callback receiving one line per step.
    """
    methods = methods if methods is not None else default_methods()
    specs = specs or cohort_patient_specs()
    say = progress or (lambda message: None)

    runs: dict[str, dict[str, PatientRun]] = {m.name: {} for m in methods}
    for spec in specs:
        say(f"synthesizing {spec.patient_id} ({spec.n_electrodes} electrodes)")
        patient = synthesize_patient(spec, hours_scale=hours_scale, fs=fs)
        split = split_patient(patient, interictal_lead_s=interictal_lead_s)
        for method in methods:
            say(f"  running {method.name} on {spec.patient_id}")
            runs[method.name][spec.patient_id] = run_patient(
                method.factory, patient, split=split, method=method.name
            )
        del patient  # recordings dominate memory; predictions are tiny

    # Cohort-level alpha from the Laelaps runs (Sec. III-C).
    alpha = 0.0
    tuned = {m.name for m in methods if m.tune_tr}
    pairs = [
        (run.trained_delta_mean, run.heldout_delta_mean)
        for name in tuned
        for run in runs[name].values()
        if run.trained_delta_mean == run.trained_delta_mean
        and run.heldout_delta_mean == run.heldout_delta_mean
    ]
    alpha = alpha_from_cohort(pairs)
    say(f"cohort alpha = {alpha:.1f}")

    results: dict[str, dict[str, PatientResult]] = {}
    for method in methods:
        results[method.name] = {}
        for pid, run in runs[method.name].items():
            tr = tune_run_tr(run, alpha=alpha) if method.tune_tr else 0.0
            results[method.name][pid] = finalize_run(run, tr=tr)
    return Table1Result(
        results=results, runs=runs if keep_runs else {}, alpha=alpha
    )
