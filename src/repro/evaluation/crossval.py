"""Leave-one-seizure-out cross-validation.

Sec. IV-B of the paper notes that cross-validation was performed on a
short-time iEEG dataset in the companion study (Burrello et al., BioCAS
2018) with consistently superior sensitivity and specificity, but is
impractical on the long-term dataset for the slow baselines.  This
module implements that protocol for the synthetic recordings: each fold
trains on exactly one seizure (plus a 30 s interictal segment taken
before it) and is evaluated on every *other* seizure and on the
recording's interictal time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.training import TrainingSegments
from repro.data.model import Recording
from repro.evaluation.metrics import DetectionMetrics, compute_metrics
from repro.evaluation.runner import DetectorFactory


@dataclass(frozen=True)
class FoldResult:
    """Outcome of one leave-one-seizure-out fold.

    Attributes:
        train_seizure_index: Index of the seizure the fold trained on.
        metrics: Detection metrics over the held-out seizures.
    """

    train_seizure_index: int
    metrics: DetectionMetrics


@dataclass(frozen=True)
class CrossValidationResult:
    """All folds of one patient.

    Attributes:
        folds: One entry per trainable seizure, in chronological order.
    """

    folds: tuple[FoldResult, ...]

    @property
    def mean_sensitivity(self) -> float:
        """Unweighted mean sensitivity across folds."""
        values = [f.metrics.sensitivity for f in self.folds]
        return float(np.mean(values)) if values else float("nan")

    @property
    def mean_fdr_per_hour(self) -> float:
        """Unweighted mean FDR across folds."""
        values = [f.metrics.fdr_per_hour for f in self.folds]
        return float(np.mean(values)) if values else float("nan")

    @property
    def total_detected(self) -> int:
        """Detections summed over folds (each seizure is a target in
        ``n_seizures - 1`` folds)."""
        return sum(f.metrics.n_detected for f in self.folds)


def _interictal_segment_before(
    recording: Recording,
    seizure_index: int,
    lead_s: float,
    duration_s: float,
) -> tuple[float, float]:
    """A ``duration_s`` interictal segment ending ``lead_s`` before the
    fold's training seizure, shifted earlier if another seizure is in
    the way."""
    onset = recording.seizures[seizure_index].onset_s
    end = onset - lead_s
    if end < duration_s:
        end = max(duration_s, onset - 10.0)
    start = end - duration_s
    # Avoid overlapping any other seizure.
    for other_index, other in enumerate(recording.seizures):
        if other_index == seizure_index:
            continue
        if start < other.offset_s and end > other.onset_s:
            end = other.onset_s - 5.0
            start = end - duration_s
    if start < 0:
        raise ValueError(
            f"no interictal room before seizure {seizure_index}"
        )
    return (start, end)


def leave_one_seizure_out(
    factory: DetectorFactory,
    recording: Recording,
    tune_tr: bool = True,
    interictal_lead_s: float = 60.0,
    interictal_duration_s: float = 30.0,
    ictal_max_s: float = 30.0,
    grace_s: float = 5.0,
) -> CrossValidationResult:
    """Run leave-one-seizure-out cross-validation on one recording.

    Args:
        factory: Detector factory ``(n_electrodes, fs) -> detector``.
        recording: Annotated recording with at least two seizures.
        tune_tr: Apply the t_r tuning rule on the fold's training
            portion (everything before the *next* seizure after the
            training one), when the detector supports it.
        interictal_lead_s: Lead of the fold's interictal segment.
        interictal_duration_s: Interictal segment length.
        ictal_max_s: Cap on the ictal training segment.
        grace_s: Post-offset grace for detection matching.

    Returns:
        A :class:`CrossValidationResult` with one fold per seizure.
    """
    seizures = recording.seizures
    if len(seizures) < 2:
        raise ValueError("cross-validation needs at least two seizures")
    folds: list[FoldResult] = []
    for k, seizure in enumerate(seizures):
        segments = TrainingSegments(
            ictal=((seizure.onset_s,
                    min(seizure.offset_s, seizure.onset_s + ictal_max_s)),),
            interictal=_interictal_segment_before(
                recording, k, interictal_lead_s, interictal_duration_s
            ),
        )
        detector = factory(recording.n_electrodes, recording.fs)
        detector.fit(recording.data, segments)
        if tune_tr and hasattr(detector, "tune_tr"):
            tune_end = seizure.offset_s + 10.0
            # Every seizure inside the tuning span is ictal ground truth
            # (earlier seizures would otherwise read as false alarms and
            # inflate t_r).
            truth = [
                (s.onset_s, s.offset_s)
                for s in seizures
                if s.onset_s < tune_end
            ]
            detector.tune_tr(
                recording.data[: int(tune_end * recording.fs)], truth
            )
        result = detector.detect(recording.data)
        # Alarms inside (or just after) the training seizure are neither
        # detections nor false alarms for this fold.
        alarms = np.asarray(result.alarm_times, dtype=np.float64)
        keep = ~(
            (alarms >= seizure.onset_s)
            & (alarms <= seizure.offset_s + grace_s)
        )
        held_out = [s for i, s in enumerate(seizures) if i != k]
        duration = recording.duration_s - seizure.duration_s
        folds.append(
            FoldResult(
                train_seizure_index=k,
                metrics=compute_metrics(
                    alarms[keep], held_out, duration, grace_s=grace_s
                ),
            )
        )
    return CrossValidationResult(folds=tuple(folds))
