"""The sharded serving gateway: one front door, many shard workers.

:class:`ShardedStreamGateway` is the fleet-scale layer above
:class:`~repro.core.sessions.StreamSessionManager`.  Sessions are
partitioned across a pool of workers by consistent hashing on
``session_id`` (:mod:`repro.serve.hashing`); each worker runs its own
manager and classifies each tick's accumulated chunks as one grouped
packed sweep, so the per-tick cost per worker stays one XOR+popcount
sweep regardless of how many of its sessions received data.  Events
returned through the gateway are bit-identical to driving a single
in-process manager (property-tested over ragged chunkings and mixed
electrode counts/compute engines — every session enters a shard's sweep
through its own engine's ``pack_queries`` bridge) — sharding, like
batching, is a pure transport optimisation.

The gateway adds three things a bare manager does not have:

* **backpressure** — :meth:`ShardedStreamGateway.submit` parks chunks
  in a bounded per-session queue and raises :class:`Backpressure` when
  a producer outruns :meth:`ShardedStreamGateway.drain`;
* **elasticity** — :meth:`ShardedStreamGateway.add_worker` /
  :meth:`ShardedStreamGateway.remove_worker` rebalance mid-run by
  migrating only the sessions whose ring arc changed, bit-exactly;
* **fleet checkpointing** — :meth:`ShardedStreamGateway.checkpoint`
  writes one :func:`~repro.core.persistence.save_sessions` shard per
  worker plus a manifest, and
  :meth:`ShardedStreamGateway.restore` resumes the fleet on *any*
  worker count.
"""

from __future__ import annotations

import time
import types
from collections import deque
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.core.detector import LaelapsDetector
from repro.core.persistence import (
    detector_payload,
    load_sessions,
    read_fleet_manifest,
    write_fleet_manifest,
)
from repro.core.sessions import lockstep_ticks, validate_chunk
from repro.core.streaming import StreamEvent
from repro.serve.hashing import HashRing
from repro.serve.worker import (
    DEFAULT_POLL_TIMEOUT_S,
    InlineShardWorker,
    ProcessShardWorker,
    WorkerError,
)

#: Name of the manifest file inside a fleet checkpoint directory.
FLEET_MANIFEST = "fleet.json"

# Read-only on purpose: this module is forked into shard workers, so a
# plain dict here would become a divergent per-process copy (RPR004).
_WORKER_CLASSES = types.MappingProxyType({
    "inline": InlineShardWorker,
    "process": ProcessShardWorker,
})


class Backpressure(RuntimeError):
    """A session's pending-chunk queue is full; drain before submitting."""


class TickStats:
    """Bounded per-tick timing log of one gateway (the perf hook).

    Every completed tick (:meth:`ShardedStreamGateway.push_many` round,
    including each round of a :meth:`ShardedStreamGateway.drain`)
    records its wall latency, session count and returned-window count
    here.  The latency log is a bounded deque so a long-lived gateway
    never grows it without limit; the counters are cumulative.  The
    load harness (:mod:`repro.serve.loadgen`) reads this instead of
    timing around the gateway, so what it reports is exactly what the
    gateway itself observed.
    """

    def __init__(self, maxlen: int = 65536) -> None:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self.maxlen = maxlen
        self._latencies: deque[float] = deque(maxlen=maxlen)
        self.ticks = 0
        self.windows = 0
        self.sessions_ticked = 0

    def record(
        self, latency_s: float, n_sessions: int, n_windows: int
    ) -> None:
        """Log one completed tick."""
        self._latencies.append(latency_s)
        self.ticks += 1
        self.windows += n_windows
        self.sessions_ticked += n_sessions

    @property
    def latencies_s(self) -> list[float]:
        """Wall latencies of the most recent ticks (oldest first)."""
        return list(self._latencies)

    def reset(self) -> None:
        """Clear the log and counters (e.g. after a warm-up phase)."""
        self._latencies.clear()
        self.ticks = 0
        self.windows = 0
        self.sessions_ticked = 0


class ShardedStreamGateway:
    """Routes patient-stream sessions across a pool of shard workers.

    Args:
        n_workers: Initial worker-pool size (>= 1).
        mode: ``"inline"`` (in-process shards, deterministic reference)
            or ``"process"`` (one child process per shard, parallel
            ticks).
        max_pending: Bound of each session's submit queue; the
            backpressure threshold.
        replicas: Virtual ring points per worker (see
            :class:`~repro.serve.hashing.HashRing`).
        poll_timeout_s: Reply deadline of every process-worker command;
            a silent worker raises a typed
            :class:`~repro.serve.worker.WorkerDiedError` /
            :class:`~repro.serve.worker.WorkerTimeoutError` instead of
            blocking the gateway forever.

    The gateway owns each session's model from :meth:`open` onwards
    (the detector is exported by value to its shard), and supports use
    as a context manager — ``with ShardedStreamGateway(...) as gw:`` —
    to guarantee worker shutdown.
    """

    def __init__(
        self,
        n_workers: int = 2,
        *,
        mode: str = "inline",
        max_pending: int = 8,
        replicas: int = 64,
        poll_timeout_s: float = DEFAULT_POLL_TIMEOUT_S,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if mode not in _WORKER_CLASSES:
            raise ValueError(
                f"mode must be one of {sorted(_WORKER_CLASSES)}, got {mode!r}"
            )
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self._mode = mode
        self._max_pending = max_pending
        self._poll_timeout_s = poll_timeout_s
        self._workers: dict[str, InlineShardWorker | ProcessShardWorker] = {}
        self._ring = HashRing(replicas=replicas)
        self._routes: dict[str, str] = {}
        self._queues: dict[str, deque[np.ndarray]] = {}
        self._electrodes: dict[str, int] = {}
        self._dim: int | None = None
        self._next_worker = 0
        #: Per-tick timing log (see :class:`TickStats`); reset freely.
        self.tick_stats = TickStats()
        for _ in range(n_workers):
            self.add_worker()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._routes

    def __enter__(self) -> "ShardedStreamGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    @property
    def mode(self) -> str:
        """The worker transport: ``"inline"`` or ``"process"``."""
        return self._mode

    @property
    def dim(self) -> int | None:
        """Shared hypervector dimension (None while no session is open)."""
        return self._dim

    @property
    def session_ids(self) -> list[str]:
        """Open session ids in insertion order."""
        return list(self._routes)

    @property
    def worker_ids(self) -> list[str]:
        """Worker names in creation order."""
        return list(self._workers)

    def worker_of(self, session_id: str) -> str:
        """The worker currently serving ``session_id``."""
        return self._route(session_id)

    def shard_map(self) -> dict[str, list[str]]:
        """Sessions grouped by worker (every worker listed, maybe empty)."""
        shards: dict[str, list[str]] = {w: [] for w in self._workers}
        for session_id, worker_id in self._routes.items():
            shards[worker_id].append(session_id)
        return shards

    def pending(self, session_id: str) -> int:
        """Chunks queued for ``session_id`` awaiting :meth:`drain`."""
        self._route(session_id)
        return len(self._queues[session_id])

    def ping_workers(self) -> dict[str, dict]:
        """Liveness round-trip to every worker (the ``/healthz`` probe).

        Each worker answers the ``ping`` shard command; a dead or hung
        process worker surfaces as ``alive: False`` with its typed
        error's message instead of an exception, so one sick shard
        cannot take the health endpoint down with it.

        Returns:
            Per worker: ``{"alive": bool, "latency_s": float,
            "error": str | None}``.
        """
        report: dict[str, dict] = {}
        for worker_id, worker in list(self._workers.items()):
            started = time.perf_counter()
            try:
                worker.request("ping", {})
            except (WorkerError, RuntimeError, OSError) as exc:
                report[worker_id] = {
                    "alive": False,
                    "latency_s": time.perf_counter() - started,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            else:
                report[worker_id] = {
                    "alive": True,
                    "latency_s": time.perf_counter() - started,
                    "error": None,
                }
        return report

    def _route(self, session_id: str) -> str:
        try:
            return self._routes[session_id]
        except KeyError:
            raise KeyError(f"no open session {session_id!r}") from None

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------

    def add_worker(self) -> str:
        """Add one worker and migrate the sessions its arcs capture.

        Returns:
            The new worker's id.
        """
        name = f"w{self._next_worker}"
        self._next_worker += 1
        self._workers[name] = _WORKER_CLASSES[self._mode](
            name, poll_timeout_s=self._poll_timeout_s
        )
        self._ring.add(name)
        self._rebalance()
        return name

    def remove_worker(self, worker_id: str) -> list[str]:
        """Drain a worker out of the pool, migrating its sessions away.

        Returns:
            The ids of the sessions that moved (bit-exactly, mid-stream)
            to surviving workers.

        Raises:
            KeyError: If ``worker_id`` is unknown.
            ValueError: If it is the last worker of the pool.
        """
        if worker_id not in self._workers:
            raise KeyError(f"no worker {worker_id!r}")
        if len(self._workers) == 1:
            raise ValueError("cannot remove the last worker of the pool")
        self._ring.remove(worker_id)
        moved = self._rebalance()
        worker = self._workers.pop(worker_id)
        worker.stop()
        return moved

    def _rebalance(self) -> list[str]:
        """Move every session whose ring assignment changed (bit-exact)."""
        moved = []
        for session_id, old_worker in list(self._routes.items()):
            new_worker = self._ring.assign(session_id)
            if new_worker == old_worker:
                continue
            payload = self._workers[old_worker].request(
                "pop", {"id": session_id}
            )
            self._workers[new_worker].request(
                "import", {"id": session_id, "session": payload}
            )
            self._routes[session_id] = new_worker
            moved.append(session_id)
        return moved

    def shutdown(self) -> None:
        """Stop every worker and forget all sessions (not a checkpoint)."""
        for worker in self._workers.values():
            worker.stop()
        self._workers.clear()
        self._routes.clear()
        self._queues.clear()
        self._electrodes.clear()
        self._dim = None

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def open(self, session_id: str, detector: LaelapsDetector) -> str:
        """Open a session, shipping the fitted detector to its shard.

        Args:
            session_id: Unique session key; also the routing key.
            detector: A fitted detector.  Exported by value — later
                mutations of the caller's object do not reach the shard.

        Returns:
            The id of the worker now serving the session.
        """
        if session_id in self._routes:
            raise ValueError(f"session {session_id!r} is already open")
        payload = detector_payload(detector)
        return self._admit(session_id, {"model": payload, "state": None})

    def _admit(self, session_id: str, session: dict) -> str:
        """Route and install one session (fresh model or mid-stream)."""
        model = session["model"]
        dim = int(model["config"]["dim"])
        if self._dim is not None and dim != self._dim:
            raise ValueError(
                f"session dimension {dim} does not match the fleet's "
                f"shared dimension {self._dim}"
            )
        worker_id = self._ring.assign(session_id)
        if session["state"] is None:
            self._workers[worker_id].request(
                "open", {"id": session_id, "model": model}
            )
        else:
            self._workers[worker_id].request(
                "import", {"id": session_id, "session": session}
            )
        self._routes[session_id] = worker_id
        self._queues[session_id] = deque()
        self._electrodes[session_id] = int(model["n_electrodes"])
        self._dim = dim
        return worker_id

    def close(self, session_id: str) -> None:
        """Drop a session and its shard-side state.

        Raises:
            RuntimeError: If the session still has queued chunks —
                :meth:`drain` first, or the data would be lost silently.
        """
        worker_id = self._route(session_id)
        if self._queues[session_id]:
            raise RuntimeError(
                f"session {session_id!r} has "
                f"{len(self._queues[session_id])} queued chunks; drain() "
                "before closing"
            )
        self._workers[worker_id].request("close", {"id": session_id})
        del self._routes[session_id]
        del self._queues[session_id]
        del self._electrodes[session_id]
        if not self._routes:
            self._dim = None

    def export_session(self, session_id: str) -> dict:
        """The session's portable payload (model + mid-stream state)."""
        worker_id = self._route(session_id)
        return self._workers[worker_id].request("export", {"id": session_id})

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------

    def _validate_chunk(self, session_id: str, chunk) -> np.ndarray:
        return validate_chunk(
            session_id, chunk, self._electrodes[session_id]
        )

    def push(self, session_id: str, chunk) -> list[StreamEvent]:
        """Push one chunk into one session (see :meth:`push_many`)."""
        return self.push_many({session_id: chunk})[session_id]

    def push_many(self, chunks: Mapping[str, np.ndarray]) -> dict[str, list[StreamEvent]]:
        """Advance many sessions one tick, one grouped sweep per worker.

        Chunks are validated up front (an invalid entry fails the whole
        tick before any session consumes data, as in the single
        manager), grouped by shard, and dispatched to every involved
        worker before the first reply is collected — with process
        workers the shards encode and classify concurrently.

        A *worker-side* failure (which gateway-side validation should
        make unreachable) is re-raised after every dispatched worker
        has been collected, so the gateway stays serviceable; the
        failing tick's events are lost on shards that had already
        consumed it.

        Returns:
            Per-session event lists, bit-identical to a single
            :class:`~repro.core.sessions.StreamSessionManager` fed the
            same ticks.

        Raises:
            RuntimeError: If any pushed session still has chunks queued
                via :meth:`submit` — pushing past them would reorder
                the stream's samples; :meth:`drain` first.
        """
        backed_up = [s for s in chunks if self._queues.get(s)]
        if backed_up:
            raise RuntimeError(
                f"sessions {backed_up} have queued chunks; drain() before "
                "pushing more data, or the stream would be reordered"
            )
        return self._push_tick(chunks)

    def _push_tick(
        self, chunks: Mapping[str, np.ndarray]
    ) -> dict[str, list[StreamEvent]]:
        """The unguarded tick path shared by :meth:`push_many`/:meth:`drain`."""
        tick_start = time.perf_counter()
        per_worker: dict[str, dict[str, np.ndarray]] = {}
        for session_id in chunks:
            worker_id = self._route(session_id)
            arr = self._validate_chunk(session_id, chunks[session_id])
            per_worker.setdefault(worker_id, {})[session_id] = arr
        dispatched: list[str] = []
        first_error: Exception | None = None
        for worker_id, shard_chunks in per_worker.items():
            try:
                self._workers[worker_id].dispatch(
                    "push_many", {"chunks": shard_chunks}
                )
            except Exception as exc:  # noqa: BLE001 - re-raised below
                first_error = exc
                break
            dispatched.append(worker_id)
        events: dict[str, list[StreamEvent]] = {}
        # Collect from every dispatched worker even when one fails —
        # leaving replies unread would wedge those workers for good.
        for worker_id in dispatched:
            try:
                events.update(self._workers[worker_id].collect())
            except Exception as exc:  # noqa: BLE001 - first one wins
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        self.tick_stats.record(
            time.perf_counter() - tick_start,
            len(chunks),
            sum(len(session_events) for session_events in events.values()),
        )
        return events

    def submit(self, session_id: str, chunk) -> None:
        """Queue a chunk for the next :meth:`drain` (bounded).

        Raises:
            Backpressure: If the session already has ``max_pending``
                queued chunks — the producer must back off (or the
                consumer must drain) before more data is accepted.
        """
        self._route(session_id)
        arr = self._validate_chunk(session_id, chunk)
        queue = self._queues[session_id]
        if len(queue) >= self._max_pending:
            raise Backpressure(
                f"session {session_id!r} has {len(queue)} pending chunks "
                f"(max_pending={self._max_pending})"
            )
        # Deferred consumption: the caller may reuse or mutate its chunk
        # buffer before drain() runs, so the queue must own a copy.
        queue.append(arr.copy())

    def drain(self) -> dict[str, list[StreamEvent]]:
        """Flush every queued chunk through the shards, in order.

        Each round forms one tick from the head chunk of every backed-up
        session and pushes it through the shards, preserving each
        session's chunk order (and therefore bit-exactness).

        Like :meth:`push_many`, a worker-side failure mid-drain is
        lossy: rounds completed before the failure have already
        advanced the shard-side streams, and their events do not reach
        the caller (the exception propagates instead).

        Returns:
            Accumulated events per session that had queued chunks.
        """
        events: dict[str, list[StreamEvent]] = {
            session_id: []
            for session_id, queue in self._queues.items()
            if queue
        }
        while True:
            tick = {
                session_id: queue.popleft()
                for session_id, queue in self._queues.items()
                if queue
            }
            if not tick:
                return events
            # _push_tick, not push_many: the chunks popped this round
            # are ahead of whatever is still queued, by construction.
            for session_id, new_events in self._push_tick(tick).items():
                events[session_id].extend(new_events)

    def run(
        self, signals: Mapping[str, np.ndarray], chunk_samples: int
    ) -> dict[str, list[StreamEvent]]:
        """Stream whole recordings through the fleet in lockstep ticks.

        Mirror of :meth:`StreamSessionManager.run`: every tick delivers
        the next ``chunk_samples`` of each signal (exhausted sessions
        stop receiving), so all traffic flows through the sharded sweep.
        """
        for session_id in signals:
            self._route(session_id)
        events: dict[str, list[StreamEvent]] = {
            session_id: [] for session_id in signals
        }
        for tick in lockstep_ticks(signals, chunk_samples):
            for session_id, new_events in self.push_many(tick).items():
                events[session_id].extend(new_events)
        return events

    # ------------------------------------------------------------------
    # Fleet checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self, directory: str | Path) -> Path:
        """Snapshot the whole fleet into ``directory``.

        Each worker writes its shard with
        :func:`~repro.core.persistence.save_sessions` (with process
        workers, shard files are written concurrently by the children),
        then the gateway writes the manifest tying them together.

        Returns:
            The manifest path (``fleet.json``).

        Raises:
            ValueError: If no sessions are open.
            RuntimeError: If any session has queued chunks (drain
                first — queued raw data is not part of a checkpoint).
        """
        if not self._routes:
            raise ValueError("cannot checkpoint a fleet with no open sessions")
        backed_up = [s for s, q in self._queues.items() if q]
        if backed_up:
            raise RuntimeError(
                f"sessions {backed_up} have queued chunks; drain() before "
                "checkpointing"
            )
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        occupied = {
            worker_id: sessions
            for worker_id, sessions in self.shard_map().items()
            if sessions
        }
        dispatched: list[str] = []
        first_error: Exception | None = None
        for worker_id in occupied:
            try:
                self._workers[worker_id].dispatch(
                    "checkpoint",
                    {"path": str(directory / f"shard-{worker_id}.npz")},
                )
            except Exception as exc:  # noqa: BLE001 - re-raised below
                first_error = exc
                break
            dispatched.append(worker_id)
        shards: dict[str, str] = {}
        # Collect every dispatched worker even when one fails (an
        # unread reply would wedge that worker), then re-raise.
        for worker_id in dispatched:
            try:
                shards[worker_id] = Path(
                    self._workers[worker_id].collect()
                ).name
            except Exception as exc:  # noqa: BLE001 - first one wins
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return write_fleet_manifest(
            directory / FLEET_MANIFEST,
            shards=shards,
            routes=self._routes,
            dim=self._dim,
        )

    @classmethod
    def restore(
        cls,
        directory: str | Path,
        *,
        n_workers: int | None = None,
        mode: str = "inline",
        max_pending: int = 8,
        replicas: int = 64,
    ) -> "ShardedStreamGateway":
        """Resume a :meth:`checkpoint` fleet, on any worker count.

        Shard files are loaded with
        :func:`~repro.core.persistence.load_sessions` and every session
        is re-admitted through the new gateway's ring — the worker count
        and transport are free to differ from the checkpointing fleet's;
        subsequent events are bit-identical either way.

        Args:
            directory: A fleet checkpoint directory (or its manifest).
            n_workers: Pool size of the restored fleet; defaults to the
                number of shards in the checkpoint.
        """
        directory = Path(directory)
        if directory.name == FLEET_MANIFEST:
            directory = directory.parent
        manifest = read_fleet_manifest(directory / FLEET_MANIFEST)
        if n_workers is None:
            n_workers = max(len(manifest["shards"]), 1)
        gateway = cls(
            n_workers, mode=mode, max_pending=max_pending, replicas=replicas
        )
        try:
            for shard_file in manifest["shards"].values():
                loaded = load_sessions(directory / shard_file)
                for session_id in loaded.session_ids:
                    gateway._admit(
                        session_id, loaded.export_session(session_id)
                    )
        except Exception:
            gateway.shutdown()
            raise
        return gateway
