"""Load harness for the sharded gateway: SLO-grade latency numbers.

Opens many concurrent patient sessions against a
:class:`~repro.serve.ShardedStreamGateway`, drives every session with a
:class:`~repro.data.synthetic.ClockedEEGSource` (live chunked synthesis
with stochastic seizure injection — traffic is non-stationary, like
production), and measures the numbers every speed/scale claim about the
serving stack should run through:

* **tick latency** — p50/p99/p99.9 over the gateway's own
  :class:`~repro.serve.gateway.TickStats` log (what the gateway
  observed, not what the driver timed around it);
* **sustained throughput** — windows classified per wall second across
  the whole fleet;
* **backpressure onset** — the offered load (queued chunks per drain
  cycle) at which the first :class:`~repro.serve.Backpressure` raise
  appears;
* **elasticity recovery** — wall time of a ``remove_worker`` /
  ``add_worker`` cycle, including the ticks until tick latency settles
  back to its pre-disruption baseline.

Ticks run as fast as the gateway allows by default; a ``rate`` > 0
paces them at that multiple of real time (``rate=1`` is one 0.5 s tick
per 0.5 s wall — the live deployment shape).

``transport="socket"`` drives the same steady-state phase through the
network front end (:mod:`repro.serve.service`) instead of calling the
gateway in-process: chunks are serialised over a real TCP connection
and latencies are read back via the service's ``stats`` op, so the
measured numbers include the wire.  The backpressure and elasticity
probes need direct gateway access and are skipped in socket mode.

Results convert to the versioned benchmark-record schema
(:mod:`repro.evaluation.benchrec`) via :meth:`LoadReport.record`, which
is how ``benchmarks/bench_load_slo.py`` and ``repro loadtest`` write
the committed ``BENCH_*.json`` perf-trajectory artifacts.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import asdict, dataclass, field
from typing import Callable

from repro.core.config import LaelapsConfig
from repro.core.detector import LaelapsDetector
from repro.core.training import TrainingSegments
from repro.data.synthetic import (
    ClockedEEGSource,
    SeizurePlan,
    SynthesisParams,
    SyntheticIEEGGenerator,
)
from repro.evaluation.benchrec import (
    BenchRecord,
    current_git_sha,
    machine_fingerprint,
)
from repro.serve.gateway import Backpressure, ShardedStreamGateway

#: Latency percentiles the harness reports, as (metric suffix, p) pairs.
LATENCY_PERCENTILES = (("p50", 50.0), ("p99", 99.0), ("p99_9", 99.9))


def nearest_rank_percentile(samples, p: float) -> float:
    """Exact nearest-rank percentile (no interpolation).

    The smallest sample x such that at least ``p`` percent of the
    samples are <= x — the conventional definition for latency SLOs,
    where an interpolated value that no request actually experienced
    would be misleading.

    Args:
        samples: Non-empty sequence of numbers.
        p: Percentile in [0, 100].  ``p=0`` returns the minimum.
    """
    ordered = sorted(samples)
    if not ordered:
        raise ValueError("cannot take a percentile of no samples")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    rank = math.ceil(p / 100.0 * len(ordered))
    return float(ordered[max(rank, 1) - 1])


def min_samples_for_percentile(p: float) -> int:
    """Fewest samples for which nearest-rank ``p`` is below the max.

    With fewer samples, ``nearest_rank_percentile(samples, p)`` can only
    return the maximum — the tail percentile is degenerate, not
    measured.  E.g. p99 needs 100 samples, p99.9 needs 1001; the load
    bench warns when a run's ``n_ticks`` is below this.
    """
    if not 0 <= p < 100:
        raise ValueError(f"percentile must be in [0, 100), got {p}")
    # Smallest n >= 2 with rank(p, n) < n, probed with the exact float
    # arithmetic of nearest_rank_percentile (the closed form
    # ceil(100 / (100 - p)) can be off by one at e.g. p = 99.9).
    n = max(2, math.ceil(100.0 / (100.0 - p)) - 1)
    while math.ceil(p / 100.0 * n) >= n:
        n += 1
    return n


def latency_summary_ms(latencies_s) -> dict:
    """SLO summary of a latency log: percentiles, mean and max, in ms."""
    summary = {
        f"tick_latency_{suffix}_ms":
            nearest_rank_percentile(latencies_s, p) * 1e3
        for suffix, p in LATENCY_PERCENTILES
    }
    summary["tick_latency_mean_ms"] = (
        sum(latencies_s) / len(latencies_s) * 1e3
    )
    summary["tick_latency_max_ms"] = max(latencies_s) * 1e3
    return summary


@dataclass(frozen=True)
class LoadConfig:
    """Shape of one load-test run.

    Attributes:
        n_sessions: Concurrent patient sessions to open.
        n_electrodes: Electrode count of every session.
        dim: Hypervector dimension of the served models.
        fs: Sampling rate of the live sources, Hz.
        tick_s: Seconds of signal per tick (0.5 s = one label period).
        n_ticks: Measured steady-state ticks.
        warmup_ticks: Unmeasured leading ticks (fill encoder buffers).
        rate: Tick pacing as a multiple of real time; 0 = as fast as
            the gateway allows (the throughput-probing mode).
        n_workers: Gateway worker-pool size.
        mode: Gateway transport, ``"inline"`` or ``"process"``.
        max_pending: Gateway per-session submit-queue bound.
        backend: Compute engine of the served detectors.
        seed: Master seed (models and every live source derive from it).
        seizure_rate_per_min: Injected-seizure rate per session stream.
        n_templates: Distinct detector models cycled across sessions
            (training cost stays O(templates), not O(sessions)).
        native_threads: Kernel threads per worker for the
            ``packed-native`` engine (``REPRO_NATIVE_THREADS``),
            exported to the environment before workers spawn so
            N workers x M threads is explicit; 0 keeps the default.
        transport: ``"direct"`` calls the gateway in-process (the
            default, and what the committed baselines measure);
            ``"socket"`` runs every tick through the asyncio service
            over a loopback TCP connection, measuring the full network
            data plane (backpressure/elasticity probes are skipped —
            they need direct gateway access).
    """

    n_sessions: int = 64
    n_electrodes: int = 16
    dim: int = 2_000
    fs: float = 256.0
    tick_s: float = 0.5
    n_ticks: int = 40
    warmup_ticks: int = 4
    rate: float = 0.0
    n_workers: int = 2
    mode: str = "inline"
    max_pending: int = 8
    backend: str = "auto"
    seed: int = 0
    seizure_rate_per_min: float = 2.0
    n_templates: int = 4
    native_threads: int = 0
    transport: str = "direct"

    def __post_init__(self) -> None:
        if self.n_sessions < 1:
            raise ValueError(f"n_sessions must be >= 1, got {self.n_sessions}")
        if self.n_ticks < 1:
            raise ValueError(f"n_ticks must be >= 1, got {self.n_ticks}")
        if self.warmup_ticks < 0:
            raise ValueError("warmup_ticks must be >= 0")
        if self.rate < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")
        if self.mode not in ("inline", "process"):
            raise ValueError(f"mode must be inline or process, got "
                             f"{self.mode!r}")
        if self.n_templates < 1:
            raise ValueError("n_templates must be >= 1")
        if self.native_threads < 0:
            raise ValueError(
                f"native_threads must be >= 0, got {self.native_threads}"
            )
        if self.transport not in ("direct", "socket"):
            raise ValueError(
                f"transport must be direct or socket, got {self.transport!r}"
            )

    @property
    def chunk_samples(self) -> int:
        """Samples delivered per tick per session."""
        return max(1, int(round(self.tick_s * self.fs)))


@dataclass(frozen=True)
class LoadReport:
    """Everything one load-test run measured.

    ``metrics`` is the flat dict that enters the benchmark record; the
    raw latency log rides along for callers that want more than the
    summary percentiles.
    """

    config: LoadConfig
    engine: str
    latencies_s: tuple
    events_per_session: dict
    metrics: dict = field(default_factory=dict)

    @property
    def dropped_sessions(self) -> int:
        """Sessions that produced no events during the measured phase."""
        return int(self.metrics.get("dropped_sessions", -1))

    def record(self, name: str = "load_slo") -> BenchRecord:
        """This run as a versioned benchmark record."""
        return BenchRecord(
            name=name,
            machine=machine_fingerprint(),
            git_sha=current_git_sha(),
            engine=self.engine,
            config=asdict(self.config),
            metrics=dict(self.metrics),
        )


def _train_templates(config: LoadConfig) -> list[LaelapsDetector]:
    """A few fitted detector models to cycle across the fleet's sessions.

    Each template trains one-shot on a short synthetic recording with a
    planned seizure, so the served prototypes are real models of the
    traffic family the clocked sources emit — not random bit patterns.
    """
    templates = []
    for i in range(min(config.n_templates, config.n_sessions)):
        detector = LaelapsDetector(
            config.n_electrodes,
            LaelapsConfig(
                dim=config.dim,
                fs=config.fs,
                seed=config.seed + 101 * i,
                backend=config.backend,
                tc=6,
            ),
        )
        generator = SyntheticIEEGGenerator(
            config.n_electrodes,
            SynthesisParams(fs=config.fs),
            seed=config.seed + 977 * i,
        )
        recording = generator.generate(46.0, [SeizurePlan(32.0, 12.0)])
        detector.fit(
            recording.data,
            TrainingSegments(ictal=((32.0, 44.0),), interictal=(1.0, 31.0)),
        )
        templates.append(detector)
    return templates


class _DirectTransport:
    """In-process tick transport: the gateway called directly."""

    def __init__(self, gateway: ShardedStreamGateway) -> None:
        self.gateway = gateway

    def push_many(self, chunks):
        return self.gateway.push_many(chunks)

    def stats_reset(self) -> None:
        self.gateway.tick_stats.reset()

    def latencies_s(self) -> list[float]:
        return self.gateway.tick_stats.latencies_s

    def windows(self) -> int:
        return self.gateway.tick_stats.windows

    def close(self) -> None:
        self.gateway.shutdown()


class _SocketTransport:
    """Network tick transport: the asyncio service over loopback TCP.

    Owns a :class:`~repro.serve.service.ServiceRunner` (which in turn
    owns the gateway) and one :class:`~repro.serve.service.ServiceClient`
    connection; tick latencies are read back through the service's
    ``stats`` op, so the gateway-side numbers arrive over the same wire
    the chunks travelled.
    """

    def __init__(self, gateway: ShardedStreamGateway) -> None:
        import logging

        from repro.serve.service import (
            ServiceClient,
            ServiceRunner,
            service_logger,
        )

        # WARNING level: a load test would otherwise drown stderr in
        # per-session open/close log lines.
        self.runner = ServiceRunner(
            gateway, logger=service_logger(level=logging.WARNING)
        )
        host, port = self.runner.start()
        self.client = ServiceClient(host, port)

    def push_many(self, chunks):
        return self.client.push_many(chunks)

    def stats_reset(self) -> None:
        self.client.stats_reset()

    def latencies_s(self) -> list[float]:
        return self.client.stats()["latencies_s"]

    def windows(self) -> int:
        return self.client.stats()["windows"]

    def close(self) -> None:
        self.client.close()
        self.runner.stop(drain=False)


class LoadGenerator:
    """Drives one load-test run end to end (see module docstring)."""

    def __init__(self, config: LoadConfig) -> None:
        self.config = config

    def _session_ids(self) -> list[str]:
        return [f"s{i:05d}" for i in range(self.config.n_sessions)]

    def _build_sources(self) -> dict[str, ClockedEEGSource]:
        config = self.config
        return {
            session_id: ClockedEEGSource(
                config.n_electrodes,
                config.fs,
                seed=config.seed + 13 * i + 7,
                seizure_rate_per_min=config.seizure_rate_per_min,
            )
            for i, session_id in enumerate(self._session_ids())
        }

    def _build_gateway(
        self, templates: list[LaelapsDetector]
    ) -> ShardedStreamGateway:
        config = self.config
        gateway = ShardedStreamGateway(
            config.n_workers,
            mode=config.mode,
            max_pending=config.max_pending,
        )
        try:
            for i, session_id in enumerate(self._session_ids()):
                gateway.open(session_id, templates[i % len(templates)])
        except Exception:
            gateway.shutdown()
            raise
        return gateway

    def run(
        self, progress: Callable[[str], None] | None = None
    ) -> LoadReport:
        """Execute the full run: steady state, backpressure, elasticity."""
        config = self.config
        say = progress or (lambda message: None)
        if config.native_threads:
            # Export the thread knob before anything spawns: forked and
            # spawned shard workers both inherit the environment, so
            # this one call sizes every worker's kernel pool.
            from repro.hdc.native import configure_native_threads

            configure_native_threads(config.native_threads)
            say(f"native kernel threads pinned to {config.native_threads} "
                f"per worker")
        say(f"training {min(config.n_templates, config.n_sessions)} "
            f"template models (d={config.dim}, {config.backend})")
        templates = _train_templates(config)
        engine = templates[0].engine.name
        say(f"opening {config.n_sessions} sessions on {config.n_workers} "
            f"{config.mode} workers")
        gateway = self._build_gateway(templates)
        if config.transport == "socket":
            say("socket transport: ticks travel the network data plane")
            transport = _SocketTransport(gateway)
        else:
            transport = _DirectTransport(gateway)
        sources = self._build_sources()
        try:
            metrics, latencies, counts = self._steady_state(
                transport, sources, say
            )
            if config.transport == "socket":
                say("socket transport: backpressure/elasticity probes "
                    "skipped (they need direct gateway access)")
            else:
                metrics["backpressure_onset_chunks"] = float(
                    self._probe_backpressure(gateway, sources)
                )
                metrics["max_pending"] = float(config.max_pending)
                if config.n_workers >= 2:
                    metrics.update(
                        self._probe_worker_cycle(
                            gateway, sources, latencies, say
                        )
                    )
        finally:
            transport.close()
        return LoadReport(
            config=config,
            engine=engine,
            latencies_s=tuple(latencies),
            events_per_session=dict(counts),
            metrics=metrics,
        )

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _tick(self, transport, sources, counts=None) -> None:
        chunks = {
            session_id: source.next_chunk(self.config.chunk_samples)
            for session_id, source in sources.items()
        }
        events = transport.push_many(chunks)
        if counts is not None:
            for session_id, session_events in events.items():
                counts[session_id] += len(session_events)

    def _steady_state(self, transport, sources, say):
        config = self.config
        top_suffix, top_p = LATENCY_PERCENTILES[-1]
        needed = min_samples_for_percentile(top_p)
        if config.n_ticks < needed:
            warnings.warn(
                f"n_ticks={config.n_ticks} cannot resolve the "
                f"{top_suffix} tick-latency tail (nearest-rank p{top_p} "
                f"needs >= {needed} samples); the top percentiles will "
                f"degenerate to the maximum",
                RuntimeWarning,
                stacklevel=2,
            )
        say(f"warmup: {config.warmup_ticks} ticks")
        for _ in range(config.warmup_ticks):
            self._tick(transport, sources)
        transport.stats_reset()
        counts = {session_id: 0 for session_id in sources}
        interval = config.tick_s / config.rate if config.rate > 0 else 0.0
        say(f"measuring {config.n_ticks} ticks"
            + (f" at {config.rate:g}x real time" if interval else
               " (unpaced)"))
        started = time.perf_counter()
        for _ in range(config.n_ticks):
            tick_started = time.perf_counter()
            self._tick(transport, sources, counts)
            if interval:
                remaining = interval - (time.perf_counter() - tick_started)
                if remaining > 0:
                    time.sleep(remaining)
        measured_s = time.perf_counter() - started
        latencies = transport.latencies_s()
        metrics = latency_summary_ms(latencies)
        metrics["sessions"] = float(config.n_sessions)
        metrics["ticks"] = float(config.n_ticks)
        metrics["throughput_windows_per_s"] = (
            transport.windows() / measured_s
        )
        metrics["ticks_per_s"] = config.n_ticks / measured_s
        metrics["dropped_sessions"] = float(
            sum(1 for count in counts.values() if count == 0)
        )
        return metrics, latencies, counts

    def _probe_backpressure(self, gateway, sources) -> int:
        """Offered load (chunks queued per drain cycle) at first raise.

        Sweeps the per-cycle offered load upward: at each multiple m,
        every probed session submits m chunks, then one drain services
        them.  The first m that raises :class:`Backpressure` is the
        onset; with a bounded queue of ``max_pending`` and one drain
        per cycle the expected onset is ``max_pending + 1``, so a lower
        number signals queueing regressions.  Returns 0 if no raise
        happened within twice the queue bound (the queue is effectively
        unbounded — itself a finding).
        """
        config = self.config
        probed = dict(list(sources.items())[: min(8, len(sources))])
        for offered in range(1, 2 * config.max_pending + 2):
            try:
                for _ in range(offered):
                    for session_id, source in probed.items():
                        gateway.submit(
                            session_id,
                            source.next_chunk(config.chunk_samples),
                        )
            except Backpressure:
                gateway.drain()
                return offered
            gateway.drain()
        return 0

    def _probe_worker_cycle(self, gateway, sources, baseline, say) -> dict:
        """Remove a worker, recover, add one back, recover — timed."""
        baseline_p50_s = nearest_rank_percentile(baseline, 50.0)
        routes = {
            session_id: gateway.worker_of(session_id)
            for session_id in gateway.session_ids
        }
        say("elasticity probe: remove_worker / add_worker cycle")
        cycle_started = time.perf_counter()
        victim = gateway.worker_ids[-1]
        moved = gateway.remove_worker(victim)
        remove_s = time.perf_counter() - cycle_started
        remove_recovery_ticks = self._ticks_until_recovered(
            gateway, sources, baseline_p50_s
        )
        add_started = time.perf_counter()
        gateway.add_worker()
        add_s = time.perf_counter() - add_started
        moved_back = sum(
            1
            for session_id, worker_id in routes.items()
            if gateway.worker_of(session_id) != worker_id
        )
        add_recovery_ticks = self._ticks_until_recovered(
            gateway, sources, baseline_p50_s
        )
        return {
            "rebalance_remove_s": remove_s,
            "rebalance_add_s": add_s,
            "migrated_on_remove": float(len(moved)),
            "migrated_on_add": float(moved_back),
            "recovery_ticks_after_remove": float(remove_recovery_ticks),
            "recovery_ticks_after_add": float(add_recovery_ticks),
            "worker_cycle_recovery_s": time.perf_counter() - cycle_started,
        }

    def _ticks_until_recovered(
        self,
        gateway,
        sources,
        baseline_p50_s: float,
        window: int = 3,
        max_ticks: int = 50,
    ) -> int:
        """Ticks until median latency re-enters the recovery envelope.

        Recovered means: the median of the last ``window`` tick
        latencies is within 2x the steady-state p50 (plus a 2 ms
        absolute allowance for timer noise at sub-millisecond ticks).
        Returns ``max_ticks`` when the envelope is never re-entered —
        a saturated post-disruption fleet shows up as the cap, not as
        an infinite loop.
        """
        threshold = max(2.0 * baseline_p50_s, baseline_p50_s + 0.002)
        recent: list[float] = []
        gateway.tick_stats.reset()
        for tick in range(1, max_ticks + 1):
            self._tick(gateway, sources)
            recent = gateway.tick_stats.latencies_s[-window:]
            if len(recent) >= window:
                if nearest_rank_percentile(recent, 50.0) <= threshold:
                    return tick
        return max_ticks


def run_load_test(
    config: LoadConfig, progress: Callable[[str], None] | None = None
) -> LoadReport:
    """Convenience wrapper: one :class:`LoadGenerator` run."""
    return LoadGenerator(config).run(progress)
