"""Consistent-hash routing of session ids onto shard workers.

The gateway must route every ``session_id`` to a worker such that (a)
the mapping is deterministic across processes and runs (no reliance on
Python's randomised ``hash``), (b) sessions spread roughly evenly over
workers, and (c) adding or removing one worker moves only the sessions
whose arc changed — not a full reshuffle of the fleet.  A classic
consistent-hash ring with virtual nodes provides all three: each worker
owns ``replicas`` points on a 64-bit circle, and a key is served by the
first worker point at or after the key's own hash.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable


def stable_hash(key: str) -> int:
    """Deterministic 64-bit hash of a string (SHA-1 prefix).

    Unlike builtin ``hash``, identical across interpreter runs and
    worker processes, which is what makes ring assignments reproducible
    and checkpoint/restore with a different worker count well-defined.
    """
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping string keys to named nodes.

    Args:
        nodes: Initial node names.
        replicas: Virtual points per node; more points smooth the load
            spread at the cost of a larger (still tiny) sorted table.
    """

    def __init__(self, nodes: Iterable[str] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._nodes: dict[str, None] = {}  # insertion-ordered set
        self._points: list[tuple[int, str]] = []  # sorted (hash, node)
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> list[str]:
        """Node names in insertion order."""
        return list(self._nodes)

    def _node_points(self, node: str) -> list[tuple[int, str]]:
        return [
            (stable_hash(f"{node}#{i}"), node) for i in range(self.replicas)
        ]

    def add(self, node: str) -> None:
        """Add a node (its virtual points join the ring)."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes[node] = None
        self._points = sorted(self._points + self._node_points(node))

    def remove(self, node: str) -> None:
        """Remove a node; its arcs fall to the next points on the ring."""
        if node not in self._nodes:
            raise KeyError(f"node {node!r} is not on the ring")
        del self._nodes[node]
        self._points = [p for p in self._points if p[1] != node]

    def assign(self, key: str) -> str:
        """The node serving ``key``: first node point at/after its hash."""
        if not self._points:
            raise RuntimeError("cannot assign on an empty ring")
        idx = bisect.bisect_left(self._points, (stable_hash(key), ""))
        if idx == len(self._points):
            idx = 0  # wrap around the circle
        return self._points[idx][1]
