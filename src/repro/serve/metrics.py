"""Observability surface of the serving stack: metrics + JSON logs.

Two exports, both file-free and side-effect-free so every transport
(the asyncio service, tests, ad-hoc scripts) reads the same numbers:

* :func:`gateway_metrics` — one point-in-time snapshot of a
  :class:`~repro.serve.gateway.ShardedStreamGateway`: per-shard session
  counts, per-session submit-queue depths, cumulative tick/window
  counters and a cumulative-bucket latency histogram built from the
  gateway's own :class:`~repro.serve.gateway.TickStats` log (the same
  log the load harness reads, so ``/metrics`` and ``BENCH_load_slo``
  numbers can never disagree about what a tick latency is);
* :class:`JsonLogFormatter` — structured one-JSON-object-per-line
  logging for the service process, machine-parseable the way the
  benchrec records are.

Everything here is read-only over the gateway: a metrics scrape never
advances a stream, takes a lock the tick path needs, or mutates
counters (``TickStats.reset`` stays the caller's decision).
"""

from __future__ import annotations

import json
import logging

#: Histogram bucket upper bounds (seconds) for tick latencies, chosen
#: to bracket the measured trajectory (p50 ~200 ms on the 1-core
#: baseline host, sub-millisecond inline ticks in tests).  Cumulative
#: ``le`` semantics: bucket ``i`` counts every tick <= ``bounds[i]``.
LATENCY_BUCKET_BOUNDS_S = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Attributes every ``logging.LogRecord`` carries; anything else on a
#: record was passed via ``extra=`` and belongs in the JSON payload.
_STANDARD_LOG_ATTRS = frozenset({
    "name", "msg", "args", "levelname", "levelno", "pathname", "filename",
    "module", "exc_info", "exc_text", "stack_info", "lineno", "funcName",
    "created", "msecs", "relativeCreated", "thread", "threadName",
    "processName", "process", "taskName", "message", "asctime",
})


def latency_histogram(
    latencies_s,
    bounds_s: tuple = LATENCY_BUCKET_BOUNDS_S,
) -> dict:
    """Cumulative-bucket histogram of a latency log, Prometheus-style.

    Args:
        latencies_s: Iterable of tick latencies in seconds (the
            ``TickStats.latencies_s`` log; may be empty).
        bounds_s: Ascending bucket upper bounds in seconds.

    Returns:
        ``{"bounds_s": [...], "counts": [...], "count": n, "sum_s": s}``
        where ``counts[i]`` is the number of samples ``<= bounds_s[i]``
        (cumulative, so the series is monotonic) and samples above the
        last bound appear only in ``count``.
    """
    ordered = sorted(bounds_s)
    if tuple(ordered) != tuple(bounds_s):
        raise ValueError(f"bucket bounds must ascend, got {bounds_s}")
    samples = list(latencies_s)
    counts = [
        sum(1 for sample in samples if sample <= bound)
        for bound in ordered
    ]
    return {
        "bounds_s": list(ordered),
        "counts": counts,
        "count": len(samples),
        "sum_s": float(sum(samples)),
    }


def gateway_metrics(gateway) -> dict:
    """One JSON-serialisable snapshot of a gateway's observable state.

    The dict behind ``GET /metrics``: shard occupancy from
    :meth:`~repro.serve.gateway.ShardedStreamGateway.shard_map`,
    submit-queue depths from
    :meth:`~repro.serve.gateway.ShardedStreamGateway.pending`, and the
    tick counters/latency histogram from the gateway's ``tick_stats``.
    """
    shard_map = gateway.shard_map()
    queue_depths = {
        session_id: gateway.pending(session_id)
        for session_id in gateway.session_ids
    }
    stats = gateway.tick_stats
    return {
        "mode": gateway.mode,
        "workers": len(shard_map),
        "sessions_open": len(gateway),
        "shard_sessions": {
            worker_id: len(sessions)
            for worker_id, sessions in shard_map.items()
        },
        "queue_depths": queue_depths,
        "queued_chunks_total": sum(queue_depths.values()),
        "ticks_total": stats.ticks,
        "windows_total": stats.windows,
        "sessions_ticked_total": stats.sessions_ticked,
        "tick_latency": latency_histogram(stats.latencies_s),
    }


class JsonLogFormatter(logging.Formatter):
    """One JSON object per log line: the service's structured-log shape.

    Fixed keys: ``ts`` (epoch seconds, from the record's own creation
    stamp), ``level``, ``logger`` and ``event`` (the formatted
    message).  Keys passed through ``logging``'s ``extra=`` ride along
    verbatim, so call sites attach structure instead of formatting it
    into the message; non-JSON values degrade to ``str`` rather than
    crash the logging path.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _STANDARD_LOG_ATTRS or key.startswith("_"):
                continue
            payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def service_logger(
    name: str = "repro.serve.service",
    *,
    stream=None,
    level: int = logging.INFO,
) -> logging.Logger:
    """A logger emitting :class:`JsonLogFormatter` lines to ``stream``.

    Defaults to stderr (the stream ``logging.StreamHandler`` picks when
    none is given), keeping stdout clean for shells that parse command
    output.  Idempotent per name: re-calling replaces the handler
    instead of stacking duplicates.
    """
    logger = logging.getLogger(name)
    logger.setLevel(level)
    logger.propagate = False
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLogFormatter())
    logger.addHandler(handler)
    return logger
