"""Shard workers: one :class:`StreamSessionManager` per worker.

A worker owns a subset of the fleet's sessions and executes a small
command vocabulary against its manager — open/import/export/pop/close,
``push_many`` (the per-tick grouped sweep over *its* sessions, each
session queried through its own compute engine), and ``checkpoint``
(its shard of a fleet snapshot, written with
:func:`repro.core.persistence.save_sessions` — session payloads carry
their engine tag, so shards reopen on the engine that wrote them).

Two transports implement the same request/reply protocol:

* :class:`InlineShardWorker` runs the manager in the calling process —
  zero IPC, fully deterministic, the reference for the bit-exactness
  property tests and the right choice for single-core hosts;
* :class:`ProcessShardWorker` runs it in a child process behind a pipe,
  so ticks dispatched to different workers encode and classify in
  parallel.  Command payloads are plain dicts/numpy arrays and pickle
  cheaply; results are bit-identical to the inline transport.

The split ``dispatch``/``collect`` API is what buys the parallelism:
the gateway dispatches one tick to every involved worker first and only
then collects, so child processes overlap their sweeps.
"""

from __future__ import annotations

import multiprocessing
import traceback
from multiprocessing.connection import Connection

from repro.core.persistence import detector_from_payload, save_sessions
from repro.core.sessions import StreamSessionManager


class WorkerError(RuntimeError):
    """A shard worker failed to execute a command (remote traceback)."""


class ShardCommandHandler:
    """Executes the shard command vocabulary against one manager.

    Shared by both transports: the inline worker calls :meth:`handle`
    directly, the process worker calls it inside the child's serve
    loop.  Commands mutate only this shard's sessions.
    """

    def __init__(self) -> None:
        self.manager = StreamSessionManager()

    def handle(self, op: str, payload: dict):
        method = getattr(self, f"_op_{op}", None)
        if method is None:
            raise WorkerError(f"unknown shard command {op!r}")
        return method(payload)

    def _op_ping(self, payload: dict) -> str:
        return "pong"

    def _op_open(self, payload: dict) -> None:
        self.manager.open(
            payload["id"], detector_from_payload(payload["model"])
        )

    def _op_import(self, payload: dict) -> None:
        self.manager.import_session(payload["id"], payload["session"])

    def _op_export(self, payload: dict) -> dict:
        return self.manager.export_session(payload["id"])

    def _op_pop(self, payload: dict) -> dict:
        return self.manager.pop_session(payload["id"])

    def _op_close(self, payload: dict) -> None:
        self.manager.close(payload["id"])

    def _op_session_ids(self, payload: dict) -> list[str]:
        return self.manager.session_ids

    def _op_push_many(self, payload: dict) -> dict:
        return self.manager.push_many(payload["chunks"])

    def _op_checkpoint(self, payload: dict) -> str:
        return str(save_sessions(self.manager, payload["path"]))


class InlineShardWorker:
    """In-process transport: commands run synchronously, no pickling."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._handler = ShardCommandHandler()
        self._pending = None

    def request(self, op: str, payload: dict):
        """Execute one command and return its result."""
        return self._handler.handle(op, payload)

    def dispatch(self, op: str, payload: dict) -> None:
        """Start one command (inline: runs it immediately)."""
        if self._pending is not None:
            raise RuntimeError(f"worker {self.name}: dispatch already pending")
        self._pending = (True, self._handler.handle(op, payload))

    def collect(self):
        """Return the result of the last :meth:`dispatch`."""
        if self._pending is None:
            raise RuntimeError(f"worker {self.name}: nothing dispatched")
        _, result = self._pending
        self._pending = None
        return result

    def stop(self) -> None:
        """Release the shard (inline: nothing to tear down)."""
        self._pending = None


def _mp_context():
    """Fork where available (cheap, inherits sys.path), else spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return multiprocessing.get_context("spawn")


def _shard_worker_main(conn: Connection) -> None:
    """Child-process serve loop: recv (op, payload), send (status, value)."""
    handler = ShardCommandHandler()
    while True:
        try:
            op, payload = conn.recv()
        except EOFError:  # gateway died without a stop — just exit
            return
        if op == "stop":
            conn.send(("ok", None))
            return
        try:
            conn.send(("ok", handler.handle(op, payload)))
        except Exception as exc:  # noqa: BLE001 - relayed to the gateway
            conn.send(
                ("error", f"{type(exc).__name__}: {exc}\n"
                          f"{traceback.format_exc()}")
            )


class ProcessShardWorker:
    """Child-process transport behind a duplex pipe.

    The child runs :func:`_shard_worker_main`; exceptions raised there
    are relayed back and re-raised here as :class:`WorkerError` with the
    remote traceback in the message.  ``dispatch``/``collect`` must be
    strictly paired per worker (the gateway serialises them).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        ctx = _mp_context()
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_shard_worker_main,
            args=(child,),
            name=f"repro-shard-{name}",
            daemon=True,
        )
        self._proc.start()
        child.close()
        self._in_flight = 0

    def dispatch(self, op: str, payload: dict) -> None:
        """Send one command without waiting for its reply."""
        if self._in_flight:
            raise RuntimeError(f"worker {self.name}: dispatch already pending")
        self._conn.send((op, payload))
        self._in_flight = 1

    def collect(self):
        """Wait for and return the reply of the last :meth:`dispatch`."""
        if not self._in_flight:
            raise RuntimeError(f"worker {self.name}: nothing dispatched")
        # The request is over either way — a recv failure (dead child)
        # must not leave _in_flight set, or every later error would
        # masquerade as 'dispatch already pending'.
        self._in_flight = 0
        status, value = self._conn.recv()
        if status == "error":
            raise WorkerError(f"shard worker {self.name} failed:\n{value}")
        return value

    def request(self, op: str, payload: dict):
        """Execute one command and return its result (round trip)."""
        self.dispatch(op, payload)
        return self.collect()

    def stop(self, timeout: float = 5.0) -> None:
        """Shut the child down (terminate if it does not exit in time)."""
        if self._proc.is_alive():
            try:
                self._conn.send(("stop", None))
                self._conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
        self._proc.join(timeout)
        if self._proc.is_alive():  # pragma: no cover - wedged child
            self._proc.terminate()
            self._proc.join(timeout)
        self._conn.close()
