"""Shard workers: one :class:`StreamSessionManager` per worker.

A worker owns a subset of the fleet's sessions and executes a small
command vocabulary against its manager — open/import/export/pop/close,
``push_many`` (the per-tick grouped sweep over *its* sessions, each
session queried through its own compute engine), and ``checkpoint``
(its shard of a fleet snapshot, written with
:func:`repro.core.persistence.save_sessions` — session payloads carry
their engine tag, so shards reopen on the engine that wrote them).

Two transports implement the same request/reply protocol:

* :class:`InlineShardWorker` runs the manager in the calling process —
  zero IPC, fully deterministic, the reference for the bit-exactness
  property tests and the right choice for single-core hosts;
* :class:`ProcessShardWorker` runs it in a child process behind a pipe,
  so ticks dispatched to different workers encode and classify in
  parallel.  Command payloads are plain dicts/numpy arrays and pickle
  cheaply; results are bit-identical to the inline transport.

The split ``dispatch``/``collect`` API is what buys the parallelism:
the gateway dispatches one tick to every involved worker first and only
then collects, so child processes overlap their sweeps.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from multiprocessing.connection import Connection

from repro.core.persistence import detector_from_payload, save_sessions
from repro.core.sessions import StreamSessionManager

#: Default reply deadline of :meth:`ProcessShardWorker.collect`.  A tick
#: is one grouped sweep — tens of milliseconds at paper scale — so a
#: worker silent for this long is dead or wedged, not slow.
DEFAULT_POLL_TIMEOUT_S = 30.0

#: How often a waiting ``collect`` re-checks the child's liveness while
#: polling the pipe, so a killed worker surfaces in ~this time even
#: under a long reply deadline.
_LIVENESS_INTERVAL_S = 0.05


class WorkerError(RuntimeError):
    """A shard worker failed to execute a command (remote traceback)."""


class WorkerDiedError(WorkerError):
    """A shard child process died mid-command (no reply will ever come).

    Raised by :meth:`ProcessShardWorker.collect` instead of blocking
    forever on a pipe whose writer is gone.  Picklable by construction
    (rebuilt from its two constructor arguments), so it can itself
    travel through queues or pipes without wedging a ``recv``.
    """

    def __init__(self, worker_id: str, detail: str) -> None:
        super().__init__(f"shard worker {worker_id} {detail}")
        self.worker_id = worker_id
        self.detail = detail

    def __reduce__(self):
        return (type(self), (self.worker_id, self.detail))


class WorkerTimeoutError(WorkerDiedError):
    """A live shard child did not reply within the poll timeout.

    From the gateway's point of view a hung worker is as gone as a dead
    one — the subclass only records that the process was still alive
    (the command may still complete later, so the worker must not be
    reused without a restart).
    """


class ShardCommandHandler:
    """Executes the shard command vocabulary against one manager.

    Shared by both transports: the inline worker calls :meth:`handle`
    directly, the process worker calls it inside the child's serve
    loop.  Commands mutate only this shard's sessions.
    """

    def __init__(self) -> None:
        self.manager = StreamSessionManager()

    def handle(self, op: str, payload: dict):
        method = getattr(self, f"_op_{op}", None)
        if method is None:
            raise WorkerError(f"unknown shard command {op!r}")
        return method(payload)

    def _op_ping(self, payload: dict) -> str:
        return "pong"

    def _op_open(self, payload: dict) -> None:
        self.manager.open(
            payload["id"], detector_from_payload(payload["model"])
        )

    def _op_import(self, payload: dict) -> None:
        self.manager.import_session(payload["id"], payload["session"])

    def _op_export(self, payload: dict) -> dict:
        return self.manager.export_session(payload["id"])

    def _op_pop(self, payload: dict) -> dict:
        return self.manager.pop_session(payload["id"])

    def _op_close(self, payload: dict) -> None:
        self.manager.close(payload["id"])

    def _op_session_ids(self, payload: dict) -> list[str]:
        return self.manager.session_ids

    def _op_push_many(self, payload: dict) -> dict:
        return self.manager.push_many(payload["chunks"])

    def _op_checkpoint(self, payload: dict) -> str:
        return str(save_sessions(self.manager, payload["path"]))


class InlineShardWorker:
    """In-process transport: commands run synchronously, no pickling.

    ``poll_timeout_s`` is accepted for constructor parity with
    :class:`ProcessShardWorker` (the gateway builds both through one
    table); an inline command cannot outlive its caller, so the value
    is never consulted.
    """

    def __init__(
        self, name: str, *, poll_timeout_s: float = DEFAULT_POLL_TIMEOUT_S
    ) -> None:
        self.name = name
        self.poll_timeout_s = poll_timeout_s
        self._handler = ShardCommandHandler()
        self._pending = None

    def request(self, op: str, payload: dict):
        """Execute one command and return its result."""
        return self._handler.handle(op, payload)

    def dispatch(self, op: str, payload: dict) -> None:
        """Start one command (inline: runs it immediately)."""
        if self._pending is not None:
            raise RuntimeError(f"worker {self.name}: dispatch already pending")
        self._pending = (True, self._handler.handle(op, payload))

    def collect(self):
        """Return the result of the last :meth:`dispatch`."""
        if self._pending is None:
            raise RuntimeError(f"worker {self.name}: nothing dispatched")
        _, result = self._pending
        self._pending = None
        return result

    def stop(self) -> None:
        """Release the shard (inline: nothing to tear down)."""
        self._pending = None


def _mp_context():
    """Fork where available (cheap, inherits sys.path), else spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return multiprocessing.get_context("spawn")


def _shard_worker_main(conn: Connection) -> None:
    """Child-process serve loop: recv (op, payload), send (status, value)."""
    handler = ShardCommandHandler()
    while True:
        try:
            op, payload = conn.recv()
        except EOFError:  # gateway died without a stop — just exit
            return
        if op == "stop":
            conn.send(("ok", None))
            return
        try:
            conn.send(("ok", handler.handle(op, payload)))
        except Exception as exc:  # noqa: BLE001 - relayed to the gateway
            conn.send(
                ("error", f"{type(exc).__name__}: {exc}\n"
                          f"{traceback.format_exc()}")
            )


class ProcessShardWorker:
    """Child-process transport behind a duplex pipe.

    The child runs :func:`_shard_worker_main`; exceptions raised there
    are relayed back and re-raised here as :class:`WorkerError` with the
    remote traceback in the message.  ``dispatch``/``collect`` must be
    strictly paired per worker (the gateway serialises them).

    Waiting for a reply is always bounded: ``collect`` polls the pipe in
    short liveness-checking slices instead of blocking in ``recv``, so a
    child that died (killed, OOMed, segfaulted) raises
    :class:`WorkerDiedError` within ~:data:`_LIVENESS_INTERVAL_S`, and a
    child that hangs raises :class:`WorkerTimeoutError` after
    ``poll_timeout_s`` — the gateway never wedges on a silent worker.
    """

    def __init__(
        self, name: str, *, poll_timeout_s: float = DEFAULT_POLL_TIMEOUT_S
    ) -> None:
        if poll_timeout_s <= 0:
            raise ValueError(
                f"poll_timeout_s must be > 0, got {poll_timeout_s}"
            )
        self.name = name
        self.poll_timeout_s = poll_timeout_s
        ctx = _mp_context()
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_shard_worker_main,
            args=(child,),
            name=f"repro-shard-{name}",
            daemon=True,
        )
        self._proc.start()
        child.close()
        self._in_flight = 0

    def dispatch(self, op: str, payload: dict) -> None:
        """Send one command without waiting for its reply.

        Raises:
            WorkerDiedError: If the child is already gone — the pipe
                rejects the write, so the failure is known immediately.
        """
        if self._in_flight:
            raise RuntimeError(f"worker {self.name}: dispatch already pending")
        try:
            self._conn.send((op, payload))
        except (BrokenPipeError, OSError):
            raise WorkerDiedError(
                self.name, "died before accepting a command (pipe closed)"
            ) from None
        self._in_flight = 1

    def collect(self):
        """Wait for and return the reply of the last :meth:`dispatch`.

        Raises:
            WorkerDiedError: If the child died before replying.
            WorkerTimeoutError: If the child is alive but produced no
                reply within ``poll_timeout_s``.
            WorkerError: If the child executed the command and failed.
        """
        if not self._in_flight:
            raise RuntimeError(f"worker {self.name}: nothing dispatched")
        # The request is over either way — a recv failure (dead child)
        # must not leave _in_flight set, or every later error would
        # masquerade as 'dispatch already pending'.
        self._in_flight = 0
        status, value = self._bounded_recv()
        if status == "error":
            raise WorkerError(f"shard worker {self.name} failed:\n{value}")
        return value

    def _bounded_recv(self):
        """One pipe reply, or a typed error — never an indefinite block."""
        deadline = time.perf_counter() + self.poll_timeout_s
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                raise WorkerTimeoutError(
                    self.name,
                    f"sent no reply within {self.poll_timeout_s:g} s "
                    "(hung or overloaded); the worker must be replaced, "
                    "its sessions restored from the last checkpoint",
                )
            try:
                if self._conn.poll(min(remaining, _LIVENESS_INTERVAL_S)):
                    return self._conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                raise WorkerDiedError(
                    self.name, "died mid-command (pipe closed)"
                ) from None
            if not self._proc.is_alive():
                # Drain a reply the child may have written just before
                # exiting; only then declare the command lost.
                try:
                    if self._conn.poll(0):
                        return self._conn.recv()
                except (EOFError, BrokenPipeError, OSError):
                    pass
                raise WorkerDiedError(
                    self.name,
                    f"died mid-command (exit code {self._proc.exitcode})",
                )

    def request(self, op: str, payload: dict):
        """Execute one command and return its result (round trip)."""
        self.dispatch(op, payload)
        return self.collect()

    def stop(self, timeout: float = 5.0) -> None:
        """Shut the child down (terminate if it does not exit in time)."""
        if self._proc.is_alive():
            try:
                self._conn.send(("stop", None))
                # Bounded like collect(): a hung child must not turn
                # shutdown into an indefinite recv — terminate instead.
                if self._conn.poll(timeout):
                    self._conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
        self._proc.join(timeout)
        if self._proc.is_alive():  # pragma: no cover - wedged child
            self._proc.terminate()
            self._proc.join(timeout)
        self._conn.close()
