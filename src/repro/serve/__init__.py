"""Sharded multi-process serving of patient-stream fleets.

The layer above :class:`~repro.core.sessions.StreamSessionManager` on
the road to fleet scale (see ``docs/serving.md``):

``repro.serve.hashing``
    Deterministic consistent-hash ring routing ``session_id`` keys to
    shard workers with minimal movement on pool changes.
``repro.serve.worker``
    Shard workers — one session manager per shard, behind either an
    in-process transport or a child process with a pipe.
``repro.serve.gateway``
    :class:`ShardedStreamGateway`: open/push/push_many/close with the
    single-manager event semantics, bounded per-session submit queues
    with explicit :class:`Backpressure`, elastic worker add/remove with
    bit-exact session migration, and whole-fleet checkpoint/restore
    built on ``save_sessions``/``load_sessions`` shard files plus a
    manifest.  Every tick is timed into :class:`TickStats`.
``repro.serve.loadgen``
    The load harness: :class:`LoadGenerator` opens many clocked-source
    sessions against a gateway and measures p50/p99/p99.9 tick latency,
    sustained throughput, backpressure onset and worker-loss recovery —
    the numbers behind the committed ``BENCH_*.json`` perf trajectory.
``repro.serve.service``
    The network front end: one asyncio TCP server speaking a
    length-prefixed JSON data plane (open/push/close/checkpoint) and a
    plain-HTTP ops plane (``GET /healthz``, ``GET /metrics``) over one
    gateway, with graceful SIGTERM drain-to-checkpoint.
``repro.serve.metrics``
    Shared observability: the ``/metrics`` snapshot builder and the
    structured JSON log formatter.
"""

from repro.serve.gateway import (
    FLEET_MANIFEST,
    Backpressure,
    ShardedStreamGateway,
    TickStats,
)
from repro.serve.hashing import HashRing, stable_hash
from repro.serve.loadgen import (
    LoadConfig,
    LoadGenerator,
    LoadReport,
    run_load_test,
)
from repro.serve.metrics import (
    JsonLogFormatter,
    gateway_metrics,
    latency_histogram,
    service_logger,
)
from repro.serve.service import (
    LaelapsService,
    ServiceClient,
    ServiceError,
    ServiceRunner,
    http_get,
    run_service,
)
from repro.serve.worker import (
    InlineShardWorker,
    ProcessShardWorker,
    ShardCommandHandler,
    WorkerDiedError,
    WorkerError,
    WorkerTimeoutError,
)

__all__ = [
    "ShardedStreamGateway",
    "Backpressure",
    "FLEET_MANIFEST",
    "TickStats",
    "HashRing",
    "stable_hash",
    "InlineShardWorker",
    "ProcessShardWorker",
    "ShardCommandHandler",
    "WorkerError",
    "WorkerDiedError",
    "WorkerTimeoutError",
    "LoadConfig",
    "LoadGenerator",
    "LoadReport",
    "run_load_test",
    "LaelapsService",
    "ServiceRunner",
    "ServiceClient",
    "ServiceError",
    "run_service",
    "http_get",
    "JsonLogFormatter",
    "gateway_metrics",
    "latency_histogram",
    "service_logger",
]
