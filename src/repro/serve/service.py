"""Network-facing asyncio front end over the sharded gateway.

Everything below :class:`~repro.serve.gateway.ShardedStreamGateway` is
in-process or behind child-process pipes; this module is the first
layer a *network* client can reach.  One asyncio TCP server speaks two
protocols on the same port, told apart by the first four bytes of a
connection:

* **data plane** — length-prefixed JSON frames (4-byte big-endian
  length, then a UTF-8 JSON object) carrying the session vocabulary:
  ``open`` / ``push`` / ``push_many`` / ``submit`` / ``drain`` /
  ``close`` / ``checkpoint`` plus ``ping``, ``healthz``, ``metrics``
  and the load-harness hooks ``stats`` / ``stats_reset``.  Numpy
  arrays (chunks, model prototypes) travel as tagged base64 objects,
  bit-exactly;
* **ops plane** — plain ``HTTP/1.1``: ``GET /healthz`` answers 200
  with per-worker liveness (via the shard ``ping`` command) or 503
  when any worker is dead/hung, and ``GET /metrics`` serves the
  :func:`~repro.serve.metrics.gateway_metrics` snapshot, so stock
  probes and scrapers need no custom client.

The service is deliberately *thin*: it owns serialisation, one
``asyncio.Lock`` serialising gateway access (the gateway's parallelism
lives across its shard workers, not across connections), structured
JSON logging, and graceful drain — SIGTERM stops the listener, lets
the in-flight request finish, drains queued chunks, writes a fleet
checkpoint (restorable bit-exactly via
:meth:`~repro.serve.gateway.ShardedStreamGateway.restore`) and exits 0.
The bit-exact core is untouched: every event a network client sees is
the gateway's own return value, canonically JSON-encoded.

``repro serve-http`` is the CLI entry point;
:class:`ServiceRunner`/:class:`ServiceClient` give tests and the load
harness the same stack without a subprocess.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
import json
import logging
import signal
import socket
import threading
import types
from pathlib import Path

import numpy as np

from repro.core.persistence import detector_from_payload, detector_payload
from repro.core.streaming import StreamEvent
from repro.serve.gateway import Backpressure, ShardedStreamGateway
from repro.serve.metrics import gateway_metrics, service_logger

#: Default bind address: loopback — exposing a fleet beyond the host is
#: a deployment decision, never a default.
DEFAULT_HOST = "127.0.0.1"

#: Hard bound on one data-plane frame.  Also what disambiguates the two
#: protocols: ASCII ``"GET "`` read as a big-endian length is ~1.2 GB,
#: far above this bound, so an HTTP first-read can never be mistaken
#: for a valid frame header.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: First-reads that switch a connection onto the HTTP handler.
_HTTP_PREFIXES = (b"GET ", b"HEAD")

# Read-only on purpose: serve/ modules are forked into shard workers,
# so a plain dict here would become a divergent per-process copy.
_HTTP_REASONS = types.MappingProxyType(
    {200: "OK", 404: "Not Found", 503: "Service Unavailable"}
)

#: Data-plane ops that stay answerable while the service drains
#: (read-only probes; everything stateful is refused once draining).
_DRAINING_SAFE_OPS = frozenset({"ping", "healthz", "metrics", "stats"})


class ServiceError(RuntimeError):
    """A data-plane request failed service-side (typed, by name).

    ``error_type`` carries the server-side exception's class name
    (``"Backpressure"``, ``"WorkerDiedError"``, ``"KeyError"``, ...) so
    clients branch on failure class without parsing messages.
    """

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type


# ----------------------------------------------------------------------
# Wire codec: JSON with tagged, base64 numpy arrays
# ----------------------------------------------------------------------

def encode_value(value):
    """Make ``value`` JSON-safe, tagging numpy arrays losslessly.

    Arrays become ``{"__ndarray__": {dtype, shape, data}}`` with the
    raw C-order bytes base64-encoded — bit-exact for every dtype the
    pipeline uses (float64 signals, uint8/uint64 prototypes), unlike a
    decimal round-trip through nested lists.
    """
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": {
                "dtype": value.dtype.str,
                "shape": list(value.shape),
                "data": base64.b64encode(
                    np.ascontiguousarray(value).tobytes()
                ).decode("ascii"),
            }
        }
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, dict):
        return {key: encode_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    return value


def decode_value(value):
    """Inverse of :func:`encode_value` (tagged arrays back to numpy)."""
    if isinstance(value, dict):
        if set(value.keys()) == {"__ndarray__"}:
            spec = value["__ndarray__"]
            return np.frombuffer(
                base64.b64decode(spec["data"]), dtype=np.dtype(spec["dtype"])
            ).reshape(spec["shape"]).copy()
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


def events_to_wire(events: list[StreamEvent]) -> list[dict]:
    """Stream events as plain JSON objects (floats round-trip exactly)."""
    return [
        {
            "time_s": event.time_s,
            "label": int(event.label),
            "delta": event.delta,
            "alarm": bool(event.alarm),
        }
        for event in events
    ]


def events_from_wire(payload: list[dict]) -> list[StreamEvent]:
    """Rebuild :class:`StreamEvent` objects from :func:`events_to_wire`."""
    return [
        StreamEvent(
            time_s=item["time_s"],
            label=int(item["label"]),
            delta=item["delta"],
            alarm=bool(item["alarm"]),
        )
        for item in payload
    ]


def _frame(payload: dict) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ValueError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    return len(body).to_bytes(4, "big") + body


# ----------------------------------------------------------------------
# The asyncio service
# ----------------------------------------------------------------------

class LaelapsService:
    """Asyncio TCP/HTTP front end over one gateway (see module docs).

    Args:
        gateway: The gateway to serve.  The service owns it from
            :meth:`start` on — do not drive it concurrently from
            outside the service loop.
        host: Bind address.
        port: Bind port; 0 picks an ephemeral port (read ``address``
            after :meth:`start`).
        checkpoint_dir: Where the graceful-drain fleet checkpoint is
            written on shutdown; ``None`` skips the checkpoint.
        logger: Structured logger; defaults to the package's
            stderr JSON logger.
    """

    def __init__(
        self,
        gateway: ShardedStreamGateway,
        *,
        host: str = DEFAULT_HOST,
        port: int = 0,
        checkpoint_dir: str | Path | None = None,
        logger: logging.Logger | None = None,
    ) -> None:
        self._gateway = gateway
        self._host = host
        self._port = port
        self._checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self._log = logger if logger is not None else service_logger()
        self._lock = asyncio.Lock()
        self._server: asyncio.Server | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._stop_requested = asyncio.Event()
        self._draining = False
        self._finished = False

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("service is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        if self._server is not None:
            raise RuntimeError("service already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        host, port = self.address
        self._log.info(
            "service listening", extra={
                "host": host, "port": port,
                "mode": self._gateway.mode,
                "workers": len(self._gateway.worker_ids),
                "sessions": len(self._gateway),
            },
        )
        return host, port

    def request_shutdown(self) -> None:
        """Begin graceful drain (the SIGTERM handler); returns at once."""
        self._stop_requested.set()

    async def serve_until_shutdown(self) -> None:
        """Serve until :meth:`request_shutdown`, then drain and stop."""
        if self._server is None:
            await self.start()
        await self._stop_requested.wait()
        await self.shutdown()

    async def shutdown(self, *, drain: bool = True) -> None:
        """Graceful stop: refuse new work, drain, checkpoint, tear down.

        Order matters: the listener closes first (no new connections),
        the gateway lock is then acquired (the in-flight request, if
        any, completes), queued chunks are drained through the shards,
        the fleet checkpoint is written, and only then do the workers
        stop.  With ``drain=False`` queued chunks and the checkpoint
        are skipped (an abort, not a graceful exit).
        """
        if self._finished:
            return
        self._finished = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        async with self._lock:
            if drain:
                drained = self._gateway.drain()
                if drained:
                    self._log.info(
                        "drained queued chunks", extra={
                            "sessions": len(drained),
                            "windows": sum(
                                len(events) for events in drained.values()
                            ),
                        },
                    )
                if self._checkpoint_dir is not None and len(self._gateway):
                    manifest = self._gateway.checkpoint(self._checkpoint_dir)
                    self._log.info(
                        "fleet checkpoint written", extra={
                            "manifest": str(manifest),
                            "sessions": len(self._gateway),
                        },
                    )
            self._gateway.shutdown()
        for writer in list(self._writers):
            writer.close()
        self._log.info("service stopped", extra={"drained": drain})

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            head = await reader.readexactly(4)
            if any(head.startswith(p[:4]) for p in _HTTP_PREFIXES):
                await self._handle_http(head, reader, writer)
                return
            await self._handle_frames(head, reader, writer)
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client went away; nothing to answer
        finally:
            self._writers.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_frames(
        self,
        head: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve length-prefixed JSON requests until the peer hangs up."""
        while True:
            length = int.from_bytes(head, "big")
            if length > MAX_FRAME_BYTES:
                writer.write(_frame({
                    "ok": False,
                    "error": {
                        "type": "FrameTooLarge",
                        "message": (
                            f"frame of {length} bytes exceeds "
                            f"{MAX_FRAME_BYTES}"
                        ),
                    },
                }))
                await writer.drain()
                return
            body = await reader.readexactly(length)
            response = await self._execute(body)
            writer.write(_frame(response))
            await writer.drain()
            head = await reader.readexactly(4)

    async def _execute(self, body: bytes) -> dict:
        try:
            request = json.loads(body)
            op = request.get("op")
            handler = getattr(self, f"_op_{op}", None) if op else None
            if handler is None:
                raise ServiceError("UnknownOp", f"unknown op {op!r}")
            if self._draining and op not in _DRAINING_SAFE_OPS:
                raise ServiceError(
                    "ServiceDraining",
                    f"service is draining; op {op!r} refused",
                )
            async with self._lock:
                result = handler(request)
            return {"ok": True, "result": result}
        except ServiceError as exc:
            return {
                "ok": False,
                "error": {"type": exc.error_type, "message": str(exc)},
            }
        except Exception as exc:  # noqa: BLE001 - relayed to the client
            self._log.warning(
                "request failed", extra={
                    "error_type": type(exc).__name__, "error": str(exc),
                },
            )
            return {
                "ok": False,
                "error": {"type": type(exc).__name__, "message": str(exc)},
            }

    # -- data-plane ops ------------------------------------------------

    def _op_ping(self, request: dict):
        return "pong"

    def _op_open(self, request: dict):
        session_id = request["session_id"]
        payload = decode_value(request["model"])
        worker_id = self._gateway.open(
            session_id, detector_from_payload(payload)
        )
        self._log.info(
            "session opened",
            extra={"session_id": session_id, "worker": worker_id},
        )
        return {"worker": worker_id}

    def _op_push(self, request: dict):
        events = self._gateway.push(
            request["session_id"], decode_value(request["chunk"])
        )
        return events_to_wire(events)

    def _op_push_many(self, request: dict):
        chunks = {
            session_id: decode_value(chunk)
            for session_id, chunk in request["chunks"].items()
        }
        events = self._gateway.push_many(chunks)
        return {
            session_id: events_to_wire(session_events)
            for session_id, session_events in events.items()
        }

    def _op_submit(self, request: dict):
        self._gateway.submit(
            request["session_id"], decode_value(request["chunk"])
        )
        return None

    def _op_drain(self, request: dict):
        events = self._gateway.drain()
        return {
            session_id: events_to_wire(session_events)
            for session_id, session_events in events.items()
        }

    def _op_close(self, request: dict):
        session_id = request["session_id"]
        self._gateway.close(session_id)
        self._log.info("session closed", extra={"session_id": session_id})
        return None

    def _op_checkpoint(self, request: dict):
        manifest = self._gateway.checkpoint(request["directory"])
        self._log.info(
            "fleet checkpoint written",
            extra={
                "manifest": str(manifest),
                "sessions": len(self._gateway),
            },
        )
        return {"manifest": str(manifest)}

    def _op_session_ids(self, request: dict):
        return self._gateway.session_ids

    def _op_healthz(self, request: dict):
        return self._healthz_payload()

    def _op_metrics(self, request: dict):
        return gateway_metrics(self._gateway)

    def _op_stats(self, request: dict):
        stats = self._gateway.tick_stats
        return {
            "ticks": stats.ticks,
            "windows": stats.windows,
            "sessions_ticked": stats.sessions_ticked,
            "latencies_s": stats.latencies_s,
        }

    def _op_stats_reset(self, request: dict):
        self._gateway.tick_stats.reset()
        return None

    # -- HTTP ops plane ------------------------------------------------

    def _healthz_payload(self) -> dict:
        report = self._gateway.ping_workers()
        healthy = all(entry["alive"] for entry in report.values())
        status = "ok" if healthy else "degraded"
        if self._draining:
            status = "draining"
        return {
            "status": status,
            "draining": self._draining,
            "sessions_open": len(self._gateway),
            "workers": report,
        }

    async def _handle_http(
        self,
        head: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        request = head + await reader.readuntil(b"\r\n\r\n")
        request_line = request.split(b"\r\n", 1)[0].decode("latin-1")
        parts = request_line.split()
        path = parts[1].split("?", 1)[0] if len(parts) >= 2 else "/"
        if path == "/healthz":
            async with self._lock:
                payload = self._healthz_payload()
            status = 200 if payload["status"] == "ok" else 503
        elif path == "/metrics":
            async with self._lock:
                payload = gateway_metrics(self._gateway)
            status = 200
        else:
            payload = {"error": f"no such endpoint {path!r}"}
            status = 404
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        writer.write(
            (
                f"HTTP/1.1 {status} {_HTTP_REASONS[status]}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1") + body
        )
        await writer.drain()


def run_service(
    gateway: ShardedStreamGateway,
    *,
    host: str = DEFAULT_HOST,
    port: int = 0,
    checkpoint_dir: str | Path | None = None,
    logger: logging.Logger | None = None,
) -> int:
    """Serve until SIGTERM/SIGINT, drain gracefully, return exit code 0.

    The blocking entry point behind ``repro serve-http``: installs the
    signal handlers, logs the bound address (a ``"service listening"``
    JSON line with ``host``/``port`` fields — how wrappers discover an
    ephemeral port), and runs the drain-checkpoint-exit sequence when a
    signal arrives.
    """
    async def _main() -> int:
        service = LaelapsService(
            gateway,
            host=host,
            port=port,
            checkpoint_dir=checkpoint_dir,
            logger=logger,
        )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, service.request_shutdown)
        await service.serve_until_shutdown()
        return 0

    return asyncio.run(_main())


class ServiceRunner:
    """A :class:`LaelapsService` on a background thread, sync API.

    What tests and the load harness use to stand up a real socket
    without a subprocess: ``start()`` returns the bound address,
    ``stop()`` runs the same graceful drain as SIGTERM.  The wrapped
    gateway belongs to the service between the two calls.
    """

    def __init__(
        self,
        gateway: ShardedStreamGateway,
        *,
        host: str = DEFAULT_HOST,
        port: int = 0,
        checkpoint_dir: str | Path | None = None,
        logger: logging.Logger | None = None,
    ) -> None:
        self.service = LaelapsService(
            gateway,
            host=host,
            port=port,
            checkpoint_dir=checkpoint_dir,
            logger=logger,
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> tuple[str, int]:
        """Start the loop thread and the service; return ``(host, port)``."""
        if self._thread is not None:
            raise RuntimeError("runner already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-service", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            self.service.start(), self._loop
        )
        return future.result(timeout=30.0)

    def stop(self, *, drain: bool = True) -> None:
        """Gracefully stop the service and join the loop thread."""
        if self._loop is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(drain=drain), self._loop
        )
        future.result(timeout=120.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30.0)
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "ServiceRunner":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Synchronous client
# ----------------------------------------------------------------------

class ServiceClient:
    """Blocking data-plane client of one :class:`LaelapsService`.

    Speaks the length-prefixed JSON protocol over a plain socket; every
    method is one request/reply round trip.  Server-side failures raise
    :class:`ServiceError` with the remote exception's class name in
    ``error_type``.  Usable as a context manager.
    """

    def __init__(
        self, host: str, port: int, *, timeout_s: float = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout_s)

    def call(self, op: str, **fields):
        """One raw protocol round trip (the typed methods wrap this)."""
        request = {"op": op, **fields}
        body = json.dumps(request).encode("utf-8")
        self._sock.sendall(len(body).to_bytes(4, "big") + body)
        length = int.from_bytes(self._recv_exact(4), "big")
        response = json.loads(self._recv_exact(length))
        if not response["ok"]:
            error = response["error"]
            raise ServiceError(error["type"], error["message"])
        return response["result"]

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ConnectionError(
                    "service closed the connection mid-reply"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    # -- typed wrappers ------------------------------------------------

    def ping(self) -> str:
        return self.call("ping")

    def open(self, session_id: str, detector) -> str:
        """Open a session from a fitted detector; returns its worker id."""
        return self.open_payload(session_id, detector_payload(detector))

    def open_payload(self, session_id: str, payload: dict) -> str:
        result = self.call(
            "open", session_id=session_id, model=encode_value(payload)
        )
        return result["worker"]

    def push(self, session_id: str, chunk) -> list[StreamEvent]:
        return events_from_wire(self.call(
            "push",
            session_id=session_id,
            chunk=encode_value(np.asarray(chunk)),
        ))

    def push_many(self, chunks: dict) -> dict[str, list[StreamEvent]]:
        wire_chunks = {
            session_id: encode_value(np.asarray(chunk))
            for session_id, chunk in chunks.items()
        }
        result = self.call("push_many", chunks=wire_chunks)
        return {
            session_id: events_from_wire(events)
            for session_id, events in result.items()
        }

    def submit(self, session_id: str, chunk) -> None:
        self.call(
            "submit",
            session_id=session_id,
            chunk=encode_value(np.asarray(chunk)),
        )

    def drain(self) -> dict[str, list[StreamEvent]]:
        return {
            session_id: events_from_wire(events)
            for session_id, events in self.call("drain").items()
        }

    def close_session(self, session_id: str) -> None:
        self.call("close", session_id=session_id)

    def checkpoint(self, directory: str | Path) -> str:
        return self.call("checkpoint", directory=str(directory))["manifest"]

    def session_ids(self) -> list[str]:
        return self.call("session_ids")

    def healthz(self) -> dict:
        return self.call("healthz")

    def metrics(self) -> dict:
        return self.call("metrics")

    def stats(self) -> dict:
        return self.call("stats")

    def stats_reset(self) -> None:
        self.call("stats_reset")

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def http_get(
    host: str, port: int, path: str, *, timeout_s: float = 30.0
) -> tuple[int, dict]:
    """Minimal HTTP/1.1 GET against the ops plane (tests and scripts).

    Returns:
        ``(status_code, decoded JSON body)``.
    """
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.sendall(
            (
                f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
        )
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    return status, json.loads(body)
