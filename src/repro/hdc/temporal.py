"""Temporal histogram encoder: bundle spatial records over a window.

The d-bit vector ``H`` estimates the LBP-code histogram of a 1 s analysis
window by bundling the 512 spatial records produced inside it
(Sec. III-B):  ``H = [S_1 + S_2 + ... + S_512]``, recomputed every 0.5 s.

The implementation mirrors the GPU dataflow of Fig. 2: the per-component
sums of the ``S`` vectors are accumulated per 0.5 s *block* and one window
is the sum of adjacent blocks, so a recording of any length streams
through in O(d) memory and every ``S`` is encoded exactly once even though
windows overlap.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.hdc.ops import majority_from_counts
from repro.hdc.spatial import SpatialEncoder
from repro.signal.windows import WindowSpec


class WindowBundler:
    """Streaming scaffold shared by both temporal-encoder backends.

    Buffers per-sample codes across ``feed`` calls, tiles them into
    exact 0.5 s blocks, and hands each full block to the backend hook
    ``_consume_block``.  Subclasses own the per-block state (integer
    counters or bit-sliced planes) and the output representation —
    keeping the chunk-boundary bookkeeping in one place is what makes
    the two backends provably equivalent under arbitrary chunking.

    Args:
        spatial: The spatial encoder producing per-sample records; must
            expose ``dim`` and ``n_electrodes``.
        spec: Window geometry in samples; ``window_samples`` must be an
            integer multiple of ``step_samples`` (the paper uses 512/256)
            so windows tile exactly into blocks.
    """

    def __init__(self, spatial, spec: WindowSpec) -> None:
        if spec.window_samples % spec.step_samples != 0:
            raise ValueError(
                "window must be an integer multiple of the step, got "
                f"{spec.window_samples}/{spec.step_samples}"
            )
        self.spatial = spatial
        self.spec = spec
        self.blocks_per_window = spec.window_samples // spec.step_samples
        self.dim = spatial.dim
        self._pending = np.zeros((0, spatial.n_electrodes), dtype=np.int64)
        self._reset_blocks()

    def reset(self) -> None:
        """Drop buffered samples and block state (start of a new record)."""
        self._pending = np.zeros((0, self.spatial.n_electrodes), dtype=np.int64)
        self._reset_blocks()

    def _reset_blocks(self) -> None:
        """(Re)initialise the per-block accumulation state."""
        raise NotImplementedError

    def _consume_block(self, block_codes: np.ndarray) -> np.ndarray | None:
        """Encode one full block; return an H vector once enough blocks exist."""
        raise NotImplementedError

    def _empty_windows(self) -> np.ndarray:
        """A zero-window output array in the backend's representation."""
        raise NotImplementedError

    def feed(self, codes: np.ndarray) -> np.ndarray:
        """Push a chunk of per-sample codes; return completed H vectors.

        Args:
            codes: Integer array ``(n_samples, n_electrodes)`` — any chunk
                size; samples are buffered across calls.

        Returns:
            Array ``(n_new_windows, ...)`` of H vectors completed by this
            chunk (possibly empty), in the backend's representation.
        """
        arr = np.asarray(codes)
        if arr.ndim != 2 or arr.shape[1] != self.spatial.n_electrodes:
            raise ValueError(
                f"expected (n_samples, {self.spatial.n_electrodes}), "
                f"got {arr.shape}"
            )
        if self._pending.size:
            arr = np.concatenate([self._pending, arr], axis=0)
        step = self.spec.step_samples
        outputs = []
        offset = 0
        while arr.shape[0] - offset >= step:
            h = self._consume_block(arr[offset : offset + step])
            if h is not None:
                outputs.append(h)
            offset += step
        self._pending = arr[offset:].copy()
        if not outputs:
            return self._empty_windows()
        return np.stack(outputs)

    def encode_all(self, codes: np.ndarray) -> np.ndarray:
        """Encode a complete code stream into all its H vectors.

        Equivalent to ``reset()`` followed by one big ``feed``; trailing
        samples that do not fill a block are discarded.
        """
        self.reset()
        return self.feed(codes)

    # ------------------------------------------------------------------
    # Checkpointing (live-stream session state)
    # ------------------------------------------------------------------

    def _state_blocks(self) -> list[np.ndarray]:
        """Per-block state as canonical ``(d,)`` integer count vectors.

        Every backend exports the same form — the per-component sums of
        the spatial records accumulated in each live block — so a
        checkpoint written by one compute engine restores onto any
        other.
        """
        raise NotImplementedError

    def _restore_blocks(self, blocks: list[np.ndarray]) -> None:
        """Rebuild the backend state from canonical count vectors."""
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Snapshot of the streaming state: pending codes + block state.

        The snapshot is plain numpy data (checkpointable to ``.npz``)
        in an engine-independent form; :meth:`restore_state` on *any*
        registered engine's encoder resumes the stream bit-exactly.
        """
        return {
            "pending": self._pending.copy(),
            "blocks": [block.copy() for block in self._state_blocks()],
        }

    def restore_state(self, state: dict) -> "WindowBundler":
        """Resume from a :meth:`state_dict` snapshot.

        Accepts the canonical count-vector block form from any engine,
        plus the legacy form written by packed encoders before the
        engine registry (bit-sliced digit planes), which is decoded on
        the way in.
        """
        from repro.hdc.bitsliced import planes_to_counts

        pending = np.asarray(state["pending"], dtype=np.int64)
        if pending.ndim != 2 or pending.shape[1] != self.spatial.n_electrodes:
            raise ValueError(
                f"pending codes must be (n, {self.spatial.n_electrodes}), "
                f"got {pending.shape}"
            )
        blocks = []
        for block in state["blocks"]:
            arr = np.asarray(block)
            if arr.ndim == 2 and arr.dtype == np.uint64:
                arr = planes_to_counts(arr, self.dim)
            elif arr.ndim != 1 or arr.shape[0] != self.dim:
                raise ValueError(
                    f"block state must be ({self.dim},) counts or legacy "
                    f"digit planes, got shape {arr.shape}"
                )
            blocks.append(arr.astype(np.int64, copy=False))
        if len(blocks) > self.blocks_per_window:
            raise ValueError(
                f"{len(blocks)} blocks exceed the window's "
                f"{self.blocks_per_window}"
            )
        self._pending = pending.copy()
        self._reset_blocks()
        self._restore_blocks(blocks)
        return self


class TemporalEncoder(WindowBundler):
    """Streaming window bundler over spatial records.

    Args:
        spatial: The spatial encoder producing per-sample records.
        spec: Window geometry in samples (window a multiple of the step).
    """

    spatial: SpatialEncoder

    def _reset_blocks(self) -> None:
        self._block_sums: deque[np.ndarray] = deque(
            maxlen=self.blocks_per_window
        )

    def _consume_block(self, block_codes: np.ndarray) -> np.ndarray | None:
        s_bits = self.spatial.encode(block_codes)
        self._block_sums.append(s_bits.sum(axis=0, dtype=np.int32))
        if len(self._block_sums) < self.blocks_per_window:
            return None
        window_counts = np.sum(self._block_sums, axis=0)
        return majority_from_counts(window_counts, self.spec.window_samples)

    def _empty_windows(self) -> np.ndarray:
        return np.zeros((0, self.dim), dtype=np.uint8)

    def _state_blocks(self) -> list[np.ndarray]:
        return [block.astype(np.int64) for block in self._block_sums]

    def _restore_blocks(self, blocks: list[np.ndarray]) -> None:
        for block in blocks:
            self._block_sums.append(np.asarray(block, dtype=np.int32).copy())


def encode_recording(
    codes: np.ndarray, spatial: SpatialEncoder, spec: WindowSpec
) -> np.ndarray:
    """One-shot encoding of a multichannel code stream into H vectors.

    Args:
        codes: Integer array ``(n_samples, n_electrodes)``.
        spatial: Configured spatial encoder.
        spec: Window geometry (window a multiple of step).

    Returns:
        uint8 array ``(n_windows, d)``; window ``i`` covers code samples
        ``[i * step, i * step + window)``.
    """
    return TemporalEncoder(spatial, spec).encode_all(codes)
