"""Packed temporal encoder: window bundling without leaving the bit domain.

The packed counterpart of :class:`repro.hdc.temporal.TemporalEncoder`:
spatial records arrive as uint64 words from
:class:`~repro.hdc.spatial_packed.PackedSpatialEncoder`, each 0.5 s block
is reduced to bit-sliced digit planes by a carry-save compressor tree,
adjacent blocks are combined with a packed ripple adder, and the window
majority is a bitwise magnitude comparator — the Fig. 2 dataflow with no
unpacked intermediate anywhere, bit-exact against the integer-counter
encoder.

The chunk-buffering scaffold is shared with the unpacked encoder
(:class:`repro.hdc.temporal.WindowBundler`), so every spatial record is
encoded exactly once even though windows overlap, and memory stays O(d).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.hdc.bitsliced import (
    bitsliced_counts,
    planes_add,
    planes_from_counts,
    planes_greater_than,
    planes_to_counts,
)
from repro.hdc.spatial_packed import PackedSpatialEncoder
from repro.hdc.temporal import WindowBundler
from repro.signal.windows import WindowSpec


class PackedTemporalEncoder(WindowBundler):
    """Streaming window bundler over packed spatial records.

    Drop-in behavioural twin of
    :class:`repro.hdc.temporal.TemporalEncoder` whose outputs are packed
    uint64 H vectors of shape ``(n_windows, words)``.

    Args:
        spatial: The packed spatial encoder producing per-sample records.
        spec: Window geometry in samples (window a multiple of the step).
    """

    spatial: PackedSpatialEncoder

    def __init__(self, spatial: PackedSpatialEncoder, spec: WindowSpec) -> None:
        super().__init__(spatial, spec)
        self.words = spatial.words

    def _reset_blocks(self) -> None:
        self._block_planes: deque[np.ndarray] = deque(
            maxlen=self.blocks_per_window
        )

    def _consume_block(self, block_codes: np.ndarray) -> np.ndarray | None:
        s_packed = self.spatial.encode_packed(block_codes)
        self._block_planes.append(bitsliced_counts(s_packed))
        if len(self._block_planes) < self.blocks_per_window:
            return None
        window_planes = self._block_planes[0]
        for planes in list(self._block_planes)[1:]:
            window_planes = planes_add(window_planes, planes)
        return planes_greater_than(
            window_planes, self.spec.window_samples // 2
        )

    def _empty_windows(self) -> np.ndarray:
        return np.zeros((0, self.words), dtype=np.uint64)

    def _state_blocks(self) -> list[np.ndarray]:
        # Exported in the engine-independent integer form; the digit
        # planes are rebuilt on restore (their depth only depends on the
        # decoded counts, so the round trip is bit-exact downstream).
        return [
            planes_to_counts(planes, self.dim)
            for planes in self._block_planes
        ]

    def _restore_blocks(self, blocks: list[np.ndarray]) -> None:
        for counts in blocks:
            self._block_planes.append(planes_from_counts(counts, self.dim))


def encode_recording_packed(
    codes: np.ndarray, spatial: PackedSpatialEncoder, spec: WindowSpec
) -> np.ndarray:
    """One-shot packed encoding of a multichannel code stream.

    Args:
        codes: Integer array ``(n_samples, n_electrodes)``.
        spatial: Configured packed spatial encoder.
        spec: Window geometry (window a multiple of step).

    Returns:
        uint64 array ``(n_windows, words)``; window ``i`` covers code
        samples ``[i * step, i * step + window)``.
    """
    return PackedTemporalEncoder(spatial, spec).encode_all(codes)
