"""Item memories: seeded repositories of atomic hypervectors.

Laelaps uses two item memories (Fig. 2): ``IM1`` maps the 64 LBP codes and
``IM2`` maps the electrode names to nearly orthogonal random d-bit
vectors.  Binding an electrode vector with a code vector yields the
per-electrode code representation, shrinking the memory from ``64 * n`` to
``64 + n`` stored vectors (Sec. III-B).
"""

from __future__ import annotations

import numpy as np

from repro.hdc.backend import pack_bits, random_bits


class ItemMemory:
    """A fixed table of i.i.d. random binary hypervectors.

    Vectors are drawn once from the equiprobable-bit distribution with an
    explicit seed, so every run of a configured detector sees the same
    atomic vectors.

    Args:
        n_items: Number of atomic vectors (e.g. 64 codes, or n electrodes).
        dim: Hypervector dimension d in bits.
        seed: Seed for the generator; two memories in one model must use
            different seeds (the detector derives them from a master seed).
    """

    def __init__(self, n_items: int, dim: int, seed: int) -> None:
        if n_items < 1:
            raise ValueError(f"n_items must be >= 1, got {n_items}")
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.n_items = n_items
        self.dim = dim
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._vectors = random_bits((n_items, dim), rng)
        self._vectors.setflags(write=False)

    @property
    def vectors(self) -> np.ndarray:
        """All atomic vectors, read-only uint8 array ``(n_items, dim)``."""
        return self._vectors

    def vector(self, index: int) -> np.ndarray:
        """The atomic vector of item ``index`` (read-only view)."""
        if not 0 <= index < self.n_items:
            raise IndexError(f"item {index} out of range [0, {self.n_items})")
        return self._vectors[index]

    def packed(self) -> np.ndarray:
        """All vectors in packed uint64 form, ``(n_items, words)``."""
        return pack_bits(self._vectors)

    def storage_bits(self) -> int:
        """Total storage of this memory in bits (as in Sec. V-B sizing)."""
        return self.n_items * self.dim

    def cross_distances(self) -> np.ndarray:
        """Pairwise normalised Hamming distances ``(n_items, n_items)``.

        Off-diagonal entries concentrate around 0.5 for d in the
        thousands — the near-orthogonality HD computing relies on.
        """
        diff = self._vectors[:, None, :] != self._vectors[None, :, :]
        return diff.sum(axis=-1) / self.dim


def bound_table(code_memory: ItemMemory, electrode_memory: ItemMemory) -> np.ndarray:
    """Precompute every electrode-code binding.

    Returns a uint8 array ``(n_electrodes, n_codes, dim)`` whose entry
    ``[j, c]`` is ``E_j XOR C_c``.  The spatial encoder gathers rows from
    this table instead of re-binding per sample; for the paper-scale
    configuration (128 electrodes, 64 codes, d = 1 kbit) the table is
    1 MiB — the software analogue of keeping IM1/IM2 in GPU shared memory.
    """
    if code_memory.dim != electrode_memory.dim:
        raise ValueError(
            "item memories must share a dimension, got "
            f"{code_memory.dim} and {electrode_memory.dim}"
        )
    electrodes = electrode_memory.vectors[:, None, :]
    codes = code_memory.vectors[None, :, :]
    return np.bitwise_xor(electrodes, codes)
